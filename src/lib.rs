//! # cg-lookahead
//!
//! Facade crate for the reproduction of Van Rosendale, *Minimizing Inner
//! Product Data Dependencies in Conjugate Gradient Iteration* (NASA
//! CR-172178 / ICASE 83-36, 1983) — re-exports every subsystem under one
//! roof:
//!
//! * [`cg`] — the solvers: standard CG, the paper's §3 overlap and §4-5
//!   look-ahead algorithms, s-step CG (monomial/Newton/Chebyshev bases),
//!   block CG, and the baselines (three-term, Chronopoulos-Gear, pipelined,
//!   conjugate residual, Chebyshev iteration, preconditioned CG).
//! * [`linalg`] — sparse/dense/banded matrices, kernels with explicit
//!   summation orders, PDE generators, preconditioners, Lanczos, RCM,
//!   Matrix Market I/O.
//! * [`par`] — deterministic parallel runtime (bit-reproducible reductions,
//!   fused batches, pipelined launch-now/consume-later scalars).
//! * [`obs`] — allocation-free span tracing and per-iteration critical-path
//!   attribution: measures how much of an iteration is dependency-gated
//!   reduction wait versus overlappable work, on real threads.
//! * [`poly`] — exact polynomial algebra for the symbolic (*)-coefficient
//!   derivation.
//! * [`sim`] — the idealized parallel machine: task DAGs, cost models,
//!   topologies, schedulers, Gantt/Graphviz rendering.
//! * [`svc`] — the solver as a service: a multi-tenant daemon with bounded
//!   admission, block-CG batching of compatible jobs, stability-table
//!   variant routing, and streamed per-iteration convergence events.
//!
//! ```
//! use cg_lookahead::cg::{lookahead::LookaheadCg, standard::StandardCg,
//!                        CgVariant, SolveOptions};
//! use cg_lookahead::linalg::gen;
//! use cg_lookahead::sim::{builders, MachineModel};
//!
//! // numerically: the restructured algorithm solves the same system
//! let a = gen::poisson2d(16);
//! let b = gen::poisson2d_rhs(16);
//! let opts = SolveOptions::default().with_tol(1e-8);
//! let x_std = StandardCg::new().solve(&a, &b, None, &opts);
//! let x_la = LookaheadCg::new(2).with_resync(12).solve(&a, &b, None, &opts);
//! assert!(x_std.converged && x_la.converged);
//!
//! // structurally: it removes the log N fan-ins from the critical path
//! let m = MachineModel::pram();
//! let t_std = builders::standard_cg(1 << 20, 5, 24).steady_cycle_time(&m);
//! let t_la = builders::lookahead_cg(1 << 20, 5, 24, 20).steady_cycle_time(&m);
//! assert!(t_la * 3.0 < t_std);
//! ```

pub use vr_cg as cg;
pub use vr_linalg as linalg;
pub use vr_obs as obs;
pub use vr_par as par;
pub use vr_poly as poly;
pub use vr_sim as sim;
pub use vr_svc as svc;
