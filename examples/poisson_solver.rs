//! A small PDE-solver application exercising the full public API:
//! problem selection, solver selection, preconditioning, and convergence
//! reporting.
//!
//! ```text
//! cargo run --release --example poisson_solver -- [problem] [solver] [tol]
//!   problem: poisson2d | poisson3d | aniso | random      (default poisson2d)
//!   solver : standard | three-term | chrono | pipelined |
//!            overlap | lookahead:<k> | pcg:<jacobi|ssor|ic0>  (default all)
//!   tol    : relative residual tolerance                  (default 1e-8)
//! ```

use cg_lookahead::cg::baselines::{ChronopoulosGearCg, PipelinedCg, PrecondCg, ThreeTermCg};
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::overlap_k1::OverlapK1Cg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::precond::{Ic0, Jacobi, Ssor};
use cg_lookahead::linalg::{gen, CsrMatrix};

fn build_problem(name: &str) -> (CsrMatrix, Vec<f64>) {
    match name {
        "poisson2d" => (gen::poisson2d(48), gen::poisson2d_rhs(48)),
        "poisson3d" => (gen::poisson3d(14), gen::rand_vector(14 * 14 * 14, 1)),
        "aniso" => (gen::anisotropic2d(48, 0.02), gen::rand_vector(48 * 48, 2)),
        "random" => (gen::rand_spd(4000, 6, 1.0, 42), gen::rand_vector(4000, 3)),
        other => {
            eprintln!("unknown problem '{other}' (poisson2d|poisson3d|aniso|random)");
            std::process::exit(2);
        }
    }
}

fn build_solvers(name: &str, a: &CsrMatrix) -> Vec<Box<dyn CgVariant>> {
    let mk_pcg = |kind: &str| -> Box<dyn CgVariant> {
        match kind {
            "jacobi" => Box::new(PrecondCg::new(
                Jacobi::new(a).expect("jacobi"),
                "pcg-jacobi",
            )),
            "ssor" => Box::new(PrecondCg::new(Ssor::new(a, 1.2).expect("ssor"), "pcg-ssor")),
            "ic0" => Box::new(PrecondCg::new(Ic0::new(a).expect("ic0"), "pcg-ic0")),
            other => {
                eprintln!("unknown preconditioner '{other}'");
                std::process::exit(2);
            }
        }
    };
    match name {
        "all" => vec![
            Box::new(StandardCg::new()),
            Box::new(ThreeTermCg::new()),
            Box::new(ChronopoulosGearCg::new()),
            Box::new(PipelinedCg::new()),
            Box::new(OverlapK1Cg::new().with_resync(25)),
            Box::new(LookaheadCg::new(2).with_resync(12)),
            Box::new(LookaheadCg::new(4).with_resync(12)),
            mk_pcg("jacobi"),
            mk_pcg("ic0"),
        ],
        "standard" => vec![Box::new(StandardCg::new())],
        "three-term" => vec![Box::new(ThreeTermCg::new())],
        "chrono" => vec![Box::new(ChronopoulosGearCg::new())],
        "pipelined" => vec![Box::new(PipelinedCg::new())],
        "overlap" => vec![Box::new(OverlapK1Cg::new().with_resync(25))],
        other => {
            if let Some(k) = other.strip_prefix("lookahead:") {
                let k: usize = k.parse().expect("lookahead:<k>");
                vec![Box::new(LookaheadCg::new(k).with_resync(12))]
            } else if let Some(p) = other.strip_prefix("pcg:") {
                vec![mk_pcg(p)]
            } else {
                eprintln!("unknown solver '{other}'");
                std::process::exit(2);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let problem = args.first().map_or("poisson2d", String::as_str);
    let solver = args.get(1).map_or("all", String::as_str);
    let tol: f64 = args.get(2).map_or(1e-8, |t| t.parse().expect("tol"));

    let (a, b) = build_problem(problem);
    println!(
        "{problem}: N = {}, nnz = {}, d = {}, tol = {tol:.0e}\n",
        a.nrows(),
        a.nnz(),
        a.max_row_nnz()
    );
    println!(
        "{:<28} {:>7} {:>12} {:>10} {:>9} {:>9}",
        "solver", "iters", "true resid", "matvecs", "dots", "status"
    );

    let opts = SolveOptions::default().with_tol(tol).with_max_iters(20_000);
    for s in build_solvers(solver, &a) {
        let t0 = std::time::Instant::now();
        let res = s.solve(&a, &b, None, &opts);
        let dt = t0.elapsed();
        println!(
            "{:<28} {:>7} {:>12.2e} {:>10} {:>9} {:>9} ({:.1} ms)",
            s.name(),
            res.iterations,
            res.true_residual(&a, &b),
            res.counts.matvecs,
            res.counts.dots,
            format!("{:?}", res.termination),
            dt.as_secs_f64() * 1e3,
        );
    }
}
