//! Convergence curves for every solver on one problem, as an ASCII
//! semilog plot plus a Graphviz export of the look-ahead dataflow.
//!
//! ```text
//! cargo run --release --example convergence_plot [grid]
//! ```
//!
//! Writes `target/lookahead.dot` — render with
//! `dot -Tsvg target/lookahead.dot -o lookahead.svg` for the Figure-1
//! dataflow diagram.

use cg_lookahead::cg::baselines::{ChronopoulosGearCg, PipelinedCg};
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::sstep::SStepCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::gen;
use cg_lookahead::sim::builders;
use cg_lookahead::sim::export::{to_dot, DotOptions};
use vr_bench::ascii_semilog;

fn main() {
    let grid: usize = std::env::args()
        .nth(1)
        .map_or(20, |s| s.parse().expect("grid"));
    let a = gen::poisson2d(grid);
    let b = gen::poisson2d_rhs(grid);
    let opts = SolveOptions::default().with_tol(1e-10).with_max_iters(3000);

    let solvers: Vec<Box<dyn CgVariant>> = vec![
        Box::new(StandardCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
        Box::new(LookaheadCg::new(2).with_resync(12)),
        Box::new(SStepCg::chebyshev(8)),
    ];

    println!(
        "convergence on poisson2d {grid}×{grid} (N = {}), tol 1e-10\n",
        a.nrows()
    );
    let mut histories: Vec<(String, Vec<f64>)> = Vec::new();
    for s in &solvers {
        let res = s.solve(&a, &b, None, &opts);
        println!(
            "{:<28} {:>5} iterations   {:?}",
            s.name(),
            res.iterations,
            res.termination
        );
        // subsample long histories so the plot stays terminal-width
        let stride = (res.residual_norms.len() / 60).max(1);
        let ys: Vec<f64> = res.residual_norms.iter().step_by(stride).copied().collect();
        histories.push((s.name(), ys));
    }

    let series: Vec<(&str, &[f64])> = histories
        .iter()
        .map(|(n, ys)| (n.as_str(), ys.as_slice()))
        .collect();
    println!("\n{}", ascii_semilog(&series, 16));

    // Graphviz export of the look-ahead dataflow (2 steady iterations)
    let dag = builders::lookahead_cg(1 << 12, 5, 10, 3);
    let dot = to_dot(
        &dag.graph,
        &DotOptions {
            iter_range: Some((5, 6)),
            cluster_by_iteration: true,
        },
    );
    std::fs::create_dir_all("target").expect("mkdir");
    std::fs::write("target/lookahead.dot", &dot).expect("write dot");
    println!(
        "wrote target/lookahead.dot ({} bytes) — render with graphviz",
        dot.len()
    );
}
