//! Quickstart: solve a 2-D Poisson problem with standard CG and the
//! Van Rosendale look-ahead CG, and show the simulator's parallel-time
//! verdict for both.
//!
//! Run with: `cargo run --release --example quickstart`

use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::gen;
use cg_lookahead::sim::{builders, MachineModel};

fn main() {
    // -- the numeric side: both algorithms produce the same solution --
    let n = 64; // 64×64 grid → 4096 unknowns
    let a = gen::poisson2d(n);
    let b = gen::poisson2d_rhs(n);
    println!(
        "problem: poisson2d {n}×{n} (N = {}, d = {})",
        a.nrows(),
        a.max_row_nnz()
    );

    let opts = SolveOptions::default().with_tol(1e-8);
    let std_res = StandardCg::new().solve(&a, &b, None, &opts);
    println!(
        "standard CG      : {:>4} iterations, true residual {:.2e}",
        std_res.iterations,
        std_res.true_residual(&a, &b)
    );

    let la = LookaheadCg::new(3).with_resync(10);
    let la_res = la.solve(&a, &b, None, &opts);
    println!(
        "look-ahead (k=3) : {:>4} iterations, true residual {:.2e}",
        la_res.iterations,
        la_res.true_residual(&a, &b)
    );

    let dist = cg_lookahead::linalg::kernels::dist2(&std_res.x, &la_res.x);
    println!("‖x_std − x_la‖   : {dist:.2e}  (same iteration, restructured)");

    // -- the parallel side: what the restructuring buys on the paper's
    //    machine (≥ N processors, log-depth summations) --
    let machine = MachineModel::pram();
    let big_n = 1 << 20;
    let std_cycle = builders::standard_cg(big_n, 5, 30).steady_cycle_time(&machine);
    let la_cycle = builders::lookahead_cg(big_n, 5, 30, 20).steady_cycle_time(&machine);
    println!("\non an idealized machine with ≥ N = 2^20 processors:");
    println!("standard CG      : {std_cycle:.1} time units per iteration  (≈ 2·log N)");
    println!(
        "look-ahead k=20  : {la_cycle:.1} time units per iteration  (≈ max(log d, log log N))"
    );
    println!("speedup          : {:.1}×", std_cycle / la_cycle);
}
