//! The paper's Figure 1, two ways:
//!
//! 1. **Simulated**: the earliest-start schedule of the look-ahead task
//!    graph rendered as an ASCII Gantt — inner-product fan-ins of iteration
//!    n stretching under the vector work of iterations n+1..n+k.
//! 2. **Real threads**: `vr_par::PendingScalar` reductions launched at
//!    iteration n and consumed at iteration n+k, on an actual thread pool —
//!    the launch-now/consume-later discipline in running code.
//!
//! Run with: `cargo run --release --example lookahead_pipeline`

use cg_lookahead::par::{PendingScalar, ThreadPool};
use cg_lookahead::sim::render::{gantt, GanttOptions};
use cg_lookahead::sim::{builders, MachineModel};
use std::collections::VecDeque;
use std::sync::Arc;

fn main() {
    // ---- part 1: the simulated Figure 1 ----
    let (n, d, k) = (1usize << 20, 5usize, 4usize);
    let dag = builders::lookahead_cg(n, d, 16, k);
    let m = MachineModel::pram();
    println!("Figure 1 (simulated): look-ahead CG, N = 2^20, d = {d}, k = {k}");
    println!("iterations 8..9 — note the dot fan-ins outliving the vector ops:\n");
    let opts = GanttOptions {
        width: 60,
        iter_range: Some((8, 9)),
        skip_instant: true,
    };
    print!("{}", gantt(&dag.graph, &m, &opts));

    // ---- part 2: launch-now / consume-later on real threads ----
    println!("\nReal pipelined reductions (launch at iteration i, consume at i+{k}):");
    let pool = ThreadPool::with_default_threads();
    let len = 1 << 16;
    let vectors: Vec<Arc<Vec<f64>>> = (0..12)
        .map(|i| {
            Arc::new(
                (0..len)
                    .map(|j| ((i * 31 + j) % 17) as f64 / 17.0)
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();

    let mut in_flight: VecDeque<(usize, PendingScalar)> = VecDeque::new();
    for (i, v) in vectors.iter().enumerate() {
        // launch this iteration's inner product — do NOT wait for it
        in_flight.push_back((
            i,
            PendingScalar::spawn_dot(&pool, Arc::clone(v), Arc::clone(v)),
        ));

        // consume the result launched k iterations ago
        if in_flight.len() > k {
            let (launched_at, pending) = in_flight.pop_front().expect("non-empty");
            let value = pending.wait();
            println!(
                "  iteration {i:2}: consumed (v,v) launched at iteration {launched_at:2} → {value:.3}"
            );
        } else {
            println!(
                "  iteration {i:2}: pipeline filling ({} in flight)",
                in_flight.len()
            );
        }
    }
    // drain
    while let Some((launched_at, pending)) = in_flight.pop_front() {
        let _ = pending.wait();
        println!("  drain      : consumed dot launched at iteration {launched_at:2}");
    }
}
