//! Machine-model playground: per-iteration parallel time of every CG
//! variant under different machine assumptions.
//!
//! Run with:
//! `cargo run --release --example machine_model -- [log2_N] [d] [alpha]`
//! (defaults: 20, 5, 0).

use cg_lookahead::sim::{builders, MachineModel, Procs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let log_n: u32 = args.first().map_or(20, |s| s.parse().expect("log2_N"));
    let d: usize = args.get(1).map_or(5, |s| s.parse().expect("d"));
    let alpha: f64 = args.get(2).map_or(0.0, |s| s.parse().expect("alpha"));

    let n = 1usize << log_n;
    let iters = 40;
    let k = log_n as usize;

    let dags = [
        builders::standard_cg(n, d, iters),
        builders::chronopoulos_gear(n, d, iters),
        builders::pipelined_cg(n, d, iters),
        builders::overlap_k1(n, d, iters),
        builders::lookahead_cg(n, d, iters, k),
    ];

    println!("N = 2^{log_n}, d = {d}, α = {alpha} — per-iteration parallel time\n");
    println!(
        "{:<20} {:>12} {:>14} {:>14} {:>10}",
        "algorithm", "PRAM", "P = 2^16", "P = 2^10", "startup"
    );
    let pram = MachineModel::pram().with_latency(alpha);
    let p16 = MachineModel {
        procs: Procs::Bounded(1 << 16),
        ..pram.clone()
    };
    let p10 = MachineModel {
        procs: Procs::Bounded(1 << 10),
        ..pram.clone()
    };
    for dag in &dags {
        println!(
            "{:<20} {:>12.1} {:>14.1} {:>14.1} {:>10.1}",
            dag.name,
            dag.steady_cycle_time(&pram),
            dag.steady_cycle_time(&p16),
            dag.steady_cycle_time(&p10),
            dag.startup_time(&pram),
        );
    }
    println!(
        "\n(k = {k} for the look-ahead builder; 'startup' is the paper's\n\
         \"initial start up\" before the pipeline fills, in the PRAM model)"
    );
}
