//! Stability sweep: how deep can the look-ahead go before the power-basis
//! moment window gives out, and what resync buys (the E9 story, in an
//! interactive form).
//!
//! Run with: `cargo run --release --example stability_sweep [grid] [tol]`
//! (defaults: grid 24, tol 1e-10).

use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::gen;
use cg_lookahead::linalg::kernels::norm2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let grid: usize = args.first().map_or(24, |s| s.parse().expect("grid"));
    let tol: f64 = args.get(1).map_or(1e-10, |s| s.parse().expect("tol"));

    let a = gen::poisson2d(grid);
    let b = gen::poisson2d_rhs(grid);
    let bn = norm2(&b);
    let opts = SolveOptions::default().with_tol(tol).with_max_iters(3000);

    println!(
        "poisson2d {grid}×{grid}, tol {tol:.0e}; Gershgorin bound ‖A‖ ≤ {:.1}\n",
        a.gershgorin_bound()
    );
    println!(
        "{:<30} {:>6} {:>9} {:>9} {:>14}",
        "solver", "iters", "restarts", "status", "rel true resid"
    );

    let report = |s: &dyn CgVariant| {
        let res = s.solve(&a, &b, None, &opts);
        println!(
            "{:<30} {:>6} {:>9} {:>9} {:>14.2e}",
            s.name(),
            res.iterations,
            res.counts.restarts,
            if res.converged { "ok" } else { "stalled" },
            res.true_residual(&a, &b) / bn
        );
    };

    report(&StandardCg::new());
    println!("--- no resynchronization (pure recurrences) ---");
    for k in [1usize, 2, 3, 4, 6, 8, 10] {
        report(&LookaheadCg::new(k));
    }
    println!("--- resync every 10 iterations ---");
    for k in [2usize, 4, 8, 10] {
        report(&LookaheadCg::new(k).with_resync(10));
    }
}
