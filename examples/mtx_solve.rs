//! Solve a Matrix Market system end-to-end: load (or generate) an SPD
//! `.mtx` file, optionally RCM-reorder it, estimate its spectrum with
//! Lanczos, and run the solver gauntlet.
//!
//! ```text
//! cargo run --release --example mtx_solve -- [path.mtx] [--rcm]
//! ```
//!
//! With no path, a demo matrix (anisotropic 2-D diffusion, shuffled to
//! destroy the banded ordering) is written to `target/demo.mtx` first, so
//! the example is runnable out of the box.

use cg_lookahead::cg::baselines::PrecondCg;
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::sstep::SStepCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::eig;
use cg_lookahead::linalg::precond::Ic0;
use cg_lookahead::linalg::reorder::{bandwidth, reverse_cuthill_mckee, Permutation};
use cg_lookahead::linalg::{gen, io, CsrMatrix};

fn demo_matrix() -> std::path::PathBuf {
    let path = std::path::PathBuf::from("target/demo.mtx");
    if !path.exists() {
        std::fs::create_dir_all("target").expect("mkdir target");
        // shuffled anisotropic problem: realistic and badly ordered
        let a = gen::anisotropic2d(24, 0.1);
        let n = a.nrows();
        let mut rng = gen::XorShift64::new(2024);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.below(i + 1);
            idx.swap(i, j);
        }
        let shuffled = Permutation::from_vec(idx).apply_matrix(&a);
        io::write_matrix_market_file(&shuffled, &path).expect("write demo.mtx");
        println!("wrote demo matrix to {}", path.display());
    }
    path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let use_rcm = args.iter().any(|a| a == "--rcm");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or_else(demo_matrix, std::path::PathBuf::from);

    let a: CsrMatrix = io::read_matrix_market_file(&path).expect("read .mtx");
    println!(
        "loaded {}: N = {}, nnz = {}, d = {}, bandwidth = {}",
        path.display(),
        a.nrows(),
        a.nnz(),
        a.max_row_nnz(),
        bandwidth(&a)
    );
    assert!(a.is_symmetric(1e-12), "matrix must be symmetric for CG");

    // optional RCM reordering (recommended for IC(0))
    let (a, perm) = if use_rcm {
        let p = reverse_cuthill_mckee(&a);
        let b = p.apply_matrix(&a);
        println!("RCM: bandwidth {} → {}", bandwidth(&a), bandwidth(&b));
        (b, Some(p))
    } else {
        (a, None)
    };

    // spectral probe
    let bounds = eig::estimate_spectrum(&a, 30, 7);
    println!(
        "Lanczos(30): λ ∈ [{:.4}, {:.4}], κ ≈ {:.1} ⇒ CG needs ~{:.0} iterations per digit",
        bounds.lambda_min,
        bounds.lambda_max,
        bounds.condition(),
        bounds.condition().sqrt() * (10.0_f64).ln() / 2.0
    );

    let b = gen::rand_vector(a.nrows(), 7);
    let opts = SolveOptions::default()
        .with_tol(1e-9)
        .with_max_iters(20_000);
    let solvers: Vec<Box<dyn CgVariant>> = vec![
        Box::new(StandardCg::new()),
        Box::new(LookaheadCg::new(2).with_resync(12)),
        Box::new(SStepCg::chebyshev(8)),
        Box::new(PrecondCg::new(
            Ic0::new(&a).expect("IC(0) on an SPD M-matrix"),
            "pcg-ic0",
        )),
    ];
    println!(
        "\n{:<26} {:>7} {:>12} {:>9}",
        "solver", "iters", "true resid", "status"
    );
    for s in solvers {
        let res = s.solve(&a, &b, None, &opts);
        println!(
            "{:<26} {:>7} {:>12.2e} {:>9}",
            s.name(),
            res.iterations,
            res.true_residual(&a, &b),
            format!("{:?}", res.termination)
        );
    }

    if let Some(p) = perm {
        // demonstrate mapping a solution back to the original ordering
        let x = vec![0.0; p.len()];
        let _back = p.unapply_vec(&x);
        println!("\n(solutions map back to the original ordering via Permutation::unapply_vec)");
    }
}
