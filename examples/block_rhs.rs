//! Block CG: many right-hand sides at once — the spatial dual of the
//! paper's temporal look-ahead.
//!
//! ```text
//! cargo run --release --example block_rhs [grid] [nrhs]
//! ```

use cg_lookahead::cg::block::BlockCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::gen;
use cg_lookahead::linalg::kernels::norm2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let grid: usize = args.first().map_or(24, |s| s.parse().expect("grid"));
    let nrhs: usize = args.get(1).map_or(6, |s| s.parse().expect("nrhs"));

    let a = gen::poisson2d(grid);
    let n = a.nrows();
    let bs: Vec<Vec<f64>> = (0..nrhs)
        .map(|k| gen::rand_vector(n, 1000 + k as u64))
        .collect();
    let opts = SolveOptions::default().with_tol(1e-9).with_max_iters(4000);

    println!("poisson2d {grid}×{grid} (N = {n}), {nrhs} right-hand sides, tol 1e-9\n");

    // one-at-a-time standard CG
    let t0 = std::time::Instant::now();
    let mut total_single_iters = 0;
    for b in &bs {
        let res = StandardCg::new().solve(&a, b, None, &opts);
        assert!(res.converged);
        total_single_iters += res.iterations;
    }
    let t_single = t0.elapsed();

    // block CG
    let t0 = std::time::Instant::now();
    let block = BlockCg::new().solve(&a, &bs, &opts);
    let t_block = t0.elapsed();
    assert!(block.converged, "{:?}", block.termination);

    for (j, b) in bs.iter().enumerate() {
        let ax = a.spmv(&block.x[j]);
        let mut r = vec![0.0; n];
        cg_lookahead::linalg::kernels::sub(b, &ax, &mut r);
        assert!(norm2(&r) < 1e-6 * norm2(b), "column {j}");
    }

    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "method", "iterations", "reductions", "wall time"
    );
    println!(
        "{:<22} {:>10} {:>14} {:>9.1} ms",
        format!("standard CG ×{nrhs}"),
        total_single_iters,
        total_single_iters * 2,
        t_single.as_secs_f64() * 1e3
    );
    // block: ~3 batched reductions per block iteration, independent of s
    println!(
        "{:<22} {:>10} {:>14} {:>9.1} ms",
        "block CG",
        block.iterations,
        block.iterations * 3,
        t_block.as_secs_f64() * 1e3
    );
    println!(
        "\nblock Krylov: {} block iterations replace {} single iterations;\n\
         every block iteration pays for its {}²-dot Gram work with ONE\n\
         reduction latency — amortization across space instead of the\n\
         paper's amortization across time.",
        block.iterations, total_single_iters, nrhs
    );
}
