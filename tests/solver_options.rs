//! Option-path coverage across the whole solver family: every `SolveOptions`
//! combination must behave identically in outcome, differing only in what
//! gets recorded.

use cg_lookahead::cg::baselines::{
    ChebyshevIteration, ChronopoulosGearCg, ConjugateResidual, OverlapCr, PipelinedCg, ThreeTermCg,
};
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::overlap_k1::OverlapK1Cg;
use cg_lookahead::cg::sstep::SStepCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::gen;
use cg_lookahead::linalg::kernels::DotMode;

fn all_solvers() -> Vec<Box<dyn CgVariant>> {
    vec![
        Box::new(StandardCg::new()),
        Box::new(ThreeTermCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
        Box::new(ConjugateResidual::new()),
        Box::new(OverlapCr::new()),
        Box::new(OverlapK1Cg::new().with_resync(20)),
        Box::new(LookaheadCg::new(2).with_resync(12)),
        Box::new(SStepCg::monomial(3)),
        Box::new(SStepCg::chebyshev(3)),
        Box::new(ChebyshevIteration::auto()),
    ]
}

#[test]
fn record_residuals_off_changes_history_not_solution() {
    let a = gen::poisson2d(10);
    let b = gen::poisson2d_rhs(10);
    for s in all_solvers() {
        let on = SolveOptions::default().with_tol(1e-7);
        let off = SolveOptions {
            record_residuals: false,
            ..on.clone()
        };
        let r_on = s.solve(&a, &b, None, &on);
        let r_off = s.solve(&a, &b, None, &off);
        assert!(r_on.converged && r_off.converged, "{}", s.name());
        assert_eq!(r_on.iterations, r_off.iterations, "{}", s.name());
        assert!(r_on.residual_norms.len() > 1, "{}", s.name());
        assert_eq!(r_off.residual_norms.len(), 1, "{}", s.name());
        assert_eq!(r_on.x, r_off.x, "{}: deterministic solvers", s.name());
    }
}

#[test]
fn max_iters_zero_terminates_immediately() {
    let a = gen::poisson2d(8);
    let b = gen::poisson2d_rhs(8);
    let opts = SolveOptions::default().with_max_iters(0);
    for s in all_solvers() {
        let res = s.solve(&a, &b, None, &opts);
        assert!(!res.converged, "{}", s.name());
        assert_eq!(res.iterations, 0, "{}", s.name());
    }
}

#[test]
fn every_solver_reports_op_counts() {
    let a = gen::poisson2d(8);
    let b = gen::poisson2d_rhs(8);
    let opts = SolveOptions::default().with_tol(1e-6);
    for s in all_solvers() {
        let res = s.solve(&a, &b, None, &opts);
        assert!(res.converged, "{}", s.name());
        assert!(res.counts.matvecs > 0, "{}: matvecs", s.name());
        assert!(res.counts.vector_ops > 0, "{}: vector ops", s.name());
    }
}

#[test]
fn dot_modes_converge_for_every_solver() {
    let a = gen::poisson2d(8);
    let b = gen::poisson2d_rhs(8);
    for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
        let opts = SolveOptions::default().with_tol(1e-7).with_dot_mode(mode);
        for s in all_solvers() {
            let res = s.solve(&a, &b, None, &opts);
            assert!(res.converged, "{} with {mode:?}", s.name());
            assert!(
                res.true_residual(&a, &b) < 1e-4,
                "{} with {mode:?}",
                s.name()
            );
        }
    }
}

#[test]
fn loose_tolerance_means_fewer_iterations() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    for s in all_solvers() {
        // 1e-6 is within every variant's attainable accuracy (see E9 for
        // why the recurrence-based solvers stagnate near √ε without resync)
        let tight = s.solve(&a, &b, None, &SolveOptions::default().with_tol(1e-6));
        let loose = s.solve(&a, &b, None, &SolveOptions::default().with_tol(1e-3));
        assert!(tight.converged && loose.converged, "{}", s.name());
        assert!(
            loose.iterations <= tight.iterations,
            "{}: loose {} > tight {}",
            s.name(),
            loose.iterations,
            tight.iterations
        );
    }
}

#[test]
fn matrix_free_operator_works_for_every_solver() {
    use cg_lookahead::linalg::stencil::Stencil2d;
    let op = Stencil2d::poisson(10);
    let csr = gen::poisson2d(10);
    let b = gen::poisson2d_rhs(10);
    let opts = SolveOptions::default().with_tol(1e-7);
    for s in all_solvers() {
        let res = s.solve(&op, &b, None, &opts);
        assert!(res.converged, "{} matrix-free", s.name());
        assert!(res.true_residual(&csr, &b) < 1e-4, "{}", s.name());
    }
}

#[test]
fn serial_and_kahan_modes_are_thread_count_invariant() {
    // Regression for the `threads >= 2` dispatch bug: a requested Serial or
    // Kahan summation order must never silently become the chunked tree
    // when a team is attached. The team may move work across shards, but
    // the reduction the caller asked for — and therefore every bit of the
    // trace — has to stay exactly what a single-threaded solve produces.
    let a = gen::poisson2d(24);
    let b = gen::poisson2d_rhs(24);
    for mode in [DotMode::Serial, DotMode::Kahan] {
        let base = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(600)
            .with_dot_mode(mode);
        for s in all_solvers() {
            let one = s.solve(&a, &b, None, &base.clone().with_threads(1));
            let four = s.solve(&a, &b, None, &base.clone().with_threads(4));
            assert_eq!(
                one.iterations,
                four.iterations,
                "{} with {mode:?}",
                s.name()
            );
            assert_eq!(one.x, four.x, "{} with {mode:?}: x bits", s.name());
            assert_eq!(
                one.residual_norms,
                four.residual_norms,
                "{} with {mode:?}: trace bits",
                s.name()
            );
        }
    }
}

#[test]
fn tree_mode_traces_are_bit_identical_across_team_widths() {
    // The tentpole determinism claim: with `DotMode::Tree` the fixed
    // 256-chunk leaf layout and deterministic tree fan-in make every
    // reduction — and therefore whole solver traces — bit-identical for
    // any team width. 182² = 33124 ≥ 4·GRAIN, so a width-4 team genuinely
    // dispatches multi-shard epochs instead of degenerating to the caller.
    let a = gen::poisson2d(182);
    let b = gen::poisson2d_rhs(182);
    let solvers: Vec<Box<dyn CgVariant>> = vec![
        Box::new(StandardCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
        Box::new(OverlapK1Cg::new().with_resync(20)),
        Box::new(LookaheadCg::new(2).with_resync(12)),
    ];
    let base = SolveOptions::default()
        .with_tol(0.0)
        .with_max_iters(20)
        .with_dot_mode(DotMode::Tree);
    for s in solvers {
        let reference = s.solve(&a, &b, None, &base.clone().with_threads(1));
        for threads in [2usize, 4, 8] {
            let res = s.solve(&a, &b, None, &base.clone().with_threads(threads));
            assert_eq!(
                reference.iterations,
                res.iterations,
                "{} threads={threads}",
                s.name()
            );
            assert_eq!(
                reference.residual_norms,
                res.residual_norms,
                "{} threads={threads}: trace bits",
                s.name()
            );
            assert_eq!(reference.x, res.x, "{} threads={threads}: x bits", s.name());
        }
    }
}

#[test]
fn with_threads_clamps_to_host_parallelism_and_records_it() {
    use cg_lookahead::cg::solver::{host_cpus, ThreadClamp};
    use cg_lookahead::par::Team;
    use std::sync::Arc;

    let cpus = host_cpus();

    // An over-ask is clamped, never oversubscribed, and the clamp is
    // recorded rather than silent.
    let over = cpus + 7;
    let o = SolveOptions::default().with_threads(over);
    assert_eq!(o.threads, cpus);
    assert_eq!(
        o.thread_clamp,
        Some(ThreadClamp {
            requested: over,
            granted: cpus
        })
    );

    // A satisfiable request records nothing.
    let ok = SolveOptions::default().with_threads(1);
    assert_eq!(ok.threads, 1);
    assert_eq!(ok.thread_clamp, None);
    // threads=0 is treated as 1, also unclamped
    assert_eq!(SolveOptions::default().with_threads(0).threads, 1);

    // An explicit team bypasses the clamp entirely — the caller owns the
    // width choice (failover tests need widths the host doesn't have) —
    // and clears any stale clamp record.
    let wide = o.with_team(Arc::new(Team::new(cpus + 3)));
    assert_eq!(wide.threads, cpus + 3);
    assert_eq!(wide.thread_clamp, None);
}

#[test]
fn solvers_are_deterministic_across_runs() {
    let a = gen::rand_spd(40, 4, 1.5, 5);
    let b = gen::rand_vector(40, 6);
    let opts = SolveOptions::default().with_tol(1e-9);
    for s in all_solvers() {
        let r1 = s.solve(&a, &b, None, &opts);
        let r2 = s.solve(&a, &b, None, &opts);
        assert_eq!(r1.iterations, r2.iterations, "{}", s.name());
        assert_eq!(r1.x, r2.x, "{}: bit-identical reruns", s.name());
    }
}
