//! Differential harness for the fused single-pass kernels (`KernelPolicy`).
//!
//! The contract under test: for every solver variant and every
//! configuration (dot mode × thread count), the `Fused` kernel policy
//! produces **exactly the bits** of the `Reference` two-pass policy —
//! same iteration count, same termination, same residual-norm sequence,
//! same solution vector. Under the order-preserving summation modes
//! (Serial, Tree) this is asserted bitwise; in Kahan mode the issue
//! contract only promises 1e-14 relative agreement, which we check (the
//! implementation happens to be bitwise there too, but the looser bound
//! is the API promise).
//!
//! The kernel-level cross-checks (fused vs two-pass composition on
//! random and adversarial inputs) and the aliasing regression live here
//! as well so the whole fused surface is locked down by one suite.

use cg_lookahead::cg::baselines::{ChronopoulosGearCg, PipelinedCg, PrecondCg, ThreeTermCg};
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::overlap_k1::OverlapK1Cg;
use cg_lookahead::cg::sstep::SStepCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, KernelPolicy, SolveOptions, SolveResult};
use cg_lookahead::linalg::kernels::{self, DotMode};
use cg_lookahead::linalg::precond::Jacobi;
use cg_lookahead::linalg::stencil::Stencil2d;
use cg_lookahead::linalg::{fused, gen, CsrMatrix};

/// The eight variants the fused policy is adopted by.
fn all_variants(a: &CsrMatrix) -> Vec<Box<dyn CgVariant>> {
    vec![
        Box::new(StandardCg::new()),
        Box::new(OverlapK1Cg::new().with_resync(20)),
        Box::new(LookaheadCg::new(2).with_resync(12)),
        Box::new(SStepCg::monomial(3)),
        Box::new(ThreeTermCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
        Box::new(PrecondCg::new(Jacobi::new(a).unwrap(), "pcg-jacobi")),
    ]
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(r: &SolveResult, f: &SolveResult, ctx: &str) {
    assert_eq!(r.termination, f.termination, "{ctx}: termination");
    assert_eq!(r.iterations, f.iterations, "{ctx}: iterations");
    assert_eq!(
        bits(&r.residual_norms),
        bits(&f.residual_norms),
        "{ctx}: residual-norm scalar sequence"
    );
    assert_eq!(bits(&r.x), bits(&f.x), "{ctx}: solution vector");
}

#[test]
fn every_variant_bit_identical_under_order_preserving_summation() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    for mode in [DotMode::Serial, DotMode::Tree] {
        for threads in [1usize, 4] {
            for s in all_variants(&a) {
                let base = SolveOptions::default()
                    .with_tol(1e-8)
                    .with_dot_mode(mode)
                    .with_threads(threads);
                let reference = s.solve(
                    &a,
                    &b,
                    None,
                    &base.clone().with_kernel_policy(KernelPolicy::Reference),
                );
                let fused = s.solve(&a, &b, None, &base.with_kernel_policy(KernelPolicy::Fused));
                let ctx = format!("{} / {mode:?} / threads={threads}", s.name());
                assert_bit_identical(&reference, &fused, &ctx);
                assert!(reference.converged, "{ctx}: converged");
            }
        }
    }
}

#[test]
fn every_variant_agrees_to_1e14_in_kahan_mode() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    for threads in [1usize, 4] {
        for s in all_variants(&a) {
            let base = SolveOptions::default()
                .with_tol(1e-8)
                .with_dot_mode(DotMode::Kahan)
                .with_threads(threads);
            let reference = s.solve(
                &a,
                &b,
                None,
                &base.clone().with_kernel_policy(KernelPolicy::Reference),
            );
            let fused = s.solve(&a, &b, None, &base.with_kernel_policy(KernelPolicy::Fused));
            let ctx = format!("{} / Kahan / threads={threads}", s.name());
            assert_eq!(reference.iterations, fused.iterations, "{ctx}");
            for (i, (r, f)) in reference
                .residual_norms
                .iter()
                .zip(&fused.residual_norms)
                .enumerate()
            {
                assert!(
                    (r - f).abs() <= 1e-14 * (1.0 + r.abs()),
                    "{ctx}: norm[{i}] {r} vs {f}"
                );
            }
            for (i, (r, f)) in reference.x.iter().zip(&fused.x).enumerate() {
                assert!(
                    (r - f).abs() <= 1e-14 * (1.0 + r.abs()),
                    "{ctx}: x[{i}] {r} vs {f}"
                );
            }
        }
    }
}

#[test]
fn fused_ops_are_tallied_and_reference_work_is_preserved() {
    // The fused policy must not change the *logical* operation counts —
    // a fused kernel reports the same matvec/dot/vector-op tallies as its
    // two-pass composition, plus a nonzero fused_ops tally of its own.
    let a = gen::poisson2d(10);
    let b = gen::poisson2d_rhs(10);
    for s in all_variants(&a) {
        let base = SolveOptions::default().with_tol(1e-8);
        let reference = s.solve(
            &a,
            &b,
            None,
            &base.clone().with_kernel_policy(KernelPolicy::Reference),
        );
        let fused = s.solve(&a, &b, None, &base.with_kernel_policy(KernelPolicy::Fused));
        let name = s.name();
        assert_eq!(reference.counts.matvecs, fused.counts.matvecs, "{name}");
        assert_eq!(reference.counts.dots, fused.counts.dots, "{name}");
        assert_eq!(
            reference.counts.vector_ops, fused.counts.vector_ops,
            "{name}"
        );
        assert_eq!(reference.counts.fused_ops, 0, "{name}: reference fused");
        assert!(fused.counts.fused_ops > 0, "{name}: fused tally");
    }
}

#[test]
fn standard_cg_bit_matches_reference_on_stencil() {
    // On a matrix-free stencil the fused policy runs the branch-free
    // row-sweep kernels (apply_dot + fused update_xr) — the very code the
    // E16 headline measures. It must still be bit-for-bit the reference CG.
    let op = Stencil2d::poisson(24);
    let b = gen::rand_vector(24 * 24, 7);
    for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
        let base = SolveOptions::default().with_tol(1e-8).with_dot_mode(mode);
        let s = StandardCg::new();
        let reference = s.solve(
            &op,
            &b,
            None,
            &base.clone().with_kernel_policy(KernelPolicy::Reference),
        );
        let fused = s.solve(&op, &b, None, &base.with_kernel_policy(KernelPolicy::Fused));
        let ctx = format!("standard-cg stencil / {mode:?}");
        assert_bit_identical(&reference, &fused, &ctx);
        assert!(fused.counts.fused_ops > 0, "{ctx}: fused tally");
    }
}

#[test]
fn nostore_kernels_bit_match_two_pass_composition_on_all_operators() {
    // The operator-level no-store kernels (never materializing w = A·p)
    // are kept as API for bandwidth-bound targets even though the solvers
    // prefer the with-w fused schedule on compute-bound cores. Lock down
    // their bit contract against the two-pass composition directly, on
    // every operator family that implements them: both stencil dims and
    // general CSR (structured and random sparsity).
    use cg_lookahead::linalg::stencil::Stencil3d;
    use cg_lookahead::linalg::LinearOperator;
    let ops: Vec<Box<dyn LinearOperator>> = vec![
        Box::new(Stencil2d::poisson(17)),
        Box::new(Stencil2d::anisotropic(5, 31, 0.25)),
        Box::new(Stencil2d::anisotropic(31, 5, 4.0)),
        Box::new(Stencil3d::new(9)),
        Box::new(gen::poisson2d(19)),
        Box::new(gen::rand_spd(300, 7, 4.0, 21)),
    ];
    for op in &ops {
        let n = op.dim();
        let p = pseudo(n, 11);
        for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
            let mut w = vec![0.0; n];
            op.apply(&p, &mut w);
            let pap = op
                .apply_dot_nostore(mode, &p)
                .expect("operator supports no-store apply_dot");
            assert_eq!(
                pap.to_bits(),
                kernels::dot(mode, &w, &p).to_bits(),
                "{mode:?}: apply_dot_nostore"
            );

            let lambda = 0.41;
            let mut x1 = pseudo(n, 12);
            let mut r1 = pseudo(n, 13);
            let mut x2 = x1.clone();
            let mut r2 = r1.clone();
            let rr = op
                .fused_update_xr(mode, lambda, &p, &mut x1, &mut r1)
                .expect("operator supports fused update_xr");
            kernels::axpy(lambda, &p, &mut x2);
            kernels::axpy(-lambda, &w, &mut r2);
            assert_eq!(bits(&x1), bits(&x2), "{mode:?}: fused_update_xr x");
            assert_eq!(bits(&r1), bits(&r2), "{mode:?}: fused_update_xr r");
            assert_eq!(
                rr.to_bits(),
                kernels::dot(mode, &r2, &r2).to_bits(),
                "{mode:?}: fused_update_xr rr"
            );
        }
    }
}

// ---------------------------------------------------------------------
// kernel-level cross-checks: fused vs two-pass composition
// ---------------------------------------------------------------------

/// Deterministic pseudo-random vector (xorshift64*).
fn pseudo(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Adversarial magnitudes: huge, tiny, and mixed-sign entries that make
/// naive summation lose everything — exactly where "same bits" matters.
fn adversarial(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match i % 5 {
            0 => 1e300,
            1 => -1e300,
            2 => 1e-300,
            3 => -3.5,
            _ => 1e8,
        })
        .collect()
}

#[test]
fn fused_kernels_match_two_pass_composition_elementwise() {
    for inputs in [
        (pseudo(257, 1), pseudo(257, 2), pseudo(257, 3)),
        (adversarial(64), pseudo(64, 4), adversarial(64)),
    ] {
        let (p, w, seed) = inputs;
        let n = p.len();
        for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
            // update_xr vs axpy; axpy; dot
            let lambda = 0.37;
            let mut x1 = seed.clone();
            let mut r1 = pseudo(n, 9);
            let mut x2 = x1.clone();
            let mut r2 = r1.clone();
            let rr = fused::update_xr(mode, lambda, &p, &w, &mut x1, &mut r1);
            kernels::axpy(lambda, &p, &mut x2);
            kernels::axpy(-lambda, &w, &mut r2);
            assert_eq!(bits(&x1), bits(&x2), "{mode:?}: update_xr x");
            assert_eq!(bits(&r1), bits(&r2), "{mode:?}: update_xr r");
            assert_eq!(
                rr.to_bits(),
                kernels::dot(mode, &r2, &r2).to_bits(),
                "{mode:?}: update_xr rr"
            );

            // axpy_norm2_sq vs axpy; dot
            let mut y1 = r1.clone();
            let mut y2 = y1.clone();
            let s1 = fused::axpy_norm2_sq(mode, -lambda, &w, &mut y1);
            kernels::axpy(-lambda, &w, &mut y2);
            assert_eq!(bits(&y1), bits(&y2), "{mode:?}: axpy_norm2_sq y");
            assert_eq!(
                s1.to_bits(),
                kernels::dot(mode, &y2, &y2).to_bits(),
                "{mode:?}: axpy_norm2_sq sum"
            );

            // axpy_dot vs axpy; dot
            let mut y1 = x1.clone();
            let mut y2 = y1.clone();
            let d1 = fused::axpy_dot(mode, 1.5, &p, &mut y1, &w);
            kernels::axpy(1.5, &p, &mut y2);
            assert_eq!(bits(&y1), bits(&y2), "{mode:?}: axpy_dot y");
            assert_eq!(
                d1.to_bits(),
                kernels::dot(mode, &y2, &w).to_bits(),
                "{mode:?}: axpy_dot sum"
            );

            // dot2 vs two separate dots
            let (d_a, d_b) = fused::dot2(mode, &p, &w, &r1);
            assert_eq!(d_a.to_bits(), kernels::dot(mode, &p, &w).to_bits());
            assert_eq!(d_b.to_bits(), kernels::dot(mode, &p, &r1).to_bits());
        }
    }
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "x aliases r")]
fn update_xr_rejects_aliased_x_and_r_in_debug_builds() {
    // Regression: fused update_xr writes x and r in the same sweep; if a
    // caller hands it the same buffer twice the result is silently wrong.
    // The debug aliasing guard must catch it.
    let p = vec![1.0; 16];
    let w = vec![1.0; 16];
    let mut buf = vec![0.5; 16];
    let ptr = buf.as_mut_ptr();
    let len = buf.len();
    // Deliberately construct the aliasing view the guard exists to reject.
    let x = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
    let r = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
    let _ = fused::update_xr(DotMode::Serial, 0.25, &p, &w, x, r);
}
