//! Integration: the simulator reproduces the paper's complexity claims as
//! *shapes* (who wins, by what factor, where crossovers fall).

use cg_lookahead::sim::{builders, MachineModel, Procs};

const ITERS: usize = 40;
const D: usize = 5;

#[test]
fn claim_c1_standard_cg_is_theta_log_n() {
    let m = MachineModel::pram();
    let mut prev = 0.0;
    for log_n in [8u32, 12, 16, 20] {
        let t = builders::standard_cg(1 << log_n, D, ITERS).steady_cycle_time(&m);
        if prev > 0.0 {
            // exactly 2 units per doubling-of-exponent step of 4 ⇒ +8
            let delta = t - prev;
            assert!((delta - 8.0).abs() < 1.0, "Δcycle {delta} per 4 log-steps");
        }
        prev = t;
    }
}

#[test]
fn claim_c2_overlap_speedup_increases_toward_two() {
    let m = MachineModel::pram();
    let speedup = |log_n: u32| {
        let s = builders::standard_cg(1 << log_n, D, ITERS).steady_cycle_time(&m);
        let o = builders::overlap_k1(1 << log_n, D, ITERS).steady_cycle_time(&m);
        s / o
    };
    let s12 = speedup(12);
    let s24 = speedup(24);
    assert!(s24 > s12, "speedup not increasing: {s12} then {s24}");
    assert!(s24 > 1.7 && s24 < 2.05, "speedup {s24} off the ≈2 claim");
}

#[test]
fn claim_c5_lookahead_is_loglog_plus_logd() {
    let m = MachineModel::pram();
    // at fixed d, the cycle with k = log N grows like log k = log log N:
    // from N=2^8 to N=2^24, log log N grows by 1.58 — cycle growth must be
    // small compared to the 32-unit growth of standard CG.
    let t8 = builders::lookahead_cg(1 << 8, D, ITERS, 8).steady_cycle_time(&m);
    let t24 = builders::lookahead_cg(1 << 24, D, ITERS, 24).steady_cycle_time(&m);
    assert!(t24 - t8 <= 3.0, "look-ahead growth {} too fast", t24 - t8);
    let s8 = builders::standard_cg(1 << 8, D, ITERS).steady_cycle_time(&m);
    let s24 = builders::standard_cg(1 << 24, D, ITERS).steady_cycle_time(&m);
    assert!(s24 - s8 >= 30.0);
}

#[test]
fn lookahead_beats_all_baselines_at_scale() {
    let m = MachineModel::pram();
    let n = 1 << 22;
    let la = builders::lookahead_cg(n, D, ITERS, 22).steady_cycle_time(&m);
    for (name, t) in [
        (
            "standard",
            builders::standard_cg(n, D, ITERS).steady_cycle_time(&m),
        ),
        (
            "chrono",
            builders::chronopoulos_gear(n, D, ITERS).steady_cycle_time(&m),
        ),
        (
            "pipelined",
            builders::pipelined_cg(n, D, ITERS).steady_cycle_time(&m),
        ),
        (
            "overlap",
            builders::overlap_k1(n, D, ITERS).steady_cycle_time(&m),
        ),
    ] {
        assert!(la < t, "lookahead {la} !< {name} {t}");
    }
}

#[test]
fn startup_cost_grows_with_k() {
    // the paper: "After an initial start up..." — the pipeline-fill cost
    // grows with k (k extra serialized SpMVs to build the vector families).
    // Measure the completion time of the FIRST iteration, which contains
    // the start-up; it must increase from shallow to deep look-ahead.
    // The solution-update milestones are gated only by λ and p, so the
    // right startup proxy is the pipeline-fill overhead: how far the
    // early milestones lag behind a pure steady-state extrapolation.
    let m = MachineModel::pram();
    let s = |k: usize| builders::lookahead_cg(1 << 16, D, 24, k).startup_time(&m);
    let (s2, s16) = (s(2), s(16));
    assert!(
        s16 > s2,
        "pipeline-fill overhead should grow with k: {s2} vs {s16}"
    );
    assert!(s2 > 0.0, "startup must be positive even for shallow k");
}

#[test]
fn work_accounting_matches_the_star_formulation() {
    // The DAG builder models the paper's §4-5 formulation (*): ALL
    // 3(2k+1) moment inner products are launched each iteration, so its
    // sequential work is Θ(k·n) per iteration. (The §5 moment-window
    // refinement implemented by the numeric solver brings the direct dots
    // down to 3/iteration — claim C4 — which E4 measures; the DAG keeps
    // the published dataflow.) Check the k-scaling is as modeled and
    // bounded by the dot inventory.
    let m = MachineModel::bounded(1);
    let n = 1 << 12;
    let k = 12;
    let std_t = builders::standard_cg(n, D, ITERS).graph.total_work(&m);
    let la_t = builders::lookahead_cg(n, D, ITERS, k).graph.total_work(&m);
    let factor = la_t / std_t;
    // per iteration: lookahead ≈ 3(2k+1) dots + 2(k+1) vector updates +
    // 1 spmv vs standard ≈ 2 dots + 3 updates + 1 spmv
    let upper = (3 * (2 * k + 1)) as f64;
    assert!(
        factor > 2.0 && factor < upper,
        "sequential factor {factor} outside (2, {upper})"
    );
}

#[test]
fn latency_sensitivity_ordering() {
    // With large per-hop latency, variants order by reductions on the
    // critical cycle: standard (2) > chrono/overlap (1) > pipelined
    // (1, hidden) > lookahead (1/k).
    let m = MachineModel::pram().with_latency(32.0);
    let n = 1 << 20;
    let std_t = builders::standard_cg(n, D, ITERS).steady_cycle_time(&m);
    let cg2 = builders::chronopoulos_gear(n, D, ITERS).steady_cycle_time(&m);
    let pipe = builders::pipelined_cg(n, D, ITERS).steady_cycle_time(&m);
    let la = builders::lookahead_cg(n, D, ITERS, 20).steady_cycle_time(&m);
    assert!(std_t > cg2, "{std_t} !> {cg2}");
    assert!(cg2 > pipe, "{cg2} !> {pipe}");
    assert!(pipe > la, "{pipe} !> {la}");
    assert!(std_t / la > 4.0, "latency advantage only {}", std_t / la);
}

#[test]
fn quaternary_fanin_shrinks_all_cycles() {
    // sanity of the machine abstraction: 4-ary reduction trees halve the
    // fan-in depth, which must shorten reduction-bound cycles
    let bin = MachineModel::pram();
    let quad = MachineModel {
        reduce_arity: 4,
        ..MachineModel::pram()
    };
    let n = 1 << 20;
    let t_bin = builders::standard_cg(n, D, ITERS).steady_cycle_time(&bin);
    let t_quad = builders::standard_cg(n, D, ITERS).steady_cycle_time(&quad);
    assert!(t_quad < t_bin, "{t_quad} !< {t_bin}");
}

#[test]
fn bounded_machines_respect_brent_bounds() {
    // estimate_time must sit between work/P and work/P + span for any P
    let n = 1 << 14;
    let dag = builders::standard_cg(n, D, 8);
    let pram = MachineModel::pram();
    let span = dag.graph.makespan(&pram);
    for p in [1usize, 16, 1 << 10, 1 << 14] {
        let m = MachineModel::bounded(p);
        let work = dag.graph.total_work(&m);
        let t = dag.graph.estimate_time(&m);
        assert!(t + 1e-9 >= work / p as f64, "P={p}: {t} < work/P");
        assert!(
            t <= work / p as f64 + span * 2.0,
            "P={p}: {t} above Brent-style bound"
        );
    }
    let _ = Procs::Unbounded; // re-exported type is part of the public API
}
