//! Zero-allocation-per-iteration contract for the solver hot paths.
//!
//! A counting global allocator wraps [`System`] and tallies every
//! `alloc`/`realloc`/`alloc_zeroed`. Each variant is solved twice on the
//! same system with `tol = 0.0` (so both runs terminate on
//! `MaxIterations`) at two different iteration budgets; since setup,
//! warm-up, and teardown are identical, the extra iterations of the
//! longer run must contribute **zero** allocations for the two tallies to
//! match.
//!
//! Everything runs in ONE `#[test]` function: the counter is global, and
//! cargo's default parallel test runner would otherwise interleave
//! allocations from unrelated tests into the window being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vr_cg::lookahead::LookaheadCg;
use vr_cg::sstep::SStepCg;
use vr_cg::standard::StandardCg;
use vr_cg::{BasisEngine, CgVariant, SolveOptions, Termination};
use vr_linalg::gen;
use vr_linalg::kernels::DotMode;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn opts(max_iters: usize, engine: BasisEngine) -> SolveOptions {
    let mut o = SolveOptions::default()
        .with_tol(0.0) // never converges → exact MaxIterations run
        .with_max_iters(max_iters)
        .with_dot_mode(DotMode::Serial)
        .with_threads(1)
        .with_basis_engine(engine);
    o.record_residuals = false; // norms Vec must not grow with iterations
    o
}

/// Allocation calls issued by one full solve at the given budget.
///
/// An untimed warm-up solve first absorbs process-level lazy
/// initialization (fmt machinery, thread-locals) that would otherwise be
/// charged to whichever configuration happens to run first. The
/// measurement is then the minimum over a few repeats: solver allocation
/// behaviour is deterministic, so the minimum strips any allocations the
/// libtest harness thread interleaves into the window.
fn allocs_for(
    variant: &dyn CgVariant,
    a: &dyn vr_linalg::LinearOperator,
    b: &[f64],
    max_iters: usize,
    engine: BasisEngine,
) -> u64 {
    let o = opts(max_iters, engine);
    let _ = variant.solve(a, b, None, &o);
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let res = variant.solve(a, b, None, &o);
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            res.termination,
            Termination::MaxIterations,
            "{}: tol=0 run must exhaust its budget",
            variant.name()
        );
        best = best.min(after - before);
    }
    best
}

#[test]
fn hot_loops_allocate_nothing_per_iteration_after_warmup() {
    let a = gen::poisson2d(48);
    let b = gen::poisson2d_rhs(48);

    // (variant, label). The short budget already covers every warm-up
    // transient: s-step's second direction block is first built on outer
    // step 2 (iteration s+1), look-ahead's window on its first pass.
    let variants: Vec<(Box<dyn CgVariant>, &str)> = vec![
        (Box::new(StandardCg::new()), "standard"),
        (Box::new(SStepCg::monomial(4)), "sstep-monomial"),
        (Box::new(SStepCg::newton(4)), "sstep-newton"),
        (Box::new(LookaheadCg::new(2)), "lookahead-k2"),
    ];

    for (variant, label) in &variants {
        for engine in [BasisEngine::Mpk, BasisEngine::Naive] {
            let short = allocs_for(variant.as_ref(), &a, &b, 10, engine);
            let long = allocs_for(variant.as_ref(), &a, &b, 40, engine);
            assert_eq!(
                short, long,
                "{label} ({engine:?}): a 40-iteration solve allocated \
                 {long} times vs {short} for 10 iterations — the extra 30 \
                 iterations must be allocation-free"
            );
        }
    }

    // The checkpoint hook must keep the contract: with a checkpoint period
    // of 4, the 40-iteration run takes ~8 more snapshots than the
    // 10-iteration run, and every one of them must be pure
    // `copy_from_slice` into the ring preallocated at solve start.
    // (The guard's *periodic true-residual check* allocates its
    // replacement vector by documented design, so it is disabled here to
    // isolate the checkpoint hook itself.)
    let ck = vr_cg::resilience::RecoveryPolicy::default()
        .with_checkpoint_period(4)
        .with_true_residual_period(0);
    for (variant, label) in &variants {
        let o10 = opts(10, BasisEngine::Mpk).with_recovery(ck.clone());
        let o40 = opts(40, BasisEngine::Mpk).with_recovery(ck.clone());
        let measure = |o: &SolveOptions| {
            let _ = variant.solve(&a, &b, None, o);
            let mut best = u64::MAX;
            for _ in 0..3 {
                let before = ALLOC_CALLS.load(Ordering::Relaxed);
                let _ = variant.solve(&a, &b, None, o);
                let after = ALLOC_CALLS.load(Ordering::Relaxed);
                best = best.min(after - before);
            }
            best
        };
        let short = measure(&o10);
        let long = measure(&o40);
        assert_eq!(
            short, long,
            "{label}: checkpointing every 4 iterations must stay \
             allocation-free after warm-up ({long} vs {short} allocs)"
        );
    }

    // An *attached* tracer must add ZERO allocations: recording a span is
    // two stores into a pre-sized ring, so a traced solve's allocation
    // tally must equal the untraced solve's exactly, at every budget.
    // (Draining happens outside the measured window — `drain` does
    // allocate, by design. overlap-k1's own deferred-scalar launches
    // allocate a few times per iteration with or without a tracer, which
    // is why the assertion is traced == untraced rather than 10-iter ==
    // 40-iter.)
    // The SIMD policy is one thread-local store and the mixed-precision
    // path allocates its whole f32 working set (plus the f64 shadow-guard
    // buffers) at solve start: extra iterations must stay allocation-free
    // under both knobs — including the iteration that crosses the guard's
    // confirmation period, whose true-residual check runs entirely in
    // preallocated scratch. (The warm-up solve also fills the CsrMatrix
    // f32 value cache, so it is not charged to the measured window.)
    let mixed_variants: Vec<(Box<dyn CgVariant>, &str)> = vec![
        (Box::new(StandardCg::new()), "standard"),
        (
            Box::new(vr_cg::overlap_k1::OverlapK1Cg::new()),
            "overlap-k1",
        ),
        (Box::new(vr_cg::baselines::PipelinedCg::new()), "pipelined"),
    ];
    for (variant, label) in &mixed_variants {
        for precision in [vr_cg::Precision::F64, vr_cg::Precision::Mixed] {
            let measure = |max_iters: usize| {
                let o = opts(max_iters, BasisEngine::Mpk)
                    .with_simd_policy(vr_cg::SimdPolicy::Simd)
                    .with_precision(precision);
                let _ = variant.solve(&a, &b, None, &o); // warm-up
                let mut best = u64::MAX;
                for _ in 0..3 {
                    let before = ALLOC_CALLS.load(Ordering::Relaxed);
                    let res = variant.solve(&a, &b, None, &o);
                    let after = ALLOC_CALLS.load(Ordering::Relaxed);
                    assert_eq!(
                        res.termination,
                        Termination::MaxIterations,
                        "{label} ({precision:?}): tol=0 run must exhaust its budget"
                    );
                    best = best.min(after - before);
                }
                best
            };
            let short = measure(10);
            let long = measure(40);
            assert_eq!(
                short, long,
                "{label} (simd, {precision:?}): a 40-iteration solve \
                 allocated {long} times vs {short} for 10 iterations — the \
                 extra 30 iterations must be allocation-free"
            );
        }
    }

    // Whole-iteration sweep fusion: the epoch engine preallocates its
    // staging bands and 256-leaf partial buffers at solve start, and every
    // epoch runs in that fixed storage — extra iterations must be
    // allocation-free for all four sweep-eligible variants. (overlap-k1's
    // per-kernel path allocates per-iteration deferred-scalar launches;
    // the sweep twin folds those reductions inside the epochs, so here it
    // is held to the exact 10-vs-40 contract as well.)
    let sweep_variants: Vec<(Box<dyn CgVariant>, &str)> = vec![
        (Box::new(StandardCg::new()), "standard"),
        (
            Box::new(vr_cg::overlap_k1::OverlapK1Cg::new()),
            "overlap-k1",
        ),
        (
            Box::new(vr_cg::baselines::ChronopoulosGearCg::new()),
            "chronopoulos-gear",
        ),
        (Box::new(vr_cg::baselines::PipelinedCg::new()), "pipelined"),
    ];
    for (variant, label) in &sweep_variants {
        let measure = |max_iters: usize| {
            let mut o = SolveOptions::default()
                .with_tol(0.0)
                .with_max_iters(max_iters)
                .with_dot_mode(DotMode::Tree)
                .with_threads(1)
                .with_sweep_policy(vr_cg::SweepPolicy::WholeIteration);
            o.record_residuals = false;
            let _ = variant.solve(&a, &b, None, &o); // warm-up
            let mut best = u64::MAX;
            for _ in 0..3 {
                let before = ALLOC_CALLS.load(Ordering::Relaxed);
                let res = variant.solve(&a, &b, None, &o);
                let after = ALLOC_CALLS.load(Ordering::Relaxed);
                assert_eq!(
                    res.termination,
                    Termination::MaxIterations,
                    "{label} (sweep): tol=0 run must exhaust its budget, \
                     not reject"
                );
                best = best.min(after - before);
            }
            best
        };
        let short = measure(10);
        let long = measure(40);
        assert_eq!(
            short, long,
            "{label} (whole-iteration sweep): a 40-iteration solve \
             allocated {long} times vs {short} for 10 iterations — sweep \
             epochs must run entirely in the engine's preallocated storage"
        );
    }

    let tracer = std::sync::Arc::new(vr_obs::Tracer::for_width(1));
    let traced_variants: Vec<(Box<dyn CgVariant>, &str)> = vec![
        (Box::new(StandardCg::new()), "standard"),
        (
            Box::new(vr_cg::overlap_k1::OverlapK1Cg::new()),
            "overlap-k1",
        ),
        (Box::new(LookaheadCg::new(2)), "lookahead-k2"),
    ];
    for (variant, label) in &traced_variants {
        for max_iters in [10usize, 40] {
            let untraced = allocs_for(variant.as_ref(), &a, &b, max_iters, BasisEngine::Mpk);
            let o = opts(max_iters, BasisEngine::Mpk).with_tracer(std::sync::Arc::clone(&tracer));
            let _ = variant.solve(&a, &b, None, &o); // warm-up
            let _ = tracer.drain();
            let mut best = u64::MAX;
            for _ in 0..3 {
                let before = ALLOC_CALLS.load(Ordering::Relaxed);
                let res = variant.solve(&a, &b, None, &o);
                let after = ALLOC_CALLS.load(Ordering::Relaxed);
                assert_eq!(res.termination, Termination::MaxIterations);
                best = best.min(after - before);
                let log = tracer.drain();
                assert!(!log.spans.is_empty(), "{label}: tracer recorded nothing");
            }
            assert_eq!(
                best, untraced,
                "{label} ({max_iters} iters): traced solve allocated {best} \
                 times vs {untraced} untraced — span recording must be \
                 allocation-free"
            );
        }
    }
}
