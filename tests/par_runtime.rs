//! Integration: the deterministic parallel runtime in concert with the
//! solvers — the "real machine" half of the reproduction.

use cg_lookahead::cg::resilience::{FaultKind, SeededInjector};
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions, Termination};
use cg_lookahead::linalg::kernels::DotMode;
use cg_lookahead::linalg::{gen, kernels, LinearOperator};
use cg_lookahead::par::{par, reduce, PendingScalar, Team, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn parallel_spmv_matches_serial() {
    // build a parallel matrix-free operator on top of the CSR matrix using
    // par_for_mut over row blocks
    struct ParOp {
        a: cg_lookahead::linalg::CsrMatrix,
        threads: usize,
    }
    impl LinearOperator for ParOp {
        fn dim(&self) -> usize {
            self.a.nrows()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            let n = self.a.nrows();
            let chunk = n.div_ceil(self.threads.max(1));
            par::par_for_mut(y, self.threads, |ci, yblock| {
                let base = ci * chunk;
                for (off, yi) in yblock.iter_mut().enumerate() {
                    let row = base + off;
                    let mut acc = 0.0;
                    for (c, v) in self.a.row(row) {
                        acc += v * x[c];
                    }
                    *yi = acc;
                }
            });
        }
        fn max_row_nnz(&self) -> usize {
            self.a.max_row_nnz()
        }
    }

    let a = gen::poisson2d(40); // 1600 unknowns → parallel path engages
    let x = gen::rand_vector(1600, 3);
    let serial = a.spmv(&x);
    let op = ParOp {
        a: a.clone(),
        threads: 4,
    };
    let par_y = op.apply_alloc(&x);
    assert_eq!(serial, par_y, "chunked parallel SpMV must be exact");

    // and CG runs unchanged on the parallel operator
    let b = gen::poisson2d_rhs(40);
    let res = StandardCg::new().solve(&op, &b, None, &SolveOptions::default().with_tol(1e-8));
    assert!(res.converged);
    assert!(res.true_residual(&a, &b) < 1e-5);
}

#[test]
fn deterministic_reduction_equals_across_widths_on_cg_data() {
    // the vectors CG actually produces (smooth, decaying) must reduce
    // identically at any thread count
    let a = gen::poisson2d(32);
    let b = gen::poisson2d_rhs(32);
    let res = StandardCg::new().solve(&a, &b, None, &SolveOptions::default());
    let x = &res.x;
    let d1 = reduce::par_dot(x, x, 1);
    for t in [2usize, 4, 8] {
        assert_eq!(d1.to_bits(), reduce::par_dot(x, x, t).to_bits(), "t={t}");
    }
    // and matches the serial kernel to high accuracy
    let serial = kernels::dot_serial(x, x);
    assert!((d1 - serial).abs() <= 1e-10 * (1.0 + serial));
}

#[test]
fn pipelined_scalars_deliver_out_of_order_launches() {
    let pool = ThreadPool::new(4);
    let xs: Vec<Arc<Vec<f64>>> = (0..8)
        .map(|i| Arc::new(vec![i as f64 + 1.0; 4096]))
        .collect();
    // launch all, consume in reverse order — values must still be right
    let pending: Vec<PendingScalar> = xs
        .iter()
        .map(|x| PendingScalar::spawn_dot(&pool, Arc::clone(x), Arc::clone(x)))
        .collect();
    for (i, p) in pending.iter().enumerate().rev() {
        let v = (i as f64 + 1.0) * (i as f64 + 1.0) * 4096.0;
        assert!((p.wait() - v).abs() < 1e-6 * v);
    }
}

#[test]
fn overlapped_dot_during_spmv_equals_sequential() {
    // the §3 discipline on real threads: launch (r,r) while computing A·p
    let a = gen::poisson2d(48);
    let r = Arc::new(gen::rand_vector(a.nrows(), 77));
    let p = gen::rand_vector(a.nrows(), 78);

    let pool = ThreadPool::new(2);
    let pending_rr = PendingScalar::spawn_dot(&pool, Arc::clone(&r), Arc::clone(&r));
    let w = a.spmv(&p); // overlaps with the reduction
    let rr = pending_rr.wait();

    let rr_seq = kernels::dot_serial(&r, &r);
    assert_eq!(rr.to_bits(), reduce::par_dot(&r, &r, 1).to_bits());
    assert!((rr - rr_seq).abs() <= 1e-10 * (1.0 + rr_seq));
    assert_eq!(w.len(), a.nrows());
}

#[test]
fn par_map_and_axpy_compose() {
    let x: Vec<f64> = (0..5000).map(|i| i as f64).collect();
    let doubled = par::par_map(&x, 4, |_, v| v * 2.0);
    let mut y = doubled.clone();
    par::par_axpy(-2.0, &x, &mut y, 4);
    assert!(y.iter().all(|&v| v == 0.0));
}

// ---------- persistent team lifecycle ----------

#[test]
fn team_runs_many_epochs_and_drops_cleanly() {
    // A team is a long-lived machine: hundreds of barrier-stepped epochs on
    // the same workers, then `drop` joins every worker. The assertions are
    // the epoch count being exact (no lost or duplicated shards) and the
    // test completing at all (no deadlock on shutdown).
    let team = Team::new(4);
    let hits = AtomicUsize::new(0);
    for _ in 0..200 {
        team.try_run(&|_shard| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .expect("healthy team");
    }
    assert_eq!(hits.load(Ordering::Relaxed), 200 * 4);
    drop(team);
}

#[test]
fn worker_panic_poisons_team_and_solve_breaks_down_honestly() {
    let team = Arc::new(Team::new(4));
    // Poison: every worker shard panics during one epoch. The barrier
    // counts panicked shards, so the epoch completes (no hang) and the
    // team is permanently disabled.
    let r = team.try_run(&|shard| assert_eq!(shard, 0, "shard {shard} aborts"));
    assert!(r.is_err());
    assert!(team.is_poisoned());
    // later epochs refuse immediately
    assert!(team.try_run(&|_| {}).is_err());

    // A solve handed the poisoned team must terminate with an honest
    // breakdown — NaN-filled kernel outputs tripping the pivot guards —
    // not hang on a dead barrier or return a silently wrong answer.
    let a = gen::poisson2d(40);
    let b = gen::poisson2d_rhs(40);
    let opts = SolveOptions {
        team: Some(Arc::clone(&team)),
        threads: 4,
        ..SolveOptions::default().with_dot_mode(DotMode::Tree)
    };
    let res = StandardCg::new().solve(&a, &b, None, &opts);
    assert!(!res.converged);
    assert_eq!(res.termination, Termination::Breakdown);
}

#[test]
fn team_backed_tree_solve_matches_single_thread_bits() {
    // 128² = 16384 unknowns: wide enough that a width-4 team dispatches
    // real multi-shard epochs, and the whole trace must still match the
    // single-threaded solve bit for bit.
    let a = gen::poisson2d(128);
    let b = gen::poisson2d_rhs(128);
    let base = SolveOptions::default()
        .with_tol(1e-9)
        .with_dot_mode(DotMode::Tree);
    let one = StandardCg::new().solve(&a, &b, None, &base.clone().with_threads(1));
    let four = StandardCg::new().solve(&a, &b, None, &base.clone().with_threads(4));
    assert!(one.converged && four.converged);
    assert_eq!(one.iterations, four.iterations);
    assert_eq!(one.x, four.x);
    assert_eq!(one.residual_norms, four.residual_norms);
    // the shared team survives for the next solve on the same width
    let again = StandardCg::new().solve(&a, &b, None, &base.with_threads(4));
    assert_eq!(four.x, again.x);
}

#[test]
fn seeded_fault_injection_is_bit_reproducible_across_team_widths() {
    // Faults are seeded by global element index, so the same corruption
    // lands on the same iterate no matter how many shards computed it:
    // identical traces for widths 1, 2, and 4 (182² ≥ 4·GRAIN engages all
    // of them for real).
    let a = gen::poisson2d(182);
    let b = gen::poisson2d_rhs(182);
    let mk = |threads: usize| {
        SolveOptions::default()
            .with_tol(1e-10)
            .with_max_iters(12)
            .with_dot_mode(DotMode::Tree)
            .with_injector(Arc::new(SeededInjector::new(
                0xFEED,
                0.02,
                FaultKind::Perturb(0.25),
            )))
            .with_threads(threads)
    };
    let base = StandardCg::new().solve(&a, &b, None, &mk(1));
    for threads in [2usize, 4] {
        let res = StandardCg::new().solve(&a, &b, None, &mk(threads));
        assert_eq!(base.termination, res.termination, "threads {threads}");
        assert_eq!(base.iterations, res.iterations, "threads {threads}");
        assert_eq!(base.x, res.x, "threads {threads}: x bits");
        assert_eq!(
            base.residual_norms, res.residual_norms,
            "threads {threads}: trace bits"
        );
    }
}
