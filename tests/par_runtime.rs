//! Integration: the deterministic parallel runtime in concert with the
//! solvers — the "real machine" half of the reproduction.

use cg_lookahead::cg::resilience::{FaultKind, SeededInjector};
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions, Termination};
use cg_lookahead::linalg::kernels::DotMode;
use cg_lookahead::linalg::{gen, kernels, LinearOperator};
use cg_lookahead::par::{par, reduce, shared_team, PendingScalar, Team, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn parallel_spmv_matches_serial() {
    // build a parallel matrix-free operator on top of the CSR matrix using
    // par_for_mut over row blocks
    struct ParOp {
        a: cg_lookahead::linalg::CsrMatrix,
        threads: usize,
    }
    impl LinearOperator for ParOp {
        fn dim(&self) -> usize {
            self.a.nrows()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            let n = self.a.nrows();
            let chunk = n.div_ceil(self.threads.max(1));
            par::par_for_mut(y, self.threads, |ci, yblock| {
                let base = ci * chunk;
                for (off, yi) in yblock.iter_mut().enumerate() {
                    let row = base + off;
                    let mut acc = 0.0;
                    for (c, v) in self.a.row(row) {
                        acc += v * x[c];
                    }
                    *yi = acc;
                }
            });
        }
        fn max_row_nnz(&self) -> usize {
            self.a.max_row_nnz()
        }
    }

    let a = gen::poisson2d(40); // 1600 unknowns → parallel path engages
    let x = gen::rand_vector(1600, 3);
    let serial = a.spmv(&x);
    let op = ParOp {
        a: a.clone(),
        threads: 4,
    };
    let par_y = op.apply_alloc(&x);
    assert_eq!(serial, par_y, "chunked parallel SpMV must be exact");

    // and CG runs unchanged on the parallel operator
    let b = gen::poisson2d_rhs(40);
    let res = StandardCg::new().solve(&op, &b, None, &SolveOptions::default().with_tol(1e-8));
    assert!(res.converged);
    assert!(res.true_residual(&a, &b) < 1e-5);
}

#[test]
fn deterministic_reduction_equals_across_widths_on_cg_data() {
    // the vectors CG actually produces (smooth, decaying) must reduce
    // identically at any thread count
    let a = gen::poisson2d(32);
    let b = gen::poisson2d_rhs(32);
    let res = StandardCg::new().solve(&a, &b, None, &SolveOptions::default());
    let x = &res.x;
    let d1 = reduce::par_dot(x, x, 1);
    for t in [2usize, 4, 8] {
        assert_eq!(d1.to_bits(), reduce::par_dot(x, x, t).to_bits(), "t={t}");
    }
    // and matches the serial kernel to high accuracy
    let serial = kernels::dot_serial(x, x);
    assert!((d1 - serial).abs() <= 1e-10 * (1.0 + serial));
}

#[test]
fn pipelined_scalars_deliver_out_of_order_launches() {
    let pool = ThreadPool::new(4);
    let xs: Vec<Arc<Vec<f64>>> = (0..8)
        .map(|i| Arc::new(vec![i as f64 + 1.0; 4096]))
        .collect();
    // launch all, consume in reverse order — values must still be right
    let pending: Vec<PendingScalar> = xs
        .iter()
        .map(|x| PendingScalar::spawn_dot(&pool, Arc::clone(x), Arc::clone(x)))
        .collect();
    for (i, p) in pending.iter().enumerate().rev() {
        let v = (i as f64 + 1.0) * (i as f64 + 1.0) * 4096.0;
        assert!((p.wait() - v).abs() < 1e-6 * v);
    }
}

#[test]
fn overlapped_dot_during_spmv_equals_sequential() {
    // the §3 discipline on real threads: launch (r,r) while computing A·p
    let a = gen::poisson2d(48);
    let r = Arc::new(gen::rand_vector(a.nrows(), 77));
    let p = gen::rand_vector(a.nrows(), 78);

    let pool = ThreadPool::new(2);
    let pending_rr = PendingScalar::spawn_dot(&pool, Arc::clone(&r), Arc::clone(&r));
    let w = a.spmv(&p); // overlaps with the reduction
    let rr = pending_rr.wait();

    let rr_seq = kernels::dot_serial(&r, &r);
    assert_eq!(rr.to_bits(), reduce::par_dot(&r, &r, 1).to_bits());
    assert!((rr - rr_seq).abs() <= 1e-10 * (1.0 + rr_seq));
    assert_eq!(w.len(), a.nrows());
}

#[test]
fn par_map_and_axpy_compose() {
    let x: Vec<f64> = (0..5000).map(|i| i as f64).collect();
    let doubled = par::par_map(&x, 4, |_, v| v * 2.0);
    let mut y = doubled.clone();
    par::par_axpy(-2.0, &x, &mut y, 4);
    assert!(y.iter().all(|&v| v == 0.0));
}

// ---------- persistent team lifecycle ----------

#[test]
fn team_runs_many_epochs_and_drops_cleanly() {
    // A team is a long-lived machine: hundreds of barrier-stepped epochs on
    // the same workers, then `drop` joins every worker. The assertions are
    // the epoch count being exact (no lost or duplicated shards) and the
    // test completing at all (no deadlock on shutdown).
    let team = Team::new(4);
    let hits = AtomicUsize::new(0);
    for _ in 0..200 {
        team.try_run(&|_shard| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .expect("healthy team");
    }
    assert_eq!(hits.load(Ordering::Relaxed), 200 * 4);
    drop(team);
}

#[test]
fn worker_panic_poisons_team_and_later_solves_do_not_inherit_it() {
    let team = Arc::new(Team::new(4));
    // Poison: every worker shard panics during one epoch. The barrier
    // counts panicked shards, so the epoch completes (no hang) and the
    // team is permanently disabled.
    let r = team.try_run(&|shard| assert_eq!(shard, 0, "shard {shard} aborts"));
    assert!(r.is_err());
    assert!(team.is_poisoned());
    // later epochs refuse immediately
    assert!(team.try_run(&|_| {}).is_err());

    // A solve handed the poisoned handle must NOT inherit it: `team()`
    // refuses to return a poisoned Arc and re-resolves a fresh shared
    // team, so the solve completes normally instead of inheriting a dead
    // barrier (the solve that *caused* the poison already surfaced its
    // own breakdown — see the honest-NaN contract in vr_par::reduce).
    let a = gen::poisson2d(40);
    let b = gen::poisson2d_rhs(40);
    let opts = SolveOptions {
        team: Some(Arc::clone(&team)),
        threads: 4,
        ..SolveOptions::default().with_dot_mode(DotMode::Tree)
    };
    let resolved = opts.team().expect("threads=4 resolves a team");
    assert!(!Arc::ptr_eq(&resolved, &team), "poisoned Arc must not leak");
    assert!(!resolved.is_poisoned());
    let res = StandardCg::new().solve(&a, &b, None, &opts);
    assert!(res.converged, "{:?}", res.termination);
    assert_eq!(res.termination, Termination::Converged);
}

#[test]
fn team_backed_tree_solve_matches_single_thread_bits() {
    // 128² = 16384 unknowns: wide enough that a width-4 team dispatches
    // real multi-shard epochs, and the whole trace must still match the
    // single-threaded solve bit for bit.
    let a = gen::poisson2d(128);
    let b = gen::poisson2d_rhs(128);
    let base = SolveOptions::default()
        .with_tol(1e-9)
        .with_dot_mode(DotMode::Tree);
    // explicit team: `with_threads(4)` would clamp to the host width on
    // small CI machines and silently degrade this to a 1 vs 1 comparison
    let team = Arc::new(Team::new(4));
    let one = StandardCg::new().solve(&a, &b, None, &base.clone().with_threads(1));
    let four = StandardCg::new().solve(&a, &b, None, &base.clone().with_team(Arc::clone(&team)));
    assert!(one.converged && four.converged);
    assert_eq!(one.iterations, four.iterations);
    assert_eq!(one.x, four.x);
    assert_eq!(one.residual_norms, four.residual_norms);
    // the team survives for the next solve on the same width
    let again = StandardCg::new().solve(&a, &b, None, &base.with_team(team));
    assert_eq!(four.x, again.x);
}

#[test]
fn killed_worker_mid_solve_completes_bit_identically_on_survivors() {
    // The tentpole failover claim as a repo test: kill one worker of a
    // width-4 team partway through a Tree-mode solve and the survivors must
    // finish the job with *the same bits* as the full team (and as a
    // single thread), because the 256-leaf reduction layout is fixed and
    // re-sharding only changes who sums which leaves.
    let a = gen::poisson2d(182); // 33124 ≥ 4·GRAIN → all 4 shards engage
    let b = gen::poisson2d_rhs(182);
    let base = SolveOptions::default()
        .with_tol(1e-9)
        .with_dot_mode(DotMode::Tree);

    let reference = StandardCg::new().solve(&a, &b, None, &base.clone().with_threads(1));

    let team = Arc::new(Team::new(4));
    team.set_health_params(1, 3);
    let killer = {
        let team = Arc::clone(&team);
        std::thread::spawn(move || {
            // let a few epochs run at full width first
            std::thread::sleep(std::time::Duration::from_millis(5));
            team.kill_worker(1);
        })
    };
    let survived = StandardCg::new().solve(&a, &b, None, &base.with_team(Arc::clone(&team)));
    killer.join().unwrap();

    assert!(survived.converged, "{:?}", survived.termination);
    assert_eq!(team.live_width(), 3, "worker 1 should be gone");
    assert!(!team.is_poisoned(), "failover is not poisoning");
    assert_eq!(reference.x, survived.x, "x bits must survive failover");
    assert_eq!(
        reference.residual_norms, survived.residual_norms,
        "trace bits must survive failover"
    );
}

#[test]
fn shared_team_replaces_poisoned_instance_race_free() {
    // Regression: a poisoned cached team must be replaced under the cache
    // lock — concurrent callers may race to at most one replacement each,
    // and none of them may ever receive the dead `Arc`. Width 5 is chosen
    // to be private to this test (other tests use 2/4).
    let first = shared_team(5);
    // poison it: one shard panics, the barrier completes, the team is dead
    let r = first.try_run(&|shard| assert!(shard > 100, "deliberate poison"));
    assert!(r.is_err() && first.is_poisoned());

    let replacements: Vec<Arc<Team>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8).map(|_| s.spawn(|| shared_team(5))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for t in &replacements {
        assert!(!t.is_poisoned(), "no caller may observe the dead team");
        assert!(!Arc::ptr_eq(t, &first), "dead Arc must not be handed out");
        // and the replacement is actually usable
        t.try_run(&|_| {}).expect("fresh team runs");
    }
}

#[test]
fn seeded_fault_injection_is_bit_reproducible_across_team_widths() {
    // Faults are seeded by global element index, so the same corruption
    // lands on the same iterate no matter how many shards computed it:
    // identical traces for widths 1, 2, and 4 (182² ≥ 4·GRAIN engages all
    // of them for real).
    let a = gen::poisson2d(182);
    let b = gen::poisson2d_rhs(182);
    let mk = |threads: usize| {
        let o = SolveOptions::default()
            .with_tol(1e-10)
            .with_max_iters(12)
            .with_dot_mode(DotMode::Tree)
            .with_injector(Arc::new(SeededInjector::new(
                0xFEED,
                0.02,
                FaultKind::Perturb(0.25),
            )));
        // explicit teams so the host-cpu clamp can't flatten the widths
        if threads > 1 {
            o.with_team(Arc::new(Team::new(threads)))
        } else {
            o.with_threads(1)
        }
    };
    let base = StandardCg::new().solve(&a, &b, None, &mk(1));
    for threads in [2usize, 4] {
        let res = StandardCg::new().solve(&a, &b, None, &mk(threads));
        assert_eq!(base.termination, res.termination, "threads {threads}");
        assert_eq!(base.iterations, res.iterations, "threads {threads}");
        assert_eq!(base.x, res.x, "threads {threads}: x bits");
        assert_eq!(
            base.residual_norms, res.residual_norms,
            "threads {threads}: trace bits"
        );
    }
}
