//! Every checked-in `BENCH_*.json` must parse with the crate's own JSON
//! reader and carry the shared envelope emitted by
//! `vr_bench::json::envelope`: `schema_version` (the pinned integer),
//! `experiment` (a string), `smoke` (a bool), `host_cpus`/`grain`
//! (positive integers), and at least one array-valued results section.
//!
//! This is the committed-artifact analogue of the CI smoke legs'
//! `python3 -m json.tool` check — but it validates the *schema*, not just
//! well-formedness, and it runs at `cargo test` time so a hand-edited or
//! truncated result file fails the build before it fails a reader.

use vr_obs::json::{parse, Json};

fn checked_in_bench_files() -> Vec<std::path::PathBuf> {
    // The bench artifacts live at the workspace root, one directory above
    // this (facade) crate's manifest when running from a member; at the
    // manifest dir itself when running from the root package.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut found: Vec<_> = std::fs::read_dir(root)
        .expect("workspace root readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    found.sort();
    found
}

#[test]
fn all_checked_in_bench_files_carry_the_shared_envelope() {
    let files = checked_in_bench_files();
    assert!(
        !files.is_empty(),
        "no BENCH_*.json files found at the workspace root — the committed \
         experiment artifacts are part of the repo's contract"
    );
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        let doc = parse(&text)
            .unwrap_or_else(|e| panic!("{name}: does not parse with vr_obs::json::parse: {e:?}"));

        let version = doc
            .get("schema_version")
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("{name}: missing integer schema_version"));
        assert_eq!(
            version,
            vr_bench::json::SCHEMA_VERSION,
            "{name}: schema_version drifted from the shared envelope"
        );

        let experiment = doc
            .get("experiment")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{name}: missing string experiment"));
        assert!(
            !experiment.is_empty(),
            "{name}: experiment name must be non-empty"
        );

        assert!(
            doc.get("smoke").and_then(Json::as_bool).is_some(),
            "{name}: missing bool smoke"
        );

        for key in ["host_cpus", "grain"] {
            let v = doc
                .get(key)
                .and_then(Json::as_i64)
                .unwrap_or_else(|| panic!("{name}: missing integer {key}"));
            assert!(v >= 1, "{name}: {key} = {v} must be positive");
        }

        // every experiment carries at least one array-valued results section
        let Json::Obj(fields) = &doc else {
            panic!("{name}: top level must be an object");
        };
        let has_section = fields
            .iter()
            .any(|(_, v)| matches!(v, Json::Arr(items) if !items.is_empty()));
        assert!(
            has_section,
            "{name}: no non-empty array-valued results section"
        );
    }
}

#[test]
fn committed_artifacts_are_full_runs_not_smoke() {
    // CI's smoke legs write to target/experiments and are never committed;
    // anything checked in at the root must be a full (non-smoke) run so
    // the numbers in the docs trace to real measurements.
    for path in checked_in_bench_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = parse(&text).unwrap();
        assert_eq!(
            doc.get("smoke").and_then(Json::as_bool),
            Some(false),
            "{name}: committed artifact claims smoke=true"
        );
    }
}
