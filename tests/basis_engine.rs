//! Solver-level differential harness for [`BasisEngine`].
//!
//! The contract: `BasisEngine::Mpk` (the default — cache-blocked
//! matrix-powers basis construction) produces **exactly the bits** of
//! `BasisEngine::Naive` (column-by-column repeated apply) for every
//! s-step basis kind and for look-ahead startup — same termination, same
//! iteration count, same residual-norm sequence, same solution vector —
//! at every team width and for explicit as well as heuristic tile sizes.
//! Order-preserving summation (`DotMode::Tree`) makes the whole solve
//! deterministic, so any single differing bit in the basis would surface
//! in the trace.

use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::sstep::SStepCg;
use cg_lookahead::cg::{BasisEngine, CgVariant, SolveOptions, SolveResult};
use cg_lookahead::linalg::gen;
use cg_lookahead::linalg::kernels::DotMode;

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn assert_trace_identical(n_label: &str, r: &SolveResult, m: &SolveResult, ctx: &str) {
    assert_eq!(r.termination, m.termination, "{n_label} {ctx}: termination");
    assert_eq!(r.iterations, m.iterations, "{n_label} {ctx}: iterations");
    assert_eq!(
        bits(&r.residual_norms),
        bits(&m.residual_norms),
        "{n_label} {ctx}: residual-norm sequence"
    );
    assert_eq!(bits(&r.x), bits(&m.x), "{n_label} {ctx}: solution vector");
}

fn engine_users() -> Vec<Box<dyn CgVariant>> {
    vec![
        Box::new(SStepCg::monomial(4)),
        Box::new(SStepCg::newton(4)),
        Box::new(SStepCg::chebyshev(4)),
        Box::new(LookaheadCg::new(2)),
        Box::new(LookaheadCg::new(3).with_resync(16)),
    ]
}

fn run(
    v: &dyn CgVariant,
    a: &cg_lookahead::linalg::CsrMatrix,
    b: &[f64],
    engine: BasisEngine,
    width: usize,
    tile: Option<usize>,
) -> SolveResult {
    let opts = SolveOptions::default()
        .with_tol(1e-8)
        .with_dot_mode(DotMode::Tree)
        .with_threads(width)
        .with_basis_engine(engine)
        .with_mpk_tile(tile);
    v.solve(a, b, None, &opts)
}

#[test]
fn mpk_engine_traces_bit_identical_to_naive_across_widths_and_tiles() {
    let a = gen::poisson2d(24);
    let b = gen::poisson2d_rhs(24);
    for v in engine_users() {
        for width in [1usize, 2, 4] {
            for tile in [None, Some(512)] {
                let naive = run(v.as_ref(), &a, &b, BasisEngine::Naive, width, tile);
                let mpk = run(v.as_ref(), &a, &b, BasisEngine::Mpk, width, tile);
                let ctx = format!("width={width} tile={tile:?}");
                assert_trace_identical(&v.name(), &naive, &mpk, &ctx);
                assert!(naive.converged, "{} {ctx}: converged", v.name());
            }
        }
    }
}

#[test]
fn mpk_engine_traces_bit_identical_on_grain_spanning_system() {
    // n = 136² = 18 496 exceeds twice the dispatch grain, so width-4 team
    // runs genuinely shard the sweeps instead of clamping to serial.
    let a = gen::poisson2d(136);
    let b = gen::poisson2d_rhs(136);
    let variants: Vec<Box<dyn CgVariant>> = vec![
        Box::new(SStepCg::monomial(4)),
        Box::new(LookaheadCg::new(2)),
    ];
    for v in variants {
        for width in [1usize, 4] {
            let naive = run(v.as_ref(), &a, &b, BasisEngine::Naive, width, None);
            let mpk = run(v.as_ref(), &a, &b, BasisEngine::Mpk, width, None);
            let ctx = format!("width={width}");
            assert_trace_identical(&v.name(), &naive, &mpk, &ctx);
        }
    }
}

#[test]
fn default_engine_is_mpk_and_builder_round_trips() {
    let d = SolveOptions::default();
    assert_eq!(d.basis_engine, BasisEngine::Mpk);
    assert_eq!(d.mpk_tile, None);
    let o = SolveOptions::default()
        .with_basis_engine(BasisEngine::Naive)
        .with_mpk_tile(Some(4096));
    assert_eq!(o.basis_engine, BasisEngine::Naive);
    assert_eq!(o.mpk_tile, Some(4096));
}
