//! Structural properties shared by every algorithm DAG the builders emit.

use cg_lookahead::sim::{builders, AlgoDag, MachineModel, OpKind};

fn all_dags() -> Vec<AlgoDag> {
    let (n, d, iters) = (1usize << 12, 5usize, 12usize);
    vec![
        builders::standard_cg(n, d, iters),
        builders::overlap_k1(n, d, iters),
        builders::chronopoulos_gear(n, d, iters),
        builders::pipelined_cg(n, d, iters),
        builders::lookahead_cg(n, d, iters, 4),
        builders::sstep_cg(n, d, iters / 4, 4),
        builders::preconditioned_cg(n, d, iters, 1),
        builders::chebyshev_iteration(n, d, iters, 5),
        builders::block_cg(n, d, iters, 4),
    ]
}

#[test]
fn milestones_are_monotone_in_time() {
    let m = MachineModel::pram();
    for dag in all_dags() {
        let times = dag.graph.schedule(&m);
        let mut prev = -1.0;
        for (i, ms) in dag.milestones.iter().enumerate() {
            let f = times[ms.0].1;
            assert!(
                f >= prev,
                "{}: milestone {i} finishes at {f} before {prev}",
                dag.name
            );
            prev = f;
        }
    }
}

#[test]
fn every_node_reachable_from_a_source() {
    // each node's start time is well-defined and ≥ 0; every non-source node
    // has at least one dependency (no disconnected work floats free)
    let m = MachineModel::pram();
    for dag in all_dags() {
        let times = dag.graph.schedule(&m);
        for (id, node) in dag.graph.nodes() {
            assert!(times[id.0].0 >= 0.0);
            if !matches!(node.kind, OpKind::Source) {
                assert!(
                    !node.deps.is_empty(),
                    "{}: node '{}' has no dependencies",
                    dag.name,
                    node.label
                );
            }
        }
    }
}

#[test]
fn deps_strictly_precede_in_schedule() {
    let m = MachineModel::bounded(64);
    for dag in all_dags() {
        let times = dag.graph.schedule(&m);
        for (id, node) in dag.graph.nodes() {
            for dep in &node.deps {
                assert!(
                    times[id.0].0 + 1e-12 >= times[dep.0].1,
                    "{}: '{}' starts before its dependency finishes",
                    dag.name,
                    node.label
                );
            }
        }
    }
}

#[test]
fn cycle_time_positive_and_total_consistent() {
    let m = MachineModel::pram();
    for dag in all_dags() {
        let cycle = dag.steady_cycle_time(&m);
        assert!(cycle > 0.0, "{}", dag.name);
        let total = dag.total_time(&m);
        // total ≥ (iterations − 1) · steady cycle (startup can only add)
        let floor = cycle * (dag.milestones.len() as f64 - 1.0) * 0.5;
        assert!(
            total > floor,
            "{}: total {total} vs floor {floor}",
            dag.name
        );
        assert!(dag.startup_time(&m) >= 0.0, "{}", dag.name);
    }
}

#[test]
fn iteration_tags_cover_all_compute_nodes() {
    for dag in all_dags() {
        let untagged = dag
            .graph
            .nodes()
            .filter(|(_, n)| n.iter.is_none() && !matches!(n.kind, OpKind::Source))
            .count();
        // only the source and at most a couple of init nodes may go untagged
        assert!(
            untagged <= 2,
            "{}: {untagged} untagged compute nodes",
            dag.name
        );
    }
}

#[test]
fn graph_sizes_scale_linearly_with_iterations() {
    let n12 = builders::lookahead_cg(1 << 10, 5, 12, 3).graph.len();
    let n24 = builders::lookahead_cg(1 << 10, 5, 24, 3).graph.len();
    let per_iter = (n24 - n12) as f64 / 12.0;
    // linear growth, no superlinear blowup
    let n48 = builders::lookahead_cg(1 << 10, 5, 48, 3).graph.len();
    let per_iter2 = (n48 - n24) as f64 / 24.0;
    assert!(
        (per_iter - per_iter2).abs() < 1.0,
        "{per_iter} vs {per_iter2}"
    );
}

#[test]
fn bounded_machines_only_slow_things_down() {
    let m_inf = MachineModel::pram();
    for dag in all_dags() {
        let t_inf = dag.graph.makespan(&m_inf);
        for p in [1usize, 64, 1 << 16] {
            let m = MachineModel::bounded(p);
            assert!(
                dag.graph.makespan(&m) + 1e-9 >= t_inf,
                "{} on P={p}",
                dag.name
            );
        }
    }
}
