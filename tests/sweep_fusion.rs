//! Differential suite for whole-iteration sweep fusion.
//!
//! [`SweepPolicy::WholeIteration`] promises *bit-identical* whole-solve
//! traces to the per-kernel fused path: same `x`, same recorded residual
//! norms, same iteration count, termination, and operation tallies — at
//! any staging tile size, any team width, on every sweep-capable operator.
//! This suite pins that promise differentially (no golden files: the
//! unfused solve on the same inputs *is* the oracle), and pins the
//! explicit [`Termination::Unsupported`] rejection for every variant and
//! configuration outside the sweep's eligibility envelope.

use vr_cg::baselines::{ChronopoulosGearCg, PipelinedCg};
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::registry;
use vr_cg::standard::StandardCg;
use vr_cg::{
    CgVariant, KernelPolicy, Precision, SolveOptions, SolveResult, SweepPolicy, Termination,
};
use vr_linalg::kernels::DotMode;
use vr_linalg::stencil::{Stencil2d, Stencil3d};
use vr_linalg::{gen, LinearOperator};

/// The four sweep-eligible variants, constructed as the registry does.
fn eligible_variants() -> Vec<(&'static str, Box<dyn CgVariant>)> {
    vec![
        (
            "standard",
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
        ),
        ("overlap_k1", Box::new(OverlapK1Cg::new().with_resync(20))),
        ("chronopoulos_gear", Box::new(ChronopoulosGearCg::new())),
        ("pipelined", Box::new(PipelinedCg::new())),
    ]
}

/// Operators sized so the 256-leaf layout gives multi-element chunks whose
/// boundaries cut grid rows mid-way (ghost-zone adversarial): n = 1073
/// with ny = 29 for the 2-D stencil, n = 1331 with row length 11 for the
/// 3-D stencil, and an n = 1089 assembled CSR matrix.
fn operators() -> Vec<(&'static str, Box<dyn LinearOperator>)> {
    vec![
        (
            "stencil2d",
            Box::new(Stencil2d::anisotropic(37, 29, 0.35)) as Box<dyn LinearOperator>,
        ),
        ("stencil3d", Box::new(Stencil3d::new(11))),
        ("csr", Box::new(gen::poisson2d(33))),
    ]
}

fn base_opts(threads: usize) -> SolveOptions {
    let mut opts = SolveOptions::default()
        .with_dot_mode(DotMode::Tree)
        .with_tol(1e-8)
        .with_max_iters(400)
        .with_threads(threads);
    opts.record_residuals = true;
    opts
}

/// Assert every observable of the two results is bit-identical.
fn assert_bits_eq(label: &str, fused: &SolveResult, sweep: &SolveResult) {
    assert_eq!(
        fused.termination, sweep.termination,
        "{label}: termination diverged"
    );
    assert_eq!(
        fused.iterations, sweep.iterations,
        "{label}: iteration count diverged"
    );
    assert_eq!(fused.counts, sweep.counts, "{label}: op tallies diverged");
    assert_eq!(
        fused.residual_norms.len(),
        sweep.residual_norms.len(),
        "{label}: norm history length diverged"
    );
    for (i, (f, s)) in fused
        .residual_norms
        .iter()
        .zip(&sweep.residual_norms)
        .enumerate()
    {
        assert_eq!(
            f.to_bits(),
            s.to_bits(),
            "{label}: residual norm {i} diverged: {f:e} vs {s:e}"
        );
    }
    for (i, (f, s)) in fused.x.iter().zip(&sweep.x).enumerate() {
        assert_eq!(
            f.to_bits(),
            s.to_bits(),
            "{label}: x[{i}] diverged: {f:e} vs {s:e}"
        );
    }
}

/// The tentpole pin: every eligible variant, on every sweep-capable
/// operator shape, at serial and team width, across degenerate (1-element,
/// whole-domain) and row-straddling staging tiles, produces the same bits
/// as the per-kernel fused path.
#[test]
fn whole_iteration_sweep_is_bit_identical_to_fused() {
    for (vkey, variant) in eligible_variants() {
        for (okey, op) in operators() {
            let a = op.as_ref();
            let n = a.dim();
            let b = gen::rand_vector(n, 17);
            for threads in [1, 4] {
                let opts = base_opts(threads);
                let fused = variant.solve(a, &b, None, &opts);
                assert!(
                    fused.iterations > 3,
                    "{vkey}/{okey}: trivial baseline ({} iterations)",
                    fused.iterations
                );
                // 1-element, row-straddling (3 and ny+1), L1-heuristic,
                // and whole-domain staging tiles must all be inert.
                for tile in [Some(1), Some(3), Some(30), None, Some(n)] {
                    let sopts = opts
                        .clone()
                        .with_sweep_policy(SweepPolicy::WholeIteration)
                        .with_sweep_tile(tile);
                    let sweep = variant.solve(a, &b, None, &sopts);
                    assert_bits_eq(
                        &format!("{vkey}/{okey}/threads={threads}/tile={tile:?}"),
                        &fused,
                        &sweep,
                    );
                }
            }
        }
    }
}

/// A warm start must round-trip identically too (the `x0` residual setup
/// runs outside the sweep engine but feeds its first epoch).
#[test]
fn sweep_matches_fused_from_nonzero_x0() {
    let a = Stencil2d::anisotropic(37, 29, 0.35);
    let b = gen::rand_vector(a.dim(), 23);
    let x0 = gen::rand_vector(a.dim(), 29);
    for (vkey, variant) in eligible_variants() {
        for threads in [1, 4] {
            let opts = base_opts(threads);
            let fused = variant.solve(&a, &b, Some(&x0), &opts);
            let sweep = variant.solve(
                &a,
                &b,
                Some(&x0),
                &opts.clone().with_sweep_policy(SweepPolicy::WholeIteration),
            );
            assert_bits_eq(&format!("{vkey}/x0/threads={threads}"), &fused, &sweep);
        }
    }
}

/// The overlap-k1 resync block (periodic direct recomputation of the
/// carried scalars) runs serial kernels outside the epochs; exercise it.
#[test]
fn sweep_matches_fused_through_overlap_resync() {
    let variant = OverlapK1Cg::new().with_resync(3);
    let a = gen::poisson2d(33);
    let b = gen::poisson2d_rhs(33);
    for threads in [1, 4] {
        let opts = base_opts(threads);
        let fused = variant.solve(&a, &b, None, &opts);
        let sweep = variant.solve(
            &a,
            &b,
            None,
            &opts.clone().with_sweep_policy(SweepPolicy::WholeIteration),
        );
        assert_bits_eq(
            &format!("overlap_resync3/threads={threads}"),
            &fused,
            &sweep,
        );
    }
}

/// Every registry variant without a single-pass schedule must reject a
/// whole-iteration request with `Unsupported` after zero iterations —
/// and the registry's `sweep_eligible` flags must match the hard-coded
/// eligibility set this suite sweeps.
#[test]
fn ineligible_variants_reject_explicitly() {
    const ELIGIBLE: [&str; 4] = ["standard", "overlap_k1", "chronopoulos_gear", "pipelined"];
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    let opts = base_opts(1).with_sweep_policy(SweepPolicy::WholeIteration);
    let mut seen = 0;
    for (key, variant) in registry::keyed_variants(&a) {
        seen += 1;
        let expect_eligible = ELIGIBLE.contains(&key);
        assert_eq!(
            variant.sweep_eligible(),
            expect_eligible,
            "{key}: sweep_eligible flag disagrees with the suite's eligibility set"
        );
        let res = variant.solve(&a, &b, None, &opts);
        if expect_eligible {
            assert!(res.converged, "{key}: {:?}", res.termination);
        } else {
            assert_eq!(
                res.termination,
                Termination::Unsupported,
                "{key}: ineligible variant must reject the sweep request"
            );
            assert_eq!(res.iterations, 0, "{key}: rejection must do no work");
        }
    }
    assert_eq!(seen, registry::VARIANT_COUNT);
}

/// Eligible variants must also reject configurations whose unfused bits
/// the sweep schedule cannot reproduce: order-preserving dot modes, the
/// reference kernel policy, and mixed precision.
#[test]
fn eligible_variants_reject_unsupported_configurations() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    for (vkey, variant) in eligible_variants() {
        let cases: Vec<(&str, SolveOptions)> = vec![
            (
                "serial-dot",
                base_opts(1)
                    .with_dot_mode(DotMode::Serial)
                    .with_sweep_policy(SweepPolicy::WholeIteration),
            ),
            (
                "kahan-dot",
                base_opts(1)
                    .with_dot_mode(DotMode::Kahan)
                    .with_sweep_policy(SweepPolicy::WholeIteration),
            ),
            (
                "reference-kernels",
                base_opts(1)
                    .with_kernel_policy(KernelPolicy::Reference)
                    .with_sweep_policy(SweepPolicy::WholeIteration),
            ),
            (
                "mixed-precision",
                base_opts(1)
                    .with_precision(Precision::Mixed)
                    .with_sweep_policy(SweepPolicy::WholeIteration),
            ),
            (
                "checksum",
                base_opts(1)
                    .with_reduction_checksum(true)
                    .with_sweep_policy(SweepPolicy::WholeIteration),
            ),
        ];
        for (ckey, opts) in cases {
            let res = variant.solve(&a, &b, None, &opts);
            assert_eq!(
                res.termination,
                Termination::Unsupported,
                "{vkey}/{ckey}: must reject"
            );
            assert_eq!(
                res.iterations, 0,
                "{vkey}/{ckey}: rejection must do no work"
            );
        }
    }
}

/// An operator with no sweep decomposition (here: a dense matrix) rejects
/// even on an eligible variant.
#[test]
fn non_sweepable_operator_rejects() {
    let a = vr_linalg::DenseMatrix::identity(24);
    let b = vec![1.0; 24];
    let res = StandardCg::new().solve(
        &a,
        &b,
        None,
        &base_opts(1).with_sweep_policy(SweepPolicy::WholeIteration),
    );
    assert_eq!(res.termination, Termination::Unsupported);
}
