//! Integration: the symbolic (*) derivation, the numeric moment window,
//! and real CG must all tell the same story.

use cg_lookahead::cg::recurrence::moments::MomentWindow;
use cg_lookahead::cg::recurrence::symbolic::Derivation;
use cg_lookahead::linalg::gen;
use cg_lookahead::linalg::kernels::{axpy, dot_serial, xpay, DotMode};
use cg_lookahead::linalg::CsrMatrix;

/// Run standard CG from (r, p), returning per-step (λ, α).
fn cg_steps(a: &CsrMatrix, r: &mut [f64], p: &mut [f64], steps: usize) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(steps);
    let mut rr = dot_serial(r, r);
    for _ in 0..steps {
        let w = a.spmv(p);
        let lambda = rr / dot_serial(p, &w);
        axpy(-lambda, &w, r);
        let rr_new = dot_serial(r, r);
        let alpha = rr_new / rr;
        xpay(r, alpha, p);
        rr = rr_new;
        out.push((lambda, alpha));
    }
    out
}

fn families(a: &CsrMatrix, r: &[f64], p: &[f64], k: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut z = vec![r.to_vec()];
    for i in 1..=k {
        let next = a.spmv(&z[i - 1]);
        z.push(next);
    }
    let mut w = vec![p.to_vec()];
    for i in 1..=k + 1 {
        let next = a.spmv(&w[i - 1]);
        w.push(next);
    }
    (z, w)
}

#[test]
fn star_relation_equals_window_evolution_equals_direct_cg() {
    let a = gen::rand_spd(30, 4, 2.0, 55);
    for k in 1..=4 {
        // base state: a few CG steps in
        let mut r = gen::rand_vector(30, 56);
        let mut p = r.clone();
        cg_steps(&a, &mut r, &mut p, 3);

        // 1) build the base moment window directly
        let (z, w) = families(&a, &r, &p, k);
        let m = 2 * k;
        let (win0, _) = MomentWindow::direct(&z, &w, m, DotMode::Serial);

        // star_pap needs μ up to order 2k+1: μ_{2k+1} = (z_k, A·z_k)
        let mut mu_ext = win0.mu.clone();
        mu_ext.push(dot_serial(&z[k], &a.spmv(&z[k])));

        // 2) advance real CG k steps, recording parameters
        let params = cg_steps(&a, &mut r, &mut p, k);
        let lams: Vec<f64> = params.iter().map(|&(l, _)| l).collect();
        let alfs: Vec<f64> = params.iter().map(|&(_, al)| al).collect();

        // 3) symbolic star relation evaluated on the base window
        let d = Derivation::run(k);
        let point = d.param_point(&lams, &alfs);
        let rr_star = d.star_rr().eval(&point, &win0.mu, &win0.nu, &win0.sigma);
        let pap_star = d.star_pap().eval(&point, &mu_ext, &win0.nu, &win0.sigma);

        // 4) numeric window stepped k times with the same parameters and
        //    NO top-entry replenishment: each step consumes two orders from
        //    the top (leaving NaN there), and with window order m = 2k the
        //    low orders survive exactly k steps — the paper's slack.
        let mut win = win0.clone();
        for &(lambda, alpha) in &params {
            let mu_new = win.mu_step(lambda);
            win.finish_step(mu_new, lambda, alpha);
        }

        // 5) directly computed ground truth at the final state
        let rr_direct = dot_serial(&r, &r);
        let w1 = a.spmv(&p);
        let pap_direct = dot_serial(&p, &w1);

        assert!(
            (rr_star - rr_direct).abs() <= 1e-7 * (1.0 + rr_direct.abs()),
            "k={k}: star (r,r) {rr_star} vs direct {rr_direct}"
        );
        assert!(
            (pap_star - pap_direct).abs() <= 1e-7 * (1.0 + pap_direct.abs()),
            "k={k}: star (p,Ap) {pap_star} vs direct {pap_direct}"
        );
        // the stepped window's low orders agree with ground truth as well
        assert!(
            (win.mu[0] - rr_direct).abs() <= 1e-6 * (1.0 + rr_direct.abs()),
            "k={k}: window μ₀ {} vs direct {rr_direct}",
            win.mu[0]
        );
    }
}

#[test]
fn derived_k1_coefficients_match_the_moment_recurrence() {
    // The k=1 star relation must be literally the μ-update of the window:
    // μ₀' = μ₀ − 2λν₁ + λ²σ₂.
    let d = Derivation::run(1);
    let star = d.star_rr();
    let (lam, point) = (0.37, vec![0.37, 0.0]);
    // synthetic moments
    let mu = [2.0, 0.0, 0.0];
    let nu = [0.0, 5.0, 0.0];
    let sigma = [0.0, 0.0, 7.0];
    let star_val = star.eval(&point, &mu, &nu, &sigma);
    let window_val = mu[0] - 2.0 * lam * nu[1] + lam * lam * sigma[2];
    assert!((star_val - window_val).abs() < 1e-14);
}

#[test]
fn degree_audit_matches_paper_for_deeper_k() {
    // Extended audit beyond the unit tests: k up to 7 (the derivation is
    // exponential in k in term count, so 7 is still fast).
    for k in 6..=7 {
        let d = Derivation::run(k);
        assert_eq!(d.star_rr().max_degree_per_parameter(), 2, "k={k}");
        assert!(d.star_pap().max_degree_per_parameter() <= 2, "k={k}");
    }
}
