//! Golden-trace regression tests.
//!
//! Every variant solves one fixed Poisson problem and its per-iteration
//! scalar trace — the residual-norm sequence, stored as exact f64 bit
//! patterns — is compared against a checked-in golden file. The α/λ/β
//! scalars of each iteration are rational functions of this rr stream, so
//! pinning the rr bits pins the whole scalar recurrence.
//!
//! When an *intentional* numerical change lands, regenerate with:
//!
//! ```text
//! REGENERATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the diff of `tests/golden/` like any other code change.

use cg_lookahead::cg::registry::{keyed_variants, VARIANT_COUNT};
use cg_lookahead::cg::SolveOptions;
use cg_lookahead::linalg::gen;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Render a solve as the golden text format: a header with iteration count
/// and termination, then one residual norm per line as hex f64 bits (the
/// decimal rendering in the trailing comment is informational only).
fn render_trace(res: &cg_lookahead::cg::SolveResult) -> String {
    let mut out = String::new();
    writeln!(out, "iterations {}", res.iterations).unwrap();
    writeln!(out, "termination {:?}", res.termination).unwrap();
    for v in &res.residual_norms {
        writeln!(out, "{:016x} # {v:.17e}", v.to_bits()).unwrap();
    }
    out
}

#[test]
fn scalar_traces_match_golden_files() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    let opts = SolveOptions::default().with_tol(1e-8);
    let regen = std::env::var_os("REGENERATE_GOLDEN").is_some();
    let dir = golden_dir();
    let mut mismatches = Vec::new();

    let variants = keyed_variants(&a);
    assert_eq!(variants.len(), VARIANT_COUNT, "registry drifted");
    for (key, solver) in variants {
        let res = solver.solve(&a, &b, None, &opts);
        assert!(res.converged, "{key}: {:?}", res.termination);
        let trace = render_trace(&res);
        let path = dir.join(format!("{key}.txt"));
        if regen {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &trace).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{key}: missing golden file {} ({e}); run with REGENERATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        if golden != trace {
            // report the first differing line for a readable failure
            let diff = golden
                .lines()
                .zip(trace.lines())
                .enumerate()
                .find(|(_, (g, t))| g != t)
                .map(|(i, (g, t))| format!("line {}: golden `{g}` vs actual `{t}`", i + 1))
                .unwrap_or_else(|| {
                    format!(
                        "length: golden {} vs actual {} lines",
                        golden.lines().count(),
                        trace.lines().count()
                    )
                });
            mismatches.push(format!("{key}: {diff}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden trace drift (REGENERATE_GOLDEN=1 to accept intentional changes):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_files_are_committed_for_every_variant() {
    // guards against a variant silently dropping out of the golden sweep
    let a = gen::poisson2d(4);
    for (key, _) in keyed_variants(&a) {
        let path = golden_dir().join(format!("{key}.txt"));
        assert!(
            path.is_file() || std::env::var_os("REGENERATE_GOLDEN").is_some(),
            "no golden file for `{key}` at {}",
            path.display()
        );
    }
}
