//! Differential suite: the SIMD backend must be unobservable.
//!
//! The lane-blocked reduction layout (8 accumulators, element `i` feeding
//! accumulator `i mod 8`, one fixed `combine8` tree) is the contract that
//! lets `SimdPolicy` be a pure performance knob: scalar, AVX2, and AVX-512
//! produce the same bits for every leaf kernel, every input length, and
//! every whole solve. This suite pins that contract from the outside —
//! through the facade, at every `DotMode`, on adversarial values
//! (subnormals, signed zeros, NaN payloads), and across the full variant
//! registry — so a vectorization "optimization" that reassociates a sum
//! shows up as a red diff here, not as a mystery divergence in a trace.

use cg_lookahead::cg::registry::keyed_variants;
use cg_lookahead::cg::{SimdPolicy, SolveOptions, SolveResult};
use cg_lookahead::linalg::gen;
use cg_lookahead::linalg::kernels::{self, DotMode};
use cg_lookahead::par::simd::{self, SimdLevel};

/// Deterministic xorshift values in roughly [-1, 1] with varied exponents.
fn data(len: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let m = (s >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            let scale = 10f64.powi((s % 7) as i32 - 3);
            (m - 0.5) * scale
        })
        .collect()
}

fn data_f32(len: usize, seed: u64) -> Vec<f32> {
    data(len, seed).into_iter().map(|x| x as f32).collect()
}

/// The distinct levels available on this host, scalar first. On machines
/// without AVX the list degenerates to `[Scalar]` and the suite still
/// passes — vacuously for the cross-level comparisons, which is exactly
/// the scalar-fallback guarantee.
fn levels() -> Vec<SimdLevel> {
    let mut out = vec![SimdLevel::Scalar];
    for lvl in [SimdLevel::Avx2, SimdLevel::Avx512] {
        let eff = simd::clamp(lvl);
        if !out.contains(&eff) {
            out.push(eff);
        }
    }
    out
}

/// Lengths straddling the 8-lane blocks and the 256-element tree leaves:
/// empty, sub-block, odd, around one block, around a leaf, and large+odd.
const LENGTHS: &[usize] = &[0, 1, 2, 3, 7, 8, 9, 17, 255, 256, 257, 1000, 4096, 4097];

#[test]
fn f64_leaf_kernels_bit_identical_across_levels() {
    for &n in LENGTHS {
        let x = data(n, 1);
        let y = data(n, 2);
        let z = data(n, 3);
        let run = |lvl: SimdLevel| {
            simd::with_level(lvl, || {
                let mut acc: Vec<u64> = Vec::new();
                acc.push(simd::leaf_dot(&x, &y).to_bits());
                acc.push(simd::leaf_sum(&x).to_bits());
                let (d0, d1) = simd::leaf_dot2(&x, &y, &z);
                acc.push(d0.to_bits());
                acc.push(d1.to_bits());

                let (mut xv, mut rv) = (x.clone(), y.clone());
                acc.push(simd::leaf_update_xr(0.37, &y, &z, &mut xv, &mut rv).to_bits());
                acc.extend(xv.iter().chain(&rv).map(|v| v.to_bits()));

                let mut yv = y.clone();
                acc.push(simd::leaf_axpy_dot(-1.25, &x, &mut yv, &z).to_bits());
                acc.extend(yv.iter().map(|v| v.to_bits()));

                let mut yv = y.clone();
                acc.push(simd::leaf_axpy_norm2_sq(0.5, &x, &mut yv).to_bits());
                let mut yv = y.clone();
                acc.push(simd::leaf_xpay_norm2_sq(&x, -0.75, &mut yv).to_bits());
                acc.extend(yv.iter().map(|v| v.to_bits()));

                let mut wv = vec![0.0; n];
                for nt in [false, true] {
                    acc.push(simd::leaf_waxpby_dot(1.5, &x, -0.5, &y, &mut wv, &z, nt).to_bits());
                    acc.extend(wv.iter().map(|v| v.to_bits()));
                }
                acc
            })
        };
        let lvls = levels();
        let base = run(lvls[0]);
        for &lvl in &lvls[1..] {
            assert_eq!(
                base,
                run(lvl),
                "n = {n}: {} diverged from scalar",
                lvl.name()
            );
        }
    }
}

#[test]
fn f32_widening_leaves_bit_identical_across_levels() {
    for &n in LENGTHS {
        let x = data_f32(n, 4);
        let y = data_f32(n, 5);
        let z = data_f32(n, 6);
        let run = |lvl: SimdLevel| {
            simd::with_level(lvl, || {
                let mut acc: Vec<u64> = Vec::new();
                acc.push(simd::leaf_dot_f32(&x, &y).to_bits());
                let (d0, d1) = simd::leaf_dot2_f32(&x, &y, &z);
                acc.push(d0.to_bits());
                acc.push(d1.to_bits());

                let (mut xv, mut rv) = (x.clone(), y.clone());
                acc.push(simd::leaf_update_xr_f32(0.37, &y, &z, &mut xv, &mut rv).to_bits());
                acc.extend(xv.iter().chain(&rv).map(|v| u64::from(v.to_bits())));

                let mut yv = y.clone();
                acc.push(simd::leaf_axpy_dot_f32(-1.25, &x, &mut yv, &z).to_bits());
                let mut yv = y.clone();
                acc.push(simd::leaf_axpy_norm2_sq_f32(0.5, &x, &mut yv).to_bits());
                let mut yv = y.clone();
                acc.push(simd::leaf_xpay_norm2_sq_f32(&x, -0.75, &mut yv).to_bits());
                acc.extend(yv.iter().map(|v| u64::from(v.to_bits())));
                acc
            })
        };
        let lvls = levels();
        let base = run(lvls[0]);
        for &lvl in &lvls[1..] {
            assert_eq!(
                base,
                run(lvl),
                "n = {n}: f32 {} diverged from scalar",
                lvl.name()
            );
        }
    }
}

/// Per-`DotMode` contract: `Tree` (and `Serial`, which never touches the
/// lane layout) must be exact across levels; `Kahan` is compensated
/// sequential summation, also level-invariant, but the suite only demands
/// 1e-14 relative agreement so a future vectorized-Kahan backend has room.
#[test]
fn dot_modes_across_levels_tree_exact_kahan_close() {
    for &n in &[3usize, 17, 255, 257, 4097] {
        let x = data(n, 7);
        let y = data(n, 8);
        for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
            let vals: Vec<f64> = levels()
                .into_iter()
                .map(|lvl| simd::with_level(lvl, || kernels::dot(mode, &x, &y)))
                .collect();
            for v in &vals[1..] {
                match mode {
                    DotMode::Kahan => {
                        let tol = 1e-14 * vals[0].abs().max(1e-300);
                        assert!(
                            (v - vals[0]).abs() <= tol,
                            "n = {n} {mode:?}: {} vs {} beyond 1e-14",
                            v,
                            vals[0]
                        );
                    }
                    _ => assert_eq!(
                        v.to_bits(),
                        vals[0].to_bits(),
                        "n = {n} {mode:?}: bits diverged across levels"
                    ),
                }
            }
        }
    }
}

/// Subnormals, signed zeros, and NaN payloads take the exact same path
/// through every backend: the lane-blocked layout never reassociates, so
/// even non-finite propagation is bit-reproducible.
#[test]
fn adversarial_values_bit_identical_across_levels() {
    let mut x = data(515, 9);
    let mut y = data(515, 10);
    // a subnormal run straddling a lane block
    for i in 40..60 {
        x[i] = f64::MIN_POSITIVE / (i as f64 + 2.0);
        y[i] = f64::MIN_POSITIVE * (i as f64 - 49.5);
    }
    // signed zeros in both operands
    x[71] = 0.0;
    y[71] = -0.0;
    x[72] = -0.0;
    y[72] = -0.0;
    // huge/tiny cancellation pairs
    x[100] = 1e300;
    y[100] = 1e-300;
    x[101] = -1e300;
    y[101] = 1e-300;
    let lvls = levels();

    let dots: Vec<u64> = lvls
        .iter()
        .map(|&lvl| simd::with_level(lvl, || simd::leaf_dot(&x, &y).to_bits()))
        .collect();
    assert!(
        dots.windows(2).all(|w| w[0] == w[1]),
        "finite adversarial dot"
    );

    // NaN in one lane: the same payload must come out of every backend
    x[300] = f64::from_bits(0x7ff8_0000_0000_beef);
    let nans: Vec<u64> = lvls
        .iter()
        .map(|&lvl| simd::with_level(lvl, || simd::leaf_dot(&x, &y).to_bits()))
        .collect();
    assert!(
        f64::from_bits(nans[0]).is_nan(),
        "NaN input must produce NaN"
    );
    assert!(
        nans.windows(2).all(|w| w[0] == w[1]),
        "NaN propagation diverged across levels: {nans:x?}"
    );

    // signed-zero preservation in the elementwise kernels
    for &lvl in &lvls {
        simd::with_level(lvl, || {
            let mut w = vec![0.0f64; 9];
            simd::leaf_waxpby(1.0, &[-0.0; 9], 1.0, &[-0.0; 9], &mut w, false);
            assert!(
                w.iter().all(|v| v.to_bits() == (-0.0f64).to_bits()),
                "{}: -0.0 + -0.0 must stay -0.0",
                lvl.name()
            );
        });
    }
}

fn bits(r: &SolveResult) -> (Vec<u64>, Vec<u64>) {
    (
        r.x.iter().map(|v| v.to_bits()).collect(),
        r.residual_norms.iter().map(|v| v.to_bits()).collect(),
    )
}

/// Whole-solve contract: for every registered variant under
/// `DotMode::Tree`, a solve with `SimdPolicy::Auto` produces the same
/// iterate and residual trace no matter which ambient lane width is
/// installed, and the pinned `Scalar`/`Simd` policies match it.
#[test]
fn whole_solve_traces_bit_identical_for_all_registry_variants() {
    let a = gen::poisson2d(16);
    let b = gen::poisson2d_rhs(16);
    let opts = SolveOptions::default()
        .with_tol(1e-10)
        .with_max_iters(300)
        .with_dot_mode(DotMode::Tree);
    for (key, solver) in keyed_variants(&a) {
        let base = bits(&solver.solve(
            &a,
            &b,
            None,
            &opts.clone().with_simd_policy(SimdPolicy::Scalar),
        ));
        // Auto under every ambient level
        for lvl in levels() {
            let got = simd::with_level(lvl, || bits(&solver.solve(&a, &b, None, &opts)));
            assert_eq!(
                base,
                got,
                "{key}: Auto at ambient {} diverged from pinned scalar",
                lvl.name()
            );
        }
        // pinned Simd
        let got = bits(&solver.solve(
            &a,
            &b,
            None,
            &opts.clone().with_simd_policy(SimdPolicy::Simd),
        ));
        assert_eq!(base, got, "{key}: SimdPolicy::Simd diverged from Scalar");
    }
}
