//! Differential lockdown: a depth-1 deep pipeline IS Ghysels-Vanroose.
//!
//! `DeepPipelinedCg::new(1)` delegates to the same `solve_gv` loop as
//! `PipelinedCg`, and this suite pins that equivalence at the bit level —
//! across dot modes, kernel policies, thread widths, warm starts, and
//! recovery configurations — so the delegation (and any future refactor
//! of the shared loop) cannot silently fork the two entry points.

use cg_lookahead::cg::baselines::PipelinedCg;
use cg_lookahead::cg::pipelined_deep::DeepPipelinedCg;
use cg_lookahead::cg::{CgVariant, KernelPolicy, SolveOptions, SolveResult};
use cg_lookahead::linalg::gen;
use cg_lookahead::linalg::kernels::DotMode;
use cg_lookahead::par::Team;
use std::sync::Arc;

fn assert_bitwise_equal(a: &SolveResult, b: &SolveResult, ctx: &str) {
    assert_eq!(a.termination, b.termination, "{ctx}: termination");
    assert_eq!(a.iterations, b.iterations, "{ctx}: iterations");
    assert_eq!(
        a.residual_norms.len(),
        b.residual_norms.len(),
        "{ctx}: trace length"
    );
    for (i, (x, y)) in a.residual_norms.iter().zip(&b.residual_norms).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: residual bits diverge at iteration {i}: {x:e} vs {y:e}"
        );
    }
    for (i, (x, y)) in a.x.iter().zip(&b.x).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: x[{i}] bits diverge");
    }
}

#[test]
fn depth1_matches_pipelined_across_modes_and_policies() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
        for policy in [KernelPolicy::Fused, KernelPolicy::Reference] {
            let opts = SolveOptions::default()
                .with_tol(1e-9)
                .with_dot_mode(mode)
                .with_kernel_policy(policy);
            let gv = PipelinedCg::new().solve(&a, &b, None, &opts);
            let d1 = DeepPipelinedCg::new(1).solve(&a, &b, None, &opts);
            assert_bitwise_equal(&gv, &d1, &format!("{mode:?}/{policy:?}"));
        }
    }
}

#[test]
fn depth1_matches_pipelined_across_thread_widths() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    for width in [1usize, 2, 4] {
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_dot_mode(DotMode::Tree)
            .with_team(Arc::new(Team::new(width)));
        let gv = PipelinedCg::new().solve(&a, &b, None, &opts);
        let d1 = DeepPipelinedCg::new(1).solve(&a, &b, None, &opts);
        assert_bitwise_equal(&gv, &d1, &format!("width {width}"));
    }
}

#[test]
fn depth1_matches_pipelined_on_warm_start_and_anisotropic() {
    let a = gen::anisotropic2d(12, 0.05);
    let b = gen::rand_vector(144, 11);
    let x0 = gen::rand_vector(144, 3);
    let opts = SolveOptions::default().with_tol(1e-8);
    let gv = PipelinedCg::new().solve(&a, &b, Some(&x0), &opts);
    let d1 = DeepPipelinedCg::new(1).solve(&a, &b, Some(&x0), &opts);
    assert_bitwise_equal(&gv, &d1, "warm-start anisotropic");
}

#[test]
fn depth1_matches_pipelined_under_checkpointing() {
    let a = gen::poisson2d(12);
    let b = gen::poisson2d_rhs(12);
    let policy = cg_lookahead::cg::resilience::RecoveryPolicy::default()
        .with_checkpoint_period(8)
        .with_true_residual_period(0);
    let opts = SolveOptions::default().with_tol(1e-9).with_recovery(policy);
    let gv = PipelinedCg::new().solve(&a, &b, None, &opts);
    let d1 = DeepPipelinedCg::new(1).solve(&a, &b, None, &opts);
    assert_bitwise_equal(&gv, &d1, "checkpointed");
}

#[test]
fn depth1_matches_pipelined_op_counts() {
    // the delegation must not even diverge in its instrumentation
    let a = gen::poisson2d(10);
    let b = gen::poisson2d_rhs(10);
    let opts = SolveOptions::default().with_tol(1e-9);
    let gv = PipelinedCg::new().solve(&a, &b, None, &opts);
    let d1 = DeepPipelinedCg::new(1).solve(&a, &b, None, &opts);
    assert_eq!(gv.counts.matvecs, d1.counts.matvecs);
    assert_eq!(gv.counts.dots, d1.counts.dots);
    assert_eq!(gv.counts.vector_ops, d1.counts.vector_ops);
    assert_eq!(gv.counts.scalar_ops, d1.counts.scalar_ops);
}
