//! Cross-variant conformance: one table, every registered solver, every
//! contract.
//!
//! The rows come from [`cg_lookahead::cg::registry::keyed_variants`] — the
//! same canonical list the golden traces and the E21 stability shoot-out
//! sweep — so a solver added to the crate is automatically held to every
//! column here, and a solver missing from the registry trips the
//! [`VARIANT_COUNT`] assertion. The columns:
//!
//! 1. **SPD convergence** — converges on well- and ill-conditioned SPD
//!    systems and the claimed convergence is corroborated by the *true*
//!    residual `b − A·x`, not just the recurrence's internal scalar.
//! 2. **Honest termination** — on indefinite and singular operators a
//!    variant may break down or run out of budget, but must never report
//!    `Converged` while the true residual says otherwise.
//! 3. **Tracing is observation** — an attached tracer changes no bits.
//! 4. **Width invariance** — under the order-preserving `Tree` reduction,
//!    team widths 1/2/4 produce identical bits.
//! 5. **Fused ≡ Reference** — the fused kernel policy matches the two-pass
//!    reference policy bitwise under Serial/Tree, to 1e-14 under Kahan.
//! 6. **Zero hot-path allocations** — after warm-up, extra iterations
//!    allocate nothing (counting global allocator, 10- vs 40-iteration
//!    budgets).
//! 7. **Mixed precision** — eligible variants converge to an
//!    f32-attainable floor with the claim confirmed against the f64 true
//!    residual (never false convergence); ineligible variants reject with
//!    [`Termination::Unsupported`] and zero iterations, not a silent f64
//!    fallback.
//! 8. **Sweep policy** — variants flagged `sweep_eligible` produce bits
//!    identical to the per-kernel fused path under
//!    `SweepPolicy::WholeIteration`; the rest reject with
//!    [`Termination::Unsupported`] and zero iterations.
//!
//! The allocation column needs a quiet window, so a process-wide mutex
//! serializes every test in this binary against the measured solves.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cg_lookahead::cg::registry::{keyed_variants, VARIANT_COUNT};
use cg_lookahead::cg::{KernelPolicy, Precision, SolveOptions, SolveResult, Termination};
use cg_lookahead::linalg::kernels::{self, DotMode};
use cg_lookahead::linalg::{gen, CsrMatrix};
use cg_lookahead::obs::Tracer;
use cg_lookahead::par::Team;

// ---------------------------------------------------------------- plumbing

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the tests in this binary: the allocation column measures a
/// global counter, and libtest's parallel runner would otherwise bleed
/// another test's allocations into the window.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn assert_bit_identical(a: &SolveResult, b: &SolveResult, ctx: &str) {
    assert_eq!(a.termination, b.termination, "{ctx}: termination");
    assert_eq!(a.iterations, b.iterations, "{ctx}: iterations");
    assert_eq!(
        bits(&a.residual_norms),
        bits(&b.residual_norms),
        "{ctx}: residual history bits"
    );
    assert_eq!(bits(&a.x), bits(&b.x), "{ctx}: solution bits");
}

/// Singular SPSD operator: the 1-D Neumann Laplacian (row sums zero, the
/// constant vector spans the nullspace). Its diagonal is strictly positive
/// so the registry's Jacobi variant still constructs.
fn neumann_laplacian(n: usize) -> CsrMatrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row = vec![0.0; n];
            row[i] = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            if i > 0 {
                row[i - 1] = -1.0;
            }
            if i + 1 < n {
                row[i + 1] = -1.0;
            }
            row
        })
        .collect();
    CsrMatrix::from_dense(&rows, 0.0)
}

// ----------------------------------------------------- column 1: converge

#[test]
fn every_variant_converges_on_spd_problems_with_corroborated_residual() {
    let _g = gate();
    let problems: Vec<(&str, CsrMatrix, Vec<f64>)> = vec![
        ("poisson2d", gen::poisson2d(16), gen::poisson2d_rhs(16)),
        (
            "anisotropic2d",
            gen::anisotropic2d(12, 0.05),
            gen::rand_vector(144, 17),
        ),
        (
            "rand_spd",
            gen::rand_spd(300, 7, 4.0, 21),
            gen::rand_vector(300, 9),
        ),
    ];
    for (pname, a, b) in &problems {
        let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(2000);
        let bnorm = kernels::norm2(b);
        let variants = keyed_variants(a);
        assert_eq!(variants.len(), VARIANT_COUNT, "registry drifted");
        for (key, solver) in variants {
            let res = solver.solve(a, b, None, &opts);
            assert!(
                res.converged,
                "{key} on {pname}: {:?} after {} iterations",
                res.termination, res.iterations
            );
            let rel = res.true_residual(a, b) / bnorm;
            assert!(
                rel < 1e-6,
                "{key} on {pname}: claimed convergence but true relative \
                 residual is {rel:e}"
            );
        }
    }
}

// ------------------------------------------------------ column 2: honesty

#[test]
fn no_variant_claims_false_convergence_on_indefinite_or_singular() {
    let _g = gate();
    // indefinite: eigenvalues 0.2 − 2·cos(kπ/(n+1)) straddle zero
    let indefinite = gen::tridiag_toeplitz(48, 0.2, -1.0);
    // singular and inconsistent: a random rhs has a nullspace component
    let singular = neumann_laplacian(48);
    let b = gen::rand_vector(48, 5);
    let bnorm = kernels::norm2(&b);
    for (mname, a) in [("indefinite", &indefinite), ("singular", &singular)] {
        let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(400);
        for (key, solver) in keyed_variants(a) {
            let res = solver.solve(a, &b, None, &opts);
            // Breakdown or MaxIterations are both honest outcomes here;
            // a Converged claim must be backed by the actual residual.
            if res.converged {
                let rel = res.true_residual(a, &b) / bnorm;
                assert!(
                    rel < 1e-5,
                    "{key} on {mname}: reported {:?} but true relative \
                     residual is {rel:e}",
                    res.termination
                );
            }
        }
    }
}

// ------------------------------------------------------ column 3: tracing

#[test]
fn attached_tracer_changes_no_bits_for_any_variant() {
    let _g = gate();
    let a = gen::poisson2d(14);
    let b = gen::poisson2d_rhs(14);
    for threads in [1usize, 2] {
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_dot_mode(DotMode::Tree)
            .with_team(Arc::new(Team::new(threads)));
        for (key, solver) in keyed_variants(&a) {
            let plain = solver.solve(&a, &b, None, &opts);
            let tracer = Arc::new(Tracer::for_width(threads));
            let traced_opts = opts.clone().with_tracer(Arc::clone(&tracer));
            let traced = solver.solve(&a, &b, None, &traced_opts);
            assert_bit_identical(&plain, &traced, &format!("{key} (threads {threads})"));
            assert!(
                !tracer.drain().spans.is_empty(),
                "{key} (threads {threads}): traced solve recorded no spans"
            );
        }
    }
}

// ------------------------------------------------- column 4: width invariance

#[test]
fn thread_width_is_bit_invariant_under_tree_reduction() {
    let _g = gate();
    let a = gen::anisotropic2d(12, 0.1);
    let b = gen::rand_vector(144, 23);
    let solve_at = |width: usize| {
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_dot_mode(DotMode::Tree)
            .with_team(Arc::new(Team::new(width)));
        keyed_variants(&a)
            .into_iter()
            .map(|(key, solver)| (key, solver.solve(&a, &b, None, &opts)))
            .collect::<Vec<_>>()
    };
    let base = solve_at(1);
    for width in [2usize, 4] {
        for ((key, one), (_, wide)) in base.iter().zip(solve_at(width)) {
            assert_bit_identical(one, &wide, &format!("{key} (width 1 vs {width})"));
        }
    }
}

// ------------------------------------------------ column 5: fused policy

#[test]
fn fused_policy_matches_reference_for_every_variant_and_dot_mode() {
    let _g = gate();
    let a = gen::poisson2d(14);
    let b = gen::poisson2d_rhs(14);
    for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
        let base = SolveOptions::default().with_tol(1e-8).with_dot_mode(mode);
        for (key, solver) in keyed_variants(&a) {
            let reference = solver.solve(
                &a,
                &b,
                None,
                &base.clone().with_kernel_policy(KernelPolicy::Reference),
            );
            let fused = solver.solve(
                &a,
                &b,
                None,
                &base.clone().with_kernel_policy(KernelPolicy::Fused),
            );
            let ctx = format!("{key} / {mode:?}");
            if matches!(mode, DotMode::Serial | DotMode::Tree) {
                assert_bit_identical(&reference, &fused, &ctx);
            } else {
                // Kahan: the API contract promises 1e-14 relative agreement
                assert_eq!(reference.iterations, fused.iterations, "{ctx}: iterations");
                for (i, (r, f)) in reference
                    .residual_norms
                    .iter()
                    .zip(&fused.residual_norms)
                    .enumerate()
                {
                    assert!(
                        (r - f).abs() <= 1e-14 * (1.0 + r.abs()),
                        "{ctx}: norm[{i}] {r} vs {f}"
                    );
                }
                for (i, (r, f)) in reference.x.iter().zip(&fused.x).enumerate() {
                    assert!(
                        (r - f).abs() <= 1e-14 * (1.0 + r.abs()),
                        "{ctx}: x[{i}] {r} vs {f}"
                    );
                }
            }
        }
    }
}

// -------------------------------------------------- column 6: allocations

#[test]
fn hot_loops_allocate_nothing_per_iteration_after_warmup() {
    let _g = gate();
    let a = gen::poisson2d(48);
    let b = gen::poisson2d_rhs(48);

    let opts = |max_iters: usize| {
        let mut o = SolveOptions::default()
            .with_tol(0.0) // never converges → exact MaxIterations run
            .with_max_iters(max_iters)
            .with_dot_mode(DotMode::Serial)
            .with_threads(1);
        o.record_residuals = false; // norms Vec must not grow per iteration
        o
    };
    // warm-up solve, then minimum over repeats: solver allocation behaviour
    // is deterministic, so the minimum strips any stray harness allocations
    let allocs_for = |solver: &dyn cg_lookahead::cg::CgVariant, max_iters: usize| {
        let o = opts(max_iters);
        let _ = solver.solve(&a, &b, None, &o);
        let mut best = u64::MAX;
        for _ in 0..3 {
            let before = ALLOC_CALLS.load(Ordering::Relaxed);
            let res = solver.solve(&a, &b, None, &o);
            let after = ALLOC_CALLS.load(Ordering::Relaxed);
            assert_eq!(
                res.termination,
                Termination::MaxIterations,
                "{}: tol=0 run must exhaust its budget",
                solver.name()
            );
            best = best.min(after - before);
        }
        best
    };

    for (key, solver) in keyed_variants(&a) {
        let short = allocs_for(solver.as_ref(), 10);
        let long = allocs_for(solver.as_ref(), 40);
        assert_eq!(
            short, long,
            "{key}: a 40-iteration solve allocated {long} times vs {short} \
             for 10 iterations — the extra 30 iterations must be \
             allocation-free"
        );
    }
}

// -------------------------------------------- column 7: mixed precision

/// Eligible variants run the mixed-precision path to an f32-attainable
/// floor and the claim is corroborated by the *f64* true residual (the
/// never-false-convergence invariant); ineligible variants reject the
/// request explicitly with zero iterations — never a silent f64 fallback
/// whose numbers the caller would misattribute.
#[test]
fn mixed_precision_converges_or_rejects_explicitly_per_eligibility() {
    let _g = gate();
    let a = gen::poisson2d(16);
    let b = gen::poisson2d_rhs(16);
    let bnorm = kernels::norm2(&b);
    let opts = SolveOptions::default()
        .with_tol(1e-5) // comfortably above the f32 recurrence floor
        .with_max_iters(2000)
        .with_precision(Precision::Mixed);
    let variants = keyed_variants(&a);
    assert_eq!(variants.len(), VARIANT_COUNT, "registry drifted");
    let mut eligible = 0;
    for (key, solver) in variants {
        let res = solver.solve(&a, &b, None, &opts);
        if solver.mixed_eligible() {
            eligible += 1;
            assert!(
                res.converged,
                "{key}: mixed-eligible but {:?} after {} iterations",
                res.termination, res.iterations
            );
            let rel = res.true_residual(&a, &b) / bnorm;
            assert!(
                rel < 1e-4,
                "{key}: mixed claimed convergence but f64 true relative \
                 residual is {rel:e}"
            );
        } else {
            assert_eq!(
                res.termination,
                Termination::Unsupported,
                "{key}: mixed-ineligible must reject explicitly, got {:?}",
                res.termination
            );
            assert_eq!(res.iterations, 0, "{key}: rejection must do no work");
            assert!(!res.converged);
            assert!(
                res.x.iter().all(|&v| v == 0.0),
                "{key}: rejection must not scribble on the iterate"
            );
        }
    }
    assert!(
        eligible >= 3,
        "expected standard/overlap-k1/pipelined to be mixed-eligible, got {eligible}"
    );
}

// -------------------------------------------------- column 8: sweep policy

/// Variants flagged `sweep_eligible` must run the whole-iteration sweep
/// bit-identically to the per-kernel fused path (same x, norms, iteration
/// count); every other registered variant must reject the request
/// explicitly with zero iterations — never silently fall back to the
/// per-kernel loop.
#[test]
fn sweep_policy_matches_fused_or_rejects_explicitly_per_eligibility() {
    let _g = gate();
    let a = gen::poisson2d(16);
    let b = gen::poisson2d_rhs(16);
    for threads in [1usize, 2] {
        let base = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(2000)
            .with_dot_mode(DotMode::Tree)
            .with_threads(threads);
        let variants = keyed_variants(&a);
        assert_eq!(variants.len(), VARIANT_COUNT, "registry drifted");
        let mut eligible = 0;
        for (key, solver) in variants {
            let sweep = solver.solve(
                &a,
                &b,
                None,
                &base
                    .clone()
                    .with_sweep_policy(cg_lookahead::cg::SweepPolicy::WholeIteration),
            );
            if solver.sweep_eligible() {
                eligible += 1;
                let fused = solver.solve(&a, &b, None, &base);
                assert_bit_identical(&fused, &sweep, &format!("{key} (sweep, threads {threads})"));
                assert!(sweep.converged, "{key}: {:?}", sweep.termination);
            } else {
                assert_eq!(
                    sweep.termination,
                    Termination::Unsupported,
                    "{key}: sweep-ineligible must reject explicitly, got {:?}",
                    sweep.termination
                );
                assert_eq!(sweep.iterations, 0, "{key}: rejection must do no work");
                assert!(
                    sweep.x.iter().all(|&v| v == 0.0),
                    "{key}: rejection must not scribble on the iterate"
                );
            }
        }
        assert_eq!(
            eligible, 4,
            "expected standard/overlap-k1/chronopoulos-gear/pipelined to be \
             sweep-eligible, got {eligible}"
        );
    }
}

/// Below the f32-attainable floor the mixed path must stay honest: it may
/// stagnate or exhaust its budget, but a `Converged` claim must survive
/// the f64 true-residual check at the requested tolerance.
#[test]
fn mixed_precision_never_reports_unbacked_convergence_below_f32_floor() {
    let _g = gate();
    let a = gen::poisson2d(16);
    let b = gen::poisson2d_rhs(16);
    let bnorm = kernels::norm2(&b);
    let tol = 1e-14; // unreachable with f32 working vectors
    let opts = SolveOptions::default()
        .with_tol(tol)
        .with_max_iters(800)
        .with_precision(Precision::Mixed);
    for (key, solver) in keyed_variants(&a) {
        if !solver.mixed_eligible() {
            continue;
        }
        let res = solver.solve(&a, &b, None, &opts);
        if res.converged {
            let rel = res.true_residual(&a, &b) / bnorm;
            assert!(
                rel <= 10.0 * tol,
                "{key}: mixed reported {:?} at tol {tol:e} but the f64 \
                 true relative residual is {rel:e}",
                res.termination
            );
        }
    }
}

// ------------------------------------------------ column 9: cancellation

/// A cancel flag raised before the solve starts must stop every variant at
/// its first loop top: [`Termination::Cancelled`], zero iterations, and no
/// convergence claim. This is the service-layer contract — a daemon
/// cancelling a queued job must never receive a half-trusted "converged".
#[test]
fn pre_set_cancel_flag_stops_every_variant_before_any_iteration() {
    let _g = gate();
    let a = gen::poisson2d(14);
    let b = gen::poisson2d_rhs(14);
    let flag = Arc::new(AtomicBool::new(true));
    let opts = SolveOptions::default()
        .with_tol(1e-9)
        .with_cancel_flag(Arc::clone(&flag));
    let variants = keyed_variants(&a);
    assert_eq!(variants.len(), VARIANT_COUNT, "registry drifted");
    for (key, solver) in variants {
        let res = solver.solve(&a, &b, None, &opts);
        assert_eq!(
            res.termination,
            Termination::Cancelled,
            "{key}: pre-set cancel flag must yield Cancelled"
        );
        assert!(
            !res.converged,
            "{key}: cancelled must not claim convergence"
        );
        assert_eq!(
            res.iterations, 0,
            "{key}: pre-set flag must stop before any iteration"
        );
    }
}

/// Raising the flag from the progress stream mid-solve stops every variant
/// promptly (within its pipeline depth) and the partial result stays
/// honest: cancelled, not converged, iterations no greater than the
/// uncancelled run, and the streamed (iter, residual) pairs well-formed —
/// iterations non-decreasing from 0, residuals finite and non-negative.
#[test]
fn mid_solve_cancellation_stops_promptly_with_honest_partial_state() {
    let _g = gate();
    let a = gen::poisson2d(14);
    let b = gen::poisson2d_rhs(14);
    // tol 0 never converges: the cancel is the only way out before budget
    let base = SolveOptions::default().with_tol(0.0).with_max_iters(200);
    const CUTOFF: usize = 3;
    for (key, solver) in keyed_variants(&a) {
        let full = solver.solve(&a, &b, None, &base);
        let flag = Arc::new(AtomicBool::new(false));
        let streamed: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let opts = {
            let flag = Arc::clone(&flag);
            let streamed = Arc::clone(&streamed);
            base.clone()
                .with_cancel_flag(Arc::clone(&flag))
                .with_progress(move |iter, residual| {
                    streamed.lock().unwrap().push((iter, residual));
                    if iter >= CUTOFF {
                        flag.store(true, Ordering::Relaxed);
                    }
                })
        };
        let res = solver.solve(&a, &b, None, &opts);
        assert_eq!(
            res.termination,
            Termination::Cancelled,
            "{key}: mid-solve cancel must yield Cancelled, got {:?}",
            res.termination
        );
        assert!(!res.converged, "{key}");
        assert!(
            res.iterations <= full.iterations,
            "{key}: cancelled run did {} iterations vs {} uncancelled",
            res.iterations,
            full.iterations
        );
        let events = streamed.lock().unwrap();
        assert!(!events.is_empty(), "{key}: no progress events streamed");
        assert_eq!(events[0].0, 0, "{key}: stream must start at iteration 0");
        for w in events.windows(2) {
            assert!(
                w[1].0 >= w[0].0,
                "{key}: streamed iterations regressed: {} then {}",
                w[0].0,
                w[1].0
            );
        }
        for &(it, rn) in events.iter() {
            assert!(
                rn.is_finite() && rn >= 0.0,
                "{key}: streamed residual at iter {it} is {rn}"
            );
        }
    }
}

// --------------------------------------------------- column 10: block CG

/// Block CG (the paper's spatial dual: one batched Gram reduction serves
/// s right-hand sides) converges on SPD systems for the widths the solve
/// service batches at, with every column corroborated by the true
/// residual.
#[test]
fn block_cg_converges_on_spd_for_widths_two_and_four() {
    let _g = gate();
    let problems: Vec<(&str, CsrMatrix)> = vec![
        ("poisson2d", gen::poisson2d(16)),
        ("anisotropic2d", gen::anisotropic2d(12, 0.05)),
    ];
    for (pname, a) in &problems {
        let n = a.nrows();
        for s in [2usize, 4] {
            let bs: Vec<Vec<f64>> = (0..s)
                .map(|k| gen::rand_vector(n, 100 + k as u64))
                .collect();
            let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(2000);
            let res = cg_lookahead::cg::block::BlockCg::new().solve(a, &bs, &opts);
            assert!(
                res.converged,
                "block s={s} on {pname}: {:?} after {}",
                res.termination, res.iterations
            );
            for (j, b) in bs.iter().enumerate() {
                let ax = a.spmv(&res.x[j]);
                let rnorm: f64 = b
                    .iter()
                    .zip(&ax)
                    .map(|(bi, ai)| (bi - ai) * (bi - ai))
                    .sum::<f64>()
                    .sqrt();
                let rel = rnorm / kernels::norm2(b);
                assert!(
                    rel < 1e-6,
                    "block s={s} on {pname} column {j}: true relative \
                     residual {rel:e}"
                );
            }
        }
    }
}

/// On a singular, inconsistent system block CG may break down or exhaust
/// its budget, but a `converged` claim must be backed by every column's
/// true residual — the block analogue of the honesty column.
#[test]
fn block_cg_never_claims_false_convergence_on_singular() {
    let _g = gate();
    let a = neumann_laplacian(48);
    let bs: Vec<Vec<f64>> = (0..3).map(|k| gen::rand_vector(48, 130 + k)).collect();
    let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(400);
    let res = cg_lookahead::cg::block::BlockCg::new().solve(&a, &bs, &opts);
    if res.converged {
        for (j, b) in bs.iter().enumerate() {
            let ax = a.spmv(&res.x[j]);
            let rnorm: f64 = b
                .iter()
                .zip(&ax)
                .map(|(bi, ai)| (bi - ai) * (bi - ai))
                .sum::<f64>()
                .sqrt();
            let rel = rnorm / kernels::norm2(b);
            assert!(
                rel < 1e-5,
                "block on singular: claimed convergence but column {j} \
                 true relative residual is {rel:e}"
            );
        }
    }
}

/// Under the order-preserving `Tree` reduction a block solve is
/// bit-invariant across team widths — the property the service layer
/// leans on when a degraded team finishes a batched job.
#[test]
fn block_cg_width_bit_invariant_under_tree_reduction() {
    let _g = gate();
    let a = gen::poisson2d(12);
    let n = a.nrows();
    let bs: Vec<Vec<f64>> = (0..3).map(|k| gen::rand_vector(n, 140 + k)).collect();
    let solve_at = |width: usize| {
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_dot_mode(DotMode::Tree)
            .with_team(Arc::new(Team::new(width)));
        cg_lookahead::cg::block::BlockCg::new().solve(&a, &bs, &opts)
    };
    let base = solve_at(1);
    assert!(base.converged, "{:?}", base.termination);
    for width in [2usize, 4] {
        let wide = solve_at(width);
        assert_eq!(base.termination, wide.termination, "width {width}");
        assert_eq!(base.iterations, wide.iterations, "width {width}");
        for (j, (bx, wx)) in base.x.iter().zip(&wide.x).enumerate() {
            assert_eq!(
                bits(bx),
                bits(wx),
                "width {width} column {j}: solution bits"
            );
        }
        for (j, (bh, wh)) in base
            .residual_norms
            .iter()
            .zip(&wide.residual_norms)
            .enumerate()
        {
            assert_eq!(
                bits(bh),
                bits(wh),
                "width {width} column {j}: residual history bits"
            );
        }
    }
}

/// Cancellation composes with the block solver exactly as with the
/// single-rhs variants: a pre-set flag stops the block before any
/// iteration with an honest `Cancelled`.
#[test]
fn block_cg_honours_cancellation() {
    let _g = gate();
    let a = gen::poisson2d(12);
    let n = a.nrows();
    let bs: Vec<Vec<f64>> = (0..2).map(|k| gen::rand_vector(n, 150 + k)).collect();
    let flag = Arc::new(AtomicBool::new(true));
    let opts = SolveOptions::default()
        .with_tol(1e-9)
        .with_cancel_flag(flag);
    let res = cg_lookahead::cg::block::BlockCg::new().solve(&a, &bs, &opts);
    assert_eq!(res.termination, Termination::Cancelled);
    assert!(!res.converged);
    assert_eq!(res.iterations, 0);
}
