//! End-to-end scenario: the full toolchain on one realistic workflow.
//!
//! generate → shuffle → RCM reorder → Jacobi-scale → spectral probe →
//! solve with five methods → validate against banded Cholesky → simulate
//! the parallel profile → export results. Every public subsystem of the
//! repository participates.

use cg_lookahead::cg::baselines::{ConjugateResidual, PrecondCg};
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::sstep::SStepCg;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::banded::SymBanded;
use cg_lookahead::linalg::eig::estimate_spectrum;
use cg_lookahead::linalg::kernels::{dist2, norm2};
use cg_lookahead::linalg::precond::{jacobi_scale, scale_rhs, unscale_solution, Ic0};
use cg_lookahead::linalg::reorder::{bandwidth, reverse_cuthill_mckee, Permutation};
use cg_lookahead::linalg::{gen, io};
use cg_lookahead::sim::export::{to_dot, DotOptions};
use cg_lookahead::sim::render::{gantt, GanttOptions};
use cg_lookahead::sim::{builders, MachineModel, Topology};

#[test]
fn full_pipeline() {
    // --- 1. workload: anisotropic diffusion, shuffled ordering ---
    let grid = 20;
    let a0 = gen::anisotropic2d(grid, 0.1);
    let n = a0.nrows();
    let mut rng = gen::XorShift64::new(7);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        idx.swap(i, j);
    }
    let shuffle = Permutation::from_vec(idx);
    let a_shuffled = shuffle.apply_matrix(&a0);

    // --- 2. I/O roundtrip (the "load from disk" path) ---
    let mut buf = Vec::new();
    io::write_matrix_market(&a_shuffled, &mut buf).expect("write");
    let a_loaded = io::read_matrix_market(&buf[..]).expect("read");
    assert_eq!(a_loaded, a_shuffled);

    // --- 3. RCM reordering restores a narrow band ---
    let rcm = reverse_cuthill_mckee(&a_loaded);
    let a_rcm = rcm.apply_matrix(&a_loaded);
    assert!(
        bandwidth(&a_rcm) * 4 < bandwidth(&a_loaded),
        "RCM failed: {} vs {}",
        bandwidth(&a_rcm),
        bandwidth(&a_loaded)
    );

    // --- 4. Jacobi scaling (plain-system preconditioning) ---
    let (a_hat, s) = jacobi_scale(&a_rcm).expect("SPD diag");
    let b_orig = gen::rand_vector(n, 99);
    // rhs must follow the same transformations as the matrix
    let b_shuffled = shuffle.apply_vec(&b_orig);
    let b_rcm = rcm.apply_vec(&b_shuffled);
    let b_hat = scale_rhs(&b_rcm, &s);

    // --- 5. spectral probe predicts the easier system ---
    let k_raw = estimate_spectrum(&a_rcm, 30, 3).condition();
    let k_hat = estimate_spectrum(&a_hat, 30, 3).condition();
    assert!(
        k_hat <= k_raw * 1.1,
        "scaling should not hurt: {k_hat} vs {k_raw}"
    );

    // --- 6. ground truth via banded Cholesky on the RCM system ---
    let band = SymBanded::from_csr(&a_rcm).expect("symmetric");
    let x_direct = band.solve(&b_rcm).expect("SPD");

    // --- 7. iterative solvers on the scaled system ---
    let opts = SolveOptions::default().with_tol(1e-10).with_max_iters(4000);
    let solvers: Vec<Box<dyn CgVariant>> = vec![
        Box::new(StandardCg::new()),
        Box::new(ConjugateResidual::new()),
        Box::new(LookaheadCg::new(2).with_resync(12)),
        Box::new(SStepCg::chebyshev(6)),
        Box::new(PrecondCg::new(Ic0::new(&a_hat).expect("ic0"), "pcg-ic0")),
    ];
    for solver in solvers {
        let res = solver.solve(&a_hat, &b_hat, None, &opts);
        assert!(res.converged, "{}: {:?}", solver.name(), res.termination);
        let x = unscale_solution(&res.x, &s);
        let err = dist2(&x, &x_direct) / (1.0 + norm2(&x_direct));
        assert!(
            err < 1e-6,
            "{}: ‖x − x_direct‖ rel {err:.2e}",
            solver.name()
        );
        // and map all the way back to the original ordering
        let x_orig = shuffle.unapply_vec(&rcm.unapply_vec(&x));
        let ax = a0.spmv(&x_orig);
        let mut r = vec![0.0; n];
        cg_lookahead::linalg::kernels::sub(&b_orig, &ax, &mut r);
        assert!(
            norm2(&r) < 1e-7 * norm2(&b_orig),
            "{}: residual in original ordering {}",
            solver.name(),
            norm2(&r)
        );
    }

    // --- 8. parallel profile of the winning strategy ---
    let m_ideal = MachineModel::pram();
    let m_mesh = Topology::Mesh2d { hop: 1.0 }.machine();
    let std_dag = builders::standard_cg(1 << 16, 5, 16);
    let la_dag = builders::lookahead_cg(1 << 16, 5, 16, 16);
    assert!(la_dag.steady_cycle_time(&m_ideal) < std_dag.steady_cycle_time(&m_ideal));
    assert!(la_dag.steady_cycle_time(&m_mesh) < std_dag.steady_cycle_time(&m_mesh));

    // --- 9. exports render without panicking and contain content ---
    let gantt_out = gantt(
        &la_dag.graph,
        &m_ideal,
        &GanttOptions {
            width: 40,
            iter_range: Some((8, 9)),
            skip_instant: true,
        },
    );
    assert!(gantt_out.contains('#'));
    let dot_out = to_dot(
        &la_dag.graph,
        &DotOptions {
            iter_range: Some((8, 8)),
            cluster_by_iteration: true,
        },
    );
    assert!(dot_out.starts_with("digraph"));
    assert!(dot_out.contains("cluster_8"));
}
