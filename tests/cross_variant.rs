//! Integration: every CG variant × every problem generator.
//!
//! The paper's restructurings are supposed to be *the same iteration* as
//! CG; these tests cross-check solutions between all variants and against
//! dense Cholesky on every problem family the workload generators produce.

use cg_lookahead::cg::baselines::PrecondCg;
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::registry::{self, VARIANT_COUNT};
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::kernels::norm2;
use cg_lookahead::linalg::precond::{Ic0, Ssor};
use cg_lookahead::linalg::{gen, CsrMatrix, DenseMatrix};

/// The registry's canonical list plus the extra parameterizations this
/// suite has always exercised (other look-ahead depths, SSOR-PCG). Deriving
/// from the registry means a newly registered variant is cross-checked here
/// automatically; the count assertion keeps the two from drifting apart.
fn solvers(a: &CsrMatrix) -> Vec<Box<dyn CgVariant>> {
    let mut list = registry::all_variants(a);
    assert_eq!(list.len(), VARIANT_COUNT, "registry drifted");
    list.push(Box::new(LookaheadCg::new(1).with_resync(15)));
    list.push(Box::new(LookaheadCg::new(3).with_resync(10)));
    list.push(Box::new(PrecondCg::new(
        Ssor::new(a, 1.1).expect("ssor"),
        "pcg-ssor",
    )));
    assert_eq!(list.len(), VARIANT_COUNT + 3);
    list
}

fn problems() -> Vec<(&'static str, CsrMatrix, Vec<f64>)> {
    vec![
        ("poisson1d", gen::poisson1d(60), gen::rand_vector(60, 10)),
        ("poisson2d", gen::poisson2d(12), gen::poisson2d_rhs(12)),
        ("poisson3d", gen::poisson3d(5), gen::rand_vector(125, 11)),
        (
            "anisotropic",
            gen::anisotropic2d(10, 0.1),
            gen::rand_vector(100, 12),
        ),
        (
            "random-spd",
            gen::rand_spd(80, 5, 1.5, 13),
            gen::rand_vector(80, 14),
        ),
        ("27-point", gen::poisson3d_27pt(4), gen::rand_vector(64, 15)),
    ]
}

#[test]
fn all_variants_converge_on_all_problems() {
    let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(5000);
    for (pname, a, b) in problems() {
        let bn = norm2(&b);
        for s in solvers(&a) {
            let res = s.solve(&a, &b, None, &opts);
            assert!(
                res.converged,
                "{} on {pname}: {:?} after {} iterations",
                s.name(),
                res.termination,
                res.iterations
            );
            let rel = res.true_residual(&a, &b) / bn;
            assert!(
                rel < 1e-6,
                "{} on {pname}: true relative residual {rel:.2e}",
                s.name()
            );
        }
    }
}

#[test]
fn all_variants_agree_with_cholesky_on_small_problems() {
    let a = gen::rand_spd(40, 4, 2.0, 99);
    let b = gen::rand_vector(40, 98);
    let dense = DenseMatrix::from_rows(&a.to_dense()).expect("dense");
    let exact = dense.solve_spd(&b).expect("cholesky");
    let opts = SolveOptions::default().with_tol(1e-11).with_max_iters(2000);
    for s in solvers(&a) {
        let res = s.solve(&a, &b, None, &opts);
        assert!(res.converged, "{}: {:?}", s.name(), res.termination);
        for (i, (xi, ei)) in res.x.iter().zip(&exact).enumerate() {
            assert!(
                (xi - ei).abs() < 1e-6 * (1.0 + ei.abs()),
                "{}: x[{i}] = {xi} vs exact {ei}",
                s.name()
            );
        }
    }
}

#[test]
fn variants_agree_pairwise_on_poisson2d() {
    let a = gen::poisson2d(10);
    let b = gen::poisson2d_rhs(10);
    let opts = SolveOptions::default().with_tol(1e-10);
    let reference = StandardCg::new().solve(&a, &b, None, &opts);
    for s in solvers(&a) {
        let res = s.solve(&a, &b, None, &opts);
        let d = cg_lookahead::linalg::kernels::dist2(&res.x, &reference.x);
        assert!(
            d < 1e-6 * (1.0 + norm2(&reference.x)),
            "{}: ‖x − x_std‖ = {d:.2e}",
            s.name()
        );
    }
}

#[test]
fn ic0_preconditioned_cg_beats_plain_cg_on_anisotropic() {
    let a = gen::anisotropic2d(20, 0.02);
    let b = gen::rand_vector(400, 5);
    let opts = SolveOptions::default().with_tol(1e-9).with_max_iters(5000);
    let plain = StandardCg::new().solve(&a, &b, None, &opts);
    let pcg = PrecondCg::new(Ic0::new(&a).expect("ic0"), "pcg-ic0").solve(&a, &b, None, &opts);
    assert!(plain.converged && pcg.converged);
    assert!(
        pcg.iterations * 2 < plain.iterations,
        "IC(0) {} vs plain {}",
        pcg.iterations,
        plain.iterations
    );
}

#[test]
fn warm_starts_work_across_variants() {
    let a = gen::poisson2d(10);
    let b = gen::poisson2d_rhs(10);
    let opts = SolveOptions::default().with_tol(1e-9);
    let first = StandardCg::new().solve(&a, &b, None, &opts);
    for s in solvers(&a) {
        let warm = s.solve(&a, &b, Some(&first.x), &opts);
        assert!(
            warm.converged,
            "{} warm start: {:?}",
            s.name(),
            warm.termination
        );
        assert!(
            warm.iterations <= first.iterations / 2,
            "{} warm start took {} iterations (cold {})",
            s.name(),
            warm.iterations,
            first.iterations
        );
    }
}

#[test]
fn dot_mode_does_not_change_convergence_shape() {
    use cg_lookahead::linalg::kernels::DotMode;
    let a = gen::poisson2d(10);
    let b = gen::poisson2d_rhs(10);
    for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
        let opts = SolveOptions::default().with_tol(1e-9).with_dot_mode(mode);
        let res = StandardCg::new().solve(&a, &b, None, &opts);
        assert!(res.converged, "{mode:?}");
        let la = LookaheadCg::new(2)
            .with_resync(15)
            .solve(&a, &b, None, &opts);
        assert!(la.converged, "lookahead with {mode:?}");
    }
}

#[test]
fn split_ic0_preconditioned_lookahead_and_sstep() {
    // The paper has no preconditioned formulation; the split operator
    // Â = L⁻¹AL⁻ᵀ gives one for free. The preconditioned look-ahead and
    // s-step solvers must converge in roughly PCG-IC(0)'s iteration count
    // and map back to the true solution.
    use cg_lookahead::cg::sstep::SStepCg;
    use cg_lookahead::linalg::precond::SplitIc0;

    let a = gen::anisotropic2d(16, 0.05);
    let b = gen::rand_vector(256, 21);
    let opts = SolveOptions::default().with_tol(1e-9).with_max_iters(4000);

    let plain = StandardCg::new().solve(&a, &b, None, &opts);
    let pcg = PrecondCg::new(Ic0::new(&a).expect("ic0"), "pcg-ic0").solve(&a, &b, None, &opts);
    assert!(plain.converged && pcg.converged);

    let split = SplitIc0::new(&a).expect("ic0");
    let b_hat = split.split_rhs(&b);

    for solver in [
        Box::new(LookaheadCg::new(2).with_resync(12)) as Box<dyn CgVariant>,
        Box::new(SStepCg::chebyshev(4)),
        Box::new(StandardCg::new()),
    ] {
        let res = solver.solve(&split, &b_hat, None, &opts);
        assert!(res.converged, "{}: {:?}", solver.name(), res.termination);
        // preconditioning pays: far fewer iterations than plain CG
        assert!(
            res.iterations * 2 < plain.iterations,
            "{}: {} iterations vs plain {}",
            solver.name(),
            res.iterations,
            plain.iterations
        );
        // and the mapped-back solution solves the ORIGINAL system
        let x = split.unsplit_solution(&res.x);
        let ax = a.spmv(&x);
        let mut r = vec![0.0; 256];
        cg_lookahead::linalg::kernels::sub(&b, &ax, &mut r);
        assert!(
            norm2(&r) < 1e-6 * norm2(&b),
            "{}: residual {}",
            solver.name(),
            norm2(&r)
        );
    }
}
