//! Tracing is observation, never perturbation.
//!
//! The `vr_obs` tracer rides inside the solve loop, so the one property
//! everything else rests on is that attaching it changes *nothing*: the
//! iterates, the recorded residual history, and the iteration count of a
//! traced solve must be bit-identical to the untraced solve, for every
//! variant, at every team width, under both basis engines. On top of that
//! the trace itself must be coherent: iteration marks match the reported
//! iteration count, the expected span kinds show up for each variant's
//! dependency structure, and the critical-path aggregator conserves time.

use std::sync::Arc;
use vr_cg::baselines::{ChronopoulosGearCg, PipelinedCg, ThreeTermCg};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::sstep::SStepCg;
use vr_cg::standard::StandardCg;
use vr_cg::{BasisEngine, CgVariant, SolveOptions};
use vr_linalg::gen;
use vr_linalg::kernels::DotMode;
use vr_obs::{PhaseClass, SpanKind, Tracer};

fn variants() -> Vec<Box<dyn CgVariant>> {
    vec![
        Box::new(StandardCg::new()),
        Box::new(ThreeTermCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
        Box::new(OverlapK1Cg::new()),
        Box::new(LookaheadCg::new(2)),
        Box::new(LookaheadCg::new(4)),
        Box::new(SStepCg::monomial(4)),
    ]
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn attached_tracer_leaves_every_variant_bit_identical() {
    let a = gen::poisson2d(16);
    let b = gen::poisson2d_rhs(16);
    for threads in [1usize, 2] {
        for engine in [BasisEngine::Mpk, BasisEngine::Naive] {
            let opts = SolveOptions::default()
                .with_tol(1e-10)
                .with_max_iters(400)
                .with_dot_mode(DotMode::Tree)
                .with_threads(threads)
                .with_basis_engine(engine);
            for v in variants() {
                let plain = v.solve(&a, &b, None, &opts);
                let tracer = Arc::new(Tracer::for_width(threads));
                let traced_opts = opts.clone().with_tracer(Arc::clone(&tracer));
                let traced = v.solve(&a, &b, None, &traced_opts);
                let ctx = format!("{} (threads {threads}, {engine:?})", v.name());
                assert_eq!(plain.iterations, traced.iterations, "{ctx}: iterations");
                assert_eq!(bits(&plain.x), bits(&traced.x), "{ctx}: iterate bits");
                assert_eq!(
                    bits(&plain.residual_norms),
                    bits(&traced.residual_norms),
                    "{ctx}: residual history bits"
                );
                assert!(
                    !tracer.drain().spans.is_empty(),
                    "{ctx}: traced solve recorded no spans"
                );
            }
        }
    }
}

#[test]
fn iteration_marks_match_reported_iterations() {
    let a = gen::poisson2d(16);
    let b = gen::poisson2d_rhs(16);
    let tracer = Arc::new(Tracer::for_width(1));
    let opts = SolveOptions::default()
        .with_tol(0.0)
        .with_max_iters(25)
        .with_tracer(Arc::clone(&tracer));
    let res = StandardCg::new().solve(&a, &b, None, &opts);
    let log = tracer.drain();
    let marks = log
        .spans
        .iter()
        .filter(|(_, s)| s.kind == SpanKind::IterMark)
        .count();
    assert_eq!(marks, res.iterations, "one IterMark per iteration");
    assert_eq!(log.dropped, 0);
}

/// The dependency structure the accounting is built around: standard CG's
/// `p·Ap` is an eager, whole-call reduction wait, while overlap-k1 only
/// ever *launches* reductions from the loop body and pays a deferred
/// fan-in at the consume point. The span kinds in the trace are that
/// structure, reified.
#[test]
fn span_kinds_reflect_each_variants_dependency_structure() {
    // n must exceed the dispatch grain (8192): a deferred reduction over a
    // single leaf partial has no fan-in to record, so the split-phase
    // kinds only appear once the chunk tree is real.
    let a = gen::poisson2d(96);
    let b = gen::poisson2d_rhs(96);
    let kinds_of = |v: &dyn CgVariant| {
        let tracer = Arc::new(Tracer::for_width(1));
        let opts = SolveOptions::default()
            .with_tol(0.0)
            .with_max_iters(10)
            .with_dot_mode(DotMode::Tree)
            .with_tracer(Arc::clone(&tracer));
        let _ = v.solve(&a, &b, None, &opts);
        let log = tracer.drain();
        move |kind: SpanKind| log.spans.iter().filter(|(_, s)| s.kind == kind).count()
    };

    let std_count = kinds_of(&StandardCg::new());
    assert!(std_count(SpanKind::Matvec) > 0, "standard: matvec spans");
    assert!(
        std_count(SpanKind::DotWait) > 0,
        "standard: eager dots gate the iteration"
    );
    assert_eq!(
        std_count(SpanKind::DeferredWait),
        0,
        "standard has nothing deferred"
    );

    let ovl_count = kinds_of(&OverlapK1Cg::new());
    assert!(
        ovl_count(SpanKind::DotLaunch) > 0,
        "overlap-k1: reductions are launched, not awaited"
    );
    assert!(
        ovl_count(SpanKind::DeferredWait) > 0,
        "overlap-k1: deferred fan-ins at the consume points"
    );
    assert!(
        ovl_count(SpanKind::MpkBuild) > 0,
        "overlap-k1 (default Mpk engine): matvec pair is one powers call"
    );
}

#[test]
fn aggregator_conserves_time_and_counts_iterations() {
    let a = gen::poisson2d(16);
    let b = gen::poisson2d_rhs(16);
    let tracer = Arc::new(Tracer::for_width(1));
    let opts = SolveOptions::default()
        .with_tol(0.0)
        .with_max_iters(30)
        .with_tracer(Arc::clone(&tracer));
    let res = OverlapK1Cg::new().solve(&a, &b, None, &opts);
    let report = vr_obs::critpath::attribute(&tracer.drain());
    assert_eq!(report.iters.len(), res.iterations);
    assert_eq!(report.dropped, 0);
    for it in &report.iters {
        let p = it.phases;
        assert_eq!(
            p.reduction_wait_ns + p.matvec_ns + p.vector_ns + p.overhead_ns,
            p.total_ns,
            "iteration {}: phases must sum to wall time",
            it.iter
        );
    }
    assert!(report.totals.total_ns > 0);
    let share_sum = [
        PhaseClass::ReductionWait,
        PhaseClass::Matvec,
        PhaseClass::Vector,
        PhaseClass::Overhead,
    ]
    .iter()
    .map(|c| report.totals.share(*c))
    .sum::<f64>();
    assert!((share_sum - 1.0).abs() < 1e-12, "shares sum to 1");
}

/// Satellite contract for the overlap-k1 MPK routing: the two matvecs per
/// iteration (`A·p`, `A·(A·p)`) go through the blocked matrix-powers
/// kernel as one s = 2 call, and that must be invisible in the numbers —
/// engine choice changes neither the iterates nor the residual history.
#[test]
fn overlap_k1_mpk_and_naive_engines_are_bit_identical() {
    let a = gen::poisson2d(20);
    let b = gen::poisson2d_rhs(20);
    for threads in [1usize, 2] {
        let base = SolveOptions::default()
            .with_tol(1e-10)
            .with_max_iters(600)
            .with_dot_mode(DotMode::Tree)
            .with_threads(threads);
        let mpk = OverlapK1Cg::new().solve(
            &a,
            &b,
            None,
            &base.clone().with_basis_engine(BasisEngine::Mpk),
        );
        let naive = OverlapK1Cg::new().solve(
            &a,
            &b,
            None,
            &base.clone().with_basis_engine(BasisEngine::Naive),
        );
        assert_eq!(mpk.iterations, naive.iterations, "threads {threads}");
        assert_eq!(bits(&mpk.x), bits(&naive.x), "threads {threads}: x bits");
        assert_eq!(
            bits(&mpk.residual_norms),
            bits(&naive.residual_norms),
            "threads {threads}: residual bits"
        );
        // and the op accounting still reports two logical matvecs per
        // iteration, not one fused oddity
        assert_eq!(
            mpk.counts.matvecs, naive.counts.matvecs,
            "threads {threads}"
        );
    }
}
