//! Property-based tests over the core data structures and invariants.

use cg_lookahead::cg::recurrence::identities;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::kernels;
use cg_lookahead::linalg::{gen, CooMatrix, DenseMatrix};
use cg_lookahead::par::reduce;
use cg_lookahead::poly::{Monomial, MultiPoly};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- kernels ----------

    #[test]
    fn tree_dot_close_to_serial(x in small_vec(257), y in small_vec(257)) {
        let s = kernels::dot_serial(&x, &y);
        let t = kernels::dot_tree(&x, &y);
        let scale = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum::<f64>();
        prop_assert!((s - t).abs() <= 1e-10 * (1.0 + scale));
    }

    #[test]
    fn par_dot_is_thread_invariant(x in small_vec(2048)) {
        let d1 = reduce::par_dot(&x, &x, 1);
        let d3 = reduce::par_dot(&x, &x, 3);
        let d7 = reduce::par_dot(&x, &x, 7);
        prop_assert_eq!(d1.to_bits(), d3.to_bits());
        prop_assert_eq!(d1.to_bits(), d7.to_bits());
    }

    #[test]
    fn axpy_then_inverse_restores(a in -10.0..10.0f64, x in small_vec(64)) {
        let mut y = vec![1.0; 64];
        let y0 = y.clone();
        kernels::axpy(a, &x, &mut y);
        kernels::axpy(-a, &x, &mut y);
        for (yi, y0i) in y.iter().zip(&y0) {
            prop_assert!((yi - y0i).abs() <= 1e-9 * (1.0 + a.abs() * 100.0));
        }
    }

    #[test]
    fn norm_triangle_inequality(x in small_vec(50), y in small_vec(50)) {
        let mut s = vec![0.0; 50];
        kernels::add(&x, &y, &mut s);
        prop_assert!(kernels::norm2(&s) <= kernels::norm2(&x) + kernels::norm2(&y) + 1e-9);
    }

    #[test]
    fn cauchy_schwarz(x in small_vec(40), y in small_vec(40)) {
        let d = kernels::dot_serial(&x, &y).abs();
        prop_assert!(d <= kernels::norm2(&x) * kernels::norm2(&y) * (1.0 + 1e-12) + 1e-9);
    }

    // ---------- sparse matrices ----------

    #[test]
    fn coo_to_csr_preserves_matvec(
        triplets in prop::collection::vec((0usize..12, 0usize..12, -5.0..5.0f64), 0..60),
        x in small_vec(12),
    ) {
        let mut coo = CooMatrix::new(12, 12);
        let mut dense = vec![vec![0.0; 12]; 12];
        for (r, c, v) in &triplets {
            coo.push(*r, *c, *v).unwrap();
            dense[*r][*c] += v;
        }
        let csr = coo.to_csr();
        let y_sparse = csr.spmv(&x);
        let d = DenseMatrix::from_rows(&dense).unwrap();
        let y_dense = d.matvec(&x);
        for (a, b) in y_sparse.iter().zip(&y_dense) {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn transpose_transpose_identity(
        triplets in prop::collection::vec((0usize..10, 0usize..14, -5.0..5.0f64), 0..50),
    ) {
        let mut coo = CooMatrix::new(10, 14);
        for (r, c, v) in &triplets {
            coo.push(*r, *c, *v).unwrap();
        }
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmv_linearity(seed in 0u64..5000, alpha in -3.0..3.0f64) {
        let a = gen::rand_spd(20, 3, 1.0, seed);
        let x = gen::rand_vector(20, seed.wrapping_add(1));
        let y = gen::rand_vector(20, seed.wrapping_add(2));
        // A(αx + y) == αAx + Ay
        let mut xy = vec![0.0; 20];
        for i in 0..20 { xy[i] = alpha * x[i] + y[i]; }
        let lhs = a.spmv(&xy);
        let ax = a.spmv(&x);
        let ay = a.spmv(&y);
        for i in 0..20 {
            let rhs = alpha * ax[i] + ay[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
        }
    }

    #[test]
    fn spd_quadratic_form_positive(seed in 0u64..5000) {
        let a = gen::rand_spd(25, 4, 1.0, seed);
        let x = gen::rand_vector(25, seed.wrapping_add(7));
        if kernels::norm2(&x) > 1e-6 {
            let ax = a.spmv(&x);
            prop_assert!(kernels::dot_serial(&x, &ax) > 0.0);
        }
    }

    // ---------- polynomials ----------

    #[test]
    fn mpoly_mul_commutes_and_matches_eval(
        e1 in prop::collection::vec(0u32..3, 2),
        e2 in prop::collection::vec(0u32..3, 2),
        c1 in -5i64..5, c2 in -5i64..5,
        x in -2.0..2.0f64, y in -2.0..2.0f64,
    ) {
        let mut p = MultiPoly::zero(2);
        p.add_term(Monomial::from_exps(e1), c1);
        let mut q = MultiPoly::zero(2);
        q.add_term(Monomial::from_exps(e2), c2);
        let pq = &p * &q;
        let qp = &q * &p;
        prop_assert_eq!(&pq, &qp);
        let pt = [x, y];
        prop_assert!((pq.eval(&pt) - p.eval(&pt) * q.eval(&pt)).abs() <= 1e-9 * (1.0 + pq.eval(&pt).abs()));
    }

    #[test]
    fn mpoly_distributive(ca in -4i64..4, cb in -4i64..4, cc in -4i64..4) {
        let x = MultiPoly::var(2, 0);
        let y = MultiPoly::var(2, 1);
        let a = x.scale(ca);
        let b = y.scale(cb);
        let c = (&x * &y).scale(cc);
        let lhs = &a * &(&b + &c);
        let rhs = &(&a * &b) + &(&a * &c);
        prop_assert_eq!(lhs, rhs);
    }

    // ---------- recurrence identities under arbitrary steps ----------

    #[test]
    fn rr_general_identity_for_any_lambda(seed in 0u64..3000, lambda in -3.0..3.0f64) {
        let a = gen::rand_spd(15, 3, 1.0, seed);
        let r = gen::rand_vector(15, seed.wrapping_add(3));
        let p = gen::rand_vector(15, seed.wrapping_add(4));
        let w = a.spmv(&p);
        let mut r2 = r.clone();
        kernels::axpy(-lambda, &w, &mut r2);
        let direct = kernels::dot_serial(&r2, &r2);
        let rec = identities::rr_general(
            kernels::dot_serial(&r, &r),
            kernels::dot_serial(&r, &w),
            kernels::dot_serial(&w, &w),
            lambda,
        );
        prop_assert!((rec - direct).abs() <= 1e-8 * (1.0 + direct));
    }

    // ---------- end-to-end on random SPD systems ----------

    #[test]
    fn standard_cg_solves_random_spd(seed in 0u64..2000) {
        let n = 24;
        let a = gen::rand_spd(n, 4, 1.5, seed);
        let b = gen::rand_vector(n, seed.wrapping_add(9));
        let res = StandardCg::new().solve(&a, &b, None,
            &SolveOptions::default().with_tol(1e-9).with_max_iters(10 * n));
        prop_assert!(res.converged);
        prop_assert!(res.true_residual(&a, &b) <= 1e-6 * (1.0 + kernels::norm2(&b)));
    }
}

// ---------- second wave: I/O, reordering, spectra, scheduling ----------

use cg_lookahead::linalg::eig;
use cg_lookahead::linalg::io;
use cg_lookahead::linalg::reorder;
use cg_lookahead::sim::{ListScheduler, MachineModel, OpKind, TaskGraph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matrix_market_roundtrip_exact(
        triplets in prop::collection::vec((0usize..9, 0usize..9, -9.0..9.0f64), 1..40),
    ) {
        let mut coo = CooMatrix::new(9, 9);
        for (r, c, v) in &triplets {
            coo.push(*r, *c, *v).unwrap();
        }
        let a = coo.to_csr();
        let mut buf = Vec::new();
        io::write_matrix_market(&a, &mut buf).unwrap();
        let b = io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn vector_file_roundtrip_exact(x in prop::collection::vec(-1e12..1e12f64, 0..50)) {
        let mut buf = Vec::new();
        io::write_vector(&x, &mut buf).unwrap();
        let y = io::read_vector(&buf[..]).unwrap();
        prop_assert_eq!(x, y);
    }

    #[test]
    fn rcm_always_yields_valid_permutation(seed in 0u64..5000) {
        let a = gen::rand_spd(30, 4, 1.0, seed);
        let p = reorder::reverse_cuthill_mckee(&a);
        let mut idx = p.new_to_old().to_vec();
        idx.sort_unstable();
        prop_assert_eq!(idx, (0..30).collect::<Vec<_>>());
        // two-sided application preserves symmetry and diagonal multiset
        let b = p.apply_matrix(&a);
        prop_assert!(b.is_symmetric(1e-12));
        let mut da = a.diagonal();
        let mut db = b.diagonal();
        da.sort_by(f64::total_cmp);
        db.sort_by(f64::total_cmp);
        for (x, y) in da.iter().zip(&db) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn permutation_apply_unapply_inverse(seed in 0u64..5000) {
        let n = 25;
        let mut rng = gen::XorShift64::new(seed.max(1));
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.below(i + 1);
            idx.swap(i, j);
        }
        let p = reorder::Permutation::from_vec(idx);
        let x = gen::rand_vector(n, seed.wrapping_add(1));
        let y = p.unapply_vec(&p.apply_vec(&x));
        prop_assert_eq!(x, y);
    }

    #[test]
    fn lanczos_bounds_inside_gershgorin(seed in 0u64..3000, m in 3usize..20) {
        let a = gen::rand_spd(24, 3, 1.0, seed);
        let b = eig::estimate_spectrum(&a, m, seed.wrapping_add(5));
        prop_assert!(b.lambda_min > 0.0, "SPD spectrum positive: {}", b.lambda_min);
        prop_assert!(b.lambda_max <= a.gershgorin_bound() + 1e-9);
        prop_assert!(b.lambda_min <= b.lambda_max);
    }

    /// Random layered DAGs: scheduling invariants hold for any budget.
    #[test]
    fn scheduler_invariants_on_random_dags(
        seed in 0u64..2000,
        layers in 2usize..6,
        width in 1usize..5,
        procs in 1usize..2000,
    ) {
        let mut rng = gen::XorShift64::new(seed.max(1));
        let mut g = TaskGraph::new();
        let src = g.add(OpKind::Source, "src", None, &[]);
        let mut prev_layer = vec![src];
        for l in 0..layers {
            let mut layer = Vec::new();
            for w in 0..width {
                // each node depends on 1-2 nodes of the previous layer
                let mut deps = vec![prev_layer[rng.below(prev_layer.len())]];
                if prev_layer.len() > 1 && rng.next_f64() < 0.5 {
                    deps.push(prev_layer[rng.below(prev_layer.len())]);
                }
                let kind = match rng.below(4) {
                    0 => OpKind::Elementwise { n: 64 + rng.below(512) },
                    1 => OpKind::Dot { n: 64 + rng.below(512) },
                    2 => OpKind::Scalar,
                    _ => OpKind::SpMv { n: 32 + rng.below(128), d: 3 + rng.below(8) },
                };
                layer.push(g.add(kind, format!("n{l}-{w}"), Some(l), &deps));
            }
            prev_layer = layer;
        }

        let m = MachineModel::pram();
        let r = ListScheduler::new(procs).run(&g, &m);
        // (1) dependencies respected
        for (id, node) in g.nodes() {
            for d in &node.deps {
                prop_assert!(
                    r.times[id.0].0 + 1e-9 >= r.times[d.0].1,
                    "node {:?} starts before dep {:?}",
                    id, d
                );
            }
        }
        // (2) utilization within [0, 1]
        prop_assert!(r.utilization >= 0.0 && r.utilization <= 1.0 + 1e-9);
        // (3) makespan ≥ both lower bounds
        let work = g.total_work(&m);
        prop_assert!(r.makespan + 1e-6 >= work / procs as f64);
        prop_assert!(r.makespan + 1e-6 >= g.makespan(&m));
        // (4) waiting non-negative
        prop_assert!(r.total_wait >= -1e-9);
    }

    #[test]
    fn moment_window_step_is_exact_algebra(seed in 0u64..2000, lambda in 0.01..2.0f64, alpha in 0.0..2.0f64) {
        use cg_lookahead::cg::recurrence::moments::MomentWindow;
        use cg_lookahead::linalg::kernels::DotMode;
        // arbitrary (non-CG) lambda/alpha: the window update must still
        // track the actual vector updates, because it is pure algebra
        let a = gen::rand_spd(16, 3, 1.5, seed);
        let r = gen::rand_vector(16, seed.wrapping_add(1));
        let p = gen::rand_vector(16, seed.wrapping_add(2));
        let k = 1;
        let fam = |r: &[f64], p: &[f64]| {
            let mut z = vec![r.to_vec()];
            z.push(a.spmv(&z[0]));
            let mut w = vec![p.to_vec()];
            w.push(a.spmv(&w[0]));
            let next = a.spmv(&w[1]);
            w.push(next);
            (z, w)
        };
        let (z, w) = fam(&r, &p);
        let (mut win, _) = MomentWindow::direct(&z, &w, 2 * k, DotMode::Serial);
        let mu_new = win.mu_step(lambda);
        win.finish_step(mu_new, lambda, alpha);

        // actual updates with the same parameters
        let ap = a.spmv(&p);
        let mut r2 = r.clone();
        kernels::axpy(-lambda, &ap, &mut r2);
        let mut p2 = r2.clone();
        kernels::axpy(alpha, &p, &mut p2);
        let (z2, w2) = fam(&r2, &p2);
        let (win2, _) = MomentWindow::direct(&z2, &w2, 2 * k, DotMode::Serial);
        for i in 0..=2 * k {
            prop_assert!(
                (win.mu[i] - win2.mu[i]).abs() <= 1e-7 * (1.0 + win2.mu[i].abs()),
                "mu[{}]: {} vs {}", i, win.mu[i], win2.mu[i]
            );
        }
        prop_assert!(
            (win.sigma[0] - win2.sigma[0]).abs() <= 1e-7 * (1.0 + win2.sigma[0].abs())
        );
    }

    #[test]
    fn batched_dots_equal_tree_dots(seed in 0u64..3000, len in 1usize..3000) {
        use cg_lookahead::par::{batch, reduce};
        let x = gen::rand_vector(len, seed.max(1));
        let y = gen::rand_vector(len, seed.wrapping_add(9).max(1));
        let b = batch::multi_dot(&[(&x, &y), (&y, &x)], 4);
        let d = reduce::par_dot(&x, &y, 1);
        prop_assert_eq!(b[0].to_bits(), d.to_bits());
        prop_assert_eq!(b[1].to_bits(), d.to_bits()); // commutative products
    }
}
