//! Property-based tests over the core data structures and invariants.
//!
//! The harness is a deterministic seed sweep: every property runs over a
//! fixed number of pseudo-random cases drawn from `gen::XorShift64`, so
//! failures are reproducible from the printed case seed alone (no external
//! property-testing framework — the build must work fully offline).

use cg_lookahead::cg::recurrence::identities;
use cg_lookahead::cg::standard::StandardCg;
use cg_lookahead::cg::{CgVariant, SolveOptions};
use cg_lookahead::linalg::kernels;
use cg_lookahead::linalg::{gen, CooMatrix, DenseMatrix};
use cg_lookahead::par::reduce;
use cg_lookahead::poly::{Monomial, MultiPoly};
use gen::XorShift64;

/// Run `prop` over `cases` deterministic seeds; panics carry the case seed.
fn check(cases: u64, prop: impl Fn(&mut XorShift64) + std::panic::RefUnwindSafe) {
    for case in 0..cases {
        let seed = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case + 1) | 1;
        let result = std::panic::catch_unwind(|| {
            let mut rng = XorShift64::new(seed);
            prop(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed at case {case} (rng seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

fn small_vec(rng: &mut XorShift64, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.range_f64(-100.0, 100.0)).collect()
}

// ---------- kernels ----------

#[test]
fn tree_dot_close_to_serial() {
    check(64, |rng| {
        let x = small_vec(rng, 257);
        let y = small_vec(rng, 257);
        let s = kernels::dot_serial(&x, &y);
        let t = kernels::dot_tree(&x, &y);
        let scale = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum::<f64>();
        assert!((s - t).abs() <= 1e-10 * (1.0 + scale));
    });
}

#[test]
fn par_dot_is_thread_invariant() {
    check(16, |rng| {
        let x = small_vec(rng, 2048);
        let d1 = reduce::par_dot(&x, &x, 1);
        let d3 = reduce::par_dot(&x, &x, 3);
        let d7 = reduce::par_dot(&x, &x, 7);
        assert_eq!(d1.to_bits(), d3.to_bits());
        assert_eq!(d1.to_bits(), d7.to_bits());
    });
}

#[test]
fn axpy_then_inverse_restores() {
    check(64, |rng| {
        let a = rng.range_f64(-10.0, 10.0);
        let x = small_vec(rng, 64);
        let mut y = vec![1.0; 64];
        let y0 = y.clone();
        kernels::axpy(a, &x, &mut y);
        kernels::axpy(-a, &x, &mut y);
        for (yi, y0i) in y.iter().zip(&y0) {
            assert!((yi - y0i).abs() <= 1e-9 * (1.0 + a.abs() * 100.0));
        }
    });
}

#[test]
fn norm_triangle_inequality() {
    check(64, |rng| {
        let x = small_vec(rng, 50);
        let y = small_vec(rng, 50);
        let mut s = vec![0.0; 50];
        kernels::add(&x, &y, &mut s);
        assert!(kernels::norm2(&s) <= kernels::norm2(&x) + kernels::norm2(&y) + 1e-9);
    });
}

#[test]
fn cauchy_schwarz() {
    check(64, |rng| {
        let x = small_vec(rng, 40);
        let y = small_vec(rng, 40);
        let d = kernels::dot_serial(&x, &y).abs();
        assert!(d <= kernels::norm2(&x) * kernels::norm2(&y) * (1.0 + 1e-12) + 1e-9);
    });
}

// ---------- sparse matrices ----------

#[test]
fn coo_to_csr_preserves_matvec() {
    check(64, |rng| {
        let ntrip = rng.below(60);
        let mut coo = CooMatrix::new(12, 12);
        let mut dense = vec![vec![0.0; 12]; 12];
        for _ in 0..ntrip {
            let (r, c) = (rng.below(12), rng.below(12));
            let v = rng.range_f64(-5.0, 5.0);
            coo.push(r, c, v).unwrap();
            dense[r][c] += v;
        }
        let x = small_vec(rng, 12);
        let csr = coo.to_csr();
        let y_sparse = csr.spmv(&x);
        let d = DenseMatrix::from_rows(&dense).unwrap();
        let y_dense = d.matvec(&x);
        for (a, b) in y_sparse.iter().zip(&y_dense) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    });
}

#[test]
fn transpose_transpose_identity() {
    check(64, |rng| {
        let ntrip = rng.below(50);
        let mut coo = CooMatrix::new(10, 14);
        for _ in 0..ntrip {
            let (r, c) = (rng.below(10), rng.below(14));
            coo.push(r, c, rng.range_f64(-5.0, 5.0)).unwrap();
        }
        let a = coo.to_csr();
        assert_eq!(a.transpose().transpose(), a);
    });
}

#[test]
fn spmv_linearity() {
    check(64, |rng| {
        let seed = rng.next_u64() % 5000;
        let alpha = rng.range_f64(-3.0, 3.0);
        let a = gen::rand_spd(20, 3, 1.0, seed);
        let x = gen::rand_vector(20, seed.wrapping_add(1));
        let y = gen::rand_vector(20, seed.wrapping_add(2));
        // A(αx + y) == αAx + Ay
        let mut xy = vec![0.0; 20];
        for i in 0..20 {
            xy[i] = alpha * x[i] + y[i];
        }
        let lhs = a.spmv(&xy);
        let ax = a.spmv(&x);
        let ay = a.spmv(&y);
        for i in 0..20 {
            let rhs = alpha * ax[i] + ay[i];
            assert!((lhs[i] - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
        }
    });
}

#[test]
fn spd_quadratic_form_positive() {
    check(64, |rng| {
        let seed = rng.next_u64() % 5000;
        let a = gen::rand_spd(25, 4, 1.0, seed);
        let x = gen::rand_vector(25, seed.wrapping_add(7));
        if kernels::norm2(&x) > 1e-6 {
            let ax = a.spmv(&x);
            assert!(kernels::dot_serial(&x, &ax) > 0.0);
        }
    });
}

// ---------- polynomials ----------

#[test]
fn mpoly_mul_commutes_and_matches_eval() {
    check(64, |rng| {
        let e1: Vec<u32> = (0..2).map(|_| rng.below(3) as u32).collect();
        let e2: Vec<u32> = (0..2).map(|_| rng.below(3) as u32).collect();
        let c1 = rng.below(10) as i64 - 5;
        let c2 = rng.below(10) as i64 - 5;
        let x = rng.range_f64(-2.0, 2.0);
        let y = rng.range_f64(-2.0, 2.0);
        let mut p = MultiPoly::zero(2);
        p.add_term(Monomial::from_exps(e1), c1);
        let mut q = MultiPoly::zero(2);
        q.add_term(Monomial::from_exps(e2), c2);
        let pq = &p * &q;
        let qp = &q * &p;
        assert_eq!(&pq, &qp);
        let pt = [x, y];
        assert!(
            (pq.eval(&pt) - p.eval(&pt) * q.eval(&pt)).abs() <= 1e-9 * (1.0 + pq.eval(&pt).abs())
        );
    });
}

#[test]
fn mpoly_distributive() {
    check(64, |rng| {
        let ca = rng.below(8) as i64 - 4;
        let cb = rng.below(8) as i64 - 4;
        let cc = rng.below(8) as i64 - 4;
        let x = MultiPoly::var(2, 0);
        let y = MultiPoly::var(2, 1);
        let a = x.scale(ca);
        let b = y.scale(cb);
        let c = (&x * &y).scale(cc);
        let lhs = &a * &(&b + &c);
        let rhs = &(&a * &b) + &(&a * &c);
        assert_eq!(lhs, rhs);
    });
}

// ---------- recurrence identities under arbitrary steps ----------

#[test]
fn rr_general_identity_for_any_lambda() {
    check(64, |rng| {
        let seed = rng.next_u64() % 3000;
        let lambda = rng.range_f64(-3.0, 3.0);
        let a = gen::rand_spd(15, 3, 1.0, seed);
        let r = gen::rand_vector(15, seed.wrapping_add(3));
        let p = gen::rand_vector(15, seed.wrapping_add(4));
        let w = a.spmv(&p);
        let mut r2 = r.clone();
        kernels::axpy(-lambda, &w, &mut r2);
        let direct = kernels::dot_serial(&r2, &r2);
        let rec = identities::rr_general(
            kernels::dot_serial(&r, &r),
            kernels::dot_serial(&r, &w),
            kernels::dot_serial(&w, &w),
            lambda,
        );
        assert!((rec - direct).abs() <= 1e-8 * (1.0 + direct));
    });
}

// ---------- end-to-end on random SPD systems ----------

#[test]
fn standard_cg_solves_random_spd() {
    check(48, |rng| {
        let seed = rng.next_u64() % 2000;
        let n = 24;
        let a = gen::rand_spd(n, 4, 1.5, seed);
        let b = gen::rand_vector(n, seed.wrapping_add(9));
        let res = StandardCg::new().solve(
            &a,
            &b,
            None,
            &SolveOptions::default()
                .with_tol(1e-9)
                .with_max_iters(10 * n),
        );
        assert!(res.converged);
        assert!(res.true_residual(&a, &b) <= 1e-6 * (1.0 + kernels::norm2(&b)));
    });
}

// ---------- second wave: I/O, reordering, spectra, scheduling ----------

use cg_lookahead::linalg::eig;
use cg_lookahead::linalg::io;
use cg_lookahead::linalg::reorder;
use cg_lookahead::sim::{ListScheduler, MachineModel, OpKind, TaskGraph};

#[test]
fn matrix_market_roundtrip_exact() {
    check(48, |rng| {
        let ntrip = 1 + rng.below(39);
        let mut coo = CooMatrix::new(9, 9);
        for _ in 0..ntrip {
            let (r, c) = (rng.below(9), rng.below(9));
            coo.push(r, c, rng.range_f64(-9.0, 9.0)).unwrap();
        }
        let a = coo.to_csr();
        let mut buf = Vec::new();
        io::write_matrix_market(&a, &mut buf).unwrap();
        let b = io::read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    });
}

#[test]
fn vector_file_roundtrip_exact() {
    check(48, |rng| {
        let len = rng.below(50);
        let x: Vec<f64> = (0..len).map(|_| rng.range_f64(-1e12, 1e12)).collect();
        let mut buf = Vec::new();
        io::write_vector(&x, &mut buf).unwrap();
        let y = io::read_vector(&buf[..]).unwrap();
        assert_eq!(x, y);
    });
}

#[test]
fn rcm_always_yields_valid_permutation() {
    check(48, |rng| {
        let seed = rng.next_u64() % 5000;
        let a = gen::rand_spd(30, 4, 1.0, seed);
        let p = reorder::reverse_cuthill_mckee(&a);
        let mut idx = p.new_to_old().to_vec();
        idx.sort_unstable();
        assert_eq!(idx, (0..30).collect::<Vec<_>>());
        // two-sided application preserves symmetry and diagonal multiset
        let b = p.apply_matrix(&a);
        assert!(b.is_symmetric(1e-12));
        let mut da = a.diagonal();
        let mut db = b.diagonal();
        da.sort_by(f64::total_cmp);
        db.sort_by(f64::total_cmp);
        for (x, y) in da.iter().zip(&db) {
            assert!((x - y).abs() < 1e-12);
        }
    });
}

#[test]
fn permutation_apply_unapply_inverse() {
    check(48, |rng| {
        let seed = (rng.next_u64() % 5000).max(1);
        let n = 25;
        let mut prng = XorShift64::new(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = prng.below(i + 1);
            idx.swap(i, j);
        }
        let p = reorder::Permutation::from_vec(idx);
        let x = gen::rand_vector(n, seed.wrapping_add(1));
        let y = p.unapply_vec(&p.apply_vec(&x));
        assert_eq!(x, y);
    });
}

#[test]
fn lanczos_bounds_inside_gershgorin() {
    check(48, |rng| {
        let seed = rng.next_u64() % 3000;
        let m = 3 + rng.below(17);
        let a = gen::rand_spd(24, 3, 1.0, seed);
        let b = eig::estimate_spectrum(&a, m, seed.wrapping_add(5));
        assert!(
            b.lambda_min > 0.0,
            "SPD spectrum positive: {}",
            b.lambda_min
        );
        assert!(b.lambda_max <= a.gershgorin_bound() + 1e-9);
        assert!(b.lambda_min <= b.lambda_max);
    });
}

/// Random layered DAGs: scheduling invariants hold for any budget.
#[test]
fn scheduler_invariants_on_random_dags() {
    check(48, |rng| {
        let layers = 2 + rng.below(4);
        let width = 1 + rng.below(4);
        let procs = 1 + rng.below(1999);
        let mut g = TaskGraph::new();
        let src = g.add(OpKind::Source, "src", None, &[]);
        let mut prev_layer = vec![src];
        for l in 0..layers {
            let mut layer = Vec::new();
            for w in 0..width {
                // each node depends on 1-2 nodes of the previous layer
                let mut deps = vec![prev_layer[rng.below(prev_layer.len())]];
                if prev_layer.len() > 1 && rng.next_f64() < 0.5 {
                    deps.push(prev_layer[rng.below(prev_layer.len())]);
                }
                let kind = match rng.below(4) {
                    0 => OpKind::Elementwise {
                        n: 64 + rng.below(512),
                    },
                    1 => OpKind::Dot {
                        n: 64 + rng.below(512),
                    },
                    2 => OpKind::Scalar,
                    _ => OpKind::SpMv {
                        n: 32 + rng.below(128),
                        d: 3 + rng.below(8),
                    },
                };
                layer.push(g.add(kind, format!("n{l}-{w}"), Some(l), &deps));
            }
            prev_layer = layer;
        }

        let m = MachineModel::pram();
        let r = ListScheduler::new(procs).run(&g, &m);
        // (1) dependencies respected
        for (id, node) in g.nodes() {
            for d in &node.deps {
                assert!(
                    r.times[id.0].0 + 1e-9 >= r.times[d.0].1,
                    "node {id:?} starts before dep {d:?}"
                );
            }
        }
        // (2) utilization within [0, 1]
        assert!(r.utilization >= 0.0 && r.utilization <= 1.0 + 1e-9);
        // (3) makespan ≥ both lower bounds
        let work = g.total_work(&m);
        assert!(r.makespan + 1e-6 >= work / procs as f64);
        assert!(r.makespan + 1e-6 >= g.makespan(&m));
        // (4) waiting non-negative
        assert!(r.total_wait >= -1e-9);
    });
}

#[test]
fn moment_window_step_is_exact_algebra() {
    check(48, |rng| {
        use cg_lookahead::cg::recurrence::moments::MomentWindow;
        use cg_lookahead::linalg::kernels::DotMode;
        let seed = rng.next_u64() % 2000;
        let lambda = rng.range_f64(0.01, 2.0);
        let alpha = rng.range_f64(0.0, 2.0);
        // arbitrary (non-CG) lambda/alpha: the window update must still
        // track the actual vector updates, because it is pure algebra
        let a = gen::rand_spd(16, 3, 1.5, seed);
        let r = gen::rand_vector(16, seed.wrapping_add(1));
        let p = gen::rand_vector(16, seed.wrapping_add(2));
        let k = 1;
        let fam = |r: &[f64], p: &[f64]| {
            let mut z = vec![r.to_vec()];
            z.push(a.spmv(&z[0]));
            let mut w = vec![p.to_vec()];
            w.push(a.spmv(&w[0]));
            let next = a.spmv(&w[1]);
            w.push(next);
            (z, w)
        };
        let (z, w) = fam(&r, &p);
        let (mut win, _) = MomentWindow::direct(&z, &w, 2 * k, DotMode::Serial);
        let mu_new = win.mu_step(lambda);
        win.finish_step(mu_new, lambda, alpha);

        // actual updates with the same parameters
        let ap = a.spmv(&p);
        let mut r2 = r.clone();
        kernels::axpy(-lambda, &ap, &mut r2);
        let mut p2 = r2.clone();
        kernels::axpy(alpha, &p, &mut p2);
        let (z2, w2) = fam(&r2, &p2);
        let (win2, _) = MomentWindow::direct(&z2, &w2, 2 * k, DotMode::Serial);
        for i in 0..=2 * k {
            assert!(
                (win.mu[i] - win2.mu[i]).abs() <= 1e-7 * (1.0 + win2.mu[i].abs()),
                "mu[{}]: {} vs {}",
                i,
                win.mu[i],
                win2.mu[i]
            );
        }
        assert!((win.sigma[0] - win2.sigma[0]).abs() <= 1e-7 * (1.0 + win2.sigma[0].abs()));
    });
}

#[test]
fn batched_dots_equal_tree_dots() {
    check(48, |rng| {
        let seed = (rng.next_u64() % 3000).max(1);
        let len = 1 + rng.below(2999);
        use cg_lookahead::par::batch;
        let x = gen::rand_vector(len, seed);
        let y = gen::rand_vector(len, seed.wrapping_add(9));
        let b = batch::multi_dot(&[(&x, &y), (&y, &x)], 4);
        let d = reduce::par_dot(&x, &y, 1);
        assert_eq!(b[0].to_bits(), d.to_bits());
        assert_eq!(b[1].to_bits(), d.to_bits()); // commutative products
    });
}

// ---------- third wave: resilience ----------

use cg_lookahead::cg::baselines::chronopoulos_gear::ChronopoulosGearCg;
use cg_lookahead::cg::baselines::pipelined::PipelinedCg;
use cg_lookahead::cg::baselines::three_term::ThreeTermCg;
use cg_lookahead::cg::lookahead::LookaheadCg;
use cg_lookahead::cg::overlap_k1::OverlapK1Cg;
use cg_lookahead::cg::resilience::{FaultKind, RecoveryPolicy, SeededInjector, SingleFault};
use cg_lookahead::cg::sstep::SStepCg;

fn all_variants() -> Vec<Box<dyn CgVariant>> {
    vec![
        Box::new(StandardCg::new()),
        Box::new(OverlapK1Cg::new()),
        Box::new(LookaheadCg::new(2)),
        Box::new(LookaheadCg::new(4)),
        Box::new(SStepCg::monomial(3)),
        Box::new(ThreeTermCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
    ]
}

/// Random symmetric matrices that violate CG's contract: indefinite
/// tridiagonal Toeplitz (|diag| < 2|off|) or a singular diagonal (some
/// zero pivots, possibly with mixed signs).
fn nasty_matrix(rng: &mut XorShift64, n: usize) -> cg_lookahead::linalg::CsrMatrix {
    if rng.below(2) == 0 {
        let off = rng.range_f64(0.5, 2.0);
        let diag = rng.range_f64(-1.0, 1.0) * off; // |diag| < 2|off| → indefinite
        gen::tridiag_toeplitz(n, diag, -off)
    } else {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let d = match rng.below(4) {
                0 => 0.0, // singular pivot
                1 => -rng.range_f64(0.1, 3.0),
                _ => rng.range_f64(0.1, 3.0),
            };
            if d != 0.0 {
                coo.push(i, i, d).unwrap();
            }
        }
        coo.to_csr()
    }
}

#[test]
fn nasty_matrices_terminate_honestly_for_every_variant() {
    // indefinite or singular systems defeat CG — what matters is that no
    // variant lies: it may stop with Breakdown / Stagnated / Diverged /
    // MaxIterations, but a claimed convergence must be a real solution
    check(16, |rng| {
        let n = 16 + rng.below(17);
        let a = nasty_matrix(rng, n);
        let b = gen::rand_vector(n, rng.next_u64() % 4000);
        let bnorm = kernels::norm2(&b);
        let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(300);
        for v in all_variants() {
            let res = v.solve(&a, &b, None, &opts);
            assert!(res.iterations <= 300, "{}: runaway iterations", v.name());
            if res.converged {
                let rel = res.true_residual(&a, &b) / bnorm.max(1e-300);
                assert!(
                    rel < 1e-5,
                    "{}: claimed convergence with rel true residual {rel}",
                    v.name()
                );
            }
        }
    });
}

#[test]
fn nasty_matrices_with_recovery_ladder_stay_honest() {
    // same honesty property with the full recovery machinery switched on:
    // the ladder may burn its restart budget, but must never fake success
    check(12, |rng| {
        let n = 16 + rng.below(17);
        let a = nasty_matrix(rng, n);
        let b = gen::rand_vector(n, rng.next_u64() % 4000);
        let bnorm = kernels::norm2(&b);
        let opts = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(400)
            .with_recovery(RecoveryPolicy::default().with_max_restarts(3));
        for v in [
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
            Box::new(LookaheadCg::new(3)),
            Box::new(SStepCg::monomial(2)),
        ] {
            let res =
                cg_lookahead::cg::resilience::solve_with_recovery(v.as_ref(), &a, &b, None, &opts);
            if res.converged {
                let rel = res.true_residual(&a, &b) / bnorm.max(1e-300);
                assert!(
                    rel < 1e-5,
                    "{}: recovered to a wrong answer, rel {rel}",
                    v.name()
                );
            }
        }
    });
}

#[test]
fn spd_solve_survives_single_fault_with_recovery() {
    // one random upset (random kind, random strike time) against an SPD
    // solve under the default recovery policy: must still converge to the
    // true solution
    check(24, |rng| {
        let seed = rng.next_u64() % 2000;
        let n = 24;
        let a = gen::rand_spd(n, 4, 1.5, seed);
        let b = gen::rand_vector(n, seed.wrapping_add(9));
        let kind = match rng.below(4) {
            0 => FaultKind::Nan,
            1 => FaultKind::Inf,
            2 => FaultKind::Perturb(1.0),
            _ => FaultKind::Drop,
        };
        let at_call = rng.next_u64() % 30_000;
        let inj = std::sync::Arc::new(SingleFault::new(at_call, kind));
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(2000)
            .with_injector(inj)
            .with_recovery(RecoveryPolicy::default());
        for v in [
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
            Box::new(LookaheadCg::new(2)),
        ] {
            let res =
                cg_lookahead::cg::resilience::solve_with_recovery(v.as_ref(), &a, &b, None, &opts);
            assert!(
                res.converged,
                "{} under {kind:?}@{at_call}: {:?}",
                v.name(),
                res.termination
            );
            assert!(
                res.true_residual(&a, &b) <= 1e-6 * (1.0 + kernels::norm2(&b)),
                "{} under {kind:?}@{at_call}: bad solution",
                v.name()
            );
        }
    });
}

// ---------- fourth wave: fused single-pass kernels ----------

use cg_lookahead::linalg::fused;
use cg_lookahead::linalg::kernels::DotMode as FusedDotMode;
use cg_lookahead::par::fault::FaultInjector as _;

const FUSED_MODES: [FusedDotMode; 3] = [
    FusedDotMode::Serial,
    FusedDotMode::Tree,
    FusedDotMode::Kahan,
];

#[test]
fn fused_kernels_are_total_and_finite_preserving() {
    // any finite bounded input, any mode, any length: every fused kernel
    // returns a finite scalar and leaves only finite values in its output
    check(32, |rng| {
        let n = 1 + rng.below(700);
        let p = small_vec(rng, n);
        let w = small_vec(rng, n);
        let z = small_vec(rng, n);
        let lambda = rng.range_f64(-3.0, 3.0);
        for mode in FUSED_MODES {
            let mut x = small_vec(rng, n);
            let mut r = small_vec(rng, n);
            let rr = fused::update_xr(mode, lambda, &p, &w, &mut x, &mut r);
            assert!(rr.is_finite());
            assert!(x.iter().chain(r.iter()).all(|v| v.is_finite()));

            let mut y = small_vec(rng, n);
            assert!(fused::axpy_dot(mode, lambda, &p, &mut y, &z).is_finite());
            assert!(fused::axpy_norm2_sq(mode, lambda, &w, &mut y).is_finite());
            assert!(fused::xpay_norm2_sq(mode, &p, lambda, &mut y).is_finite());
            assert!(y.iter().all(|v| v.is_finite()));

            let mut out = vec![0.0; n];
            assert!(fused::waxpby_dot(mode, 1.5, &p, -0.5, &w, &mut out, &z).is_finite());
            assert!(out.iter().all(|v| v.is_finite()));

            let (d1, d2) = fused::dot2(mode, &p, &w, &z);
            assert!(d1.is_finite() && d2.is_finite());
        }
    });
}

#[test]
fn update_xr_return_equals_dot_of_output_residual() {
    // the scalar a fused update_xr hands back is exactly (r,r) of the
    // residual it just wrote — same mode, same bits
    check(32, |rng| {
        let n = 1 + rng.below(500);
        let p = small_vec(rng, n);
        let w = small_vec(rng, n);
        let lambda = rng.range_f64(-2.0, 2.0);
        for mode in FUSED_MODES {
            let mut x = small_vec(rng, n);
            let mut r = small_vec(rng, n);
            let rr = fused::update_xr(mode, lambda, &p, &w, &mut x, &mut r);
            assert_eq!(rr.to_bits(), kernels::dot(mode, &r, &r).to_bits());
        }
    });
}

#[test]
fn par_fused_fault_injection_is_seed_reproducible_and_thread_invariant() {
    // faults routed through the par_*_with entry points must hit the fused
    // reduction sites (nonzero injected count at this rate), and the whole
    // corrupted computation must replay bit-for-bit from the seed alone,
    // independent of thread count
    check(12, |rng| {
        let seed = rng.next_u64();
        let n = 2048 + rng.below(2048);
        let p = small_vec(rng, n);
        let w = small_vec(rng, n);
        let x0 = small_vec(rng, n);
        let r0 = small_vec(rng, n);
        let z = small_vec(rng, n);
        let run = |threads: usize| {
            let inj = SeededInjector::new(seed, 0.05, FaultKind::Perturb(0.5));
            let mut x = x0.clone();
            let mut r = r0.clone();
            let rr = fused::par_update_xr_with(0.3, &p, &w, &mut x, &mut r, threads, &inj);
            let pair = fused::par_dot2_with(&r, &p, &z, threads, &inj);
            (rr, pair, inj.injected(), x, r)
        };
        let (rr1, pair1, hits1, x1, r1) = run(1);
        for threads in [1usize, 4] {
            let (rr2, pair2, hits2, x2, r2) = run(threads);
            assert_eq!(rr1.to_bits(), rr2.to_bits(), "threads={threads}");
            assert_eq!(pair1.0.to_bits(), pair2.0.to_bits(), "threads={threads}");
            assert_eq!(pair1.1.to_bits(), pair2.1.to_bits(), "threads={threads}");
            assert_eq!(hits1, hits2, "threads={threads}");
            assert_eq!(x1, x2, "threads={threads}");
            assert_eq!(r1, r2, "threads={threads}");
        }
        assert!(hits1 > 0, "faults never reached the fused reduction sites");
    });
}

#[test]
fn injected_rates_reproduce_exactly_per_seed() {
    // the whole subsystem leans on injector determinism: two solves with
    // the same seed must agree bit-for-bit in iterates and fault counts
    check(12, |rng| {
        let seed = rng.next_u64();
        let a = gen::poisson2d(8);
        let b = gen::poisson2d_rhs(8);
        let run = || {
            let inj = std::sync::Arc::new(SeededInjector::new(seed, 1e-3, FaultKind::Nan));
            let opts = SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(500)
                .with_injector(inj)
                .with_recovery(RecoveryPolicy::default());
            StandardCg::new().solve(&a, &b, None, &opts)
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.termination, r2.termination);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.recovery, r2.recovery);
        for (x1, x2) in r1.x.iter().zip(&r2.x) {
            assert_eq!(x1.to_bits(), x2.to_bits());
        }
    });
}

// ---------- fifth wave: persistent team runtime ----------

use cg_lookahead::cg::OpCounts;
use cg_lookahead::par::{PendingScalar, Team};

#[test]
fn team_reductions_bits_invariant_across_widths() {
    // the team decides who computes which chunk leaves, never the leaf
    // layout or the fan-in order — so any width, including the degenerate
    // no-team path, produces the same bits. n spans the dispatch grain so
    // multi-shard epochs genuinely run.
    check(6, |rng| {
        let n = 20_000 + rng.below(20_000);
        let x = small_vec(rng, n);
        let y = small_vec(rng, n);
        let d0 = reduce::par_dot_in(None, &x, &y);
        let s0 = reduce::par_norm2_sq_in(None, &x);
        for width in [2usize, 4, 8] {
            let team = Team::new(width);
            let d = reduce::par_dot_in(Some(&team), &x, &y);
            let s = reduce::par_norm2_sq_in(Some(&team), &x);
            assert_eq!(d0.to_bits(), d.to_bits(), "dot width {width}");
            assert_eq!(s0.to_bits(), s.to_bits(), "norm2 width {width}");
        }
    });
}

#[test]
fn team_fused_sweeps_bits_invariant_across_widths() {
    // fused sweep kernels on a team: outputs are exact per element and the
    // carried reductions use the fixed chunk tree, so vectors and scalars
    // both match the width-1 run bit for bit
    check(6, |rng| {
        let n = 20_000 + rng.below(10_000);
        let p = small_vec(rng, n);
        let w = small_vec(rng, n);
        let z = small_vec(rng, n);
        let lambda = rng.range_f64(-2.0, 2.0);
        let mut y0 = small_vec(rng, n);
        let y_init = y0.clone();
        let d0 = fused::par_axpy_dot_in(None, lambda, &p, &mut y0, &z);
        let (u0, v0) = fused::par_dot2_in(None, &w, &p, &z);
        for width in [2usize, 4] {
            let team = Team::new(width);
            let mut y = y_init.clone();
            let d = fused::par_axpy_dot_in(Some(&team), lambda, &p, &mut y, &z);
            let (u, v) = fused::par_dot2_in(Some(&team), &w, &p, &z);
            assert_eq!(d0.to_bits(), d.to_bits(), "axpy_dot width {width}");
            assert_eq!(y0, y, "axpy output width {width}");
            assert_eq!(u0.to_bits(), u.to_bits(), "dot2.0 width {width}");
            assert_eq!(v0.to_bits(), v.to_bits(), "dot2.1 width {width}");
        }
    });
}

#[test]
fn deferred_dot2_matches_eager_bits() {
    // the split-phase launch path (partials now, tree fan-in at the
    // consume point) must be indistinguishable in value from the eager
    // fused reduction it replaces
    check(8, |rng| {
        let n = 12_000 + rng.below(24_000);
        let x = small_vec(rng, n);
        let y = small_vec(rng, n);
        let z = small_vec(rng, n);
        for threads in [1usize, 4] {
            let opts = SolveOptions::default()
                .with_dot_mode(FusedDotMode::Tree)
                .with_threads(threads);
            let mut counts = OpCounts::default();
            let (a_eager, b_eager) = opts.dot2(&x, &y, &z, &mut counts);
            let (pa, pb) = opts.dot2_deferred(&x, &y, &z, &mut counts);
            assert_eq!(a_eager.to_bits(), pa.wait().to_bits(), "t={threads}");
            assert_eq!(b_eager.to_bits(), pb.wait().to_bits(), "t={threads}");
        }
    });
}

#[test]
fn deferred_pending_scalar_resolves_tree_combine_of_partials() {
    // PendingScalar::deferred(partials) is the team's launch handle: its
    // wait() must equal the one-shot team reduction over the same data
    check(8, |rng| {
        let n = 9_000 + rng.below(30_000);
        let x = small_vec(rng, n);
        let y = small_vec(rng, n);
        let team = Team::new(4);
        let partials = reduce::par_dot_partials_in(Some(&team), &x, &y).expect("healthy team");
        let pending = PendingScalar::deferred(partials);
        let expect = reduce::par_dot_in(None, &x, &y);
        assert_eq!(expect.to_bits(), pending.wait().to_bits());
    });
}

#[test]
fn poisoned_team_reductions_return_nan_at_any_width() {
    // a poisoned team must never return a plausible-but-wrong number: the
    // kernel wrappers overwrite with NaN so solver guards break down
    check(3, |rng| {
        let n = 4 + rng.below(40_000);
        let x = small_vec(rng, n);
        for width in [1usize, 2, 4] {
            let team = Team::new(width);
            let _ = team.try_run(&|_| panic!("injected shard abort"));
            assert!(team.is_poisoned(), "width {width}");
            assert!(reduce::par_dot_in(Some(&team), &x, &x).is_nan());
            assert!(reduce::par_norm2_sq_in(Some(&team), &x).is_nan());
            let mut y = x.clone();
            assert!(fused::par_axpy_dot_in(Some(&team), 0.5, &x, &mut y, &x).is_nan());
        }
    });
}

// ---------- sixth wave: matrix-powers kernel ----------

use cg_lookahead::cg::sstep::basis::{self, BasisKind, BasisParams, KrylovBasis};
use cg_lookahead::cg::BasisEngine;
use cg_lookahead::linalg::mpk::{self, MpkTransform, MpkWorkspace};
use cg_lookahead::linalg::stencil::{Stencil2d, Stencil3d};
use cg_lookahead::linalg::LinearOperator;

fn fbits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn mpk_stencil_powers_bit_match_naive_for_any_tile_width_and_basis() {
    // cache-blocked trapezoidal sweeps recompute ghost zones redundantly,
    // so whatever the tile size (including degenerate ones) or team width,
    // the basis must be BIT-identical to s naive repeated applies — for
    // all three basis transforms and both stencil dimensions. Sizes span
    // the dispatch grain so team runs genuinely shard.
    check(4, |rng| {
        let s = 2 + rng.below(4);
        let ops: Vec<Box<dyn LinearOperator>> = vec![
            Box::new(Stencil2d::poisson(40 + rng.below(100))),
            Box::new(Stencil3d::new(8 + rng.below(18))),
        ];
        for a in &ops {
            let n = a.dim();
            let r = small_vec(rng, n);
            let mut counts = OpCounts::default();
            for kind in [BasisKind::Monomial, BasisKind::Newton, BasisKind::Chebyshev] {
                let params = BasisParams::estimate(kind, a.as_ref(), s, &mut counts);
                let mut ws = MpkWorkspace::new();
                let mut naive = KrylovBasis::default();
                basis::build_into(
                    a.as_ref(),
                    &r,
                    s,
                    &params,
                    BasisEngine::Naive,
                    None,
                    None,
                    &mut ws,
                    &mut naive,
                    &mut counts,
                );
                // random explicit tile and the auto heuristic (None)
                for tile in [Some(1 + rng.below(n)), None] {
                    for width in [1usize, 2, 4] {
                        let team = (width > 1).then(|| Team::new(width));
                        let mut out = KrylovBasis::default();
                        basis::build_into(
                            a.as_ref(),
                            &r,
                            s,
                            &params,
                            BasisEngine::Mpk,
                            team.as_ref(),
                            tile,
                            &mut ws,
                            &mut out,
                            &mut counts,
                        );
                        for l in 0..s {
                            let ctx = format!(
                                "{kind:?} n={n} s={s} level={l} tile={tile:?} width={width}"
                            );
                            assert_eq!(fbits(&naive.v[l]), fbits(&out.v[l]), "{ctx}: v");
                            assert_eq!(fbits(&naive.av[l]), fbits(&out.av[l]), "{ctx}: av");
                        }
                    }
                }
            }
        }
    });
}

#[test]
fn mpk_csr_halo_expansion_bit_matches_naive_on_random_sparsity() {
    // the CSR plan walks dependencies backwards from each row tile,
    // expanding the halo level by level; any sparsity pattern — including
    // empty rows, which contribute no dependencies at all — must give the
    // exact bits of the unblocked sweep. Explicit tiles force the tiled
    // path even when the profitability heuristic would decline.
    check(8, |rng| {
        let n = 30 + rng.below(170);
        let mut rows = vec![vec![0.0; n]; n];
        for row in rows.iter_mut() {
            if rng.below(8) == 0 {
                continue; // empty row
            }
            for _ in 0..(1 + rng.below(6)) {
                let j = rng.below(n);
                row[j] = rng.range_f64(-2.0, 2.0);
            }
        }
        let a = cg_lookahead::linalg::CsrMatrix::from_dense(&rows, 0.0);
        let s = 2 + rng.below(4);
        let r = small_vec(rng, n);
        let shifts = small_vec(rng, s.max(2) - 1);
        let scales: Vec<f64> = (0..s.max(2) - 1)
            .map(|_| f64::exp2(rng.below(7) as f64 - 3.0))
            .collect();
        let transforms = [
            MpkTransform::Monomial,
            MpkTransform::Newton {
                shifts: &shifts,
                scales: &scales,
            },
            MpkTransform::Newton {
                shifts: &[],
                scales: &[],
            },
            MpkTransform::Chebyshev {
                center: rng.range_f64(0.5, 4.0),
                half_width: rng.range_f64(0.25, 2.0),
            },
        ];
        for transform in &transforms {
            let mut v1 = vec![vec![0.0; n]; s];
            let mut av1 = vec![vec![0.0; n]; s];
            v1[0].copy_from_slice(&r);
            mpk::naive_powers(&a, transform, &mut v1, &mut av1, None);
            for tile in [1 + rng.below(n), 1 + rng.below(8)] {
                let mut ws = MpkWorkspace::new();
                let mut v2 = vec![vec![0.0; n]; s];
                let mut av2 = vec![vec![0.0; n]; s];
                v2[0].copy_from_slice(&r);
                a.matrix_powers(transform, &mut v2, &mut av2, None, Some(tile), &mut ws);
                for l in 0..s {
                    let ctx = format!("n={n} s={s} level={l} tile={tile}");
                    assert_eq!(fbits(&v1[l]), fbits(&v2[l]), "{ctx}: v");
                    assert_eq!(fbits(&av1[l]), fbits(&av2[l]), "{ctx}: av");
                }
            }
        }
    });
}

// ---------- seventh wave: self-healing runtime under concurrent faults ----------

use cg_lookahead::par::fault::FaultSite;

#[test]
fn concurrent_shard_faults_recover_bit_reproducibly_across_widths() {
    // Multiple leaf partials corrupted in the SAME reduction epoch — at a
    // 256-leaf layout and 1% per-leaf rate, most faulty dots lose two or
    // more leaves, landing on shards of *different* workers at width > 1.
    // Faults are seeded by injector call order, which the fixed leaf
    // layout makes width-invariant, so the entire recovery trajectory —
    // detections, restarts, checkpoint rollbacks, iteration count, final
    // bits — must be identical for widths 1, 2, and 4.
    use cg_lookahead::linalg::kernels::DotMode;
    use std::sync::Arc;

    check(4, |rng| {
        let seed = rng.next_u64() % 10_000;
        let a = gen::poisson2d(64); // 4096 unknowns
        let b = gen::poisson2d_rhs(64);
        let mk = |width: usize| {
            let o = SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(500)
                .with_dot_mode(DotMode::Tree)
                .with_injector(Arc::new(
                    SeededInjector::new(seed, 0.01, FaultKind::Nan).at_site(FaultSite::DotPartial),
                ))
                .with_recovery(
                    RecoveryPolicy::default()
                        .with_checkpoint_period(8)
                        .with_max_restarts(3),
                );
            if width > 1 {
                o.with_team(Arc::new(Team::new(width)))
            } else {
                o.with_threads(1)
            }
        };
        let base = cg_lookahead::cg::resilience::solve_with_recovery(
            &StandardCg::new(),
            &a,
            &b,
            None,
            &mk(1),
        );
        for width in [2usize, 4] {
            let res = cg_lookahead::cg::resilience::solve_with_recovery(
                &StandardCg::new(),
                &a,
                &b,
                None,
                &mk(width),
            );
            assert_eq!(
                base.termination, res.termination,
                "seed {seed} width {width}"
            );
            assert_eq!(base.iterations, res.iterations, "seed {seed} width {width}");
            assert_eq!(
                base.recovery, res.recovery,
                "seed {seed} width {width}: RecoveryStats must be width-invariant"
            );
            assert_eq!(base.x, res.x, "seed {seed} width {width}: x bits");
            assert_eq!(
                base.residual_norms, res.residual_norms,
                "seed {seed} width {width}: trace bits"
            );
        }
    });
}

// ---------- eighth wave: deep-pipelined and predict-and-recompute ----------

use cg_lookahead::cg::pipelined_deep::DeepPipelinedCg;
use cg_lookahead::cg::predict_recompute::{PipelinedPrCg, PredictRecomputeCg};

#[test]
fn predict_recompute_scalars_track_true_recurrence_on_random_spd() {
    // The recomputed ν = (r,r) and μ = (w,w)-family scalars are predictions
    // corrected one iteration later; on a well-conditioned random SPD
    // system they must stay finite, agree with the exact (standard CG)
    // residual recurrence while the iteration is in its convergent regime,
    // and the claimed solution must be corroborated by the true residual.
    check(12, |rng| {
        let seed = rng.next_u64() % 8000;
        let n = 40 + rng.below(41);
        let a = gen::rand_spd(n, 5, 2.5, seed);
        let b = gen::rand_vector(n, seed.wrapping_add(3));
        let bnorm = kernels::norm2(&b);
        let opts = SolveOptions::default().with_tol(1e-9).with_max_iters(600);
        let exact = StandardCg::new().solve(&a, &b, None, &opts);
        for v in [
            Box::new(PredictRecomputeCg::new()) as Box<dyn CgVariant>,
            Box::new(PipelinedPrCg::new()),
        ] {
            let res = v.solve(&a, &b, None, &opts);
            assert!(
                res.converged,
                "{} seed {seed}: {:?}",
                v.name(),
                res.termination
            );
            for (k, nrm) in res.residual_norms.iter().enumerate() {
                assert!(
                    nrm.is_finite(),
                    "{} seed {seed}: non-finite recomputed norm at {k}",
                    v.name()
                );
            }
            // early iterations (before rounding regimes diverge) must track
            // the exact recurrence to a loose relative tolerance
            let m = exact
                .residual_norms
                .len()
                .min(res.residual_norms.len())
                .min(12);
            for k in 0..m {
                let (e, p) = (exact.residual_norms[k], res.residual_norms[k]);
                assert!(
                    (e - p).abs() <= 1e-3 * (1.0 + e.abs()),
                    "{} seed {seed}: recomputed norm[{k}] {p:e} drifts from exact {e:e}",
                    v.name()
                );
            }
            let rel = res.true_residual(&a, &b) / bnorm.max(1e-300);
            assert!(
                rel < 1e-6,
                "{} seed {seed}: rel true residual {rel:e}",
                v.name()
            );
        }
    });
}

#[test]
fn deep_pipeline_fault_recovery_is_bit_reproducible_across_widths() {
    // Seeded NaN upsets against the depth-2 pipeline's reduction partials:
    // the rollback-refill recovery (restore checkpointed x, recompute the
    // true residual, restart the Lanczos epoch) is seeded by injector call
    // order, which the fixed leaf layout makes width-invariant — so the
    // whole trajectory must be identical at widths 1, 2, and 4.
    use cg_lookahead::linalg::kernels::DotMode;
    use std::sync::Arc;

    check(4, |rng| {
        let seed = rng.next_u64() % 10_000;
        let a = gen::poisson2d(24);
        let b = gen::poisson2d_rhs(24);
        let mk = |width: usize| {
            let o = SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(400)
                .with_dot_mode(DotMode::Tree)
                .with_injector(Arc::new(
                    SeededInjector::new(seed, 0.002, FaultKind::Nan).at_site(FaultSite::DotPartial),
                ))
                .with_recovery(
                    RecoveryPolicy::default()
                        .with_checkpoint_period(8)
                        .with_max_restarts(4),
                );
            if width > 1 {
                o.with_team(Arc::new(Team::new(width)))
            } else {
                o.with_threads(1)
            }
        };
        let solver = DeepPipelinedCg::new(2);
        let base = solver.solve(&a, &b, None, &mk(1));
        for width in [2usize, 4] {
            let res = solver.solve(&a, &b, None, &mk(width));
            assert_eq!(
                base.termination, res.termination,
                "seed {seed} width {width}"
            );
            assert_eq!(base.iterations, res.iterations, "seed {seed} width {width}");
            assert_eq!(
                base.recovery, res.recovery,
                "seed {seed} width {width}: RecoveryStats must be width-invariant"
            );
            assert_eq!(base.x, res.x, "seed {seed} width {width}: x bits");
            assert_eq!(
                base.residual_norms, res.residual_norms,
                "seed {seed} width {width}: trace bits"
            );
        }
    });
}

#[test]
fn new_variants_survive_single_fault_with_checkpoint_rollback() {
    // One random upset (random kind, random strike time) against each of
    // the three new variants with checkpointing on: the internal
    // rollback must round-trip the saved state — the solve still converges
    // and the solution is the true one.
    check(16, |rng| {
        let seed = rng.next_u64() % 2000;
        let n = 36;
        let a = gen::rand_spd(n, 4, 2.0, seed);
        let b = gen::rand_vector(n, seed.wrapping_add(7));
        let kind = match rng.below(3) {
            0 => FaultKind::Nan,
            1 => FaultKind::Inf,
            _ => FaultKind::Perturb(1.0),
        };
        let at_call = rng.next_u64() % 20_000;
        let inj = std::sync::Arc::new(SingleFault::new(at_call, kind));
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(1500)
            .with_injector(inj)
            .with_recovery(
                RecoveryPolicy::default()
                    .with_checkpoint_period(6)
                    .with_max_restarts(4),
            );
        for v in [
            Box::new(DeepPipelinedCg::new(2)) as Box<dyn CgVariant>,
            Box::new(PredictRecomputeCg::new()),
            Box::new(PipelinedPrCg::new()),
        ] {
            let res =
                cg_lookahead::cg::resilience::solve_with_recovery(v.as_ref(), &a, &b, None, &opts);
            assert!(
                res.converged,
                "{} under {kind:?}@{at_call} seed {seed}: {:?}",
                v.name(),
                res.termination
            );
            assert!(
                res.true_residual(&a, &b) <= 1e-6 * (1.0 + kernels::norm2(&b)),
                "{} under {kind:?}@{at_call} seed {seed}: bad solution",
                v.name()
            );
        }
    });
}

// ---------- ninth wave: SIMD lanes and mixed precision ----------

use cg_lookahead::cg::{Precision, SimdPolicy};

fn mixed_eligible_trio() -> Vec<Box<dyn CgVariant>> {
    vec![
        Box::new(StandardCg::new()) as Box<dyn CgVariant>,
        Box::new(OverlapK1Cg::new()),
        Box::new(PipelinedCg::new()),
    ]
}

/// Pinning the SIMD policy is unobservable on random SPD systems: under
/// the order-preserving `Tree` reduction, `Scalar` and `Simd` solves are
/// bit-for-bit identical — iterate and residual trace — for random
/// dimensions straddling the 8-lane blocks.
#[test]
fn simd_policy_is_bit_invariant_on_random_spd() {
    use cg_lookahead::linalg::kernels::DotMode;
    check(24, |rng| {
        let n = 16 + rng.below(70); // 16..=85: odd sizes included
        let seed = rng.next_u64();
        let a = gen::rand_spd(n, 4, 3.0, seed);
        let b = gen::rand_vector(n, seed.wrapping_add(3));
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(600)
            .with_dot_mode(DotMode::Tree);
        for v in mixed_eligible_trio() {
            let s = v.solve(
                &a,
                &b,
                None,
                &opts.clone().with_simd_policy(SimdPolicy::Scalar),
            );
            let w = v.solve(
                &a,
                &b,
                None,
                &opts.clone().with_simd_policy(SimdPolicy::Simd),
            );
            let eq =
                s.x.iter()
                    .zip(&w.x)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
                    && s.residual_norms
                        .iter()
                        .zip(&w.residual_norms)
                        .all(|(p, q)| p.to_bits() == q.to_bits())
                    && s.residual_norms.len() == w.residual_norms.len();
            assert!(
                eq,
                "{} n {n} seed {seed:#x}: simd changed the bits",
                v.name()
            );
        }
    });
}

/// Cools-style residual-replacement bound (per the 1601.07068 analysis of
/// pipelined CG rounding errors): with `f32` working vectors, periodic
/// true-residual confirmation, and residual replacement, the *f64 true*
/// residual at exit may not drift beyond the recursive residual by more
/// than O(ε₃₂ · (‖A‖·‖x‖ + ‖b‖)). The guard also forbids optimistic
/// exits: a `Converged` claim must hold at the requested tolerance
/// against the true residual.
#[test]
fn mixed_precision_residual_replacement_bound_on_random_spd() {
    check(24, |rng| {
        let n = 24 + rng.below(60);
        let seed = rng.next_u64();
        let a = gen::rand_spd(n, 4, 2.0 + rng.range_f64(0.0, 2.0), seed);
        let b = gen::rand_vector(n, seed.wrapping_add(11));
        let tol = 1e-5;
        let opts = SolveOptions::default()
            .with_tol(tol)
            .with_max_iters(2000)
            .with_precision(Precision::Mixed);
        // ‖A‖_∞ from the row sums (exact for CSR)
        let norm_a = (0..n)
            .map(|i| a.row(i).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
        let bnorm = kernels::norm2(&b);
        for v in mixed_eligible_trio() {
            let res = v.solve(&a, &b, None, &opts);
            let true_res = res.true_residual(&a, &b);
            let xnorm = kernels::norm2(&res.x);
            // replacement bound: true residual tracks the recursive one up
            // to the f32 working-precision floor of the problem's scale
            let floor = 1e3 * f64::from(f32::EPSILON) * (norm_a * xnorm + bnorm);
            assert!(
                true_res <= res.final_residual + floor,
                "{} n {n} seed {seed:#x}: true residual {true_res:e} exceeds \
                 recursive {:e} + replacement floor {floor:e} ({:?})",
                v.name(),
                res.final_residual,
                res.termination
            );
            // no optimistic exits
            if res.converged {
                assert!(
                    true_res <= 10.0 * tol * bnorm,
                    "{} n {n} seed {seed:#x}: claimed convergence at tol \
                     {tol:e} but true residual is {true_res:e}",
                    v.name()
                );
            }
        }
    });
}
