//! # vr-bench
//!
//! Experiment harnesses reproducing every claim of Van Rosendale (1983).
//!
//! Each experiment in DESIGN.md's index has a binary in `src/bin/` that
//! prints a human-readable table AND writes machine-readable JSON under
//! `target/experiments/`. The benches in `benches/` cover the wall-clock
//! measurements (E7) and the simulator sweeps.
//!
//! | binary | claim | what it prints |
//! |---|---|---|
//! | `e1_logn_scaling` | C1 | standard-CG cycle time vs N (≈ 2·log₂N) |
//! | `e2_k1_doubling` | C2 | standard vs §3 overlap speedup vs N |
//! | `e3_coefficient_degrees` | C3 | (*) coefficient degree audit per k |
//! | `e4_opcounts` | C4 | measured matvecs/dots per iteration per solver |
//! | `e5_loglogn` | C5 | look-ahead cycle time vs N with k = log₂N |
//! | `e6_figure1_schedule` | Fig. 1 | the pipelined data-movement Gantt |
//! | `e8_equivalence` | implicit | iterate equivalence across variants |
//! | `e9_stability` | extension | attainable accuracy vs k, resync ablation |
//! | `e10_bounded_procs` | extension | bounded-P and latency crossovers |
//! | `e11_sstep_basis` | extension | s-step basis stability (monomial vs Newton/Chebyshev) |
//! | `e12_precond_sstep` | extension | preconditioner parallel profiles, block amortization |
//! | `e13_latency_tolerance` | extension | interconnect topologies and the slack knee |
//! | `e14_chebyshev_floor` | extension | the zero-reduction comparator |
//! | `e15_fault_recovery` | extension | fault injection × recovery policy sweep |
//! | `e16_fused_kernels` | extension | fused single-pass kernel iteration throughput |
//! | `e17_thread_scaling` | extension | persistent-team width sweep, bit-identical traces |
//! | `e18_matrix_powers` | extension | cache-blocked MPK vs naive basis build |
//! | `e19_critical_path` | C1–C3 | traced per-iteration phase attribution on real threads |
//! | `e20_self_healing` | extension | worker failover and checkpoint/rollback overhead |
//! | `e21_stability_matrix` | extension | cross-variant attainable-accuracy shoot-out |
//! | `e22_simd_bandwidth` | extension | SIMD/mixed-precision roofline, bytes per iteration |
//! | `e23_sweep_fusion` | extension | whole-iteration sweep fusion vs per-kernel fused |
//! | `e24_solve_service` | extension | multi-tenant daemon: admission, batching, failover |

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod obs;
pub mod timing;

use json::ToJson;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple aligned text table for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, "{:>w$}", c, w = widths[i]);
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Directory where experiment JSON results are written.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("VR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serialize an experiment result to `target/experiments/<id>.json`.
pub fn write_json<T: ToJson>(id: &str, value: &T) {
    let path = results_dir().join(format!("{id}.json"));
    let json = value.to_json().pretty();
    std::fs::write(&path, json).expect("write result JSON");
    eprintln!("[{id}] wrote {}", path.display());
}

/// Least-squares slope of `y` against `x` (used to fit `cycle ≈ a·log N`).
#[must_use]
pub fn fit_slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "fit_slope arity");
    assert!(x.len() >= 2, "need ≥ 2 points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        num += (xi - mx) * (yi - my);
        den += (xi - mx) * (xi - mx);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "value"]);
        t.row(&["8".into(), "1.5".into()]);
        t.row(&["1024".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("   n"), "{s}");
        assert!(s.contains("1024"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn fit_slope_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        assert!((fit_slope(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn write_json_creates_file() {
        std::env::set_var("VR_RESULTS_DIR", std::env::temp_dir().join("vr_bench_test"));
        write_json("selftest", &crate::json!({"ok": true}));
        let p = results_dir().join("selftest.json");
        assert!(p.exists());
        std::fs::remove_file(p).ok();
        std::env::remove_var("VR_RESULTS_DIR");
    }
}

/// Render a log-scale ASCII convergence plot: one column per data point,
/// `height` rows spanning the data's log range. Used by the convergence
/// example and the EXPERIMENTS write-ups.
#[must_use]
pub fn ascii_semilog(series: &[(&str, &[f64])], height: usize) -> String {
    let height = height.max(2);
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|y| *y > 0.0 && y.is_finite())
        .collect();
    if all.is_empty() {
        return String::from("(no positive data)\n");
    }
    let lo = all.iter().cloned().fold(f64::INFINITY, f64::min).log10();
    let hi = all
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        .log10();
    let span = (hi - lo).max(1e-9);
    let width = series.iter().map(|(_, ys)| ys.len()).max().unwrap_or(0);

    let marks = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (x, &y) in ys.iter().enumerate() {
            if y > 0.0 && y.is_finite() {
                let t = (y.log10() - lo) / span; // 0 = bottom, 1 = top
                let row = ((1.0 - t) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][x] = mark;
            }
        }
    }

    let mut out = String::new();
    use std::fmt::Write as _;
    for (r, row) in grid.iter().enumerate() {
        let level = hi - span * r as f64 / (height - 1) as f64;
        let _ = write!(out, "1e{level:+06.1} |");
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = write!(out, "        +{}\n         ", "-".repeat(width));
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = write!(out, "{} = {}   ", marks[si % marks.len()], name);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod plot_tests {
    use super::ascii_semilog;

    #[test]
    fn plot_renders_marks_and_legend() {
        let a: Vec<f64> = (0..20).map(|i| 10.0_f64.powi(-i)).collect();
        let b: Vec<f64> = (0..20)
            .map(|i| 5.0 * 10.0_f64.powf(-0.5 * i as f64))
            .collect();
        let s = ascii_semilog(&[("fast", &a), ("slow", &b)], 12);
        assert!(s.contains('*'), "{s}");
        assert!(s.contains('o'), "{s}");
        assert!(s.contains("* = fast"), "{s}");
        assert!(s.contains("o = slow"), "{s}");
        assert_eq!(s.lines().count(), 14);
    }

    #[test]
    fn plot_handles_empty_and_nonpositive() {
        assert_eq!(ascii_semilog(&[], 10), "(no positive data)\n");
        let z = [0.0, -1.0, f64::NAN];
        assert_eq!(ascii_semilog(&[("z", &z)], 10), "(no positive data)\n");
    }

    #[test]
    fn monotone_series_descends_left_to_right() {
        let a: Vec<f64> = (0..30).map(|i| 10.0_f64.powf(-0.3 * i as f64)).collect();
        let s = ascii_semilog(&[("conv", &a)], 10);
        // first column's mark must appear on an earlier line than the last
        // prefix "1e+000.0 |" is 10 bytes, so data column x sits at 10 + x
        let first_row = s.lines().position(|l| l.as_bytes().get(10) == Some(&b'*'));
        let lines: Vec<&str> = s.lines().collect();
        let last_col = 10 + 29;
        let last_row = lines
            .iter()
            .position(|l| l.as_bytes().get(last_col) == Some(&b'*'));
        assert!(first_row.unwrap() < last_row.unwrap(), "{s}");
    }
}
