//! E2 — Claim C2: the §3 one-step overlap approximately doubles parallel
//! speed.
//!
//! Compares steady-state cycle times of standard CG and the overlap-k1
//! variant on the paper's machine across N, for several d. The speedup
//! should approach 2 from below as log N grows past log d (the overlap can
//! only hide reduction latency, not SpMV depth).

use vr_bench::{write_json, Table};
use vr_sim::{builders, MachineModel};

vr_bench::jsonable! {
    struct Row {
    log2_n: u32,
    d: usize,
    std_cycle: f64,
    k1_cycle: f64,
    speedup: f64,
}
}

fn main() {
    let m = MachineModel::pram();
    let iters = 40;
    let mut table = Table::new(&["log2(N)", "d", "standard", "overlap-k1", "speedup"]);
    let mut rows = Vec::new();

    for d in [3usize, 5, 27] {
        for log_n in [8u32, 12, 16, 20, 24] {
            let n = 1usize << log_n;
            let std_cycle = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
            let k1_cycle = builders::overlap_k1(n, d, iters).steady_cycle_time(&m);
            let speedup = std_cycle / k1_cycle;
            table.row(&[
                log_n.to_string(),
                d.to_string(),
                format!("{std_cycle:.2}"),
                format!("{k1_cycle:.2}"),
                format!("{speedup:.3}"),
            ]);
            rows.push(Row {
                log2_n: log_n,
                d,
                std_cycle,
                k1_cycle,
                speedup,
            });
        }
    }

    println!("E2 — §3 one-step overlap vs standard CG (claim C2: ≈ 2× for log N ≫ log d)");
    println!("{}", table.render());

    // Headline check: largest N, smallest d approaches the promised 2×.
    let best = rows
        .iter()
        .filter(|r| r.d == 3)
        .map(|r| r.speedup)
        .fold(0.0_f64, f64::max);
    println!("best speedup at d=3: {best:.3} (paper: \"approximately double\")");
    assert!(best > 1.6, "speedup {best} far from the claimed doubling");
    write_json(
        "e2_k1_doubling",
        &vr_bench::json!({ "rows": rows, "best_speedup_d3": best }),
    );
}
