//! E20 — self-healing team runtime: worker failover, checkpoint/rollback,
//! and checksum-guarded overlapped reductions.
//!
//! The 1983 restructuring hides reduction latency behind deeper recurrence
//! chains — which also widens the blast radius of any fault that lands in
//! those chains. This experiment measures the three defenses added on top
//! of the persistent SPMD team:
//!
//! 1. **Worker failover** (E20a): a worker of a width-4 team is killed
//!    mid-solve — once cooperatively, once silently (only the caller's
//!    heartbeat health check can notice). The fixed 256-leaf reduction
//!    layout re-shards deterministically onto the survivors, so the solve
//!    completes with *the same bits* as the full team and as one thread.
//! 2. **Checkpoint/rollback vs restart** (E20b): fault rate × recovery
//!    policy × width. A `CheckpointRing` snapshot every C iterations turns
//!    a detected breakdown into a ≤ C-iteration replay; the classic ladder
//!    re-runs the whole attempt. Failover composes: the rollback policy on
//!    a degraded team reproduces the width-1 trajectory bit for bit.
//! 3. **Checksum-guarded reductions** (E20c): duplicate-leaf split-phase
//!    dots detect and repair partial-sum corruption at the deferred
//!    consume point, localizing it to one iteration window.
//!
//! Headlines (asserted outside `--smoke`):
//! * a killed worker at width 4 completes bit-identically on 3 survivors;
//! * at a 10⁻³ scalar fault rate the rollback policy converges within 2×
//!   the fault-free iteration count while restart-only needs ≥ 5×;
//! * checkpointing itself is overhead-class work (`SpanKind::Checkpoint`),
//!   a few microseconds per period, invisible in the iteration count.

use std::sync::Arc;
use vr_bench::{write_json, Table};
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::resilience::fault::FaultInjector;
use vr_cg::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions, Termination};
use vr_linalg::gen;
use vr_linalg::kernels::{norm2, DotMode};
use vr_par::fault::FaultSite;
use vr_par::Team;

vr_bench::jsonable! {
    struct PolicyRow {
    rate: f64,
    policy: String,
    width: usize,
    converged: bool,
    termination: String,
    iterations: usize,
    iter_ratio: f64,
    faults_injected: u64,
    faults_detected: u64,
    rollbacks: usize,
    restarts: usize,
    rel_true_residual: f64,
}
}

vr_bench::jsonable! {
    struct FailoverRow {
    kill: String,
    width: usize,
    live_width_after: usize,
    iterations: usize,
    bit_identical: bool,
    poisoned: bool,
}
}

vr_bench::jsonable! {
    struct ChecksumRow {
    rate: f64,
    checksum: bool,
    converged: bool,
    termination: String,
    iterations: usize,
    faults_detected: u64,
    rel_true_residual: f64,
}
}

fn tlabel(t: Termination) -> &'static str {
    match t {
        Termination::Converged => "converged",
        Termination::RecoveredConverged => "recovered",
        Termination::MaxIterations => "max-iters",
        Termination::Breakdown => "breakdown",
        Termination::Stagnated => "stagnated",
        Termination::Diverged => "diverged",
        Termination::Unsupported => "unsupported",
        Termination::Cancelled => "cancelled",
    }
}

/// The three recovery configurations of the sweep.
fn policy(name: &str) -> RecoveryPolicy {
    match name {
        // the classic ladder alone: every detected breakdown replays the
        // whole solve from x0 (cold restart — "restarting from zero", the
        // pre-checkpoint baseline). A deep restart budget so the
        // comparison is iteration-limited, not budget-limited.
        "restart-only" => RecoveryPolicy::default()
            .with_checkpoint_period(0)
            .with_warm_restart(false)
            .with_max_restarts(100),
        // checkpoint every 8 iterations; corruption replays ≤ 8 iterations
        _ => RecoveryPolicy::default()
            .with_checkpoint_period(8)
            .with_max_rollbacks(64)
            .with_max_restarts(100),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_policy(
    a: &dyn vr_linalg::LinearOperator,
    b: &[f64],
    rate: f64,
    pname: &str,
    team: Option<Arc<Team>>,
    seed: u64,
    max_iters: usize,
    ff_iters: usize,
) -> PolicyRow {
    let width = team.as_ref().map_or(1, |t| t.width());
    let mut opts = SolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(max_iters)
        .with_dot_mode(DotMode::Tree)
        .with_recovery(policy(pname));
    opts = match team {
        Some(t) => opts.with_team(t),
        None => opts.with_threads(1),
    };
    let inj = Arc::new(
        SeededInjector::new(seed, rate, FaultKind::Nan).at_site(FaultSite::ScalarRecurrence),
    );
    if rate > 0.0 {
        opts = opts.with_injector(inj.clone());
    }
    let res = vr_cg::resilience::solve_with_recovery(&StandardCg::new(), a, b, None, &opts);
    PolicyRow {
        rate,
        policy: pname.into(),
        width,
        converged: res.converged,
        termination: tlabel(res.termination).into(),
        iterations: res.iterations,
        iter_ratio: res.iterations as f64 / ff_iters.max(1) as f64,
        faults_injected: inj.injected(),
        faults_detected: res.recovery.faults_detected,
        rollbacks: res.recovery.rollbacks,
        restarts: res.recovery.restarts,
        rel_true_residual: res.true_residual(a, b) / norm2(b),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ---- E20a: worker failover, bit-identical on survivors ----
    // 182² = 33124 ≥ 4·GRAIN: a width-4 team dispatches real multi-shard
    // epochs, so killing a worker exercises actual re-sharding (smoke uses
    // a smaller grid whose width-2 epochs still engage).
    let (fg, fwidth) = if smoke { (96usize, 2usize) } else { (182, 4) };
    let fa = gen::poisson2d(fg);
    let fb = gen::poisson2d_rhs(fg);
    let fbase = SolveOptions::default()
        .with_tol(1e-9)
        .with_dot_mode(DotMode::Tree);
    let reference = StandardCg::new().solve(&fa, &fb, None, &fbase.clone().with_threads(1));

    let mut failover_rows = Vec::new();
    let mut tf = Table::new(&["kill", "width", "live", "iters", "bits", "poisoned"]);
    for kill in ["none", "cooperative", "silent"] {
        let team = Arc::new(Team::new(fwidth));
        // fast heartbeat so a silent death is noticed within a few ms
        team.set_health_params(1, 3);
        let killer = if kill == "none" {
            None
        } else {
            let t = Arc::clone(&team);
            let mode = kill.to_string();
            Some(std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                if mode == "silent" {
                    t.kill_worker_silent(1);
                } else {
                    t.kill_worker(1);
                }
            }))
        };
        let res =
            StandardCg::new().solve(&fa, &fb, None, &fbase.clone().with_team(Arc::clone(&team)));
        if let Some(k) = killer {
            k.join().expect("killer thread");
        }
        // killed workers may still be mid-demotion; one epoch settles it
        let _ = team.try_run(&|_| {});
        let row = FailoverRow {
            kill: kill.into(),
            width: fwidth,
            live_width_after: team.live_width(),
            iterations: res.iterations,
            bit_identical: res.x == reference.x && res.residual_norms == reference.residual_norms,
            poisoned: team.is_poisoned(),
        };
        tf.row(&[
            row.kill.clone(),
            row.width.to_string(),
            row.live_width_after.to_string(),
            row.iterations.to_string(),
            row.bit_identical.to_string(),
            row.poisoned.to_string(),
        ]);
        if !smoke {
            assert!(
                row.bit_identical,
                "kill={kill}: survivors diverged from the single-thread bits"
            );
            assert!(!row.poisoned, "kill={kill}: failover must not poison");
            if kill != "none" {
                assert_eq!(
                    row.live_width_after,
                    fwidth - 1,
                    "kill={kill}: worker 1 should be demoted"
                );
            }
        }
        failover_rows.push(row);
    }
    println!(
        "E20a — worker killed mid-solve at width {fwidth} (Poisson {fg}×{fg}, tol 1e-9, tree dots)"
    );
    println!("{}", tf.render());
    println!("survivors re-shard the fixed 256-leaf layout: identical bits, no poison\n");

    // ---- E20b: fault rate × recovery policy × width ----
    // Shifted Toeplitz tridiagonal: κ ≈ 4/δ is tunable independently of n,
    // so the fault-free solve can be made much longer (~2500 iterations)
    // than the ~500-iteration mean time between scalar faults at 1e-3.
    // That is the regime where the policies diverge: a cold restart almost
    // never survives a full fault-free length, a ≤ 8-iteration rollback
    // barely notices. n = 40000 ≥ 4·GRAIN keeps width-4 team epochs real.
    let (pn, shift, max_iters) = if smoke {
        (4096usize, 1e-2f64, 2000usize)
    } else {
        (40_000, 6e-5, 20_000)
    };
    let pa = gen::tridiag_toeplitz(pn, 2.0 + shift, -1.0);
    let pb = gen::rand_vector(pn, 7);

    let mut ff = run_policy(&pa, &pb, 0.0, "rollback", None, 0, max_iters, 1);
    ff.iter_ratio = 1.0;
    let ff_iters = ff.iterations;
    println!(
        "E20b — fault-free baseline: {} iterations (tridiag n={pn}, diag 2+{shift:.0e}, tol 1e-8)",
        ff_iters
    );

    let cols = [
        "rate",
        "policy",
        "width",
        "term",
        "iters",
        "ratio",
        "injected",
        "detected",
        "rollbacks",
        "restarts",
        "rel resid",
    ];
    let mut tp = Table::new(&cols);
    let mut policy_rows = vec![ff];
    let rates: &[f64] = if smoke { &[1e-3] } else { &[1e-4, 1e-3, 1e-2] };
    for (ri, &rate) in rates.iter().enumerate() {
        for pname in ["restart-only", "rollback"] {
            let r = run_policy(
                &pa,
                &pb,
                rate,
                pname,
                None,
                0xE20 + ri as u64,
                max_iters,
                ff_iters,
            );
            policy_rows.push(r);
        }
        // rollback + failover: the same seeded faults on a width-4 team
        // that loses a worker mid-sweep — trajectory must not change
        let team = Arc::new(Team::new(4));
        team.set_health_params(1, 3);
        let t = Arc::clone(&team);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            t.kill_worker(2);
        });
        let r = run_policy(
            &pa,
            &pb,
            rate,
            "rollback+failover",
            Some(team),
            0xE20 + ri as u64,
            max_iters,
            ff_iters,
        );
        killer.join().expect("killer thread");
        policy_rows.push(r);
    }
    for r in &policy_rows {
        tp.row(&[
            format!("{:.0e}", r.rate),
            r.policy.clone(),
            r.width.to_string(),
            r.termination.clone(),
            r.iterations.to_string(),
            format!("{:.2}", r.iter_ratio),
            r.faults_injected.to_string(),
            r.faults_detected.to_string(),
            r.rollbacks.to_string(),
            r.restarts.to_string(),
            format!("{:.2e}", r.rel_true_residual),
        ]);
    }
    println!("{}", tp.render());

    if !smoke {
        // headline: rollback ≤ 2× fault-free, restart-only ≥ 5× at 1e-3
        let get = |pname: &str, width: usize| {
            policy_rows
                .iter()
                .find(|r| (r.rate - 1e-3).abs() < 1e-12 && r.policy == pname && r.width == width)
                .unwrap_or_else(|| panic!("missing row {pname}@{width}"))
        };
        let rb = get("rollback", 1);
        let ro = get("restart-only", 1);
        assert!(
            rb.converged && rb.iterations <= 2 * ff_iters,
            "rollback at 1e-3 took {} iters vs fault-free {ff_iters} (> 2×)",
            rb.iterations
        );
        assert!(
            ro.iterations >= 5 * ff_iters,
            "restart-only at 1e-3 took only {} iters vs fault-free {ff_iters} (< 5×)",
            ro.iterations
        );
        assert!(rb.rollbacks >= 1, "rollback policy never rolled back");
        // failover composes: degraded-team trajectory == width-1 trajectory
        let rf = get("rollback+failover", 4);
        assert_eq!(
            (rf.iterations, rf.rollbacks, rf.restarts),
            (rb.iterations, rb.rollbacks, rb.restarts),
            "rollback on a degraded width-4 team must replay the width-1 trajectory"
        );
        println!(
            "headline: rollback {}it ≤ 2×{ff_iters}; restart-only {}it ≥ 5×{ff_iters}; \
             degraded-team trajectory identical\n",
            rb.iterations, ro.iterations
        );
    } else {
        println!("(--smoke: tiny problem, headline assertions skipped)\n");
    }

    // ---- E20c: checksum-guarded overlapped reductions ----
    // overlap-k1 consumes split-phase dots at a deferred point; duplicate
    // leaves + bitwise compare catch partial corruption right there.
    let ca = gen::poisson2d(if smoke { 32 } else { 64 });
    let cb = gen::poisson2d_rhs(if smoke { 32 } else { 64 });
    let mut tc = Table::new(&["rate", "checksum", "term", "iters", "detected", "rel resid"]);
    let mut checksum_rows = Vec::new();
    for &(rate, checksum) in &[(0.0, true), (2e-3, false), (2e-3, true)] {
        let mut opts = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(4000)
            .with_dot_mode(DotMode::Tree)
            .with_reduction_checksum(checksum)
            .with_recovery(RecoveryPolicy::default().with_checkpoint_period(8));
        if rate > 0.0 {
            opts = opts.with_injector(Arc::new(
                SeededInjector::new(3, rate, FaultKind::Perturb(0.5))
                    .at_site(FaultSite::DotPartial),
            ));
        }
        let res = vr_cg::resilience::solve_with_recovery(
            &OverlapK1Cg::new().with_resync(20),
            &ca,
            &cb,
            None,
            &opts,
        );
        let row = ChecksumRow {
            rate,
            checksum,
            converged: res.converged,
            termination: tlabel(res.termination).into(),
            iterations: res.iterations,
            faults_detected: res.recovery.faults_detected,
            rel_true_residual: res.true_residual(&ca, &cb) / norm2(&cb),
        };
        tc.row(&[
            format!("{:.0e}", row.rate),
            row.checksum.to_string(),
            row.termination.clone(),
            row.iterations.to_string(),
            row.faults_detected.to_string(),
            format!("{:.2e}", row.rel_true_residual),
        ]);
        if !smoke && checksum && rate > 0.0 {
            assert!(
                row.converged,
                "checksum-guarded overlap-k1 must survive partial corruption: {:?}",
                row.termination
            );
            assert!(
                row.faults_detected >= 1,
                "duplicate-leaf checksum detected nothing at rate {rate}"
            );
        }
        checksum_rows.push(row);
    }
    println!("E20c — overlap-k1 with duplicate-leaf checksums on split-phase dots");
    println!("{}", tc.render());

    write_json(
        "BENCH_selfheal",
        &vr_bench::json::envelope(
            "e20_self_healing",
            smoke,
            &[
                ("failover_rows", vr_bench::json!(failover_rows)),
                ("policy_rows", vr_bench::json!(policy_rows)),
                ("checksum_rows", vr_bench::json!(checksum_rows)),
            ],
        ),
    );
}
