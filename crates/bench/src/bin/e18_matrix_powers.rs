//! E18 — extension: cache-blocked matrix-powers kernel (MPK).
//!
//! s-step CG builds its block Krylov basis `[r, Ar, …, A^{s−1}r]` with `s`
//! operator applications. Done column by column (the `Naive` engine), each
//! application streams the whole vector through memory — `s` full passes
//! of traffic for data that is touched `s` times. The `Mpk` engine blocks
//! the sweep into tiles sized to the L2 working set and computes all `s`
//! levels of a tile before moving on, recomputing ghost zones redundantly
//! so the result is **bit-identical** to the naive engine (the sixth-wave
//! property tests and `tests/basis_engine.rs` enforce this; this binary
//! re-asserts it on every measured configuration).
//!
//! Sweep: grid × s ∈ {2,4,8} × basis kind × engine × team width, fixed
//! repetition count, interleaved min-of-reps wall clock. Headlines
//! (asserted outside `--smoke`):
//!
//! * single-thread MPK basis build at N = 2²⁰ (1024² Poisson stencil),
//!   s = 8, Newton basis sustains ≥ 1.4× the naive build throughput (the
//!   Newton/Chebyshev recurrences are where blocking pays most — naive
//!   needs a separate full-vector transform pass per level — and Newton is
//!   the basis s-step actually runs at s = 8, where the monomial basis is
//!   numerically dead per E9/E11);
//! * (host_cpus ≥ 4 only) the width-4 team MPK build at the same point
//!   sustains ≥ 2.0× the width-1 MPK throughput.

use std::time::Instant;
use vr_bench::{write_json, Table};
use vr_cg::sstep::basis::{self, BasisKind, BasisParams, KrylovBasis};
use vr_cg::{BasisEngine, OpCounts};
use vr_linalg::mpk::{self, MpkWorkspace};
use vr_linalg::stencil::Stencil2d;
use vr_par::team::{Team, GRAIN};

vr_bench::jsonable! {
    struct Row {
    grid: usize,
    n: usize,
    s: usize,
    basis: String,
    engine: String,
    threads: usize,
    tile_rows: usize,
    best_secs: f64,
    secs_per_build: f64,
    builds_per_sec: f64,
    speedup_vs_naive: f64,
}
}

const KINDS: [BasisKind; 3] = [BasisKind::Monomial, BasisKind::Newton, BasisKind::Chebyshev];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map_or(1, |v| v.get());
    let (grids, svals, widths, reps): (&[usize], &[usize], &[usize], usize) = if smoke {
        (&[48, 64], &[2, 4], &[1], 1)
    } else {
        (&[256, 1024], &[2, 4, 8], &[1, 2, 4], 5)
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&[
        "grid", "N", "s", "basis", "engine", "threads", "tile", "best s", "s/build", "speedup",
    ]);

    for &g in grids {
        let op = Stencil2d::poisson(g);
        let n = g * g;
        let r = vr_linalg::gen::rand_vector(n, 42);
        for &s in svals {
            for kind in KINDS {
                let mut counts = OpCounts::default();
                let params = BasisParams::estimate(kind, &op, s, &mut counts);
                for &threads in widths {
                    let team = (threads > 1).then(|| Team::new(threads));
                    let engines = [BasisEngine::Naive, BasisEngine::Mpk];
                    let mut best = [f64::INFINITY; 2];
                    let mut out = [KrylovBasis::default(), KrylovBasis::default()];
                    let mut ws = MpkWorkspace::new();
                    // one untimed warm-up per engine sizes every workspace,
                    // then reps interleave across engines so machine noise
                    // hits both
                    for (e, &engine) in engines.iter().enumerate() {
                        basis::build_into(
                            &op,
                            &r,
                            s,
                            &params,
                            engine,
                            team.as_ref(),
                            None,
                            &mut ws,
                            &mut out[e],
                            &mut counts,
                        );
                    }
                    for _ in 0..reps {
                        for (e, &engine) in engines.iter().enumerate() {
                            let t0 = Instant::now();
                            basis::build_into(
                                &op,
                                &r,
                                s,
                                &params,
                                engine,
                                team.as_ref(),
                                None,
                                &mut ws,
                                &mut out[e],
                                &mut counts,
                            );
                            best[e] = best[e].min(t0.elapsed().as_secs_f64());
                        }
                    }
                    // the engines' entire reason to coexist: same bits
                    for l in 0..s {
                        assert_eq!(
                            out[0].v[l], out[1].v[l],
                            "grid {g} s={s} {kind:?} threads={threads}: v[{l}] diverged"
                        );
                        assert_eq!(
                            out[0].av[l], out[1].av[l],
                            "grid {g} s={s} {kind:?} threads={threads}: av[{l}] diverged"
                        );
                    }
                    let tile = mpk::default_tile_rows(g, s);
                    for (e, engine) in ["naive", "mpk"].iter().enumerate() {
                        let spb = best[e];
                        let speedup = best[0] / spb;
                        table.row(&[
                            g.to_string(),
                            n.to_string(),
                            s.to_string(),
                            kind.label().into(),
                            (*engine).into(),
                            threads.to_string(),
                            if e == 1 { tile.to_string() } else { "-".into() },
                            format!("{spb:.4}"),
                            format!("{spb:.3e}"),
                            format!("{speedup:.2}x"),
                        ]);
                        rows.push(Row {
                            grid: g,
                            n,
                            s,
                            basis: kind.label().into(),
                            engine: (*engine).to_string(),
                            threads,
                            tile_rows: if e == 1 { tile } else { 0 },
                            best_secs: spb,
                            secs_per_build: spb,
                            builds_per_sec: 1.0 / spb,
                            speedup_vs_naive: speedup,
                        });
                    }
                }
            }
        }
    }

    println!("E18 — cache-blocked matrix-powers kernel (2-D Poisson stencil basis build)");
    println!(
        "(host CPUs: {host_cpus}, dispatch grain: {GRAIN}, L2 budget: {} KiB)",
        mpk::mpk_l2_budget_bytes() >> 10
    );
    println!("{}", table.render());

    if smoke {
        println!("(--smoke: tiny grids, headline assertions skipped)");
    } else {
        let big = *grids.last().unwrap();
        assert!(big * big >= 1 << 20, "headline grid must reach N = 2^20");
        let spb = |basis: &str, engine: &str, threads: usize| {
            rows.iter()
                .find(|r| {
                    r.grid == big
                        && r.s == 8
                        && r.basis == basis
                        && r.engine == engine
                        && r.threads == threads
                })
                .expect("headline row")
                .secs_per_build
        };
        let naive1 = spb("newton", "naive", 1);
        let mpk1 = spb("newton", "mpk", 1);
        println!(
            "headline: newton basis, N = {}, s = 8, single thread: MPK = {:.2}x naive",
            big * big,
            naive1 / mpk1
        );
        println!(
            "          (monomial at the same point: {:.2}x)",
            spb("monomial", "naive", 1) / spb("monomial", "mpk", 1)
        );
        assert!(
            naive1 / mpk1 >= 1.4,
            "headline regression: single-thread MPK Newton basis build at N = 2^20, s = 8 is \
             only {:.2}x naive (need >= 1.4x)",
            naive1 / mpk1
        );
        if host_cpus < 4 {
            println!("(host has {host_cpus} CPUs: width-4 team headline not measurable, skipped)");
        } else {
            let mpk4 = spb("newton", "mpk", 4);
            println!(
                "headline: width-4 team MPK build = {:.2}x width-1 MPK",
                mpk1 / mpk4
            );
            assert!(
                mpk1 / mpk4 >= 2.0,
                "headline regression: width-4 MPK build is only {:.2}x width-1 (need >= 2.0x)",
                mpk1 / mpk4
            );
        }
    }

    write_json(
        "BENCH_mpk",
        &vr_bench::json::envelope(
            "e18_matrix_powers",
            smoke,
            &[("rows", vr_bench::json!(rows))],
        ),
    );
}
