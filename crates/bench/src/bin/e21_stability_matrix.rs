//! E21 — cross-variant stability shoot-out: every registered CG variant ×
//! every hostile scenario.
//!
//! The depth-l pipeline (Cornelis-Cools-Vanroose) and the
//! predict-and-recompute family (Chen-Carson) buy communication slack with
//! auxiliary recurrences — exactly the trade the 1983 paper pioneered, and
//! exactly where finite-precision drift and injected faults bite. This
//! experiment runs the full solver registry through five scenarios:
//!
//! 1. **Convergence matrix** (E21a): well-conditioned (2-D Poisson) and
//!    ill-conditioned (anisotropic, ε = 10⁻³) SPD systems at tol 1e-8 —
//!    every variant must converge and the claim must be corroborated by
//!    the *true* residual.
//! 2. **Attainable-accuracy floor** (E21b): a shifted Toeplitz system
//!    solved far past convergence (tol 0). The residual-recurrence drift
//!    of the plain pipelined variant costs it orders of magnitude of final
//!    accuracy; predict-and-recompute repairs it.
//! 3. **Fault injection** (E21c): 10⁻³ NaN rate against reduction partials
//!    with the rollback recovery ladder — no variant may claim convergence
//!    the true residual does not back.
//! 4. **Degraded team** (E21d): a worker of a width-4 team is killed
//!    mid-solve; the fixed leaf layout re-shards deterministically, so
//!    every variant must finish bit-identical to its width-1 run.
//! 5. **Reduction-wait share** (E21e): vr-obs critical-path attribution at
//!    width 4 — the depth-2 pipeline's two iterations of reduction slack
//!    must beat overlap-k1's single iteration.
//!
//! Headlines (asserted outside `--smoke`):
//! * predict-recompute's accuracy floor is within 10× of standard CG on a
//!   system where the plain pipelined floor is ≥ 100× worse;
//! * every convergence claim in every scenario is corroborated by the true
//!   residual (no variant lies under faults);
//! * a degraded team changes no bits for any variant;
//! * (on ≥ 4-CPU hosts) deep-pipelined l=2 has a strictly smaller
//!   reduction-wait share than overlap-k1 at width 4.

use std::sync::Arc;
use vr_bench::{write_json, Table};
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::pipelined_deep::DeepPipelinedCg;
use vr_cg::registry;
use vr_cg::resilience::fault::FaultInjector;
use vr_cg::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
use vr_cg::{CgVariant, SolveOptions, Termination};
use vr_linalg::gen;
use vr_linalg::kernels::{norm2, DotMode};
use vr_linalg::stencil::Stencil2d;
use vr_linalg::CsrMatrix;
use vr_obs::{critpath, PhaseClass, Tracer};
use vr_par::fault::FaultSite;
use vr_par::Team;

vr_bench::jsonable! {
    struct MatrixRow {
    scenario: String,
    variant: String,
    converged: bool,
    termination: String,
    iterations: usize,
    rel_true_residual: f64,
}
}

vr_bench::jsonable! {
    struct FloorRow {
    variant: String,
    termination: String,
    iterations: usize,
    floor_rel_residual: f64,
    ratio_vs_standard: f64,
}
}

vr_bench::jsonable! {
    struct FaultRow {
    variant: String,
    converged: bool,
    termination: String,
    iterations: usize,
    faults_injected: u64,
    faults_detected: u64,
    rollbacks: usize,
    restarts: usize,
    rel_true_residual: f64,
}
}

vr_bench::jsonable! {
    struct DegradedRow {
    variant: String,
    width: usize,
    live_width_after: usize,
    iterations: usize,
    bit_identical: bool,
    poisoned: bool,
}
}

vr_bench::jsonable! {
    struct CritRow {
    variant: String,
    width: usize,
    iterations: usize,
    reduction_wait_share: f64,
    matvec_share: f64,
    vector_share: f64,
    overhead_share: f64,
}
}

fn tlabel(t: Termination) -> &'static str {
    match t {
        Termination::Converged => "converged",
        Termination::RecoveredConverged => "recovered",
        Termination::MaxIterations => "max-iters",
        Termination::Breakdown => "breakdown",
        Termination::Stagnated => "stagnated",
        Termination::Diverged => "diverged",
        Termination::Unsupported => "unsupported",
        Termination::Cancelled => "cancelled",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map_or(1, |v| v.get());

    // ---- E21a: convergence matrix on well- and ill-conditioned SPD ----
    let (wg, ig) = if smoke { (16usize, 12usize) } else { (32, 24) };
    let problems: Vec<(&str, CsrMatrix, Vec<f64>)> = vec![
        (
            "well(poisson2d)",
            gen::poisson2d(wg),
            gen::poisson2d_rhs(wg),
        ),
        (
            "ill(anisotropic)",
            gen::anisotropic2d(ig, 1e-3),
            gen::rand_vector(ig * ig, 17),
        ),
    ];
    let mut matrix_rows = Vec::new();
    let mut ta = Table::new(&["scenario", "variant", "term", "iters", "rel resid"]);
    for (sname, a, b) in &problems {
        let bn = norm2(b);
        let opts = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(20_000);
        for (key, solver) in registry::keyed_variants(a) {
            let res = solver.solve(a, b, None, &opts);
            let row = MatrixRow {
                scenario: (*sname).into(),
                variant: key.into(),
                converged: res.converged,
                termination: tlabel(res.termination).into(),
                iterations: res.iterations,
                rel_true_residual: res.true_residual(a, b) / bn,
            };
            ta.row(&[
                row.scenario.clone(),
                row.variant.clone(),
                row.termination.clone(),
                row.iterations.to_string(),
                format!("{:.2e}", row.rel_true_residual),
            ]);
            if !smoke {
                assert!(
                    row.converged,
                    "{key} on {sname}: {} after {} iterations",
                    row.termination, row.iterations
                );
                assert!(
                    row.rel_true_residual < 1e-6,
                    "{key} on {sname}: claimed convergence, true rel residual {:.2e}",
                    row.rel_true_residual
                );
            }
            matrix_rows.push(row);
        }
    }
    println!(
        "E21a — convergence matrix ({} variants, tol 1e-8)",
        registry::VARIANT_COUNT
    );
    println!("{}", ta.render());

    // ---- E21b: attainable-accuracy floor ----
    // Shifted Toeplitz tridiagonal (κ ≈ 4/shift) solved far past
    // convergence: the recurrence residual keeps shrinking, the TRUE
    // residual stagnates at each variant's rounding floor. The plain
    // pipelined recurrences drift (residual-replacement-free), the
    // predict-and-recompute corrections pin the floor back near standard
    // CG's.
    let (fn_, fshift, fiters) = if smoke {
        (400usize, 4e-3f64, 900usize)
    } else {
        (2000, 4e-4, 4000)
    };
    let fa = gen::tridiag_toeplitz(fn_, 2.0 + fshift, -1.0);
    let fb = gen::rand_vector(fn_, 5);
    let fbn = norm2(&fb);
    let fopts = SolveOptions::default().with_tol(0.0).with_max_iters(fiters);
    let mut floor_rows: Vec<FloorRow> = Vec::new();
    let mut tb = Table::new(&["variant", "term", "iters", "floor", "× standard"]);
    let mut std_floor = f64::NAN;
    for (key, solver) in registry::keyed_variants(&fa) {
        let res = solver.solve(&fa, &fb, None, &fopts);
        let floor = res.true_residual(&fa, &fb) / fbn;
        if key == "standard" {
            std_floor = floor;
        }
        let row = FloorRow {
            variant: key.into(),
            termination: tlabel(res.termination).into(),
            iterations: res.iterations,
            floor_rel_residual: floor,
            ratio_vs_standard: floor / std_floor,
        };
        tb.row(&[
            row.variant.clone(),
            row.termination.clone(),
            row.iterations.to_string(),
            format!("{:.2e}", row.floor_rel_residual),
            format!("{:.1}", row.ratio_vs_standard),
        ]);
        floor_rows.push(row);
    }
    println!(
        "E21b — attainable accuracy after {fiters} iterations \
         (tridiag n={fn_}, diag 2+{fshift:.0e}, tol 0)"
    );
    println!("{}", tb.render());
    let floor_of = |key: &str| {
        floor_rows
            .iter()
            .find(|r| r.variant == key)
            .unwrap_or_else(|| panic!("missing floor row {key}"))
            .floor_rel_residual
    };
    if !smoke {
        let (pl, pr) = (floor_of("pipelined"), floor_of("predict_recompute"));
        assert!(
            pl >= 100.0 * std_floor,
            "plain pipelined floor {pl:.2e} is < 100× standard {std_floor:.2e} — \
             the scenario no longer separates the variants"
        );
        assert!(
            pr <= 10.0 * std_floor,
            "predict-recompute floor {pr:.2e} exceeds 10× standard {std_floor:.2e}"
        );
        println!(
            "headline: pipelined floor {pl:.1e} ≥ 100× standard {std_floor:.1e}; \
             predict-recompute {pr:.1e} ≤ 10×\n"
        );
    }

    // ---- E21c: 10⁻³ NaN faults against reduction partials ----
    let cg_grid = if smoke { 16usize } else { 32 };
    let ca = gen::poisson2d(cg_grid);
    let cb = gen::poisson2d_rhs(cg_grid);
    let cbn = norm2(&cb);
    let mut fault_rows = Vec::new();
    let mut tc = Table::new(&[
        "variant",
        "term",
        "iters",
        "injected",
        "detected",
        "rollbacks",
        "restarts",
        "rel resid",
    ]);
    for (key, solver) in registry::keyed_variants(&ca) {
        let inj = Arc::new(
            SeededInjector::new(0xE21, 1e-3, FaultKind::Nan).at_site(FaultSite::DotPartial),
        );
        let opts = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(20_000)
            .with_dot_mode(DotMode::Tree)
            .with_injector(inj.clone())
            .with_recovery(
                RecoveryPolicy::default()
                    .with_checkpoint_period(8)
                    .with_max_rollbacks(64)
                    .with_max_restarts(100),
            );
        let res = vr_cg::resilience::solve_with_recovery(solver.as_ref(), &ca, &cb, None, &opts);
        let row = FaultRow {
            variant: key.into(),
            converged: res.converged,
            termination: tlabel(res.termination).into(),
            iterations: res.iterations,
            faults_injected: inj.injected(),
            faults_detected: res.recovery.faults_detected,
            rollbacks: res.recovery.rollbacks,
            restarts: res.recovery.restarts,
            rel_true_residual: res.true_residual(&ca, &cb) / cbn,
        };
        tc.row(&[
            row.variant.clone(),
            row.termination.clone(),
            row.iterations.to_string(),
            row.faults_injected.to_string(),
            row.faults_detected.to_string(),
            row.rollbacks.to_string(),
            row.restarts.to_string(),
            format!("{:.2e}", row.rel_true_residual),
        ]);
        if !smoke {
            // honesty: a convergence claim must be backed by the residual
            if row.converged {
                assert!(
                    row.rel_true_residual < 1e-6,
                    "{key}: claimed {} under faults, true rel residual {:.2e}",
                    row.termination,
                    row.rel_true_residual
                );
            }
        }
        fault_rows.push(row);
    }
    if !smoke {
        // the tentpole variants must actually ride out the fault storm
        for key in ["standard", "deep_pipelined_l2", "predict_recompute"] {
            let r = fault_rows
                .iter()
                .find(|r| r.variant == key)
                .expect("registry row");
            assert!(
                r.converged,
                "{key} did not recover at 1e-3 NaN rate: {}",
                r.termination
            );
        }
    }
    println!(
        "E21c — 1e-3 NaN rate on reduction partials, rollback ladder \
         (Poisson {cg_grid}×{cg_grid}, tree dots)"
    );
    println!("{}", tc.render());

    // ---- E21d: degraded team — kill a worker mid-solve ----
    // n ≥ 4·GRAIN so a width-4 team dispatches real multi-shard epochs
    // (smoke: smaller grid, width 2).
    let (dg, dwidth) = if smoke { (96usize, 2usize) } else { (182, 4) };
    let da = gen::poisson2d(dg);
    let db = gen::poisson2d_rhs(dg);
    let dopts = SolveOptions::default()
        .with_tol(1e-9)
        .with_dot_mode(DotMode::Tree);
    let mut degraded_rows = Vec::new();
    let mut td = Table::new(&["variant", "width", "live", "iters", "bits", "poisoned"]);
    for (key, solver) in registry::keyed_variants(&da) {
        let reference = solver.solve(&da, &db, None, &dopts.clone().with_threads(1));
        let team = Arc::new(Team::new(dwidth));
        team.set_health_params(1, 3);
        let t = Arc::clone(&team);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            t.kill_worker(1);
        });
        let res = solver.solve(&da, &db, None, &dopts.clone().with_team(Arc::clone(&team)));
        killer.join().expect("killer thread");
        let _ = team.try_run(&|_| {}); // settle any mid-demotion state
        let row = DegradedRow {
            variant: key.into(),
            width: dwidth,
            live_width_after: team.live_width(),
            iterations: res.iterations,
            bit_identical: res.x == reference.x && res.residual_norms == reference.residual_norms,
            poisoned: team.is_poisoned(),
        };
        td.row(&[
            row.variant.clone(),
            row.width.to_string(),
            row.live_width_after.to_string(),
            row.iterations.to_string(),
            row.bit_identical.to_string(),
            row.poisoned.to_string(),
        ]);
        if !smoke {
            assert!(
                row.bit_identical,
                "{key}: degraded-team solve diverged from the single-thread bits"
            );
            assert!(!row.poisoned, "{key}: failover must not poison the team");
        }
        degraded_rows.push(row);
    }
    println!("E21d — worker killed mid-solve at width {dwidth} (Poisson {dg}×{dg}, tol 1e-9)");
    println!("{}", td.render());

    // ---- E21e: reduction-wait share, deep l=2 vs overlap-k1 ----
    let (eg, eiters, ewidth) = if smoke {
        (48usize, 24usize, 2usize)
    } else {
        (96, 60, 4)
    };
    let ea = Stencil2d::poisson(eg);
    let eb = vec![1.0; eg * eg];
    let evariants: Vec<(&str, Box<dyn CgVariant>)> = vec![
        ("overlap_k1", Box::new(OverlapK1Cg::new())),
        ("deep_pipelined_l2", Box::new(DeepPipelinedCg::new(2))),
    ];
    let mut crit_rows = Vec::new();
    let mut te = Table::new(&[
        "variant", "width", "iters", "red-wait", "matvec", "vector", "ovh",
    ]);
    for (key, solver) in &evariants {
        let tracer = Arc::new(Tracer::for_width(ewidth));
        let opts = SolveOptions::default()
            .with_tol(0.0)
            .with_max_iters(eiters)
            .with_dot_mode(DotMode::Tree)
            .with_threads(ewidth)
            .with_tracer(Arc::clone(&tracer));
        let res = solver.solve(&ea, &eb, None, &opts);
        let report = critpath::attribute(&tracer.drain());
        assert!(!report.iters.is_empty(), "{key}: no iteration marks");
        let t = report.totals;
        let row = CritRow {
            variant: (*key).into(),
            width: ewidth,
            iterations: res.iterations,
            reduction_wait_share: t.share(PhaseClass::ReductionWait),
            matvec_share: t.share(PhaseClass::Matvec),
            vector_share: t.share(PhaseClass::Vector),
            overhead_share: t.share(PhaseClass::Overhead),
        };
        te.row(&[
            row.variant.clone(),
            row.width.to_string(),
            row.iterations.to_string(),
            format!("{:5.1}%", 100.0 * row.reduction_wait_share),
            format!("{:5.1}%", 100.0 * row.matvec_share),
            format!("{:5.1}%", 100.0 * row.vector_share),
            format!("{:5.1}%", 100.0 * row.overhead_share),
        ]);
        crit_rows.push(row);
    }
    println!(
        "E21e — critical-path attribution at width {ewidth} \
         (Poisson stencil {eg}×{eg}, {eiters} iterations, tree dots)"
    );
    println!("{}", te.render());
    if !smoke && host_cpus >= 4 {
        let share = |key: &str| {
            crit_rows
                .iter()
                .find(|r| r.variant == key)
                .expect("crit row")
                .reduction_wait_share
        };
        let (ov, dp) = (share("overlap_k1"), share("deep_pipelined_l2"));
        assert!(
            dp < ov,
            "deep l=2 reduction-wait share {dp:.3} not below overlap-k1 {ov:.3} at width {ewidth}"
        );
        println!(
            "headline: deep l=2 red-wait {dp:.1}% < overlap-k1 {ov:.1}%\n",
            dp = 100.0 * dp,
            ov = 100.0 * ov
        );
    } else if !smoke {
        println!("(host has {host_cpus} CPUs: width-4 reduction-wait headline not measurable, assertion skipped)\n");
    }

    write_json(
        "BENCH_stability",
        &vr_bench::json::envelope(
            "e21_stability_matrix",
            smoke,
            &[
                ("matrix_rows", vr_bench::json!(matrix_rows)),
                ("floor_rows", vr_bench::json!(floor_rows)),
                ("fault_rows", vr_bench::json!(fault_rows)),
                ("degraded_rows", vr_bench::json!(degraded_rows)),
                ("crit_rows", vr_bench::json!(crit_rows)),
            ],
        ),
    );
}
