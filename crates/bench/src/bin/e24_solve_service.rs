//! E24 — the solver as a service: multi-tenant daemon throughput,
//! admission backpressure, block-batched scheduling, and streamed
//! convergence with bit-identical answers.
//!
//! The paper restructures one CG iteration so its inner products stop
//! serializing one solve; `vr-svc` applies the same idea across solves —
//! compatible tenants share one block-CG Gram reduction instead of paying
//! one reduction fan-in each. This experiment stands up a real daemon on
//! a loopback socket and measures four claims:
//!
//! 1. **Tenancy + backpressure** (E24a): 8 concurrent tenant threads
//!    burst jobs through a capacity-4 admission queue. Overload is
//!    rejected *explicitly* (`queue-full`, visible to the tenant, who
//!    backs off and retries) — never buffered unboundedly, never dropped
//!    silently. Reports p50/p99 submit→done latency.
//! 2. **Batched vs unbatched throughput** (E24b): the same 12
//!    same-operator jobs run once with batching disabled (12 singleton
//!    solves) and once coalesced into block-CG batches. Aggregate
//!    jobs/sec must be strictly higher batched.
//! 3. **Streamed bit-identity** (E24c): a Tree-dot deterministic job
//!    streams per-iteration residuals; its final residual must equal a
//!    local library solve of the same system **bit for bit**, across the
//!    wire's JSON float round-trip.
//! 4. **Worker death mid-job** (E24d): a worker of the daemon's width-2
//!    team is killed mid-solve with two more jobs queued behind it. The
//!    in-flight job completes bit-identically to a width-1 solve, the
//!    queued jobs are served, and the daemon keeps answering pings.
//!
//! Headlines (asserted outside `--smoke`):
//! * ≥ 8 tenants, every burst job eventually completes, and ≥ 1 explicit
//!   queue-full rejection was observed under overload;
//! * batched aggregate jobs/sec strictly exceeds unbatched;
//! * daemon and library residuals are bit-identical for E24c and E24d.

use std::sync::Arc;
use std::time::Instant;

use vr_bench::{write_json, Table};
use vr_cg::registry;
use vr_cg::SolveOptions;
use vr_linalg::gen;
use vr_linalg::kernels::DotMode;
use vr_par::Team;
use vr_svc::{Client, JobSpec, Listen, OperatorSpec, RhsSpec, Server, ServerConfig, ShutdownMode};

vr_bench::jsonable! {
    struct TenantRow {
    tenant: usize,
    jobs: usize,
    rejections: usize,
    completed: usize,
    mean_ms: f64,
}
}

vr_bench::jsonable! {
    struct AdmissionRow {
    tenants: usize,
    queue_cap: usize,
    jobs_total: usize,
    completed: usize,
    rejections: usize,
    p50_ms: f64,
    p99_ms: f64,
}
}

vr_bench::jsonable! {
    struct BatchRow {
    arm: String,
    jobs: usize,
    batches_observed: usize,
    max_batch_width: i64,
    wall_ms: f64,
    jobs_per_sec: f64,
}
}

vr_bench::jsonable! {
    struct IdentityRow {
    grid: usize,
    variant: String,
    iterations: usize,
    progress_samples: usize,
    daemon_residual_bits: String,
    library_residual_bits: String,
    bit_identical: bool,
}
}

vr_bench::jsonable! {
    struct FailoverRow {
    width: usize,
    live_width_after: usize,
    killed_mid_job: bool,
    job_terminated: String,
    queued_jobs_served: usize,
    bit_identical_to_width1: bool,
    daemon_alive_after: bool,
}
}

fn start(queue_cap: usize, width: usize, team: Option<Arc<Team>>) -> Server {
    Server::start(ServerConfig {
        listen: Listen::Tcp("127.0.0.1:0".into()),
        width,
        team,
        queue_cap,
        routing: vr_svc::RoutingTable::default(),
    })
    .expect("daemon starts")
}

/// A job that spins until cancelled (tol 0 is unreachable): the blocker
/// the batching arms use to pile compatible jobs up in the queue.
fn blocker(grid: usize) -> JobSpec {
    let mut spec = JobSpec::new(
        OperatorSpec::Poisson2d { grid },
        RhsSpec::Seeded { seed: 99, count: 1 },
    );
    spec.tol = 0.0;
    spec.max_iters = 5_000_000;
    spec.events_every = 1;
    spec.batch = false;
    spec
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ---- E24a: tenants + bounded admission + explicit backpressure ----
    let tenants = if smoke { 4 } else { 8 };
    let jobs_per_tenant = if smoke { 2 } else { 4 };
    let grid_a = if smoke { 24 } else { 48 };
    let queue_cap = 4;

    let server = start(queue_cap, 2, None);
    let client = Arc::new(Client::connect(server.addr()).expect("connect"));
    let mut tenant_rows = Vec::new();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut handles = Vec::new();
    for tenant in 0..tenants {
        let client = Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            let mut rejections = 0usize;
            let mut latencies = Vec::new();
            for j in 0..jobs_per_tenant {
                let mut spec = JobSpec::new(
                    OperatorSpec::Poisson2d { grid: grid_a },
                    RhsSpec::Seeded {
                        seed: (tenant * 100 + j) as u64,
                        count: 1,
                    },
                );
                spec.tol = 0.0; // run the full budget: uniform, load-heavy jobs
                spec.max_iters = if grid_a >= 48 { 400 } else { 120 };
                spec.batch = false; // singleton pressure is the point here
                let t0 = Instant::now();
                let handle = loop {
                    match client.submit(spec.clone()) {
                        Ok(h) => break h,
                        Err(r) => {
                            assert_eq!(r.reason, "queue-full", "unexpected reject: {r:?}");
                            rejections += 1;
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                    }
                };
                // tol 0 is unreachable, so the job runs its budget (or
                // exits early on a detected breakdown) — either way it is
                // uniform, load-heavy work with a terminal event.
                let done = handle.wait().expect("terminal event");
                assert!(!done.termination.is_empty());
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            (tenant, rejections, latencies)
        }));
    }
    for h in handles {
        let (tenant, rejections, latencies) = h.join().expect("tenant thread");
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        tenant_rows.push(TenantRow {
            tenant,
            jobs: jobs_per_tenant,
            rejections,
            completed: latencies.len(),
            mean_ms: mean,
        });
        all_latencies.extend(latencies);
    }
    tenant_rows.sort_by_key(|r| r.tenant);
    all_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rejections_total: usize = tenant_rows.iter().map(|r| r.rejections).sum();
    let admission = AdmissionRow {
        tenants,
        queue_cap,
        jobs_total: tenants * jobs_per_tenant,
        completed: tenant_rows.iter().map(|r| r.completed).sum(),
        rejections: rejections_total,
        p50_ms: percentile(&all_latencies, 0.50),
        p99_ms: percentile(&all_latencies, 0.99),
    };
    let mut ta = Table::new(&["tenant", "jobs", "rejections", "completed", "mean ms"]);
    for r in &tenant_rows {
        ta.row(&[
            r.tenant.to_string(),
            r.jobs.to_string(),
            r.rejections.to_string(),
            r.completed.to_string(),
            format!("{:.1}", r.mean_ms),
        ]);
    }
    println!(
        "E24a — {} tenants through a capacity-{} queue ({} jobs, {} explicit rejections, p50 {:.1} ms, p99 {:.1} ms)",
        tenants, queue_cap, admission.jobs_total, rejections_total, admission.p50_ms, admission.p99_ms
    );
    println!("{}", ta.render());
    if !smoke {
        assert!(tenants >= 8);
        assert_eq!(admission.completed, admission.jobs_total, "no job lost");
        assert!(
            rejections_total >= 1,
            "overload through a capacity-4 queue must surface explicit backpressure"
        );
    }
    drop(client);
    server.shutdown(ShutdownMode::Drain);
    server.join();

    // ---- E24b: batched vs unbatched aggregate throughput ----
    let grid_b = if smoke { 20 } else { 32 };
    let batch_jobs = if smoke { 6 } else { 24 };
    let mut batch_rows = Vec::new();
    for batched in [false, true] {
        let server = start(batch_jobs + 2, 2, None);
        let client = Client::connect(server.addr()).expect("connect");
        // hold the scheduler on a blocker so the whole arm queues up and
        // the batch arm can actually coalesce; no progress stream — the
        // timing window below must not be polluted by event backlog
        let mut blk_spec = blocker(grid_b + 1);
        blk_spec.events_every = 0;
        let blk = client.submit(blk_spec).expect("blocker admitted");
        // the scheduler has popped the blocker once the queue is empty
        loop {
            let (queued, ..) = client.stats().expect("stats");
            if queued == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let handles: Vec<_> = (0..batch_jobs)
            .map(|j| {
                let mut spec = JobSpec::new(
                    OperatorSpec::Poisson2d { grid: grid_b },
                    RhsSpec::Seeded {
                        seed: j as u64,
                        count: 1,
                    },
                );
                spec.tol = 1e-8;
                spec.max_iters = 4000;
                spec.batch = batched;
                client.submit(spec).expect("admitted")
            })
            .collect();
        // clock starts at the cancel: the window covers the blocker's
        // cooperative exit plus the whole arm's scheduling and solves —
        // identical bookends in both arms
        let t0 = Instant::now();
        client.cancel(blk.id).expect("cancel blocker");
        assert_eq!(blk.wait().unwrap().termination, "cancelled");
        let mut widths = Vec::new();
        for h in handles {
            let done = h.wait().expect("terminal event");
            assert_eq!(done.termination, "converged");
            assert_eq!(done.routing.batched, batched, "{:?}", done.routing);
            widths.push(done.routing.batch_width);
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        // each member of a width-w batch contributes 1/w of a batch
        let batches_observed = widths.iter().map(|w| 1.0 / *w as f64).sum::<f64>().round() as usize;
        batch_rows.push(BatchRow {
            arm: if batched { "batched" } else { "unbatched" }.into(),
            jobs: batch_jobs,
            batches_observed,
            max_batch_width: widths.iter().copied().max().unwrap_or(1),
            wall_ms,
            jobs_per_sec: batch_jobs as f64 / (wall_ms / 1e3),
        });
        drop(client);
        server.shutdown(ShutdownMode::Drain);
        server.join();
    }
    let mut tb = Table::new(&["arm", "jobs", "max width", "wall ms", "jobs/sec"]);
    for r in &batch_rows {
        tb.row(&[
            r.arm.clone(),
            r.jobs.to_string(),
            r.max_batch_width.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.1}", r.jobs_per_sec),
        ]);
    }
    println!(
        "E24b — block-batched vs unbatched aggregate throughput, same {}-job workload",
        batch_rows[0].jobs
    );
    println!("{}", tb.render());
    if !smoke {
        assert!(
            batch_rows[1].max_batch_width > 1,
            "batch arm never coalesced"
        );
        assert!(
            batch_rows[1].jobs_per_sec > batch_rows[0].jobs_per_sec,
            "batched ({:.1} jobs/s) must beat unbatched ({:.1} jobs/s)",
            batch_rows[1].jobs_per_sec,
            batch_rows[0].jobs_per_sec
        );
    }

    // ---- E24c: streamed convergence, bit-identical to the library ----
    let grid_c = if smoke { 16 } else { 28 };
    let server = start(4, 2, None);
    let client = Client::connect(server.addr()).expect("connect");
    let mut spec = JobSpec::new(
        OperatorSpec::Poisson2d { grid: grid_c },
        RhsSpec::Seeded { seed: 42, count: 1 },
    );
    spec.tol = 1e-10;
    spec.max_iters = 4000;
    spec.events_every = 1;
    spec.variant = Some("standard".into());
    let done = client.submit(spec).expect("admitted").wait().unwrap();
    assert_eq!(done.termination, "converged");
    let a = gen::poisson2d(grid_c);
    let b = gen::rand_vector(a.nrows(), 42);
    let opts = SolveOptions::default()
        .with_tol(1e-10)
        .with_max_iters(4000)
        .with_dot_mode(DotMode::Tree)
        .with_team(Arc::new(Team::new(1)));
    let (_, solver) = registry::keyed_variants(&a)
        .into_iter()
        .find(|(k, _)| *k == "standard")
        .expect("standard registered");
    let local = solver.solve(&a, &b, None, &opts);
    let identity = IdentityRow {
        grid: grid_c,
        variant: "standard".into(),
        iterations: done.iterations,
        progress_samples: done.progress.len(),
        daemon_residual_bits: format!("{:016x}", done.residuals[0].to_bits()),
        library_residual_bits: format!("{:016x}", local.final_residual.to_bits()),
        bit_identical: done.residuals[0].to_bits() == local.final_residual.to_bits(),
    };
    println!(
        "E24c — streamed {} samples over {} iterations; daemon bits {} vs library {} ({})",
        identity.progress_samples,
        identity.iterations,
        identity.daemon_residual_bits,
        identity.library_residual_bits,
        if identity.bit_identical {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    assert!(!done.progress.is_empty());
    assert!(
        identity.bit_identical,
        "Tree-dot daemon solve must match the library bit for bit"
    );
    drop(client);
    server.shutdown(ShutdownMode::Drain);
    server.join();

    // ---- E24d: worker death mid-job ----
    let grid_d = if smoke { 20 } else { 36 };
    let team = Arc::new(Team::new(2));
    let server = start(8, 2, Some(Arc::clone(&team)));
    let client = Client::connect(server.addr()).expect("connect");
    let mut spec = JobSpec::new(
        OperatorSpec::Poisson2d { grid: grid_d },
        RhsSpec::Seeded { seed: 17, count: 1 },
    );
    spec.tol = 1e-10;
    spec.max_iters = 8000;
    spec.events_every = 1;
    spec.variant = Some("standard".into());
    let victim = client.submit(spec).expect("admitted");
    // two jobs queued behind the one that will lose a worker
    let queued: Vec<_> = (0..2)
        .map(|j| {
            client
                .submit(JobSpec::new(
                    OperatorSpec::Poisson2d { grid: 12 },
                    RhsSpec::Seeded { seed: j, count: 1 },
                ))
                .expect("admitted")
        })
        .collect();
    assert!(victim.next_event().is_some(), "victim running");
    team.kill_worker(1);
    let done = victim.wait().expect("terminal event despite worker death");
    let queued_served = queued
        .into_iter()
        .map(|h| h.wait().expect("queued job served"))
        .filter(|d| d.termination == "converged")
        .count();
    let a = gen::poisson2d(grid_d);
    let b = gen::rand_vector(a.nrows(), 17);
    let opts = SolveOptions::default()
        .with_tol(1e-10)
        .with_max_iters(8000)
        .with_dot_mode(DotMode::Tree)
        .with_team(Arc::new(Team::new(1)));
    let (_, solver) = registry::keyed_variants(&a)
        .into_iter()
        .find(|(k, _)| *k == "standard")
        .unwrap();
    let local = solver.solve(&a, &b, None, &opts);
    let alive = client.ping().is_ok();
    let failover = FailoverRow {
        width: 2,
        live_width_after: team.live_width(),
        killed_mid_job: true,
        job_terminated: done.termination.clone(),
        queued_jobs_served: queued_served,
        bit_identical_to_width1: done.residuals[0].to_bits() == local.final_residual.to_bits(),
        daemon_alive_after: alive,
    };
    println!(
        "E24d — killed worker 1 of 2 mid-job: job {}, {} queued jobs served, width-1 bits {}, daemon {}",
        failover.job_terminated,
        failover.queued_jobs_served,
        if failover.bit_identical_to_width1 {
            "identical"
        } else {
            "MISMATCH"
        },
        if failover.daemon_alive_after { "alive" } else { "DEAD" }
    );
    assert_eq!(failover.job_terminated, "converged");
    assert_eq!(
        failover.queued_jobs_served, 2,
        "queued jobs must not be lost"
    );
    assert_eq!(failover.live_width_after, 1);
    assert!(failover.daemon_alive_after);
    assert!(
        failover.bit_identical_to_width1,
        "degraded team must cost throughput, not bits"
    );
    drop(client);
    server.shutdown(ShutdownMode::Drain);
    server.join();

    write_json(
        "BENCH_svc",
        &vr_bench::json::envelope(
            "e24_solve_service",
            smoke,
            &[
                ("tenant_rows", vr_bench::json!(tenant_rows)),
                ("admission_rows", vr_bench::json!(vec![admission])),
                ("batch_rows", vr_bench::json!(batch_rows)),
                ("identity_rows", vr_bench::json!(vec![identity])),
                ("failover_rows", vr_bench::json!(vec![failover])),
            ],
        ),
    );
}
