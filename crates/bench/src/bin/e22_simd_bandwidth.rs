//! E22 — SIMD lanes, mixed precision, and the memory wall.
//!
//! E17 showed thread scaling flattening out: the fused sweeps are
//! memory-bandwidth-bound, so the next factor must come from within a
//! core. This experiment measures the two in-core levers this repo adds —
//! explicit SIMD lanes ([`SimdPolicy`]) and f32 working vectors with f64
//! guard arithmetic ([`Precision::Mixed`]) — against a STREAM-triad-style
//! roofline measured on the same host, using the `vr_obs` bytes-moved
//! counter to report every configuration as a *fraction of measured host
//! streaming bandwidth per iteration* (the 2205.08909 framing: bytes per
//! iteration is the primary metric, FLOPs are free).
//!
//! Four parts:
//!
//! 1. **Roofline** — best-of-reps STREAM triad (`w = x + s·y`, via the
//!    repo's own `leaf_waxpby` with non-temporal stores) over arrays far
//!    past L2, counted at the STREAM convention of 24 B/element.
//! 2. **Sweep kernels** — the fused standard-CG sweeps (`update_xr`,
//!    `axpy_dot`, `dot`) at N = 2^20, scalar vs the vector level
//!    `SimdPolicy::Simd` pins, single thread, reps interleaved across
//!    levels. Headline (asserted outside `--smoke`): the best fused
//!    sweep sustains ≥ 1.2× scalar throughput (the dot-carrying sweeps
//!    in practice; the rmw-heavy `update_xr` is store-bound).
//! 3. **Whole solves** — grid × variant {standard, overlap-k1, pipelined}
//!    × SimdPolicy {Scalar, Simd} × Precision {F64, Mixed}, fixed
//!    iteration budget, fused kernels, one traced rep per cell harvesting
//!    logical bytes/iteration from the tracer. Headline: mixed precision
//!    moves measurably fewer bytes per iteration than f64 (≤ 0.75×) on
//!    standard CG at the largest grid, reported as a fraction of the
//!    measured triad bandwidth.
//! 4. **Bit-identity** — every registry variant solved under
//!    `DotMode::Tree` at lane widths 1 (scalar), 4 (AVX2), and the
//!    widest available: iterates and residual traces must be
//!    bit-for-bit identical (asserted in smoke *and* full runs — the
//!    lane-blocked reduction layout makes lane width unobservable).

use std::sync::Arc;
use std::time::Instant;
use vr_bench::{write_json, Table};
use vr_cg::baselines::PipelinedCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{registry, CgVariant, KernelPolicy, Precision, SimdPolicy, SolveOptions, Termination};
use vr_linalg::gen;
use vr_linalg::kernels::DotMode;
use vr_linalg::stencil::Stencil2d;
use vr_linalg::LinearOperator;
use vr_obs::Tracer;
use vr_par::simd::{self, SimdLevel};

vr_bench::jsonable! {
    struct SweepRow {
    kernel: String,
    n: usize,
    level: String,
    bytes_per_elem: usize,
    best_secs: f64,
    gbps: f64,
    speedup_vs_scalar: f64,
}
}

vr_bench::jsonable! {
    struct SolveRow {
    grid: usize,
    n: usize,
    variant: String,
    simd: String,
    precision: String,
    iterations: usize,
    best_secs: f64,
    secs_per_iter: f64,
    bytes_per_iter: f64,
    logical_gbps: f64,
    frac_of_triad: f64,
}
}

vr_bench::jsonable! {
    struct IdentityRow {
    variant: String,
    n: usize,
    iterations: usize,
    levels: String,
    bit_identical: bool,
}
}

/// Best-of-reps STREAM triad bandwidth in GB/s (24 B/element, the STREAM
/// convention: two read streams + one write stream, write-allocate not
/// counted). Uses the repo's own `leaf_waxpby` with non-temporal stores at
/// the ambient (widest) SIMD level — this is the bandwidth every solve row
/// is normalized against.
fn triad_gbps(n: usize, reps: usize) -> f64 {
    let x = vec![1.000001f64; n];
    let y = vec![0.999999f64; n];
    let mut w = vec![0.0f64; n];
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        simd::leaf_waxpby(1.0, &x, 3.0, &y, &mut w, true);
        simd::nt_fence();
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&w);
    }
    24.0 * n as f64 / best / 1e9
}

/// Time one fused sweep kernel at each level, returning best-of-reps
/// seconds per level. Reps are interleaved across levels so transient
/// machine noise (frequency shifts, noisy neighbors) hits both sides of
/// the ratio, not just whichever ran second.
fn sweep_secs(kernel: &str, levels: &[SimdLevel], n: usize, reps: usize) -> Vec<f64> {
    let p = vec![1.000001f64; n];
    let w = vec![0.999999f64; n];
    let mut x = vec![0.0f64; n];
    let mut r = vec![1.0f64; n];
    let mut best = vec![f64::INFINITY; levels.len()];
    for _ in 0..reps {
        for (k, &level) in levels.iter().enumerate() {
            simd::with_level(level, || {
                let t0 = Instant::now();
                let s = match kernel {
                    "update_xr" => simd::leaf_update_xr(1e-6, &p, &w, &mut x, &mut r),
                    "axpy_dot" => simd::leaf_axpy_dot(1e-6, &p, &mut r, &w),
                    "dot" => simd::leaf_dot(&p, &w),
                    _ => unreachable!("unknown kernel {kernel}"),
                };
                std::hint::black_box(s);
                best[k] = best[k].min(t0.elapsed().as_secs_f64());
            });
        }
    }
    best
}

fn eligible_variants() -> Vec<(&'static str, Box<dyn CgVariant>)> {
    vec![
        (
            "standard",
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
        ),
        ("overlap-k1", Box::new(OverlapK1Cg::new())),
        ("pipelined", Box::new(PipelinedCg::new())),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // --- part 1: roofline ---------------------------------------------
    let (triad_n, triad_reps) = if smoke { (1 << 19, 2) } else { (1 << 23, 7) };
    let triad = triad_gbps(triad_n, triad_reps);
    println!(
        "E22 — roofline: STREAM triad (leaf_waxpby nt, {} MiB/array) = {triad:.2} GB/s",
        triad_n * 8 / (1 << 20)
    );
    println!("      simd level: ambient = {}", simd::current().name());

    // --- part 2: fused sweep kernels, scalar vs simd ------------------
    let (sweep_n, sweep_reps) = if smoke { (1 << 16, 3) } else { (1 << 20, 30) };
    // the vector arm is what SimdPolicy::Simd pins: auto_level(), i.e.
    // AVX2 on x86 hosts (AVX-512 is excluded from auto selection)
    let vector_level = simd::auto_level();
    let mut sweep_rows: Vec<SweepRow> = Vec::new();
    let mut sweep_table = Table::new(&["kernel", "N", "level", "B/elem", "GB/s", "speedup"]);
    for (kernel, bpe) in [("update_xr", 48usize), ("axpy_dot", 32), ("dot", 16)] {
        let levels = [SimdLevel::Scalar, vector_level];
        let bests = sweep_secs(kernel, &levels, sweep_n, sweep_reps);
        let scalar_secs = bests[0];
        for (level, best) in levels.into_iter().zip(bests) {
            let speedup = scalar_secs / best;
            let gbps = bpe as f64 * sweep_n as f64 / best / 1e9;
            sweep_table.row(&[
                kernel.into(),
                sweep_n.to_string(),
                level.name().into(),
                bpe.to_string(),
                format!("{gbps:.2}"),
                format!("{speedup:.2}x"),
            ]);
            sweep_rows.push(SweepRow {
                kernel: kernel.into(),
                n: sweep_n,
                level: level.name().into(),
                bytes_per_elem: bpe,
                best_secs: best,
                gbps,
                speedup_vs_scalar: speedup,
            });
        }
    }
    println!("{}", sweep_table.render());

    // --- part 3: whole solves, simd × precision ------------------------
    let (grids, iters, reps): (&[usize], usize, usize) = if smoke {
        (&[48, 64], 10, 1)
    } else {
        (&[256, 512, 1024], 40, 3)
    };
    let configs: [(SimdPolicy, Precision, &str, &str); 4] = [
        (SimdPolicy::Scalar, Precision::F64, "scalar", "f64"),
        (SimdPolicy::Simd, Precision::F64, "simd", "f64"),
        (SimdPolicy::Scalar, Precision::Mixed, "scalar", "mixed"),
        (SimdPolicy::Simd, Precision::Mixed, "simd", "mixed"),
    ];
    let mut solve_rows: Vec<SolveRow> = Vec::new();
    let mut solve_table = Table::new(&[
        "grid", "variant", "simd", "prec", "iters", "s/iter", "B/iter", "GB/s", "of-triad",
    ]);
    for &g in grids {
        let op = Stencil2d::poisson(g);
        let n = g * g;
        let b = vec![1.0; n];
        for (vname, solver) in eligible_variants() {
            // interleave reps across the four configs so machine noise hits
            // every arm of the comparison, not just whichever ran last
            let mut best = [f64::INFINITY; 4];
            let mut last: [Option<vr_cg::SolveResult>; 4] = [None, None, None, None];
            let opts_for = |&(sp, prec, _, _): &(SimdPolicy, Precision, &str, &str)| {
                SolveOptions::default()
                    .with_tol(0.0)
                    .with_max_iters(iters)
                    .with_kernel_policy(KernelPolicy::Fused)
                    .with_simd_policy(sp)
                    .with_precision(prec)
            };
            for _ in 0..reps {
                for (k, cfg) in configs.iter().enumerate() {
                    let t0 = Instant::now();
                    let res = solver.solve(&op, &b, None, &opts_for(cfg));
                    best[k] = best[k].min(t0.elapsed().as_secs_f64());
                    last[k] = Some(res);
                }
            }
            for (k, cfg) in configs.iter().enumerate() {
                let res = last[k].take().expect("reps >= 1");
                assert_eq!(
                    res.termination,
                    Termination::MaxIterations,
                    "{vname}/{}/{} grid {g}: expected the full iteration budget",
                    cfg.2,
                    cfg.3
                );
                // one traced rep harvests logical bytes/iteration; tracing
                // must observe, never perturb
                let tracer = Arc::new(Tracer::for_width(1));
                let traced = solver.solve(
                    &op,
                    &b,
                    None,
                    &opts_for(cfg).with_tracer(Arc::clone(&tracer)),
                );
                assert_eq!(
                    traced.x, res.x,
                    "{vname}/{}/{} grid {g}: traced solve diverged from untraced",
                    cfg.2, cfg.3
                );
                let report = vr_obs::critpath::attribute(&tracer.drain());
                assert_eq!(report.dropped, 0, "tracer ring wrapped — size capacity up");
                let bytes_per_iter = report.total_bytes() as f64 / res.iterations as f64;
                let spi = best[k] / res.iterations as f64;
                let gbps = bytes_per_iter / spi / 1e9;
                let frac = gbps / triad;
                solve_table.row(&[
                    g.to_string(),
                    vname.into(),
                    cfg.2.into(),
                    cfg.3.into(),
                    res.iterations.to_string(),
                    format!("{spi:.3e}"),
                    format!("{bytes_per_iter:.3e}"),
                    format!("{gbps:.2}"),
                    format!("{:.2}", frac),
                ]);
                solve_rows.push(SolveRow {
                    grid: g,
                    n,
                    variant: vname.into(),
                    simd: cfg.2.into(),
                    precision: cfg.3.into(),
                    iterations: res.iterations,
                    best_secs: best[k],
                    secs_per_iter: spi,
                    bytes_per_iter,
                    logical_gbps: gbps,
                    frac_of_triad: frac,
                });
            }
        }
    }
    println!("{}", solve_table.render());

    // --- part 4: lane-width bit-identity across the registry -----------
    let a = gen::poisson2d(if smoke { 12 } else { 24 });
    let bb = gen::poisson2d_rhs(if smoke { 12 } else { 24 });
    let id_opts = SolveOptions::default()
        .with_tol(1e-10)
        .with_max_iters(400)
        .with_dot_mode(DotMode::Tree);
    let mut identity_rows: Vec<IdentityRow> = Vec::new();
    for (key, solver) in registry::keyed_variants(&a) {
        // width 1: pinned scalar via the solve-level policy
        let base = solver.solve(
            &a,
            &bb,
            None,
            &id_opts.clone().with_simd_policy(SimdPolicy::Scalar),
        );
        let mut levels = vec!["scalar".to_string()];
        let mut identical = true;
        // width 4 (AVX2) and the widest available, via the ambient level —
        // SimdPolicy::Auto must inherit whatever the caller installed
        for lvl in [SimdLevel::Avx2, SimdLevel::Avx512] {
            let eff = simd::clamp(lvl);
            if levels.contains(&eff.name().to_string()) {
                continue;
            }
            levels.push(eff.name().to_string());
            let res = simd::with_level(eff, || solver.solve(&a, &bb, None, &id_opts));
            identical &= res.x == base.x && res.residual_norms == base.residual_norms;
        }
        assert!(
            identical,
            "{key}: lane width changed the bits under DotMode::Tree"
        );
        identity_rows.push(IdentityRow {
            variant: key.into(),
            n: a.dim(),
            iterations: base.iterations,
            levels: levels.join(","),
            bit_identical: identical,
        });
    }
    println!(
        "bit-identity: {} registry variants identical across lane widths {{{}}}",
        identity_rows.len(),
        identity_rows[0].levels
    );

    // --- headlines ------------------------------------------------------
    let mut headline_sweep = f64::NAN;
    let mut headline_bytes_ratio = f64::NAN;
    if !smoke {
        assert!(sweep_n == 1 << 20, "headline sweep must run at N = 2^20");
        // headline = the best of the three fused-sweep speedups: on this
        // class of host the rmw-heavy update_xr is store-bound (~1.15x)
        // while the dot-carrying sweeps sustain ~1.25x; all three rows are
        // reported, the assertion tracks the strongest
        let head = sweep_rows
            .iter()
            .filter(|r| r.level != "scalar")
            .max_by(|a, b| a.speedup_vs_scalar.total_cmp(&b.speedup_vs_scalar))
            .expect("headline sweep row");
        headline_sweep = head.speedup_vs_scalar;
        println!(
            "headline: best fused CG sweep ({}) at N = 2^20: simd = {headline_sweep:.2}x scalar",
            head.kernel
        );
        assert!(
            headline_sweep >= 1.2,
            "headline regression: best simd fused sweep at N = 2^20 is only {headline_sweep:.2}x scalar (need >= 1.2x)"
        );

        let big = *grids.last().unwrap();
        let pick = |prec: &str| {
            solve_rows
                .iter()
                .find(|r| {
                    r.grid == big
                        && r.variant == "standard"
                        && r.simd == "simd"
                        && r.precision == prec
                })
                .expect("headline solve row")
        };
        let f64_row = pick("f64");
        let mixed_row = pick("mixed");
        headline_bytes_ratio = mixed_row.bytes_per_iter / f64_row.bytes_per_iter;
        println!(
            "headline: standard CG at N = {}: f64 moves {:.3e} B/iter ({:.2} of triad bw), \
             mixed {:.3e} B/iter ({:.2} of triad bw) — ratio {:.2}",
            f64_row.n,
            f64_row.bytes_per_iter,
            f64_row.frac_of_triad,
            mixed_row.bytes_per_iter,
            mixed_row.frac_of_triad,
            headline_bytes_ratio
        );
        assert!(
            headline_bytes_ratio <= 0.75,
            "headline regression: mixed moves {headline_bytes_ratio:.2}x the bytes of f64 (need <= 0.75x)"
        );
    } else {
        println!("(--smoke: tiny sizes, headline assertions skipped)");
    }

    write_json(
        "BENCH_simd",
        &vr_bench::json::envelope(
            "e22_simd_bandwidth",
            smoke,
            &[
                (
                    "roofline",
                    vr_bench::json!({
                        "triad_gbps": triad,
                        "triad_elems": triad_n,
                        "ambient_level": simd::current().name(),
                    }),
                ),
                ("sweep_rows", vr_bench::json!(sweep_rows)),
                ("solve_rows", vr_bench::json!(solve_rows)),
                ("identity_rows", vr_bench::json!(identity_rows)),
                (
                    "headlines",
                    vr_bench::json!({
                        "simd_sweep_speedup": headline_sweep,
                        "mixed_bytes_ratio": headline_bytes_ratio,
                    }),
                ),
            ],
        ),
    );
}
