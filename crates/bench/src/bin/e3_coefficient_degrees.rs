//! E3 — Claim C3: the (*) coefficients are polynomials in {αⱼ, λⱼ}, at
//! most quadratic in each parameter separately, and the summation over the
//! 3(2k+1) terms has depth log(k).
//!
//! The paper deferred the derivation to a follow-up that never appeared;
//! this binary derives the coefficients symbolically for k = 1..6, audits
//! the degree claim, and prints k=1 and k=2 in full.

use vr_bench::{write_json, Table};
use vr_cg::recurrence::symbolic::Derivation;

vr_bench::jsonable! {
    struct Row {
    k: usize,
    terms: usize,
    nonzero_rr: usize,
    nonzero_pap: usize,
    max_degree_rr: u32,
    max_degree_pap: u32,
    summation_depth: u32,
}
}

fn main() {
    let mut table = Table::new(&[
        "k",
        "3(2k+1) terms",
        "nonzero (r,r)",
        "nonzero (p,Ap)",
        "max deg/param (r,r)",
        "max deg/param (p,Ap)",
        "log2 depth",
    ]);
    let mut rows = Vec::new();

    for k in 1..=6 {
        let d = Derivation::run(k);
        let rr = d.star_rr();
        let pap = d.star_pap();
        let terms = 3 * (2 * k + 1);
        let depth = (terms as f64).log2().ceil() as u32;
        table.row(&[
            k.to_string(),
            terms.to_string(),
            rr.nonzero_terms().to_string(),
            pap.nonzero_terms().to_string(),
            rr.max_degree_per_parameter().to_string(),
            pap.max_degree_per_parameter().to_string(),
            depth.to_string(),
        ]);
        rows.push(Row {
            k,
            terms,
            nonzero_rr: rr.nonzero_terms(),
            nonzero_pap: pap.nonzero_terms(),
            max_degree_rr: rr.max_degree_per_parameter(),
            max_degree_pap: pap.max_degree_per_parameter(),
            summation_depth: depth,
        });
        assert!(
            rr.max_degree_per_parameter() <= 2,
            "claim C3 violated at k={k}"
        );
        assert!(
            pap.max_degree_per_parameter() <= 2,
            "claim C3 violated at k={k}"
        );
    }

    println!("E3 — symbolic audit of the (*) coefficients (claim C3)");
    println!("{}", table.render());

    // Print the k=1 and k=2 relations in full (the 'future paper' content).
    for k in [1usize, 2] {
        let d = Derivation::run(k);
        let rr = d.star_rr();
        println!(
            "\n(r,r) relation for k = {k} (variables: x0..x{} = λ₁..λ_k, x{k}..x{} = α₁..α_k):",
            k - 1,
            2 * k - 1
        );
        for (i, a) in rr.a.iter().enumerate() {
            if !a.is_zero() {
                println!("  a[{i}]·(r,A^{i}r)   with a[{i}] = {a}");
            }
        }
        for (i, b) in rr.b.iter().enumerate() {
            if !b.is_zero() {
                println!("  b[{i}]·(r,A^{i}p)   with b[{i}] = {b}");
            }
        }
        for (i, c) in rr.c.iter().enumerate() {
            if !c.is_zero() {
                println!("  c[{i}]·(p,A^{i}p)   with c[{i}] = {c}");
            }
        }
    }

    write_json("e3_coefficient_degrees", &vr_bench::json!({ "rows": rows }));
}
