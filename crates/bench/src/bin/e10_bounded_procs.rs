//! E10 — extension: bounded processors and communication latency.
//!
//! The paper's regime is P ≥ N with free communication. Real machines have
//! bounded P and per-hop reduction latency α. This experiment maps where
//! the restructuring pays off:
//!
//! 1. **P sweep** (α = 0): with few processors, work/P dominates and all
//!    variants tie; the look-ahead advantage emerges as P approaches N.
//! 2. **α sweep** (P unbounded): growing reduction latency hurts standard
//!    CG twice per iteration, the one-reduction variants once, and the
//!    look-ahead variant ~1/k times.

use vr_bench::{write_json, Table};
use vr_sim::{builders, ListScheduler, MachineModel};

vr_bench::jsonable! {
    struct Row {
    sweep: String,
    value: f64,
    standard: f64,
    chronopoulos_gear: f64,
    pipelined: f64,
    lookahead: f64,
}
}

fn main() {
    let (n, d, iters, k) = (1usize << 20, 5usize, 40usize, 20usize);
    let mut rows = Vec::new();

    // --- P sweep ---
    let mut t1 = Table::new(&[
        "P",
        "standard",
        "chrono-gear",
        "pipelined",
        "lookahead(k=20)",
    ]);
    for log_p in [4u32, 8, 12, 16, 20, 24] {
        let p = 1usize << log_p;
        let m = MachineModel::bounded(p);
        let std_c = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
        let cg2 = builders::chronopoulos_gear(n, d, iters).steady_cycle_time(&m);
        let pipe = builders::pipelined_cg(n, d, iters).steady_cycle_time(&m);
        let la = builders::lookahead_cg(n, d, iters, k).steady_cycle_time(&m);
        t1.row(&[
            format!("2^{log_p}"),
            format!("{std_c:.1}"),
            format!("{cg2:.1}"),
            format!("{pipe:.1}"),
            format!("{la:.1}"),
        ]);
        rows.push(Row {
            sweep: "procs".into(),
            value: p as f64,
            standard: std_c,
            chronopoulos_gear: cg2,
            pipelined: pipe,
            lookahead: la,
        });
    }
    println!("E10a — cycle time vs processor count (N = 2^20, d = 5, α = 0)");
    println!("{}", t1.render());

    // --- α sweep ---
    let mut t2 = Table::new(&[
        "alpha",
        "standard",
        "chrono-gear",
        "pipelined",
        "lookahead(k=20)",
    ]);
    for alpha in [0.0, 1.0, 4.0, 16.0, 64.0] {
        let m = MachineModel::pram().with_latency(alpha);
        let std_c = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
        let cg2 = builders::chronopoulos_gear(n, d, iters).steady_cycle_time(&m);
        let pipe = builders::pipelined_cg(n, d, iters).steady_cycle_time(&m);
        let la = builders::lookahead_cg(n, d, iters, k).steady_cycle_time(&m);
        t2.row(&[
            format!("{alpha:.0}"),
            format!("{std_c:.1}"),
            format!("{cg2:.1}"),
            format!("{pipe:.1}"),
            format!("{la:.1}"),
        ]);
        rows.push(Row {
            sweep: "alpha".into(),
            value: alpha,
            standard: std_c,
            chronopoulos_gear: cg2,
            pipelined: pipe,
            lookahead: la,
        });
    }
    println!("E10b — cycle time vs per-hop reduction latency α (P unbounded)");
    println!("{}", t2.render());

    // --- honest list scheduling (E10c): rigid processor allocation,
    //     critical-path priorities — the numbers a real machine room
    //     would see, including the contention the Brent pricing hides ---
    let n_sched = 1usize << 12;
    let mut t3 = Table::new(&[
        "P",
        "standard makespan",
        "util",
        "lookahead(k=8) makespan",
        "util",
    ]);
    let m0 = MachineModel::pram();
    let std_dag = builders::standard_cg(n_sched, d, 16);
    let la_dag = builders::lookahead_cg(n_sched, d, 16, 8);
    for log_p in [6u32, 10, 14, 19] {
        let p = 1usize << log_p;
        let sch = ListScheduler::new(p);
        let rs = sch.run(&std_dag.graph, &m0);
        let rl = sch.run(&la_dag.graph, &m0);
        t3.row(&[
            format!("2^{log_p}"),
            format!("{:.0}", rs.makespan),
            format!("{:.2}", rs.utilization),
            format!("{:.0}", rl.makespan),
            format!("{:.2}", rl.utilization),
        ]);
        rows.push(Row {
            sweep: "sched-std".into(),
            value: p as f64,
            standard: rs.makespan,
            chronopoulos_gear: 0.0,
            pipelined: 0.0,
            lookahead: rl.makespan,
        });
    }
    println!("E10c — event-driven list scheduling (N = 2^12, 16 iterations)");
    println!("{}", t3.render());
    println!("note: the look-ahead's (*) dataflow needs P ≈ 3(2k+1)·N before its");
    println!("dot batch runs concurrently — the honest price of \"N or more");
    println!("processors\". It overtakes standard CG once P ≳ 2^19 here.");

    // Shape checks.
    // (i) with few processors the variants are within 10% of each other
    let small_p = rows
        .iter()
        .find(|r| r.sweep == "procs" && r.value == 16.0)
        .unwrap();
    let ratio = small_p.standard / small_p.lookahead;
    assert!(
        (0.8..=1.4).contains(&ratio),
        "small-P regime should be work-bound (ratio {ratio})"
    );
    // (ii) at high α the look-ahead advantage over standard CG exceeds 5×
    let big_a = rows
        .iter()
        .find(|r| r.sweep == "alpha" && r.value == 64.0)
        .unwrap();
    let adv = big_a.standard / big_a.lookahead;
    assert!(adv > 5.0, "latency-bound advantage only {adv}");
    // (iii) the look-ahead beats even pipelined CG when latency dominates
    assert!(
        big_a.lookahead < big_a.pipelined,
        "lookahead {} !< pipelined {}",
        big_a.lookahead,
        big_a.pipelined
    );

    // scheduler shape: at the largest P the look-ahead must win
    let last = rows.iter().rev().find(|r| r.sweep == "sched-std").unwrap();
    assert!(
        last.lookahead < last.standard,
        "scheduled: lookahead {} !< standard {}",
        last.lookahead,
        last.standard
    );

    write_json("e10_bounded_procs", &vr_bench::json!({ "rows": rows }));
}
