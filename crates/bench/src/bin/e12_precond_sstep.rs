//! E12 — extension: preconditioning and s-step blocks on the paper's
//! machine.
//!
//! Two questions the 1983 paper leaves open:
//!
//! 1. **Preconditioning** (§1 mentions it): Jacobi costs one depth unit —
//!    harmless; classical SSOR/IC(0) triangular sweeps have wavefront depth
//!    Θ(√N) on a 2-D grid, which erases every gain of the restructuring.
//! 2. **s-step blocks** (the descendant idea): one batched reduction per s
//!    iterations amortizes the `log N` latency like look-ahead does, with a
//!    Θ(s)-deep small solve as the price.

use vr_bench::{write_json, Table};
use vr_sim::{builders, MachineModel};

vr_bench::jsonable! {
    struct Row {
    algo: String,
    log2_n: u32,
    cycle: f64,
}
}

fn main() {
    let m = MachineModel::pram();
    let d = 5;
    let mut rows = Vec::new();

    let mut t1 = Table::new(&[
        "log2(N)",
        "standard",
        "pcg-jacobi",
        "pcg-sweep(2√N)",
        "lookahead(k=logN)",
    ]);
    for log_n in [10u32, 14, 18, 22] {
        let n = 1usize << log_n;
        let iters = 40;
        let sweep_depth = 2 * (1u32 << (log_n / 2));
        let std_c = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
        let jac = builders::preconditioned_cg(n, d, iters, 1).steady_cycle_time(&m);
        let ssor = builders::preconditioned_cg(n, d, iters, sweep_depth).steady_cycle_time(&m);
        let la = builders::lookahead_cg(n, d, iters, log_n as usize).steady_cycle_time(&m);
        t1.row(&[
            log_n.to_string(),
            format!("{std_c:.1}"),
            format!("{jac:.1}"),
            format!("{ssor:.1}"),
            format!("{la:.1}"),
        ]);
        for (algo, c) in [
            ("standard", std_c),
            ("pcg-jacobi", jac),
            ("pcg-sweep", ssor),
            ("lookahead", la),
        ] {
            rows.push(Row {
                algo: algo.into(),
                log2_n: log_n,
                cycle: c,
            });
        }
    }
    println!("E12a — preconditioner parallel profile (cycle time per iteration)");
    println!("{}", t1.render());

    let mut t2 = Table::new(&["s", "sstep cycle (N=2^20)", "standard", "lookahead(k=20)"]);
    let n = 1usize << 20;
    let std_c = builders::standard_cg(n, d, 40).steady_cycle_time(&m);
    let la = builders::lookahead_cg(n, d, 40, 20).steady_cycle_time(&m);
    for s in [2usize, 4, 8, 16, 32] {
        let blocks = (40 / s).max(4);
        let cycle = builders::sstep_cg(n, d, blocks, s).steady_cycle_time(&m);
        t2.row(&[
            s.to_string(),
            format!("{cycle:.2}"),
            format!("{std_c:.1}"),
            format!("{la:.1}"),
        ]);
        rows.push(Row {
            algo: format!("sstep-s{s}"),
            log2_n: 20,
            cycle,
        });
    }
    println!("E12b — s-step block amortization (per CG-equivalent iteration)");
    println!("{}", t2.render());

    // Shape checks.
    let get = |algo: &str, log_n: u32| {
        rows.iter()
            .find(|r| r.algo == algo && r.log2_n == log_n)
            .map(|r| r.cycle)
            .expect("row")
    };
    // Jacobi tracks standard CG within a few units at every size.
    for log_n in [10u32, 14, 18, 22] {
        assert!((get("pcg-jacobi", log_n) - get("standard", log_n)).abs() <= 4.0);
    }
    // serialized sweeps dominate by ≥ 10× at N = 2^22
    assert!(get("pcg-sweep", 22) > 10.0 * get("standard", 22));
    // s-step improves monotonically toward the look-ahead number
    let s4 = rows.iter().find(|r| r.algo == "sstep-s4").unwrap().cycle;
    let s32 = rows.iter().find(|r| r.algo == "sstep-s32").unwrap().cycle;
    assert!(s32 < s4, "{s32} !< {s4}");
    assert!(s32 < std_c, "{s32} !< standard {std_c}");

    write_json("e12_precond_sstep", &vr_bench::json!({ "rows": rows }));
}
