//! E1 — Claim C1: a standard CG iteration costs Θ(log N) parallel time.
//!
//! Sweeps vector length N over powers of two on the paper's machine
//! (unbounded processors, binary fan-in, free communication) and reports
//! the steady-state per-iteration critical path of standard CG. The fitted
//! slope against log₂N should be ≈ 2 (two serialized reductions per
//! iteration); the d-dependence is additive.

use vr_bench::{fit_slope, write_json, Table};
use vr_sim::{builders, MachineModel};

vr_bench::jsonable! {
    struct Row {
    log2_n: u32,
    d: usize,
    cycle: f64,
}
}

fn main() {
    let m = MachineModel::pram();
    let iters = 40;
    let mut table = Table::new(&["log2(N)", "d", "cycle time", "2·log2(N)+log2(d)"]);
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();

    for d in [5usize, 27] {
        for log_n in [6u32, 8, 10, 12, 14, 16, 18, 20, 22, 24] {
            let n = 1usize << log_n;
            let cycle = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
            let predict = 2.0 * f64::from(log_n) + (d as f64).log2().ceil();
            table.row(&[
                log_n.to_string(),
                d.to_string(),
                format!("{cycle:.2}"),
                format!("{predict:.2}"),
            ]);
            if d == 5 {
                xs.push(f64::from(log_n));
                ys.push(cycle);
            }
            rows.push(Row {
                log2_n: log_n,
                d,
                cycle,
            });
        }
    }

    let slope = fit_slope(&xs, &ys);
    println!("E1 — standard CG per-iteration parallel time vs N (claim C1)");
    println!("{}", table.render());
    println!("fitted d(cycle)/d(log2 N) = {slope:.3}   (paper: 2 reductions/iter ⇒ ≈ 2)");
    assert!(
        (1.8..=2.2).contains(&slope),
        "slope {slope} outside the claimed Θ(log N) regime"
    );
    write_json(
        "e1_logn_scaling",
        &vr_bench::json!({ "rows": rows, "slope": slope }),
    );
}
