//! E19 — C1–C3: traced per-iteration critical-path attribution.
//!
//! Every earlier experiment *inferred* the paper's claim from op counts or
//! outside-the-solve wall clock; this one *measures* it. A `vr_obs`
//! tracer rides along inside the solve, recording when each phase of every
//! iteration ran on the real worker team, and the critical-path aggregator
//! attributes each iteration's wall time to {reduction-wait, matvec,
//! vector, overhead}. "Reduction wait" is dependency-gated time only: an
//! eager dot (standard CG's `p·Ap`) charges its whole sweep + fan-in,
//! while §3's overlapped recurrences charge only the deferred fan-in at
//! the consume point — the sweeps ran as useful vector work.
//!
//! Sweep: grid × variant {standard, overlap-k1, lookahead k=2, k=4} ×
//! team width {1, 4}, fixed iteration budget, `DotMode::Tree`, default
//! fused kernels. Every traced solve is asserted bit-identical to its
//! untraced twin (tracing must observe, never perturb).
//!
//! Headlines (asserted outside `--smoke` on hosts with ≥ 4 CPUs, largest
//! grid):
//!
//! * overlap-k1's reduction-wait share at width 4 is strictly below
//!   standard CG's — the paper's §3 claim, measured on real threads;
//! * an attached tracer costs < 5% of iteration wall time (min-of-reps
//!   traced vs untraced).
//!
//! Artifacts: `BENCH_obs.json` (phase shares per config + full
//! per-iteration reports) and `e19_trace.json`, a Chrome trace-event
//! export of one overlap-k1 solve — open it in <https://ui.perfetto.dev>
//! to *see* the deferred fan-ins hiding under the matvec.

use std::sync::Arc;
use vr_bench::obs::report_json;
use vr_bench::{write_json, Table};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::kernels::DotMode;
use vr_linalg::stencil::Stencil2d;
use vr_obs::{Clock, PhaseClass, Report, Tracer};

vr_bench::jsonable! {
    struct Row {
    grid: usize,
    n: usize,
    variant: String,
    threads: usize,
    iterations: usize,
    untraced_secs_per_iter: f64,
    traced_secs_per_iter: f64,
    trace_overhead_ratio: f64,
    reduction_wait_share: f64,
    matvec_share: f64,
    vector_share: f64,
    overhead_share: f64,
    reduction_wait_ns_per_iter: f64,
    dropped_spans: u64,
}
}

fn variants() -> Vec<(&'static str, Box<dyn CgVariant>)> {
    vec![
        (
            "standard",
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
        ),
        ("overlap-k1", Box::new(OverlapK1Cg::new())),
        ("lookahead-k2", Box::new(LookaheadCg::new(2))),
        ("lookahead-k4", Box::new(LookaheadCg::new(4))),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map_or(1, |v| v.get());
    // fixed iteration budget (tol 0 never triggers): traced and untraced
    // runs do identical logical work, so min-of-reps wall clock isolates
    // the tracer's own cost
    let (grids, iters, reps): (&[usize], usize, usize) = if smoke {
        (&[48], 10, 1)
    } else {
        (&[256, 512], 40, 3)
    };
    let widths: &[usize] = &[1, 4];
    let clock = Clock::new();

    let mut rows: Vec<Row> = Vec::new();
    let mut reports: Vec<(String, Report)> = Vec::new();
    let mut exemplar_trace: Option<String> = None;
    let mut table = Table::new(&[
        "grid",
        "variant",
        "thr",
        "iters",
        "red-wait",
        "matvec",
        "vector",
        "ovh",
        "s/iter",
        "trace-ovh",
    ]);

    for &g in grids {
        let op = Stencil2d::poisson(g);
        let n = g * g;
        let b = vec![1.0; n];
        for &threads in widths {
            for (vname, solver) in variants() {
                let base_opts = SolveOptions::default()
                    .with_tol(0.0)
                    .with_max_iters(iters)
                    .with_dot_mode(DotMode::Tree)
                    .with_threads(threads);

                let mut best_untraced = f64::INFINITY;
                let mut untraced = None;
                for _ in 0..reps {
                    let t0 = clock.now_ns();
                    let res = solver.solve(&op, &b, None, &base_opts);
                    best_untraced = best_untraced.min((clock.now_ns() - t0) as f64 * 1e-9);
                    untraced = Some(res);
                }
                let untraced = untraced.expect("reps >= 1");

                let tracer = Arc::new(Tracer::for_width(threads));
                let traced_opts = base_opts.clone().with_tracer(Arc::clone(&tracer));
                let mut best_traced = f64::INFINITY;
                let mut report = None;
                for _ in 0..reps {
                    let t0 = clock.now_ns();
                    let res = solver.solve(&op, &b, None, &traced_opts);
                    best_traced = best_traced.min((clock.now_ns() - t0) as f64 * 1e-9);
                    // observation must never perturb: bit-identical iterates
                    assert_eq!(
                        untraced.x, res.x,
                        "{vname} grid {g} threads {threads}: traced solve diverged from untraced"
                    );
                    let log = tracer.drain(); // also resets for the next rep
                    if g == *grids.last().unwrap()
                        && threads == *widths.last().unwrap()
                        && vname == "overlap-k1"
                    {
                        exemplar_trace = Some(vr_obs::chrome::trace_json(&log));
                    }
                    report = Some(vr_obs::critpath::attribute(&log));
                }
                let report = report.expect("reps >= 1");
                assert!(
                    !report.iters.is_empty(),
                    "{vname} grid {g}: no iteration marks recorded"
                );
                assert_eq!(
                    report.dropped, 0,
                    "{vname} grid {g}: tracer ring wrapped — size capacity up"
                );
                let t = report.totals;
                assert_eq!(
                    t.reduction_wait_ns + t.matvec_ns + t.vector_ns + t.overhead_ns,
                    t.total_ns,
                    "{vname} grid {g}: phases do not sum to iteration time"
                );

                let spi_un = best_untraced / untraced.iterations as f64;
                let spi_tr = best_traced / untraced.iterations as f64;
                let overhead_ratio = spi_tr / spi_un;
                table.row(&[
                    g.to_string(),
                    vname.into(),
                    threads.to_string(),
                    untraced.iterations.to_string(),
                    format!("{:5.1}%", 100.0 * t.share(PhaseClass::ReductionWait)),
                    format!("{:5.1}%", 100.0 * t.share(PhaseClass::Matvec)),
                    format!("{:5.1}%", 100.0 * t.share(PhaseClass::Vector)),
                    format!("{:5.1}%", 100.0 * t.share(PhaseClass::Overhead)),
                    format!("{spi_un:.3e}"),
                    format!("{:+.1}%", 100.0 * (overhead_ratio - 1.0)),
                ]);
                rows.push(Row {
                    grid: g,
                    n,
                    variant: vname.into(),
                    threads,
                    iterations: untraced.iterations,
                    untraced_secs_per_iter: spi_un,
                    traced_secs_per_iter: spi_tr,
                    trace_overhead_ratio: overhead_ratio,
                    reduction_wait_share: t.share(PhaseClass::ReductionWait),
                    matvec_share: t.share(PhaseClass::Matvec),
                    vector_share: t.share(PhaseClass::Vector),
                    overhead_share: t.share(PhaseClass::Overhead),
                    reduction_wait_ns_per_iter: t.reduction_wait_ns as f64
                        / report.iters.len() as f64,
                    dropped_spans: report.dropped,
                });
                reports.push((format!("{vname}/g{g}/w{threads}"), report));
            }
        }
    }

    println!("E19 — critical-path attribution (2-D Poisson stencil, DotMode::Tree, fused kernels)");
    println!("(host CPUs: {host_cpus}; reduction-wait = dependency-gated time only)");
    println!("{}", table.render());

    // --- headlines: the §3 overlap claim + tracer cost, largest grid ---
    if smoke {
        println!("(--smoke: tiny grid, headline assertions skipped)");
    } else if host_cpus < 4 {
        println!(
            "(host has {host_cpus} CPUs: width-4 headline not measurable, assertions skipped)"
        );
    } else {
        let big = *grids.last().unwrap();
        let row = |variant: &str, threads: usize| {
            rows.iter()
                .find(|r| r.grid == big && r.variant == variant && r.threads == threads)
                .expect("headline row")
        };
        let std4 = row("standard", 4);
        let ovl4 = row("overlap-k1", 4);
        println!(
            "headline: reduction-wait share at 4 threads, N = {}: standard {:.1}% vs overlap-k1 {:.1}%",
            big * big,
            100.0 * std4.reduction_wait_share,
            100.0 * ovl4.reduction_wait_share,
        );
        assert!(
            ovl4.reduction_wait_share < std4.reduction_wait_share,
            "headline regression: overlap-k1 reduction-wait share ({:.3}) is not below standard CG's ({:.3}) at 4 threads",
            ovl4.reduction_wait_share,
            std4.reduction_wait_share
        );
        for r in rows.iter().filter(|r| r.grid == big) {
            println!(
                "headline: tracer overhead {} w{}: {:+.2}%",
                r.variant,
                r.threads,
                100.0 * (r.trace_overhead_ratio - 1.0)
            );
            assert!(
                r.trace_overhead_ratio < 1.05,
                "headline regression: attached tracer costs {:.1}% of iteration time for {} at width {} (need < 5%)",
                100.0 * (r.trace_overhead_ratio - 1.0),
                r.variant,
                r.threads
            );
        }
    }

    let report_sections: Vec<(String, vr_bench::json::Json)> = reports
        .iter()
        .map(|(label, rep)| (label.clone(), report_json(rep)))
        .collect();
    write_json(
        "BENCH_obs",
        &vr_bench::json::envelope(
            "e19_critical_path",
            smoke,
            &[
                ("rows", vr_bench::json!(rows)),
                (
                    "reports",
                    vr_bench::json::Json::Obj(report_sections.clone()),
                ),
            ],
        ),
    );
    let trace = exemplar_trace.expect("overlap-k1 exemplar always runs");
    let path = vr_bench::results_dir().join("e19_trace.json");
    std::fs::write(&path, trace).expect("write chrome trace");
    eprintln!(
        "[e19] wrote {} (open in https://ui.perfetto.dev)",
        path.display()
    );
}
