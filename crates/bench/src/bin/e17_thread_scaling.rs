//! E17 — extension: persistent-team thread scaling.
//!
//! E16 measured what fusion buys a single processor; this experiment
//! measures what the persistent SPMD team buys several. Every kernel on
//! the solver hot path — stencil sweeps, fused vector updates, and the
//! chunk-tree reductions — steps a long-lived worker team through
//! barrier-synchronized epochs instead of spawning threads per call, so
//! per-iteration wall clock is arithmetic plus one epoch wake-up, not
//! thread creation. `DotMode::Tree` keeps every trace bit-identical
//! across team widths (the differential tests enforce this), so the
//! sweep below compares *identical numerics* at different widths.
//!
//! Sweep: grid size × variant × team width, fixed iteration budget,
//! min-of-reps wall clock. Headlines (asserted outside `--smoke`, and
//! only when the host actually has ≥ 4 CPUs — a 1-core container can
//! only measure oversubscription):
//!
//! * at N = 2²⁰ (1024² Poisson stencil), pooled standard CG with 4
//!   threads sustains ≥ 2.0× the single-thread fused iteration
//!   throughput;
//! * pooled `overlap_k1` beats pooled standard CG per-iteration wall
//!   time at the same width (the paper's §3 claim on a real machine:
//!   fewer reduction barriers per iteration).

use std::time::Instant;
use vr_bench::{write_json, Table};
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::kernels::DotMode;
use vr_linalg::stencil::Stencil2d;
use vr_par::team::GRAIN;

vr_bench::jsonable! {
    struct Row {
    grid: usize,
    n: usize,
    variant: String,
    threads: usize,
    iterations: usize,
    best_secs: f64,
    secs_per_iter: f64,
    iters_per_sec: f64,
    speedup_vs_one_thread: f64,
}
}

fn variants() -> Vec<(&'static str, Box<dyn CgVariant>)> {
    vec![
        (
            "standard",
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
        ),
        ("overlap-k1", Box::new(OverlapK1Cg::new())),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map_or(1, |v| v.get());
    // fixed iteration budget (tol 0 never triggers): every width does the
    // same logical work and, with Tree reductions, the same arithmetic to
    // the last bit — wall clock is the only thing that moves
    let (grids, iters, reps): (&[usize], usize, usize) = if smoke {
        (&[48, 64], 10, 1)
    } else {
        (&[512, 1024], 50, 5)
    };
    let widths: &[usize] = &[1, 2, 4, 8];

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&[
        "grid", "N", "variant", "threads", "iters", "best s", "s/iter", "iter/s", "speedup",
    ]);

    for &g in grids {
        let op = Stencil2d::poisson(g);
        let n = g * g;
        let b = vec![1.0; n];
        for (vname, solver) in variants() {
            // interleave reps across widths so machine noise hits every
            // width, not just whichever ran last
            let mut best = vec![f64::INFINITY; widths.len()];
            let mut last: Vec<Option<_>> = widths.iter().map(|_| None).collect();
            for _ in 0..reps {
                for (k, &threads) in widths.iter().enumerate() {
                    let opts = SolveOptions::default()
                        .with_tol(0.0)
                        .with_max_iters(iters)
                        .with_dot_mode(DotMode::Tree)
                        .with_threads(threads);
                    let t0 = Instant::now();
                    let res = solver.solve(&op, &b, None, &opts);
                    best[k] = best[k].min(t0.elapsed().as_secs_f64());
                    last[k] = Some(res);
                }
            }
            let mut one_spi = f64::NAN;
            let base = last[0].as_ref().expect("reps >= 1");
            for (k, &threads) in widths.iter().enumerate() {
                let res = last[k].as_ref().expect("reps >= 1");
                assert_eq!(
                    res.iterations, iters,
                    "{vname} grid {g} threads {threads}: wrong iteration count"
                );
                // width-invariance is the whole point — enforce it here
                // too, not just in the test suite
                assert_eq!(
                    base.x, res.x,
                    "{vname} grid {g} threads {threads}: trace diverged from width 1"
                );
                let spi = best[k] / res.iterations as f64;
                if threads == 1 {
                    one_spi = spi;
                }
                let speedup = one_spi / spi;
                table.row(&[
                    g.to_string(),
                    n.to_string(),
                    vname.into(),
                    threads.to_string(),
                    res.iterations.to_string(),
                    format!("{:.4}", best[k]),
                    format!("{spi:.3e}"),
                    format!("{:.1}", 1.0 / spi),
                    format!("{speedup:.2}x"),
                ]);
                rows.push(Row {
                    grid: g,
                    n,
                    variant: vname.into(),
                    threads,
                    iterations: res.iterations,
                    best_secs: best[k],
                    secs_per_iter: spi,
                    iters_per_sec: 1.0 / spi,
                    speedup_vs_one_thread: speedup,
                });
            }
        }
    }

    println!("E17 — persistent-team thread scaling (2-D Poisson stencil, DotMode::Tree)");
    println!("(host CPUs: {host_cpus}, dispatch grain: {GRAIN})");
    println!("{}", table.render());

    // --- headlines: 4-thread scaling and overlap_k1's barrier win ---
    if smoke {
        println!("(--smoke: tiny grids, headline assertions skipped)");
    } else if host_cpus < 4 {
        println!(
            "(host has {host_cpus} CPUs: 4-thread headline not measurable, assertions skipped)"
        );
    } else {
        let big = *grids.last().unwrap();
        assert!(big * big >= 1 << 20, "headline grid must reach N = 2^20");
        let spi = |variant: &str, threads: usize| {
            rows.iter()
                .find(|r| r.grid == big && r.variant == variant && r.threads == threads)
                .expect("headline row")
                .secs_per_iter
        };
        let std1 = spi("standard", 1);
        let std4 = spi("standard", 4);
        let ovl4 = spi("overlap-k1", 4);
        println!(
            "headline: standard CG, N = {}: 4 threads = {:.2}x single-thread throughput",
            big * big,
            std1 / std4
        );
        println!(
            "headline: overlap-k1 vs standard at 4 threads: {:.3e} vs {:.3e} s/iter",
            ovl4, std4
        );
        assert!(
            std1 / std4 >= 2.0,
            "headline regression: pooled standard CG at N = 2^20 is only {:.2}x single-thread (need >= 2.0x)",
            std1 / std4
        );
        assert!(
            ovl4 < std4,
            "headline regression: overlap-k1 ({ovl4:.3e} s/iter) does not beat standard ({std4:.3e} s/iter) at 4 threads"
        );
    }

    write_json(
        "BENCH_threads",
        &vr_bench::json::envelope(
            "e17_thread_scaling",
            smoke,
            &[("rows", vr_bench::json!(rows))],
        ),
    );
}
