//! E14 — extension: the zero-reduction floor.
//!
//! Chebyshev iteration needs no inner products, so on the paper's machine
//! its cycle is `log d + O(1)` — the floor any reduction-restructuring can
//! approach but not beat. The trade: it needs spectral bounds and takes
//! more iterations. This experiment shows both sides:
//!
//! 1. **machine model**: cycle times of chebyshev vs look-ahead vs standard
//!    across machines (ideal / hypercube / mesh);
//! 2. **numeric**: iterations-to-tolerance and *total simulated time* =
//!    iterations × cycle — the quantity a practitioner actually minimizes.

use vr_bench::{write_json, Table};
use vr_cg::baselines::ChebyshevIteration;
use vr_cg::lookahead::LookaheadCg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::gen;
use vr_sim::{builders, Topology};

vr_bench::jsonable! {
    struct Row {
    solver: String,
    machine: String,
    cycle: f64,
    iterations: usize,
    total_time: f64,
}
}

fn main() {
    // --- numeric side: iterations to 1e-8 on poisson2d(32) = 1024 dims ---
    let a = gen::poisson2d(32);
    let b = gen::poisson2d_rhs(32);
    let opts = SolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(20_000);
    let iters_std = StandardCg::new().solve(&a, &b, None, &opts).iterations;
    let iters_la = LookaheadCg::new(2)
        .with_resync(12)
        .solve(&a, &b, None, &opts)
        .iterations;
    let cheb_res = ChebyshevIteration::auto().solve(&a, &b, None, &opts);
    assert!(cheb_res.converged, "{:?}", cheb_res.termination);
    let iters_cheb = cheb_res.iterations;

    // --- machine side: steady cycles on three machines at N = 2^20 ---
    let (n, d, its, k) = (1usize << 20, 5usize, 40usize, 20usize);
    let machines = [
        ("ideal", Topology::Ideal),
        ("hypercube(h=1)", Topology::Hypercube { hop: 1.0 }),
        ("mesh2d(h=1)", Topology::Mesh2d { hop: 1.0 }),
    ];

    let mut table = Table::new(&[
        "solver",
        "machine",
        "cycle",
        "iters (poisson2d-32)",
        "total = cycle × iters",
    ]);
    let mut rows = Vec::new();
    for (mname, topo) in machines {
        let m = topo.machine();
        let entries = [
            (
                "standard-cg",
                builders::standard_cg(n, d, its).steady_cycle_time(&m),
                iters_std,
            ),
            (
                "lookahead-cg(k=20)",
                builders::lookahead_cg(n, d, its, k).steady_cycle_time(&m),
                iters_la,
            ),
            (
                "chebyshev",
                builders::chebyshev_iteration(n, d, its, 10).steady_cycle_time(&m),
                iters_cheb,
            ),
        ];
        for (sname, cycle, iters) in entries {
            let total = cycle * iters as f64;
            table.row(&[
                sname.to_string(),
                mname.to_string(),
                format!("{cycle:.1}"),
                iters.to_string(),
                format!("{total:.0}"),
            ]);
            rows.push(Row {
                solver: sname.into(),
                machine: mname.into(),
                cycle,
                iterations: iters,
                total_time: total,
            });
        }
    }

    println!("E14 — the zero-reduction floor: Chebyshev vs the CG family");
    println!("{}", table.render());
    println!("reading: Chebyshev owns the per-iteration floor (no reductions) but");
    println!(
        "pays ~{:.1}× CG's iterations; the look-ahead keeps CG's iteration",
        iters_cheb as f64 / iters_std as f64
    );
    println!("count while approaching the floor — on latency-heavy machines it");
    println!("wins the product, which is the paper's practical value proposition.");

    // Shape checks.
    let get = |s: &str, mname: &str| {
        rows.iter()
            .find(|r| r.solver == s && r.machine == mname)
            .expect("row")
    };
    // chebyshev has the lowest cycle everywhere
    for (mname, _) in machines {
        assert!(get("chebyshev", mname).cycle <= get("lookahead-cg(k=20)", mname).cycle + 1.0);
        assert!(get("chebyshev", mname).cycle < get("standard-cg", mname).cycle);
    }
    // chebyshev needs more iterations than CG
    assert!(iters_cheb > iters_std, "{iters_cheb} !> {iters_std}");
    // on the mesh, the look-ahead beats standard CG on total time
    assert!(
        get("lookahead-cg(k=20)", "mesh2d(h=1)").total_time
            < get("standard-cg", "mesh2d(h=1)").total_time
    );

    write_json("e14_chebyshev_floor", &vr_bench::json!({ "rows": rows }));
}
