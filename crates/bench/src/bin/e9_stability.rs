//! E9 — extension/ablation: numerical stability versus look-ahead depth k.
//!
//! The 1983 paper predates the s-step stability literature; this experiment
//! maps the price of the power-basis moment window: for each k, the best
//! relative true residual reachable without resynchronization, the number
//! of validation restarts, and the repaired behavior with periodic resync.
//! The conditioning of the moment basis grows like κ(A)^(2k+2), so the
//! attainable accuracy decays geometrically in k.

use vr_bench::{write_json, Table};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::gen;
use vr_linalg::kernels::norm2;

vr_bench::jsonable! {
    struct Row {
    solver: String,
    k: usize,
    resync: usize,
    converged: bool,
    iterations: usize,
    restarts: usize,
    rel_true_residual: f64,
}
}

fn run(s: &dyn CgVariant, k: usize, resync: usize, a: &vr_linalg::CsrMatrix, b: &[f64]) -> Row {
    let opts = SolveOptions::default().with_tol(1e-10).with_max_iters(1500);
    let res = s.solve(a, b, None, &opts);
    Row {
        solver: s.name(),
        k,
        resync,
        converged: res.converged,
        iterations: res.iterations,
        restarts: res.counts.restarts,
        rel_true_residual: res.true_residual(a, b) / norm2(b),
    }
}

fn main() {
    let a = gen::poisson2d(24);
    let b = gen::poisson2d_rhs(24);

    let mut table = Table::new(&[
        "solver",
        "k",
        "resync",
        "converged",
        "iters",
        "restarts",
        "rel true residual",
    ]);
    let mut rows = Vec::new();

    let mut push = |r: Row, table: &mut Table| {
        table.row(&[
            r.solver.clone(),
            r.k.to_string(),
            r.resync.to_string(),
            r.converged.to_string(),
            r.iterations.to_string(),
            r.restarts.to_string(),
            format!("{:.2e}", r.rel_true_residual),
        ]);
        rows.push(r);
    };

    push(run(&StandardCg::new(), 0, 0, &a, &b), &mut table);
    push(run(&OverlapK1Cg::new(), 1, 0, &a, &b), &mut table);
    push(
        run(&OverlapK1Cg::new().with_resync(20), 1, 20, &a, &b),
        &mut table,
    );
    for k in [1usize, 2, 3, 4, 6, 8] {
        push(run(&LookaheadCg::new(k), k, 0, &a, &b), &mut table);
    }
    for k in [2usize, 4, 8] {
        push(
            run(&LookaheadCg::new(k).with_resync(10), k, 10, &a, &b),
            &mut table,
        );
    }

    println!("E9 — attainable accuracy vs look-ahead depth (poisson2d 24², tol 1e-10)");
    println!("{}", table.render());
    println!("reading: without resync the attainable true residual degrades with k");
    println!("(power-basis conditioning ~ κ^(2k+2)); validated restarts keep the");
    println!("solver honest; periodic resync restores deep convergence.");

    // Shape assertions: standard CG converges fully; accuracy decays with k.
    assert!(rows[0].converged, "standard CG must converge");
    let acc = |k: usize| {
        rows.iter()
            .filter(|r| r.solver.starts_with("lookahead") && r.k == k && r.resync == 0)
            .map(|r| r.rel_true_residual)
            .next()
            .expect("row present")
    };
    assert!(
        acc(8) > acc(1) * 10.0 || acc(8) > 1e-8,
        "expected accuracy degradation with k: k=1 {:.2e}, k=8 {:.2e}",
        acc(1),
        acc(8)
    );
    write_json("e9_stability", &vr_bench::json!({ "rows": rows }));
}
