//! E16 — extension: fused single-pass kernels and iteration throughput.
//!
//! The paper removes inner-product *latency* from the critical path; this
//! experiment measures the complementary sequential cost: memory traffic.
//! Standard CG touches its vectors in six separate sweeps per iteration
//! (matvec, (p,Ap), two axpys, (r,r), direction update); the `Fused`
//! kernel policy collapses those to three on a matrix-free stencil —
//! `apply_dot` evaluates the stencil and accumulates (p,Ap) in one
//! branch-free row sweep, and the fused `update_xr` kernel applies both
//! vector updates and the (r,r) reduction in a second single pass. The
//! scalar iterates are bit-identical by construction (the differential
//! suite enforces this), so the comparison is pure throughput.
//!
//! Sweep: grid size × variant × kernel policy, fixed iteration budget,
//! min-of-reps wall clock. Headline (asserted outside `--smoke`): on the
//! 2-D Poisson stencil at N ≥ 1e6, fused standard CG sustains ≥ 1.3× the
//! single-thread iteration throughput of the reference policy.

use std::time::Instant;
use vr_bench::{write_json, Table};
use vr_cg::baselines::{ChronopoulosGearCg, PipelinedCg};
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, KernelPolicy, SolveOptions};
use vr_linalg::stencil::Stencil2d;

vr_bench::jsonable! {
    struct Row {
    grid: usize,
    n: usize,
    variant: String,
    policy: String,
    iterations: usize,
    best_secs: f64,
    secs_per_iter: f64,
    iters_per_sec: f64,
    fused_ops: usize,
    speedup_vs_reference: f64,
}
}

fn variants() -> Vec<(&'static str, Box<dyn CgVariant>)> {
    vec![
        (
            "standard",
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
        ),
        ("chronopoulos-gear", Box::new(ChronopoulosGearCg::new())),
        ("pipelined", Box::new(PipelinedCg::new())),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // fixed iteration budget (tol 0 never triggers), so both policies do
    // exactly the same logical work and wall clock divides cleanly
    let (grids, iters, reps): (&[usize], usize, usize) = if smoke {
        (&[48, 64], 10, 1)
    } else {
        (&[256, 512, 1024], 50, 5)
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(&[
        "grid", "N", "variant", "policy", "iters", "best s", "s/iter", "iter/s", "speedup",
    ]);

    for &g in grids {
        let op = Stencil2d::poisson(g);
        let n = g * g;
        let b = vec![1.0; n];
        for (vname, solver) in variants() {
            // interleave the reps across policies so transient machine noise
            // (frequency shifts, noisy neighbors) hits both sides of the
            // ratio, not just whichever happened to run second
            let policies = [KernelPolicy::Reference, KernelPolicy::Fused];
            let mut best = [f64::INFINITY; 2];
            let mut last = [None, None];
            for _ in 0..reps {
                for (k, &policy) in policies.iter().enumerate() {
                    let opts = SolveOptions::default()
                        .with_tol(0.0)
                        .with_max_iters(iters)
                        .with_kernel_policy(policy);
                    let t0 = Instant::now();
                    let res = solver.solve(&op, &b, None, &opts);
                    best[k] = best[k].min(t0.elapsed().as_secs_f64());
                    last[k] = Some(res);
                }
            }
            let mut ref_spi = f64::NAN;
            for (k, policy) in policies.into_iter().enumerate() {
                let best = best[k];
                let res = last[k].take().expect("reps >= 1");
                assert!(
                    res.iterations == iters,
                    "{vname}/{policy:?} grid {g}: expected {iters} iterations, ran {}",
                    res.iterations
                );
                let spi = best / res.iterations as f64;
                let speedup = match policy {
                    KernelPolicy::Reference => {
                        ref_spi = spi;
                        1.0
                    }
                    KernelPolicy::Fused => ref_spi / spi,
                };
                let plabel = match policy {
                    KernelPolicy::Reference => "reference",
                    KernelPolicy::Fused => "fused",
                };
                table.row(&[
                    g.to_string(),
                    n.to_string(),
                    vname.into(),
                    plabel.into(),
                    res.iterations.to_string(),
                    format!("{best:.4}"),
                    format!("{spi:.3e}"),
                    format!("{:.1}", 1.0 / spi),
                    format!("{speedup:.2}x"),
                ]);
                rows.push(Row {
                    grid: g,
                    n,
                    variant: vname.into(),
                    policy: plabel.into(),
                    iterations: res.iterations,
                    best_secs: best,
                    secs_per_iter: spi,
                    iters_per_sec: 1.0 / spi,
                    fused_ops: res.counts.fused_ops,
                    speedup_vs_reference: speedup,
                });
            }
        }
    }

    println!("E16 — fused single-pass kernels (2-D Poisson stencil, single thread)");
    println!("{}", table.render());

    // --- headline: ≥ 1.3× fused standard-CG throughput at N ≥ 1e6 ---
    if !smoke {
        let big = *grids.last().unwrap();
        assert!(big * big >= 1_000_000, "headline grid must reach N >= 1e6");
        let head = rows
            .iter()
            .find(|r| r.grid == big && r.variant == "standard" && r.policy == "fused")
            .expect("headline row");
        println!(
            "headline: standard CG, N = {}: fused = {:.2}x reference throughput",
            head.n, head.speedup_vs_reference
        );
        assert!(
            head.speedup_vs_reference >= 1.3,
            "headline regression: fused standard CG at N = {} is only {:.2}x reference (need >= 1.3x)",
            head.n,
            head.speedup_vs_reference
        );
    } else {
        println!("(--smoke: tiny grids, headline assertion skipped)");
    }

    write_json(
        "BENCH_fused",
        &vr_bench::json::envelope(
            "e16_fused_kernels",
            smoke,
            &[("rows", vr_bench::json!(rows))],
        ),
    );
}
