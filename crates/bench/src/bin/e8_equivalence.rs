//! E8 — the restructured algorithms are *the same iteration* as CG.
//!
//! The paper's correctness rests on the recurrences being algebraic
//! identities: in exact arithmetic every variant generates the same
//! iterates. This binary measures per-iteration residual-history agreement
//! (relative deviation from standard CG) and final-solution distance for
//! every solver on a Poisson-2D problem.

use vr_bench::{write_json, Table};
use vr_cg::baselines::{
    ChronopoulosGearCg, ConjugateResidual, OverlapCr, PipelinedCg, ThreeTermCg,
};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::gen;
use vr_linalg::kernels::dist2;

vr_bench::jsonable! {
    struct Row {
    solver: String,
    iterations: usize,
    max_rel_deviation_first_half: f64,
    solution_distance: f64,
    true_residual: f64,
}
}

fn main() {
    let a = gen::poisson2d(24);
    let b = gen::poisson2d_rhs(24);
    let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(2000);

    let reference = StandardCg::new().solve(&a, &b, None, &opts);
    assert!(reference.converged);

    let solvers: Vec<Box<dyn CgVariant>> = vec![
        Box::new(ThreeTermCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(ConjugateResidual::new()),
        Box::new(OverlapCr::new()),
        Box::new(PipelinedCg::new()),
        Box::new(OverlapK1Cg::new()),
        Box::new(OverlapK1Cg::new().with_resync(20)),
        Box::new(LookaheadCg::new(1)),
        Box::new(LookaheadCg::new(2)),
        Box::new(LookaheadCg::new(3)),
        Box::new(LookaheadCg::new(4).with_resync(10)),
    ];

    let mut table = Table::new(&[
        "solver",
        "iters (std: ref)",
        "max rel dev (1st half)",
        "‖x − x_std‖",
        "true residual",
    ]);
    let mut rows = Vec::new();
    for s in &solvers {
        let res = s.solve(&a, &b, None, &opts);
        let common = reference.residual_norms.len().min(res.residual_norms.len());
        let (quarter, half) = (common / 4, common / 2);
        let mut dev = 0.0_f64;
        let mut dev_quarter = 0.0_f64;
        for i in 0..half {
            let (r0, r1) = (reference.residual_norms[i], res.residual_norms[i]);
            let d = (r0 - r1).abs() / (1.0 + r0.abs());
            dev = dev.max(d);
            if i < quarter {
                dev_quarter = dev_quarter.max(d);
            }
        }
        let dist = dist2(&res.x, &reference.x);
        let true_r = res.true_residual(&a, &b);
        table.row(&[
            s.name(),
            format!("{} ({})", res.iterations, reference.iterations),
            format!("{dev:.2e}"),
            format!("{dist:.2e}"),
            format!("{true_r:.2e}"),
        ]);
        rows.push(Row {
            solver: s.name(),
            iterations: res.iterations,
            max_rel_deviation_first_half: dev,
            solution_distance: dist,
            true_residual: true_r,
        });
        // All variants are exact CG in exact arithmetic. In floating point
        // the one-reduction baselines stay at round-off; the look-ahead
        // family drifts in proportion to the window conditioning κ^(2k+2)
        // (the E9 story), so the bound is looser but still small early on.
        let bound = if s.name().starts_with("lookahead") {
            1e-2
        } else if s.name().contains("-cr") || s.name().contains("residual") {
            // CR minimizes ‖r‖₂, not the A-norm error: its residual history
            // legitimately differs from CG's — only report, don't bound
            // (it must still converge to the same solution, checked below)
            f64::INFINITY
        } else {
            1e-6
        };
        assert!(
            dev_quarter < bound,
            "{} deviates from CG early in the iteration: {dev_quarter}",
            s.name()
        );
    }

    println!("E8 — iterate equivalence with standard CG (poisson2d 24², tol 1e-8)");
    println!("{}", table.render());
    write_json("e8_equivalence", &vr_bench::json!({ "rows": rows }));
}
