//! E5 — Claim C5 (headline): with k = log₂N the look-ahead algorithm's
//! per-iteration parallel time is max(log d, log log N) + O(1).
//!
//! Sweeps N with k = log₂N and compares against standard CG and the
//! prediction. The growth of the look-ahead cycle across a 2^18-fold
//! increase in N must be a few time units (log log N moves from ~2.6 to
//! ~4.6), while standard CG grows by ~36 units.

use vr_bench::{fit_slope, write_json, Table};
use vr_sim::{builders, MachineModel};

vr_bench::jsonable! {
    struct Row {
    log2_n: u32,
    d: usize,
    k: usize,
    lookahead_cycle: f64,
    standard_cycle: f64,
    predict: f64,
}
}

fn main() {
    let m = MachineModel::pram();
    let iters = 48;
    let mut table = Table::new(&[
        "log2(N)",
        "d",
        "k",
        "lookahead",
        "standard",
        "max(log d, log log N)",
    ]);
    let mut rows = Vec::new();

    for d in [3usize, 5, 7, 27] {
        for log_n in [6u32, 8, 10, 12, 14, 16, 18, 20, 22, 24] {
            let n = 1usize << log_n;
            let k = log_n as usize;
            let la = builders::lookahead_cg(n, d, iters, k).steady_cycle_time(&m);
            let std_c = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
            let predict = (d as f64).log2().ceil().max(f64::from(log_n).log2());
            table.row(&[
                log_n.to_string(),
                d.to_string(),
                k.to_string(),
                format!("{la:.2}"),
                format!("{std_c:.2}"),
                format!("{predict:.2}"),
            ]);
            rows.push(Row {
                log2_n: log_n,
                d,
                k,
                lookahead_cycle: la,
                standard_cycle: std_c,
                predict,
            });
        }
    }

    println!("E5 — look-ahead CG with k = log2(N): per-iteration time (claim C5)");
    println!("{}", table.render());

    // Shape checks: (i) look-ahead grows sub-logarithmically, (ii) the gap
    // to standard CG widens with N.
    let d5: Vec<&Row> = rows.iter().filter(|r| r.d == 5).collect();
    let xs: Vec<f64> = d5.iter().map(|r| f64::from(r.log2_n)).collect();
    let la_slope = fit_slope(
        &xs,
        &d5.iter().map(|r| r.lookahead_cycle).collect::<Vec<_>>(),
    );
    let std_slope = fit_slope(
        &xs,
        &d5.iter().map(|r| r.standard_cycle).collect::<Vec<_>>(),
    );
    println!("d=5 growth per doubling of N: lookahead {la_slope:.3}, standard {std_slope:.3}");
    assert!(
        la_slope < 0.35 * std_slope,
        "look-ahead slope {la_slope} not ≪ standard slope {std_slope}"
    );
    // d dominates when log d exceeds the scalar-summation depth log(6k):
    // visible at small N (k = 6..8), where the d=27 cycle exceeds d=3.
    let at = |d: usize, log_n: u32| {
        rows.iter()
            .find(|r| r.d == d && r.log2_n == log_n)
            .map(|r| r.lookahead_cycle)
            .expect("present")
    };
    assert!(
        at(27, 8) > at(3, 8),
        "d-dependence missing at small N: {} !> {}",
        at(27, 8),
        at(3, 8)
    );
    // at large N the scalar-summation depth log(6k) dominates and the
    // d-dependence disappears — also part of the max(·,·) shape
    assert!((at(27, 24) - at(3, 24)).abs() < 1e-9);
    write_json(
        "e5_loglogn",
        &vr_bench::json!({ "rows": rows, "la_slope_d5": la_slope, "std_slope_d5": std_slope }),
    );
}
