//! E23 — whole-iteration sweep fusion: one cache-resident pass per
//! CG iteration.
//!
//! E22 established that the fused per-kernel sweeps are pinned to the
//! memory wall: bytes per iteration is the metric, FLOPs are free. This
//! experiment measures the next rung — [`SweepPolicy::WholeIteration`]
//! executes an *entire* CG iteration as a handful of barrier epochs over
//! cache-resident row slices, so intermediate vectors (the stored `A·p`
//! stream above all) never round-trip through memory. The engine recomputes
//! the operator application inside the update epoch instead of storing it:
//! arithmetic goes up, traffic goes down, and at the memory wall that trade
//! is a win.
//!
//! Three parts:
//!
//! 1. **Policy shoot-out** — the four sweep-eligible variants {standard,
//!    overlap-k1, chronopoulos-gear, pipelined} on 2-D Poisson at
//!    N = 2^20, single thread, fixed iteration budget, `Fused` vs
//!    `WholeIteration`, reps interleaved across policies. One traced rep
//!    per cell harvests logical bytes/iteration (`IterSweep` spans for the
//!    sweep path, the per-kernel spans for the fused path) and must not
//!    perturb the untraced bits.
//! 2. **Headlines** (asserted outside `--smoke`): for standard CG at
//!    N = 2^20 the whole-iteration sweep moves ≤ 0.7× the measured
//!    bytes/iteration of `KernelPolicy::Fused` (the logical tally says
//!    72n vs 104n = 0.69×) and sustains ≥ 1.15× single-thread wall-clock
//!    iteration throughput.
//! 3. **Bit-identity** (asserted in smoke *and* full runs) — every
//!    eligible variant at thread widths {1, 4} and staging tiles
//!    {1, 3, L1-heuristic, whole-domain} produces bit-identical iterates,
//!    residual traces, and op tallies to the per-kernel fused path.

use std::sync::Arc;
use std::time::Instant;
use vr_bench::{write_json, Table};
use vr_cg::baselines::{ChronopoulosGearCg, PipelinedCg};
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions, SweepPolicy, Termination};
use vr_linalg::kernels::DotMode;
use vr_linalg::stencil::Stencil2d;
use vr_linalg::{gen, LinearOperator};
use vr_obs::Tracer;

vr_bench::jsonable! {
    struct PolicyRow {
    variant: String,
    n: usize,
    policy: String,
    iterations: usize,
    best_secs: f64,
    secs_per_iter: f64,
    bytes_per_iter: f64,
    bytes_vs_fused: f64,
    speedup_vs_fused: f64,
}
}

vr_bench::jsonable! {
    struct IdentityRow {
    variant: String,
    n: usize,
    threads: usize,
    tiles: String,
    iterations: usize,
    bit_identical: bool,
}
}

/// The four sweep-eligible variants, constructed as the registry does.
fn eligible_variants() -> Vec<(&'static str, Box<dyn CgVariant>)> {
    vec![
        (
            "standard",
            Box::new(StandardCg::new()) as Box<dyn CgVariant>,
        ),
        ("overlap-k1", Box::new(OverlapK1Cg::new().with_resync(20))),
        ("chronopoulos-gear", Box::new(ChronopoulosGearCg::new())),
        ("pipelined", Box::new(PipelinedCg::new())),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // --- part 1: Fused vs WholeIteration at N = 2^20, single thread ----
    let (grid, iters, reps) = if smoke { (64, 10, 1) } else { (1024, 40, 5) };
    let op = Stencil2d::poisson(grid);
    let n = grid * grid;
    let b = vec![1.0; n];
    // the sweep's eligibility envelope: Tree dots, fused kernels (the
    // default), f64 — identical options on both sides except the policy
    let base = SolveOptions::default()
        .with_tol(0.0)
        .with_max_iters(iters)
        .with_dot_mode(DotMode::Tree)
        .with_threads(1);
    let policies = [
        ("fused", SweepPolicy::Fused),
        ("sweep", SweepPolicy::WholeIteration),
    ];
    println!("E23 — whole-iteration sweep fusion: 2-D Poisson {grid}x{grid} (N = {n}), 1 thread");
    let mut rows: Vec<PolicyRow> = Vec::new();
    let mut table = Table::new(&[
        "variant", "policy", "iters", "s/iter", "B/iter", "B-ratio", "speedup",
    ]);
    for (vname, solver) in eligible_variants() {
        // interleave reps across the two policies so machine noise hits
        // both arms of every ratio, not just whichever ran second
        let mut best = [f64::INFINITY; 2];
        let mut last: [Option<vr_cg::SolveResult>; 2] = [None, None];
        for _ in 0..reps {
            for (k, (_, policy)) in policies.iter().enumerate() {
                let opts = base.clone().with_sweep_policy(*policy);
                let t0 = Instant::now();
                let res = solver.solve(&op, &b, None, &opts);
                best[k] = best[k].min(t0.elapsed().as_secs_f64());
                last[k] = Some(res);
            }
        }
        let mut cell = [(0usize, 0.0f64, 0.0f64); 2]; // iters, s/iter, B/iter
        for (k, (pname, policy)) in policies.iter().enumerate() {
            let res = last[k].take().expect("reps >= 1");
            assert_eq!(
                res.termination,
                Termination::MaxIterations,
                "{vname}/{pname}: expected the full iteration budget"
            );
            // one traced rep harvests logical bytes/iteration; tracing
            // must observe, never perturb
            let tracer = Arc::new(Tracer::for_width(1));
            let opts = base
                .clone()
                .with_sweep_policy(*policy)
                .with_tracer(Arc::clone(&tracer));
            let traced = solver.solve(&op, &b, None, &opts);
            assert_eq!(
                traced.x, res.x,
                "{vname}/{pname}: traced solve diverged from untraced"
            );
            let report = vr_obs::critpath::attribute(&tracer.drain());
            assert_eq!(report.dropped, 0, "tracer ring wrapped — size capacity up");
            let bytes_per_iter = report.total_bytes() as f64 / res.iterations as f64;
            cell[k] = (
                res.iterations,
                best[k] / res.iterations as f64,
                bytes_per_iter,
            );
        }
        let (fused_spi, fused_bpi) = (cell[0].1, cell[0].2);
        for (k, (pname, _)) in policies.iter().enumerate() {
            let (it, spi, bpi) = cell[k];
            let bytes_ratio = bpi / fused_bpi;
            let speedup = fused_spi / spi;
            table.row(&[
                vname.into(),
                (*pname).into(),
                it.to_string(),
                format!("{spi:.3e}"),
                format!("{bpi:.3e}"),
                format!("{bytes_ratio:.3}"),
                format!("{speedup:.2}x"),
            ]);
            rows.push(PolicyRow {
                variant: vname.into(),
                n,
                policy: (*pname).into(),
                iterations: it,
                best_secs: spi * it as f64,
                secs_per_iter: spi,
                bytes_per_iter: bpi,
                bytes_vs_fused: bytes_ratio,
                speedup_vs_fused: speedup,
            });
        }
    }
    println!("{}", table.render());

    // --- part 2: headlines ---------------------------------------------
    let mut headline_bytes = f64::NAN;
    let mut headline_speedup = f64::NAN;
    if !smoke {
        assert!(n == 1 << 20, "headline must run at N = 2^20");
        let pick = |policy: &str| {
            rows.iter()
                .find(|r| r.variant == "standard" && r.policy == policy)
                .expect("headline row")
        };
        let (fused, sweep) = (pick("fused"), pick("sweep"));
        headline_bytes = sweep.bytes_per_iter / fused.bytes_per_iter;
        headline_speedup = fused.secs_per_iter / sweep.secs_per_iter;
        println!(
            "headline: standard CG at N = 2^20: fused moves {:.3e} B/iter, whole-iteration \
             sweep {:.3e} B/iter (ratio {:.3}) at {:.2}x iteration throughput",
            fused.bytes_per_iter, sweep.bytes_per_iter, headline_bytes, headline_speedup
        );
        assert!(
            headline_bytes <= 0.7,
            "headline regression: sweep moves {headline_bytes:.3}x the bytes of fused (need <= 0.7x)"
        );
        assert!(
            headline_speedup >= 1.15,
            "headline regression: sweep is only {headline_speedup:.2}x fused throughput (need >= 1.15x)"
        );
    } else {
        println!("(--smoke: tiny sizes, headline assertions skipped)");
    }

    // --- part 3: bit-identity across tiles and widths -------------------
    // sized so the fixed 256-leaf chunk layout cuts grid rows mid-way
    let ia = gen::poisson2d(33);
    let ib = gen::poisson2d_rhs(33);
    let id_n = ia.dim();
    let mut identity_rows: Vec<IdentityRow> = Vec::new();
    for (vname, solver) in eligible_variants() {
        for threads in [1usize, 4] {
            let mut opts = SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(400)
                .with_dot_mode(DotMode::Tree)
                .with_threads(threads);
            opts.record_residuals = true;
            let fused = solver.solve(&ia, &ib, None, &opts);
            assert!(fused.converged, "{vname}: {:?}", fused.termination);
            let tiles = [Some(1), Some(3), None, Some(id_n)];
            let mut identical = true;
            for tile in tiles {
                let sopts = opts
                    .clone()
                    .with_sweep_policy(SweepPolicy::WholeIteration)
                    .with_sweep_tile(tile);
                let sweep = solver.solve(&ia, &ib, None, &sopts);
                identical &= sweep.x == fused.x
                    && sweep.residual_norms == fused.residual_norms
                    && sweep.iterations == fused.iterations
                    && sweep.counts == fused.counts;
            }
            assert!(
                identical,
                "{vname}/threads={threads}: sweep policy changed the bits"
            );
            identity_rows.push(IdentityRow {
                variant: vname.into(),
                n: id_n,
                threads,
                tiles: "1,3,l1,whole".into(),
                iterations: fused.iterations,
                bit_identical: identical,
            });
        }
    }
    println!(
        "bit-identity: {} variant/width cells identical across staging tiles {{1, 3, l1, whole}}",
        identity_rows.len()
    );

    write_json(
        "BENCH_sweep",
        &vr_bench::json::envelope(
            "e23_sweep_fusion",
            smoke,
            &[
                (
                    "config",
                    vr_bench::json!({
                        "grid": grid,
                        "n": n,
                        "iters": iters,
                        "reps": reps,
                        "threads": 1,
                    }),
                ),
                ("policy_rows", vr_bench::json!(rows)),
                ("identity_rows", vr_bench::json!(identity_rows)),
                (
                    "headlines",
                    vr_bench::json!({
                        "sweep_bytes_ratio": headline_bytes,
                        "sweep_speedup": headline_speedup,
                    }),
                ),
            ],
        ),
    );
}
