//! E13 — extension: latency tolerance across network topologies.
//!
//! The essence of the paper's restructuring is that a reduction's latency
//! stops mattering once it fits inside k iterations of other work. This
//! experiment makes the threshold visible two ways:
//!
//! 1. **Topology sweep**: ideal fan-in vs hypercube vs 2-D mesh at the
//!    same hop cost. The mesh's Θ(√P) reduction latency devastates
//!    standard CG and barely touches the look-ahead.
//! 2. **Tolerance threshold**: fix the topology, grow the hop cost until
//!    the look-ahead cycle starts to move — the measured knee sits where
//!    total reduction latency ≈ k × (vector-work per iteration), the
//!    paper's slack budget.

use vr_bench::{write_json, Table};
use vr_sim::{builders, Topology};

vr_bench::jsonable! {
    struct Row {
    section: String,
    label: String,
    x: f64,
    standard: f64,
    lookahead: f64,
}
}

fn main() {
    let (n, d, iters) = (1usize << 16, 5usize, 30usize);
    let k = 16;
    let mut rows = Vec::new();

    // --- topology sweep at hop = 1 flop-time ---
    let mut t1 = Table::new(&[
        "topology",
        "reduction latency",
        "standard",
        "lookahead(k=16)",
    ]);
    for topo in [
        Topology::Ideal,
        Topology::Hypercube { hop: 1.0 },
        Topology::Mesh2d { hop: 1.0 },
    ] {
        let m = topo.machine();
        let std_c = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
        let la = builders::lookahead_cg(n, d, iters, k).steady_cycle_time(&m);
        t1.row(&[
            topo.label().to_string(),
            format!("{:.0}", topo.reduction_latency(n)),
            format!("{std_c:.1}"),
            format!("{la:.1}"),
        ]);
        rows.push(Row {
            section: "topology".into(),
            label: topo.label().into(),
            x: topo.reduction_latency(n),
            standard: std_c,
            lookahead: la,
        });
    }
    println!("E13a — topology sweep (N = 2^16, hop = 1 flop-time)");
    println!("{}", t1.render());

    // --- tolerance threshold: mesh hop cost sweep ---
    let mut t2 = Table::new(&[
        "mesh hop",
        "total latency",
        "standard",
        "lookahead(k=16)",
        "la slowdown vs ideal",
    ]);
    let ideal =
        builders::lookahead_cg(n, d, iters, k).steady_cycle_time(&Topology::Ideal.machine());
    for hop in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let topo = Topology::Mesh2d { hop };
        let m = topo.machine();
        let std_c = builders::standard_cg(n, d, iters).steady_cycle_time(&m);
        let la = builders::lookahead_cg(n, d, iters, k).steady_cycle_time(&m);
        t2.row(&[
            format!("{hop:.2}"),
            format!("{:.0}", topo.reduction_latency(n)),
            format!("{std_c:.1}"),
            format!("{la:.1}"),
            format!("{:.2}x", la / ideal),
        ]);
        rows.push(Row {
            section: "mesh-sweep".into(),
            label: format!("hop={hop}"),
            x: hop,
            standard: std_c,
            lookahead: la,
        });
    }
    println!("E13b — mesh hop-cost sweep: where the k-iteration slack runs out");
    println!("{}", t2.render());
    println!("reading: the look-ahead absorbs reduction latency until it exceeds");
    println!("~k iterations of vector work; past the knee it degrades like 1/k of");
    println!("the standard algorithm's slope.");

    // Shape checks.
    let topo_rows: Vec<&Row> = rows.iter().filter(|r| r.section == "topology").collect();
    let mesh = topo_rows.iter().find(|r| r.label == "mesh2d").unwrap();
    let ideal_row = topo_rows.iter().find(|r| r.label == "ideal").unwrap();
    // mesh multiplies standard CG's cycle by > 10×...
    assert!(mesh.standard > 10.0 * ideal_row.standard);
    // ...but the look-ahead by far less
    let la_factor = mesh.lookahead / ideal_row.lookahead;
    let std_factor = mesh.standard / ideal_row.standard;
    assert!(
        la_factor < std_factor / 2.0,
        "latency tolerance missing: la {la_factor} vs std {std_factor}"
    );
    // slope check on the sweep: standard grows ~ 2·latency, lookahead ≪
    let sweep: Vec<&Row> = rows.iter().filter(|r| r.section == "mesh-sweep").collect();
    let d_std = sweep.last().unwrap().standard - sweep[0].standard;
    let d_la = sweep.last().unwrap().lookahead - sweep[0].lookahead;
    assert!(
        d_la < d_std / 4.0,
        "lookahead latency slope {d_la} vs standard {d_std}"
    );

    write_json("e13_latency_tolerance", &vr_bench::json!({ "rows": rows }));
}
