//! E15 — extension: fault injection and breakdown recovery.
//!
//! The 1983 paper trades synchronization for deeper scalar recurrences;
//! this experiment measures what that costs in *resilience* and what the
//! recovery subsystem buys back. Three sweeps:
//!
//! 1. **Detectable faults** (NaN in the reduction tree): fault rate ×
//!    variant × recovery policy. Without recovery a corrupted reduction is
//!    a breakdown; with the default policy (guarded retries + residual
//!    replacement + k-backoff restart ladder) the solves converge at the
//!    fault-free accuracy.
//! 2. **Silent corruption** (relative perturbation of partial sums):
//!    invisible to finiteness checks — only the periodic true-residual
//!    comparison catches the drift and replaces the residual.
//! 3. **Scheduler-level faults** (stragglers/dropped messages in the
//!    vr-sim machine): the look-ahead's k iterations of slack absorb most
//!    of each straggling reduction; standard CG pays every one in full.
//!
//! Headline (asserted): at a 10⁻³ per-value fault rate, look-ahead CG with
//! k ≥ 2 under `RecoveryPolicy::default()` reaches within 10× of the
//! fault-free final relative residual, while the same solves without
//! recovery fail.

use std::sync::Arc;
use vr_bench::{write_json, Table};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions, Termination};
use vr_linalg::gen;
use vr_linalg::kernels::norm2;

vr_bench::jsonable! {
    struct Row {
    kind: String,
    variant: String,
    k: usize,
    rate: f64,
    policy: String,
    converged: bool,
    termination: String,
    iterations: usize,
    faults_injected: u64,
    faults_detected: u64,
    replacements: usize,
    restarts: usize,
    final_k: usize,
    rel_true_residual: f64,
}
}

vr_bench::jsonable! {
    struct SimRow {
    variant: String,
    straggler_rate: f64,
    stragglers: usize,
    dropped: usize,
    makespan_clean: f64,
    makespan_faulty: f64,
    cost_per_straggler: f64,
}
}

fn tlabel(t: Termination) -> &'static str {
    match t {
        Termination::Converged => "converged",
        Termination::RecoveredConverged => "recovered",
        Termination::MaxIterations => "max-iters",
        Termination::Breakdown => "breakdown",
        Termination::Stagnated => "stagnated",
        Termination::Diverged => "diverged",
        Termination::Unsupported => "unsupported",
        Termination::Cancelled => "cancelled",
    }
}

struct Cell {
    variant: &'static str,
    k: usize,
    solver: Box<dyn CgVariant>,
}

fn variants() -> Vec<Cell> {
    vec![
        Cell {
            variant: "standard",
            k: 0,
            solver: Box::new(StandardCg::new()),
        },
        Cell {
            variant: "lookahead",
            k: 2,
            solver: Box::new(LookaheadCg::new(2)),
        },
        Cell {
            variant: "lookahead",
            k: 4,
            solver: Box::new(LookaheadCg::new(4)),
        },
        Cell {
            variant: "lookahead",
            k: 8,
            solver: Box::new(LookaheadCg::new(8)),
        },
    ]
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    kind: FaultKind,
    cell: &Cell,
    rate: f64,
    recover: bool,
    seed: u64,
    a: &vr_linalg::CsrMatrix,
    b: &[f64],
) -> Row {
    let mut opts = SolveOptions::default().with_tol(1e-8).with_max_iters(2000);
    let inj = Arc::new(SeededInjector::new(seed, rate, kind));
    if rate > 0.0 {
        opts = opts.with_injector(inj.clone());
    }
    let res = if recover {
        opts = opts.with_recovery(RecoveryPolicy::default());
        vr_cg::resilience::solve_with_recovery(cell.solver.as_ref(), a, b, None, &opts)
    } else {
        cell.solver.solve(a, b, None, &opts)
    };
    Row {
        kind: kind.label().into(),
        variant: cell.variant.into(),
        k: cell.k,
        rate,
        policy: if recover { "default" } else { "none" }.into(),
        converged: res.converged,
        termination: tlabel(res.termination).into(),
        iterations: res.iterations,
        faults_injected: vr_cg::resilience::fault::FaultInjector::injected(inj.as_ref()),
        faults_detected: res.recovery.faults_detected,
        replacements: res.recovery.replacements,
        restarts: res.recovery.restarts,
        final_k: res.recovery.final_k,
        rel_true_residual: res.true_residual(a, b) / norm2(b),
    }
}

fn table_row(t: &mut Table, r: &Row) {
    t.row(&[
        format!(
            "{}{}",
            r.variant,
            if r.k > 0 {
                format!("(k={})", r.k)
            } else {
                String::new()
            }
        ),
        format!("{:.0e}", r.rate),
        r.policy.clone(),
        r.termination.clone(),
        r.iterations.to_string(),
        r.faults_injected.to_string(),
        r.faults_detected.to_string(),
        r.replacements.to_string(),
        r.restarts.to_string(),
        format!("{:.2e}", r.rel_true_residual),
    ]);
}

fn main() {
    let a = gen::poisson2d(20); // n = 400
    let b = gen::poisson2d_rhs(20);
    let mut rows: Vec<Row> = Vec::new();

    // --- 1: detectable (NaN) faults, rate × variant × policy ---
    let cols = [
        "variant",
        "rate",
        "policy",
        "termination",
        "iters",
        "injected",
        "detected",
        "replaced",
        "restarts",
        "rel true resid",
    ];
    let mut t1 = Table::new(&cols);
    let mut fault_free = std::collections::HashMap::new();
    for (vi, cell) in variants().iter().enumerate() {
        let base = run_cell(FaultKind::Nan, cell, 0.0, false, 0xE15, &a, &b);
        fault_free.insert((cell.variant, cell.k), base.rel_true_residual);
        table_row(&mut t1, &base);
        rows.push(base);
        for (ri, &rate) in [1e-4f64, 1e-3, 1e-2].iter().enumerate() {
            for recover in [false, true] {
                let seed = 0xE15 + (vi * 10 + ri) as u64;
                let r = run_cell(FaultKind::Nan, cell, rate, recover, seed, &a, &b);
                table_row(&mut t1, &r);
                rows.push(r);
            }
        }
    }
    println!("E15a — NaN faults in the reduction tree (Poisson 20×20, tol 1e-8)");
    println!("{}", t1.render());

    // --- headline check (the acceptance criterion of the subsystem) ---
    for r in &rows {
        if r.kind == "nan" && (r.rate - 1e-3).abs() < 1e-12 && r.k >= 2 {
            let base = fault_free[&("lookahead", r.k)];
            if r.policy == "default" {
                assert!(
                    r.converged && r.rel_true_residual <= 10.0 * base.max(1e-300),
                    "lookahead k={} with recovery at rate 1e-3: rel {} vs fault-free {base}",
                    r.k,
                    r.rel_true_residual
                );
            } else {
                assert!(
                    !r.converged,
                    "lookahead k={} without recovery unexpectedly survived rate 1e-3",
                    r.k
                );
            }
        }
    }
    println!("headline: at rate 1e-3 every lookahead k ∈ {{2,4,8}} + default policy");
    println!("converged within 10× of its fault-free residual; all no-recovery runs failed\n");

    // --- 2: silent corruption (Perturb) — only residual replacement helps ---
    let mut t2 = Table::new(&cols);
    for (vi, cell) in variants().iter().enumerate() {
        for recover in [false, true] {
            let r = run_cell(
                FaultKind::Perturb(0.5),
                cell,
                1e-3,
                recover,
                0x515 + vi as u64,
                &a,
                &b,
            );
            table_row(&mut t2, &r);
            rows.push(r);
        }
    }
    println!("E15b — silent corruption: partial sums scaled by 1 ± 0.5 at rate 1e-3");
    println!("{}", t2.render());

    // --- 3: scheduler-level stragglers (vr-sim machine) ---
    use vr_sim::{builders, FaultModel, ListScheduler, MachineModel};
    let m = MachineModel::pram();
    let (n, d, iters, p) = (1usize << 12, 5usize, 64usize, 1usize << 19);
    let mut sim_rows = Vec::new();
    let mut t3 = Table::new(&[
        "variant",
        "rate",
        "stragglers",
        "dropped",
        "clean",
        "faulty",
        "cost/straggler",
    ]);
    for (name, dag) in [
        ("standard", builders::standard_cg(n, d, iters)),
        ("lookahead(k=8)", builders::lookahead_cg(n, d, iters, 8)),
    ] {
        for rate in [0.02f64, 0.05] {
            let clean = ListScheduler::new(p).run(&dag.graph, &m).makespan;
            let fm = FaultModel::new(0xE15)
                .with_stragglers(rate, 16.0)
                .with_drops(rate / 4.0);
            let f = ListScheduler::new(p).with_faults(fm).run(&dag.graph, &m);
            let hits = f.stragglers + f.dropped;
            let cost = if hits > 0 {
                (f.makespan - clean) / hits as f64
            } else {
                0.0
            };
            t3.row(&[
                name.into(),
                format!("{rate}"),
                f.stragglers.to_string(),
                f.dropped.to_string(),
                format!("{clean:.0}"),
                format!("{:.0}", f.makespan),
                format!("{cost:.1}"),
            ]);
            sim_rows.push(SimRow {
                variant: name.into(),
                straggler_rate: rate,
                stragglers: f.stragglers,
                dropped: f.dropped,
                makespan_clean: clean,
                makespan_faulty: f.makespan,
                cost_per_straggler: cost,
            });
        }
    }
    println!("E15c — straggling/dropped reductions on the simulated machine (P = 2^19)");
    println!("{}", t3.render());
    println!("standard CG pays each straggling reduction in full on its critical path;");
    println!("the look-ahead hides most of the delay inside its k iterations of slack");

    write_json(
        "e15_fault_recovery",
        &vr_bench::json::envelope(
            "e15_fault_recovery",
            false, // e15 has no --smoke mode
            &[
                ("solver_rows", vr_bench::json!(rows)),
                ("scheduler_rows", vr_bench::json!(sim_rows)),
            ],
        ),
    );
}
