//! E11 — extension: s-step CG and the basis that makes deep look-ahead
//! practical.
//!
//! Van Rosendale's moment families span a *power basis*, whose conditioning
//! grows like κ^s — the reason E9 shows degradation past k ≈ 3. The s-step
//! literature's fix is running the same block algorithm on Newton or
//! Chebyshev bases of the same Krylov space. This experiment sweeps the
//! block size s for each basis on two problems and reports convergence,
//! restarts, and iteration counts — the crossover where monomial dies and
//! the stable bases keep going.

use vr_bench::{write_json, Table};
use vr_cg::sstep::SStepCg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::gen;
use vr_linalg::kernels::norm2;

vr_bench::jsonable! {
    struct Row {
    problem: String,
    solver: String,
    s: usize,
    converged: bool,
    iterations: usize,
    restarts: usize,
    rel_true_residual: f64,
}
}

fn main() {
    let problems: Vec<(&str, vr_linalg::CsrMatrix, Vec<f64>)> = vec![
        ("poisson2d-16", gen::poisson2d(16), gen::poisson2d_rhs(16)),
        (
            "aniso-16(0.05)",
            gen::anisotropic2d(16, 0.05),
            gen::rand_vector(256, 17),
        ),
    ];
    let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(4000);

    let mut table = Table::new(&[
        "problem",
        "solver",
        "s",
        "converged",
        "iters",
        "restarts",
        "rel true resid",
    ]);
    let mut rows = Vec::new();

    for (pname, a, b) in &problems {
        let bn = norm2(b);
        let std = StandardCg::new().solve(a, b, None, &opts);
        table.row(&[
            (*pname).to_string(),
            "standard-cg".into(),
            "1".into(),
            std.converged.to_string(),
            std.iterations.to_string(),
            "0".into(),
            format!("{:.2e}", std.true_residual(a, b) / bn),
        ]);
        for s in [2usize, 4, 8, 12, 16] {
            for solver in [
                SStepCg::monomial(s),
                SStepCg::newton(s),
                SStepCg::chebyshev(s),
            ] {
                let res = solver.solve(a, b, None, &opts);
                let rel = res.true_residual(a, b) / bn;
                table.row(&[
                    (*pname).to_string(),
                    solver.name(),
                    s.to_string(),
                    res.converged.to_string(),
                    res.iterations.to_string(),
                    res.counts.restarts.to_string(),
                    format!("{rel:.2e}"),
                ]);
                rows.push(Row {
                    problem: (*pname).to_string(),
                    solver: solver.name(),
                    s,
                    converged: res.converged,
                    iterations: res.iterations,
                    restarts: res.counts.restarts,
                    rel_true_residual: rel,
                });
            }
        }
    }

    println!("E11 — s-step basis ablation (the fix for E9's power-basis decay)");
    println!("{}", table.render());

    // Shape: at the largest s, Chebyshev converges cleanly on poisson2d.
    let cheb16 = rows
        .iter()
        .find(|r| r.problem == "poisson2d-16" && r.solver.contains("chebyshev") && r.s == 16)
        .expect("row");
    assert!(cheb16.converged, "chebyshev s=16 should converge");
    // and monomial at s=16 is visibly worse: restarts, failure, or ≥ 1.5×
    // the iterations.
    let mono16 = rows
        .iter()
        .find(|r| r.problem == "poisson2d-16" && r.solver.contains("monomial") && r.s == 16)
        .expect("row");
    let degraded = !mono16.converged
        || mono16.restarts > 0
        || mono16.iterations as f64 >= 1.5 * cheb16.iterations as f64;
    assert!(degraded, "monomial s=16 unexpectedly clean");
    write_json("e11_sstep_basis", &vr_bench::json!({ "rows": rows }));
}
