//! E6 — Figure 1: "Principal Data Movement in New CG Algorithm".
//!
//! The paper's only figure sketches vector iterates flowing across
//! iterations n−k..n with the inner-product calculations stretched
//! underneath. This binary renders the same picture from an actual
//! computed schedule of the look-ahead task graph: an ASCII Gantt over a
//! window of steady-state iterations, plus the per-iteration summary, and
//! quantifies the overlap (how long dot fan-ins stay in flight versus the
//! iteration period).

use vr_bench::write_json;
use vr_sim::render::{gantt, iteration_summary, GanttOptions};
use vr_sim::{builders, MachineModel, OpKind};

vr_bench::jsonable! {
    struct Overlap {
    k: usize,
    iteration_period: f64,
    dot_latency: f64,
    iterations_in_flight: f64,
}
}

fn main() {
    let (n, d, iters, k) = (1usize << 20, 5usize, 24usize, 6usize);
    let m = MachineModel::pram();
    let dag = builders::lookahead_cg(n, d, iters, k);

    println!("E6 — Figure 1 reproduction: look-ahead CG pipeline (N = 2^20, d = 5, k = {k})");
    println!("Vector ops of iterations 10..12 and the dot fan-ins they launch:");
    println!();
    let opts = GanttOptions {
        width: 64,
        iter_range: Some((10, 12)),
        skip_instant: true,
    };
    print!("{}", gantt(&dag.graph, &m, &opts));

    println!("\nPer-iteration summary (steady state):");
    let summary = iteration_summary(&dag.graph, &m);
    for line in summary.lines().take(18) {
        println!("{line}");
    }

    // Quantify the pipeline: a dot launched at iteration i completes after
    // `dot_latency`; the iteration period is `cycle`; the ratio is how many
    // iterations each fan-in stays in flight (the paper's k-slack).
    let cycle = dag.steady_cycle_time(&m);
    let dot_latency = m.depth(&OpKind::Dot { n });
    let in_flight = dot_latency / cycle;
    println!("\niteration period  : {cycle:.2} time units");
    println!("dot fan-in latency: {dot_latency:.2} time units");
    println!("⇒ each inner product is in flight for {in_flight:.2} iterations (k = {k})");
    assert!(
        in_flight > 1.5,
        "no pipeline: fan-ins complete within one iteration"
    );
    assert!(
        in_flight < k as f64 + 1.0,
        "fan-ins outlive the look-ahead window — results would arrive late"
    );

    write_json(
        "e6_figure1_schedule",
        &Overlap {
            k,
            iteration_period: cycle,
            dot_latency,
            iterations_in_flight: in_flight,
        },
    );
}
