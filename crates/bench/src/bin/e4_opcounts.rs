//! E4 — Claim C4: the look-ahead algorithm needs one matrix-vector product
//! per iteration and "only two" directly computed inner products.
//!
//! Runs every solver on the same Poisson problems and reports *measured*
//! per-iteration operation counts. Our moment-window realization needs
//! THREE direct inner products (we do not assume CG orthogonality in the
//! window recurrences) — an honest reproduction delta reported here.

use vr_bench::{write_json, Table};
use vr_cg::baselines::{
    ChronopoulosGearCg, ConjugateResidual, OverlapCr, PipelinedCg, ThreeTermCg,
};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::gen;

vr_bench::jsonable! {
    struct Row {
    solver: String,
    problem: String,
    iterations: usize,
    matvecs_per_iter: f64,
    dots_per_iter: f64,
    vector_ops_per_iter: f64,
    restarts: usize,
}
}

fn main() {
    let problems: Vec<(&str, vr_linalg::CsrMatrix, Vec<f64>)> = vec![
        ("poisson2d-24", gen::poisson2d(24), gen::poisson2d_rhs(24)),
        ("poisson3d-8", gen::poisson3d(8), gen::rand_vector(512, 7)),
    ];
    // (solver, look-ahead k; 0 = not a look-ahead method)
    let solvers: Vec<(Box<dyn CgVariant>, usize)> = vec![
        (Box::new(StandardCg::new()), 0),
        (Box::new(ThreeTermCg::new()), 0),
        (Box::new(ChronopoulosGearCg::new()), 0),
        (Box::new(PipelinedCg::new()), 0),
        (Box::new(OverlapK1Cg::new()), 0),
        (Box::new(ConjugateResidual::new()), 0),
        (Box::new(OverlapCr::new()), 0),
        (Box::new(LookaheadCg::new(1)), 1),
        (Box::new(LookaheadCg::new(2)), 2),
        (Box::new(LookaheadCg::new(4)), 4),
        (Box::new(LookaheadCg::new(8)), 8),
    ];
    let opts = SolveOptions::default().with_tol(1e-6).with_max_iters(2000);

    let mut table = Table::new(&[
        "solver",
        "problem",
        "iters",
        "matvec/it",
        "steady mv/it",
        "dots/it",
        "steady dots/it",
        "vecops/it",
        "restarts",
    ]);
    let mut rows = Vec::new();
    for (pname, a, b) in &problems {
        for (s, k) in &solvers {
            let res = s.solve(a, b, None, &opts);
            let per = res.counts.per_iteration(res.iterations);
            // Steady-state rates exclude per-pass start-up + validation
            // overhead (each pass of a look-ahead solver spends k+2 matvecs
            // and 3(2k+2)+1 dots outside the iteration loop).
            let passes = res.counts.restarts + 1;
            let (steady_mv, steady_dots) = if *k > 0 {
                let it = (res.iterations.max(passes) - passes).max(1) as f64;
                (
                    (res.counts.matvecs.saturating_sub(passes * (k + 2))) as f64 / it,
                    (res.counts
                        .dots
                        .saturating_sub(passes * (3 * (2 * k + 2) + 1))) as f64
                        / it,
                )
            } else {
                (per.matvecs, per.dots)
            };
            table.row(&[
                s.name(),
                (*pname).to_string(),
                res.iterations.to_string(),
                format!("{:.2}", per.matvecs),
                format!("{steady_mv:.2}"),
                format!("{:.2}", per.dots),
                format!("{steady_dots:.2}"),
                format!("{:.2}", per.vector_ops),
                res.counts.restarts.to_string(),
            ]);
            rows.push(Row {
                solver: s.name(),
                problem: (*pname).to_string(),
                iterations: res.iterations,
                matvecs_per_iter: steady_mv,
                dots_per_iter: steady_dots,
                vector_ops_per_iter: per.vector_ops,
                restarts: res.counts.restarts,
            });
        }
    }

    println!("E4 — measured operation counts per iteration (claim C4)");
    println!("{}", table.render());
    println!("paper C4: look-ahead = 1 matvec + 2 direct dots per iteration.");
    println!("measured: 1 matvec + 3 direct dots (window replenishment without");
    println!("orthogonality assumptions) + startup ~3(2k+2) dots — see DESIGN.md.");

    // Verify the matvec claim holds for the look-ahead family in steady
    // state (start-up and restart overhead excluded).
    for r in rows.iter().filter(|r| r.solver.starts_with("lookahead")) {
        assert!(
            r.matvecs_per_iter < 1.1,
            "{}: steady matvecs/iter {} violates claim C4",
            r.solver,
            r.matvecs_per_iter
        );
        assert!(
            r.dots_per_iter < 3.5,
            "{}: steady dots/iter {} far above the 2-3 claimed",
            r.solver,
            r.dots_per_iter
        );
    }
    write_json("e4_opcounts", &vr_bench::json!({ "rows": rows }));
}
