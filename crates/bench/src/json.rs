//! JSON serialization for experiment results.
//!
//! The value tree, parser, and `ToJson` trait live in [`vr_obs::json`]
//! (the leaf crate) so the solve service can share one JSON
//! implementation with the harness without a dependency cycle; this
//! module re-exports them and keeps the harness-specific part — the
//! shared experiment-result *envelope*, which needs `vr_par::team::GRAIN`
//! and so cannot live in the leaf. Experiment binaries keep using
//! `vr_bench::json::{Json, ToJson}` and the `vr_bench::json!` /
//! `vr_bench::jsonable!` macros unchanged.

pub use vr_obs::json::{parse, report_json, Json, ParseError, ToJson};

/// Version of the shared experiment-result envelope. Bump when the
/// envelope keys (not the per-experiment row schemas) change shape.
pub const SCHEMA_VERSION: i64 = 1;

/// Wrap experiment row sections in the common envelope shared by the
/// perf-oriented experiments (e15–e24) and the solve-service wire format.
///
/// Every emitted file starts with the same five keys — `schema_version`,
/// `experiment`, `smoke`, `host_cpus`, `grain` — so downstream tooling can
/// interpret any result (e.g. discount headlines measured on a starved
/// host) without per-experiment parsers. The payload follows as one or
/// more named row arrays, e.g. `[("rows", rows.to_json())]`.
#[must_use]
pub fn envelope(experiment: &str, smoke: bool, sections: &[(&str, Json)]) -> Json {
    let host_cpus = std::thread::available_parallelism().map_or(1, |v| v.get());
    let mut pairs = vec![
        ("schema_version".to_string(), Json::Int(SCHEMA_VERSION)),
        ("experiment".to_string(), Json::Str(experiment.to_string())),
        ("smoke".to_string(), Json::Bool(smoke)),
        ("host_cpus".to_string(), Json::Int(host_cpus as i64)),
        ("grain".to_string(), Json::Int(vr_par::team::GRAIN as i64)),
    ];
    for (k, v) in sections {
        pairs.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(pairs)
}

/// Build a [`Json`] object literal: `json!({ "rows": rows, "slope": s })`.
///
/// Delegates to [`vr_obs::json!`]; kept under the `vr_bench` name so the
/// experiment binaries' call sites are stable.
#[macro_export]
macro_rules! json {
    ($($tt:tt)*) => { ::vr_obs::json!($($tt)*) };
}

/// Define a struct together with a field-by-field [`ToJson`] impl (the
/// stand-in for `#[derive(Serialize)]` on experiment row records).
///
/// Delegates to [`vr_obs::jsonable!`]; kept under the `vr_bench` name so
/// the experiment binaries' call sites are stable.
#[macro_export]
macro_rules! jsonable {
    ($($tt:tt)*) => { ::vr_obs::jsonable! { $($tt)* } };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_leads_with_shared_keys_then_sections() {
        let rows = crate::json!([crate::json!({ "n": 4 })]);
        let env = envelope("e99_test", true, &[("rows", rows)]);
        let s = env.pretty();
        let order = [
            "schema_version",
            "experiment",
            "smoke",
            "host_cpus",
            "grain",
            "rows",
        ];
        let mut last = 0;
        for key in order {
            let pos = s.find(&format!("\"{key}\"")).unwrap_or_else(|| {
                panic!("envelope missing key {key}: {s}");
            });
            assert!(pos > last || last == 0, "key {key} out of order: {s}");
            last = pos;
        }
        assert!(s.contains("\"experiment\": \"e99_test\""), "{s}");
        assert!(s.contains("\"smoke\": true"), "{s}");
    }

    #[test]
    fn delegating_macros_produce_obs_values() {
        crate::jsonable! {
            struct Row {
                n: usize,
            }
        }
        let v = crate::json!({ "rows": vec![Row { n: 4 }] });
        // round-trips through the shared parser: proof both sides agree
        let back = parse(&v.pretty()).unwrap();
        assert_eq!(back, v);
        assert_eq!(
            back.get("rows").unwrap().as_arr().unwrap()[0]
                .get("n")
                .unwrap()
                .as_i64(),
            Some(4)
        );
    }
}
