//! Minimal JSON serialization for experiment results.
//!
//! The experiment binaries emit machine-readable JSON under
//! `target/experiments/`. The values involved are flat records of numbers
//! and strings, so a tiny value tree + pretty printer covers everything the
//! harness needs without an external serialization framework (the build
//! must work fully offline).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (kept exact, no float round-trip).
    Int(i64),
    /// Floating point number. Non-finite values render as `null`, matching
    /// the common JSON-encoder convention.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render with two-space indentation and a trailing newline-free body.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Version of the shared experiment-result envelope. Bump when the
/// envelope keys (not the per-experiment row schemas) change shape.
pub const SCHEMA_VERSION: i64 = 1;

/// Wrap experiment row sections in the common envelope shared by the
/// perf-oriented experiments (e15–e18).
///
/// Every emitted file starts with the same five keys — `schema_version`,
/// `experiment`, `smoke`, `host_cpus`, `grain` — so downstream tooling can
/// interpret any result (e.g. discount headlines measured on a starved
/// host) without per-experiment parsers. The payload follows as one or
/// more named row arrays, e.g. `[("rows", rows.to_json())]`.
#[must_use]
pub fn envelope(experiment: &str, smoke: bool, sections: &[(&str, Json)]) -> Json {
    let host_cpus = std::thread::available_parallelism().map_or(1, |v| v.get());
    let mut pairs = vec![
        ("schema_version".to_string(), Json::Int(SCHEMA_VERSION)),
        ("experiment".to_string(), Json::Str(experiment.to_string())),
        ("smoke".to_string(), Json::Bool(smoke)),
        ("host_cpus".to_string(), Json::Int(host_cpus as i64)),
        ("grain".to_string(), Json::Int(vr_par::team::GRAIN as i64)),
    ];
    for (k, v) in sections {
        pairs.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(pairs)
}

/// Conversion into a [`Json`] value (the role a `Serialize` derive would
/// play; records implement it via [`crate::jsonable!`]).
pub trait ToJson {
    /// Convert to a JSON value tree.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

/// Build a [`Json`] object literal: `json!({ "rows": rows, "slope": s })`.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::json::Json::Obj(vec![
            $( (($key).to_string(), $crate::json::ToJson::to_json(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::json::Json::Arr(vec![
            $( $crate::json::ToJson::to_json(&$val) ),*
        ])
    };
    ($val:expr) => {
        $crate::json::ToJson::to_json(&$val)
    };
}

/// Define a struct together with a field-by-field [`ToJson`] impl (the
/// stand-in for `#[derive(Serialize)]` on experiment row records).
#[macro_export]
macro_rules! jsonable {
    ( $(#[$meta:meta])* $vis:vis struct $name:ident {
        $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ty:ty ),* $(,)?
    } ) => {
        $(#[$meta])*
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ty ),*
        }
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field)) ),*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
        assert_eq!(Json::Str("a\"b".into()).pretty(), "\"a\\\"b\"");
    }

    #[test]
    fn object_and_array_layout() {
        let v = crate::json!({ "xs": vec![1u32, 2], "name": "t" });
        let s = v.pretty();
        assert!(s.starts_with("{\n"), "{s}");
        assert!(s.contains("\"xs\": [\n"), "{s}");
        assert!(s.contains("\"name\": \"t\""), "{s}");
        assert!(s.ends_with('}'), "{s}");
    }

    #[test]
    fn jsonable_struct_round_trips_fields() {
        crate::jsonable! {
            struct Row {
                n: usize,
                err: f64,
                tag: String,
            }
        }
        let r = Row {
            n: 4,
            err: 0.25,
            tag: "x".into(),
        };
        let s = r.to_json().pretty();
        assert!(s.contains("\"n\": 4"), "{s}");
        assert!(s.contains("\"err\": 0.25"), "{s}");
        assert!(s.contains("\"tag\": \"x\""), "{s}");
    }

    #[test]
    fn float_formatting_round_trips() {
        // {:?} keeps the shortest representation that parses back exactly
        let s = Json::Num(1e-10).pretty();
        assert_eq!(s.parse::<f64>().unwrap(), 1e-10, "{s}");
        assert_eq!(Json::Num(2.0).pretty(), "2.0");
    }

    #[test]
    fn envelope_leads_with_shared_keys_then_sections() {
        let rows = crate::json!([crate::json!({ "n": 4 })]);
        let env = envelope("e99_test", true, &[("rows", rows)]);
        let s = env.pretty();
        let order = [
            "schema_version",
            "experiment",
            "smoke",
            "host_cpus",
            "grain",
            "rows",
        ];
        let mut last = 0;
        for key in order {
            let pos = s.find(&format!("\"{key}\"")).unwrap_or_else(|| {
                panic!("envelope missing key {key}: {s}");
            });
            assert!(pos > last || last == 0, "key {key} out of order: {s}");
            last = pos;
        }
        assert!(s.contains("\"experiment\": \"e99_test\""), "{s}");
        assert!(s.contains("\"smoke\": true"), "{s}");
    }

    #[test]
    fn control_chars_escaped() {
        let s = Json::Str("a\nb\u{1}".into()).pretty();
        assert_eq!(s, "\"a\\nb\\u0001\"");
    }
}
