//! Bridge from `vr_obs` critical-path reports to the experiment JSON
//! envelope.
//!
//! The rendering itself moved to [`vr_obs::json::report_json`] so the
//! solve service can stream phase attribution to clients with the same
//! layout the experiment files use; this module re-exports it under the
//! name the experiment binaries already import.

pub use vr_obs::json::report_json;

#[cfg(test)]
mod tests {
    use super::*;
    use vr_obs::{SpanKind, Tracer};

    #[test]
    fn reexported_report_json_matches_envelope_idiom() {
        let t = Tracer::new(1, 256);
        t.mark(0, SpanKind::IterMark);
        let s = t.now_ns();
        std::hint::black_box((0..500).sum::<u64>());
        t.record_since(0, SpanKind::Matvec, s);
        let rep = vr_obs::critpath::attribute(&t.drain());
        let j = report_json(&rep);
        let env = crate::json::envelope("e99_test", true, &[("trace", j)]);
        // the report embeds cleanly in the envelope and parses back
        let back = crate::json::parse(&env.pretty()).unwrap();
        assert!(back.get("trace").unwrap().get("totals").is_some());
    }
}
