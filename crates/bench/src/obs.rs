//! Bridge from `vr_obs` critical-path reports to the experiment JSON
//! envelope.
//!
//! [`vr_obs::critpath::attribute`] turns a drained trace into a
//! [`Report`]; this module renders that report as the same [`Json`] value
//! tree every other experiment emits, so `BENCH_obs.json` needs no
//! special-case parser: phase totals, per-iteration breakdowns, and
//! per-span-kind histogram summaries are plain named sections.

use crate::json::Json;
use vr_obs::span::ALL_KINDS;
use vr_obs::{PhaseClass, Phases, Report};

fn phases_json(p: &Phases) -> Json {
    crate::json!({
        "reduction_wait_ns": p.reduction_wait_ns,
        "matvec_ns": p.matvec_ns,
        "vector_ns": p.vector_ns,
        "overhead_ns": p.overhead_ns,
        "total_ns": p.total_ns,
        "reduction_wait_share": p.share(PhaseClass::ReductionWait),
        "matvec_share": p.share(PhaseClass::Matvec),
        "vector_share": p.share(PhaseClass::Vector),
        "overhead_share": p.share(PhaseClass::Overhead),
    })
}

/// Render a critical-path [`Report`] as a JSON object.
///
/// Layout: `iterations` (count), `dropped_spans`, `total_bytes` (logical
/// traffic summed over every span that accounted it), `totals` (phase ns
/// and shares over all iterations), `per_iter` (one phases object per
/// iteration window), and `span_kinds` (count / mean / p50 / p99 / max /
/// bytes per recorded span kind, all shards — kinds never recorded are
/// omitted).
#[must_use]
pub fn report_json(report: &Report) -> Json {
    let per_iter: Vec<Json> = report
        .iters
        .iter()
        .map(|it| {
            let mut obj = vec![("iter".to_string(), Json::Int(it.iter as i64))];
            if let Json::Obj(pairs) = phases_json(&it.phases) {
                obj.extend(pairs);
            }
            Json::Obj(obj)
        })
        .collect();

    let kinds: Vec<Json> = ALL_KINDS
        .iter()
        .filter(|k| report.hist(**k).total() > 0)
        .map(|k| {
            let h = report.hist(*k);
            crate::json!({
                "kind": k.name(),
                "count": h.total(),
                "mean_ns": h.mean_ns(),
                "p50_upper_ns": h.quantile_upper_ns(0.5),
                "p99_upper_ns": h.quantile_upper_ns(0.99),
                "max_ns": h.max_ns(),
                "bytes": Json::Int(report.bytes(*k) as i64),
            })
        })
        .collect();

    crate::json!({
        "iterations": report.iters.len(),
        "dropped_spans": report.dropped,
        "total_bytes": Json::Int(report.total_bytes() as i64),
        "totals": phases_json(&report.totals),
        "per_iter": Json::Arr(per_iter),
        "span_kinds": Json::Arr(kinds),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_obs::{SpanKind, Tracer};

    #[test]
    fn report_round_trips_to_json() {
        let t = Tracer::new(1, 256);
        for _ in 0..2 {
            t.mark(0, SpanKind::IterMark);
            let s = t.now_ns();
            std::hint::black_box((0..500).sum::<u64>());
            t.record_since(0, SpanKind::Matvec, s);
            let s = t.now_ns();
            t.record_since(0, SpanKind::DotWait, s);
        }
        let rep = vr_obs::critpath::attribute(&t.drain());
        let j = report_json(&rep).pretty();
        assert!(j.contains("\"iterations\": 2"), "{j}");
        assert!(j.contains("\"dropped_spans\": 0"), "{j}");
        assert!(j.contains("\"reduction_wait_share\""), "{j}");
        assert!(j.contains("\"kind\": \"matvec\""), "{j}");
        // unrecorded kinds are omitted
        assert!(!j.contains("\"kind\": \"recovery\""), "{j}");
        // cheap well-formedness check
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }
}
