//! Minimal wall-clock benchmarking harness (offline stand-in for a full
//! benchmark framework).
//!
//! Each measurement warms up, then runs enough iterations to fill a short
//! measurement window and reports the median per-iteration time. Used by
//! the `benches/` targets; they are plain `harness = false` binaries.
//!
//! Timestamps come from the same monotonic [`vr_obs::Clock`] the span
//! tracer uses, so wall-clock numbers from this harness and phase
//! attributions from `vr_obs::critpath` are measured on one time base.

use std::time::Duration;
use vr_obs::Clock;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Median per-iteration wall-clock time.
    pub median: Duration,
    /// Iterations measured.
    pub iters: u64,
}

impl Measurement {
    /// Nanoseconds per iteration.
    #[must_use]
    pub fn nanos(&self) -> f64 {
        self.median.as_secs_f64() * 1e9
    }
}

/// A group of related measurements, printed as an aligned report.
#[derive(Debug, Default)]
pub struct Bench {
    results: Vec<Measurement>,
    clock: Clock,
    /// Measurement window per benchmark.
    pub window: Duration,
}

impl Bench {
    /// New harness with a default 200 ms measurement window (override with
    /// the `VR_BENCH_WINDOW_MS` environment variable).
    #[must_use]
    pub fn new() -> Self {
        let ms = std::env::var("VR_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Bench {
            results: Vec::new(),
            clock: Clock::new(),
            window: Duration::from_millis(ms),
        }
    }

    /// Time `f`, recording the median of per-batch means.
    pub fn run<R>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> R) {
        let name = name.into();
        let window_ns = u64::try_from(self.window.as_nanos()).unwrap_or(u64::MAX);
        // warm-up: one call, then estimate the batch size
        let t0 = self.clock.now_ns();
        std::hint::black_box(f());
        let once_ns = (self.clock.now_ns() - t0).max(50);
        let per_batch = (window_ns / 10 / once_ns).clamp(1, 1 << 20);

        let mut samples = Vec::new();
        let mut total_iters = 0u64;
        let deadline = self.clock.now_ns() + window_ns;
        while self.clock.now_ns() < deadline || samples.len() < 3 {
            let t = self.clock.now_ns();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            let batch_ns = self.clock.now_ns() - t;
            samples.push(batch_ns as f64 * 1e-9 / per_batch as f64);
            total_iters += per_batch;
            if samples.len() > 10_000 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = Duration::from_secs_f64(samples[samples.len() / 2]);
        let m = Measurement {
            name: name.clone(),
            median,
            iters: total_iters,
        };
        println!(
            "{name:<48} {:>12.2} ns/iter  ({} iters)",
            m.nanos(),
            m.iters
        );
        self.results.push(m);
    }

    /// All recorded measurements.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("VR_BENCH_WINDOW_MS", "20");
        let mut b = Bench::new();
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        b.run("sum-1k", || x.iter().sum::<f64>());
        assert_eq!(b.results().len(), 1);
        assert!(b.results()[0].nanos() > 0.0);
        std::env::remove_var("VR_BENCH_WINDOW_MS");
    }
}
