//! Microbenchmarks of the level-1 kernels and the deterministic parallel
//! reductions — the primitives whose latency structure the whole paper is
//! about.

use std::hint::black_box;
use vr_bench::timing::Bench;
use vr_linalg::kernels;
use vr_par::reduce;

fn bench_dot_orders(b: &mut Bench) {
    for log_n in [12u32, 16, 20] {
        let n = 1usize << log_n;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        b.run(format!("kernels/dot/serial/{log_n}"), || {
            black_box(kernels::dot_serial(&x, &y))
        });
        b.run(format!("kernels/dot/tree/{log_n}"), || {
            black_box(kernels::dot_tree(&x, &y))
        });
        b.run(format!("kernels/dot/kahan/{log_n}"), || {
            black_box(kernels::dot_kahan(&x, &y))
        });
    }
}

fn bench_parallel_reduce(b: &mut Bench) {
    let n = 1usize << 22;
    let x: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    for threads in [1usize, 2, 4, 8] {
        b.run(format!("par/dot/threads/{threads}"), || {
            black_box(reduce::par_dot(&x, &x, threads))
        });
    }
}

fn bench_axpy(b: &mut Bench) {
    let n = 1usize << 20;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut y = vec![0.0; n];
    b.run("kernels/axpy-1M", || {
        kernels::axpy(black_box(1.0000001), &x, &mut y);
    });
}

fn bench_batched_reductions(b: &mut Bench) {
    // the fusion the s-step Gram computation relies on: q dots in one pass
    // vs q separate passes
    let n = 1usize << 18;
    let vs: Vec<Vec<f64>> = (0..6)
        .map(|k| (0..n).map(|i| ((i + 31 * k) % 17) as f64 / 17.0).collect())
        .collect();
    b.run("par/batch/six-separate-dots", || {
        let mut acc = 0.0;
        for v in &vs {
            acc += vr_par::reduce::par_dot(black_box(v), black_box(&vs[0]), 1);
        }
        black_box(acc)
    });
    let pairs: Vec<(&[f64], &[f64])> = vs
        .iter()
        .map(|v| (v.as_slice(), vs[0].as_slice()))
        .collect();
    b.run("par/batch/six-fused-multi-dot", || {
        black_box(vr_par::batch::multi_dot(black_box(&pairs), 1))
    });
}

fn bench_parallel_spmv(b: &mut Bench) {
    let a = vr_linalg::gen::poisson2d(256); // 65536 unknowns
    let x = vr_linalg::gen::rand_vector(a.nrows(), 5);
    let mut y = vec![0.0; a.nrows()];
    b.run("linalg/spmv-65k/serial", || {
        a.spmv_into(black_box(&x), black_box(&mut y));
    });
    for t in [2usize, 4, 8] {
        b.run(format!("linalg/spmv-65k/par/{t}"), || {
            a.par_spmv_into(black_box(&x), black_box(&mut y), t);
        });
    }
}

fn main() {
    let mut b = Bench::new();
    bench_dot_orders(&mut b);
    bench_parallel_reduce(&mut b);
    bench_axpy(&mut b);
    bench_batched_reductions(&mut b);
    bench_parallel_spmv(&mut b);
}
