//! Microbenchmarks of the level-1 kernels and the deterministic parallel
//! reductions — the primitives whose latency structure the whole paper is
//! about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vr_linalg::kernels;
use vr_par::reduce;

fn bench_dot_orders(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/dot");
    for log_n in [12u32, 16, 20] {
        let n = 1usize << log_n;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("serial", log_n), &n, |b, _| {
            b.iter(|| black_box(kernels::dot_serial(&x, &y)))
        });
        g.bench_with_input(BenchmarkId::new("tree", log_n), &n, |b, _| {
            b.iter(|| black_box(kernels::dot_tree(&x, &y)))
        });
        g.bench_with_input(BenchmarkId::new("kahan", log_n), &n, |b, _| {
            b.iter(|| black_box(kernels::dot_kahan(&x, &y)))
        });
    }
    g.finish();
}

fn bench_parallel_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("par/dot");
    let n = 1usize << 22;
    let x: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    g.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(reduce::par_dot(&x, &x, t)))
        });
    }
    g.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/axpy");
    let n = 1usize << 20;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut y = vec![0.0; n];
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("axpy-1M", |b| {
        b.iter(|| kernels::axpy(black_box(1.0000001), &x, &mut y))
    });
    g.finish();
}

fn bench_batched_reductions(c: &mut Criterion) {
    // the fusion the s-step Gram computation relies on: q dots in one pass
    // vs q separate passes
    let n = 1usize << 18;
    let vs: Vec<Vec<f64>> = (0..6)
        .map(|k| (0..n).map(|i| ((i + 31 * k) % 17) as f64 / 17.0).collect())
        .collect();
    let mut g = c.benchmark_group("par/batch");
    g.throughput(Throughput::Elements(6 * n as u64));
    g.bench_function("six-separate-dots", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in &vs {
                acc += vr_par::reduce::par_dot(black_box(v), black_box(&vs[0]), 1);
            }
            black_box(acc)
        })
    });
    g.bench_function("six-fused-multi-dot", |b| {
        let pairs: Vec<(&[f64], &[f64])> =
            vs.iter().map(|v| (v.as_slice(), vs[0].as_slice())).collect();
        b.iter(|| black_box(vr_par::batch::multi_dot(black_box(&pairs), 1)))
    });
    g.finish();
}

fn bench_parallel_spmv(c: &mut Criterion) {
    let a = vr_linalg::gen::poisson2d(256); // 65536 unknowns
    let x = vr_linalg::gen::rand_vector(a.nrows(), 5);
    let mut y = vec![0.0; a.nrows()];
    let mut g = c.benchmark_group("linalg/spmv-65k");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| a.spmv_into(black_box(&x), black_box(&mut y)))
    });
    for t in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("par", t), &t, |b, &t| {
            b.iter(|| a.par_spmv_into(black_box(&x), black_box(&mut y), t))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dot_orders,
    bench_parallel_reduce,
    bench_axpy,
    bench_batched_reductions,
    bench_parallel_spmv
);
criterion_main!(benches);
