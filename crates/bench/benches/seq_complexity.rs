//! E7 — Claim C5 (second half): the sequential complexity of the
//! restructured algorithm is essentially that of standard CG.
//!
//! Measures wall-clock time per solve (fixed 60 iterations, no convergence
//! check variance) for every variant on a Poisson-2D problem. On one core,
//! the look-ahead solver should cost a small constant factor over standard
//! CG (the extra vector families), not an asymptotic blowup.

use std::hint::black_box;
use vr_bench::timing::Bench;
use vr_cg::baselines::{ChronopoulosGearCg, PipelinedCg, ThreeTermCg};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::gen;

fn bench_solvers(bench: &mut Bench) {
    let n = 96;
    let a = gen::poisson2d(n); // 9216 unknowns
    let b = gen::poisson2d_rhs(n);
    let opts = SolveOptions {
        tol: 0.0, // run the full iteration budget — compare equal work
        max_iters: 60,
        record_residuals: false,
        ..SolveOptions::default()
    };

    let solvers: Vec<Box<dyn CgVariant>> = vec![
        Box::new(StandardCg::new()),
        Box::new(ThreeTermCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
        Box::new(OverlapK1Cg::new()),
        Box::new(LookaheadCg::new(1)),
        Box::new(LookaheadCg::new(2)),
        Box::new(LookaheadCg::new(4)),
        Box::new(LookaheadCg::new(8)),
    ];

    for s in &solvers {
        bench.run(
            format!("seq-complexity/poisson2d-96x96-60iters/{}", s.name()),
            || black_box(s.solve(&a, &b, None, &opts)),
        );
    }
}

fn bench_spmv_vs_dots(bench: &mut Bench) {
    // The primitive balance underlying E7: one SpMV ≈ d/1 dot costs.
    let a = gen::poisson2d(128);
    let x = gen::rand_vector(a.nrows(), 3);
    let mut y = vec![0.0; a.nrows()];
    bench.run("seq-complexity/primitives/spmv-16k", || {
        a.spmv_into(black_box(&x), black_box(&mut y));
    });
    bench.run("seq-complexity/primitives/dot-16k", || {
        black_box(vr_linalg::kernels::dot_serial(&x, &x))
    });
}

fn main() {
    let mut b = Bench::new();
    bench_solvers(&mut b);
    bench_spmv_vs_dots(&mut b);
}
