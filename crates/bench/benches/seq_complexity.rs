//! E7 — Claim C5 (second half): the sequential complexity of the
//! restructured algorithm is essentially that of standard CG.
//!
//! Measures wall-clock time per solve (fixed 60 iterations, no convergence
//! check variance) for every variant on a Poisson-2D problem. On one core,
//! the look-ahead solver should cost a small constant factor over standard
//! CG (the extra vector families), not an asymptotic blowup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vr_cg::baselines::{ChronopoulosGearCg, PipelinedCg, ThreeTermCg};
use vr_cg::lookahead::LookaheadCg;
use vr_cg::overlap_k1::OverlapK1Cg;
use vr_cg::standard::StandardCg;
use vr_cg::{CgVariant, SolveOptions};
use vr_linalg::gen;

fn bench_solvers(c: &mut Criterion) {
    let n = 96;
    let a = gen::poisson2d(n); // 9216 unknowns
    let b = gen::poisson2d_rhs(n);
    let opts = SolveOptions {
        tol: 0.0, // run the full iteration budget — compare equal work
        max_iters: 60,
        record_residuals: false,
        ..SolveOptions::default()
    };

    let solvers: Vec<Box<dyn CgVariant>> = vec![
        Box::new(StandardCg::new()),
        Box::new(ThreeTermCg::new()),
        Box::new(ChronopoulosGearCg::new()),
        Box::new(PipelinedCg::new()),
        Box::new(OverlapK1Cg::new()),
        Box::new(LookaheadCg::new(1)),
        Box::new(LookaheadCg::new(2)),
        Box::new(LookaheadCg::new(4)),
        Box::new(LookaheadCg::new(8)),
    ];

    let mut g = c.benchmark_group("seq-complexity/poisson2d-96x96-60iters");
    g.sample_size(20);
    for s in &solvers {
        g.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |bch, s| {
            bch.iter(|| black_box(s.solve(&a, &b, None, &opts)));
        });
    }
    g.finish();
}

fn bench_spmv_vs_dots(c: &mut Criterion) {
    // The primitive balance underlying E7: one SpMV ≈ d/1 dot costs.
    let a = gen::poisson2d(128);
    let x = gen::rand_vector(a.nrows(), 3);
    let mut y = vec![0.0; a.nrows()];
    let mut g = c.benchmark_group("seq-complexity/primitives");
    g.bench_function("spmv-16k", |b| {
        b.iter(|| a.spmv_into(black_box(&x), black_box(&mut y)))
    });
    g.bench_function("dot-16k", |b| {
        b.iter(|| black_box(vr_linalg::kernels::dot_serial(&x, &x)))
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_spmv_vs_dots);
criterion_main!(benches);
