//! Bench over the cost-model simulator (E1/E2/E5 companions): measures the
//! wall-clock cost of *building and evaluating* the task graphs, and prints
//! the simulated steady-state cycle times so the bench log alone shows the
//! reproduction shape.

use std::hint::black_box;
use vr_bench::timing::Bench;
use vr_sim::{builders, MachineModel};

fn bench_graph_construction(b: &mut Bench) {
    let m = MachineModel::pram();
    for log_n in [10u32, 16, 20] {
        let n = 1usize << log_n;
        b.run(format!("simulator/graph-build/standard/{log_n}"), || {
            let dag = builders::standard_cg(black_box(n), 5, 24);
            black_box(dag.steady_cycle_time(&m))
        });
        b.run(
            format!("simulator/graph-build/lookahead-k=logN/{log_n}"),
            || {
                let dag = builders::lookahead_cg(black_box(n), 5, 24, log_n as usize);
                black_box(dag.steady_cycle_time(&m))
            },
        );
    }
}

fn bench_cycle_table(b: &mut Bench) {
    // One fast pseudo-bench that prints the E1/E5 headline numbers into the
    // bench log, so the bench output alone shows the reproduction shape.
    for (name, f) in [
        (
            "standard-2^20",
            Box::new(|| {
                builders::standard_cg(1 << 20, 5, 24).steady_cycle_time(&MachineModel::pram())
            }) as Box<dyn Fn() -> f64>,
        ),
        (
            "overlap-k1-2^20",
            Box::new(|| {
                builders::overlap_k1(1 << 20, 5, 24).steady_cycle_time(&MachineModel::pram())
            }),
        ),
        (
            "pipelined-2^20",
            Box::new(|| {
                builders::pipelined_cg(1 << 20, 5, 24).steady_cycle_time(&MachineModel::pram())
            }),
        ),
        (
            "lookahead-k20-2^20",
            Box::new(|| {
                builders::lookahead_cg(1 << 20, 5, 24, 20).steady_cycle_time(&MachineModel::pram())
            }),
        ),
    ] {
        let cycle = f();
        println!("[simulated cycle time] {name}: {cycle:.2} flop-times/iter");
        b.run(format!("simulator/cycle-times/{name}"), || black_box(f()));
    }
}

fn main() {
    let mut b = Bench::new();
    bench_graph_construction(&mut b);
    bench_cycle_table(&mut b);
}
