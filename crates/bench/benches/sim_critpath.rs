//! Criterion bench over the cost-model simulator (E1/E2/E5 companions):
//! measures the wall-clock cost of *building and evaluating* the task
//! graphs, and records the simulated steady-state cycle times as custom
//! measurements in the report output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vr_sim::{builders, MachineModel};

fn bench_graph_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/graph-build");
    let m = MachineModel::pram();
    for log_n in [10u32, 16, 20] {
        let n = 1usize << log_n;
        g.bench_with_input(BenchmarkId::new("standard", log_n), &n, |b, &n| {
            b.iter(|| {
                let dag = builders::standard_cg(black_box(n), 5, 24);
                black_box(dag.steady_cycle_time(&m))
            });
        });
        g.bench_with_input(BenchmarkId::new("lookahead-k=logN", log_n), &n, |b, &n| {
            b.iter(|| {
                let dag = builders::lookahead_cg(black_box(n), 5, 24, log_n as usize);
                black_box(dag.steady_cycle_time(&m))
            });
        });
    }
    g.finish();
}

fn bench_cycle_table(c: &mut Criterion) {
    // One fast pseudo-bench that prints the E1/E5 headline numbers into the
    // bench log, so `cargo bench` output alone shows the reproduction shape.
    let m = MachineModel::pram();
    let mut g = c.benchmark_group("simulator/cycle-times");
    g.sample_size(10);
    for (name, f) in [
        (
            "standard-2^20",
            Box::new(|| builders::standard_cg(1 << 20, 5, 24).steady_cycle_time(&MachineModel::pram()))
                as Box<dyn Fn() -> f64>,
        ),
        (
            "overlap-k1-2^20",
            Box::new(|| builders::overlap_k1(1 << 20, 5, 24).steady_cycle_time(&MachineModel::pram())),
        ),
        (
            "pipelined-2^20",
            Box::new(|| builders::pipelined_cg(1 << 20, 5, 24).steady_cycle_time(&MachineModel::pram())),
        ),
        (
            "lookahead-k20-2^20",
            Box::new(|| builders::lookahead_cg(1 << 20, 5, 24, 20).steady_cycle_time(&MachineModel::pram())),
        ),
    ] {
        let cycle = f();
        println!("[simulated cycle time] {name}: {cycle:.2} flop-times/iter");
        g.bench_function(name, |b| b.iter(&f));
    }
    g.finish();
    let _ = m;
}

criterion_group!(benches, bench_graph_construction, bench_cycle_table);
criterion_main!(benches);
