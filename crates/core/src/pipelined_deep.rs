//! Depth-l pipelined CG (Cornelis, Cools & Vanroose, arXiv 1801.04728).
//!
//! Ghysels-Vanroose pipelining hides *one* matvec behind each global
//! reduction. The deep pipeline generalizes the overlap to depth `l`: the
//! Gram dots that define iteration `m`'s basis column are launched as soon
//! as the auxiliary vector `z_m` exists and consumed `l` iterations later,
//! so every reduction has `l` matvecs of slack — the 1983 paper's
//! restructuring pushed to depth `l` on the Lanczos recurrence.
//!
//! ## The recurrences
//!
//! The method runs the Lanczos process `A·vⱼ = γⱼ₋₁vⱼ₋₁ + δⱼvⱼ + γⱼvⱼ₊₁`
//! through *auxiliary* vectors `zᵢ = p_min(i,l)(A)·v_{i−min(i,l)}` with
//! `p_i(t) = Π_{k<i}(t − σ_k)` (σ_k Chebyshev shifts on `[0, λ_max]`,
//! estimated by a few startup power iterations):
//!
//! ```text
//! z_{i+1} = (A − σᵢ)zᵢ                                            i < l
//! z_{i+1} = (A·zᵢ − δ_{i−l}·zᵢ − γ_{i−l−1}·z_{i−1}) / γ_{i−l}     i ≥ l
//! ```
//!
//! With `Z = V·B` (`B` banded upper-triangular, bandwidth `2l+1`) and `V`
//! orthonormal, the Gram matrix `G = ZᵀZ = BᵀB`, so column `m` of `B`
//! comes from Gram column `g_{i,m} = (zᵢ, z_m)` by forward substitution.
//! Only the top `l+1` rows (`i = m−l..m`) are *measured* — launched at
//! iteration `m` (when `z_m` is formed) and consumed at iteration
//! `m+l−1` (when column `m` is assembled), `l` iterations of reduction
//! slack. The lower rows `i = m−2l..m−l−1` cost no communication: moving
//! the z-recurrence inside the inner product,
//! `γ_{m−1−l}·g_{i,m} = (A·zᵢ, z_{m−1}) − δ_{m−1−l}·g_{i,m−1}
//! − γ_{m−l−2}·g_{i,m−2}`, and `(A·zᵢ, z_{m−1})` expands through `A·zᵢ`'s
//! own recurrence into already-known Gram entries. The tridiagonal `T` is
//! read off `B`:
//!
//! ```text
//! γⱼ = u·b_{j+1,j+1}/b_{j,j}                 u = γ_{j−l} (j ≥ l), else 1
//! δⱼ = (u·b_{j,j+1} + c·b_{j,j} − γ_{j−1}·b_{j−1,j}) / b_{j,j}
//!                                            c = δ_{j−l} (j ≥ l), else σⱼ
//! ```
//!
//! and the solution advances through the incremental LDLᵀ of `T`
//! (`dⱼ = δⱼ − γⱼ₋₁²/dⱼ₋₁`, directions `qⱼ = vⱼ − (γⱼ₋₁/dⱼ₋₁)·qⱼ₋₁`,
//! coefficients `ζⱼ = uⱼ/dⱼ`), with the Lanczos residual norm
//! `‖r_{j+1}‖ = γⱼ·|ζⱼ|`. Basis vectors are recovered on the fly over the
//! full band, `v_m = (z_m − Σ_{d≤2l} b_{m−d,m}·v_{m−d})/b_{m,m}`, so only
//! `O(l)` vectors are live.
//!
//! ## Depth 1 and recovery
//!
//! A depth-1 pipeline is exactly the Ghysels-Vanroose iteration, so
//! `l = 1` delegates to the shared loop in [`crate::baselines::pipelined`]
//! (bit-for-bit — pinned by `tests/pipelined_differential.rs`); the
//! Lanczos machinery engages at `l ≥ 2`. Because in-flight reductions
//! cannot be snapshotted, checkpointing saves only the iterate: a rollback
//! restores `x` and *refills the pipeline* (recompute `r = b − A·x`,
//! restart the Lanczos process from it) — at most the checkpoint period of
//! progress is lost, plus the `l`-iteration fill. A non-positive Cholesky
//! pivot `b_{m,m}² ≤ 0` with the residual still large is an honest
//! [`Termination::Breakdown`]; when the Krylov space is exhausted (tiny
//! pivot), the final lagged step is applied and convergence is validated
//! against the *true* residual before being claimed — if that residual is
//! still large the solver restarts a fresh Lanczos epoch from the improved
//! iterate, insisting on real progress per restart so a solve pinned at
//! the attainable-accuracy floor still terminates honestly.

use crate::baselines::pipelined::solve_gv;
use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use crate::standard::StandardCg;
use vr_linalg::{kernels, LinearOperator};
use vr_par::PendingScalar;

/// Power-iteration steps for the λ_max estimate behind the Chebyshev
/// shifts (deterministic: always started from the initial residual).
const POWER_ITERS: usize = 8;

/// Relative Cholesky-pivot floor below which the Krylov basis is treated
/// as exhausted (`b_{m,m}²  ≤  EXHAUSTION_EPS² · ‖z_m‖²`).
const EXHAUSTION_EPS: f64 = 1e-8;

/// Depth-l pipelined CG solver.
#[derive(Debug, Clone, Copy)]
pub struct DeepPipelinedCg {
    l: usize,
}

impl DeepPipelinedCg {
    /// Construct a pipeline of depth `l` (1 ≤ l ≤ 8). Depth 1 is the
    /// Ghysels-Vanroose iteration; the deep machinery engages at `l ≥ 2`.
    ///
    /// # Panics
    /// Panics if `l` is 0 or greater than 8.
    #[must_use]
    pub fn new(l: usize) -> Self {
        assert!((1..=8).contains(&l), "pipeline depth must be in 1..=8");
        DeepPipelinedCg { l }
    }
}

impl CgVariant for DeepPipelinedCg {
    fn name(&self) -> String {
        format!("deep-pipelined-cg(l={})", self.l)
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            // The depth-l basis/Gram bookkeeping spans l matvec depths (and
            // the l = 1 delegation must not silently run the GV sweep twin
            // this variant's conformance row declares unsupported).
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            // The depth-l Gram machinery has no f32 twin (and the l = 1
            // special case must not silently diverge from l >= 2 behavior).
            return crate::mixed::reject(a, b, x0, opts);
        }
        if self.l == 1 {
            return solve_gv(a, b, x0, opts);
        }
        solve_deep(a, b, x0, opts, self.l)
    }

    fn backoff(&self) -> Option<Box<dyn CgVariant>> {
        if self.l > 1 {
            Some(Box::new(DeepPipelinedCg::new(self.l - 1)))
        } else {
            Some(Box::new(StandardCg::new()))
        }
    }

    fn depth(&self) -> usize {
        self.l
    }
}

/// The l ≥ 2 deep-pipelined loop (see module docs for the recurrences).
#[allow(clippy::too_many_lines)]
fn solve_deep(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    l: usize,
) -> SolveResult {
    let n = a.dim();
    let mut counts = OpCounts::default();
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let thresh_sq = util::threshold_sq(opts, bnorm);
    let _ = opts.drain_checksum_detections();

    counts.dots += 1;
    let mut rr = opts.dot(&r, &r);
    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(rr.max(0.0).sqrt());
    }
    let mut last_rnorm = rr.max(0.0).sqrt();

    let mut rstats = RecoveryStats::default();
    let mut termination = Termination::MaxIterations;
    let mut updates = 0usize;

    if rr <= thresh_sq {
        termination = Termination::Converged;
    } else {
        // ---- startup: λ_max estimate and Chebyshev shifts -------------
        // Deterministic power iteration from r; norm2/scal run serially on
        // the calling thread, so the estimate (and with it every shift) is
        // width- and dot-mode-invariant.
        let mut pv = r.clone();
        let mut pw = vec![0.0; n];
        let mut lam = 1.0f64;
        let nv = kernels::norm2(&pv);
        kernels::scal(1.0 / nv.max(f64::MIN_POSITIVE), &mut pv);
        for _ in 0..POWER_ITERS {
            opts.matvec(a, &pv, &mut pw, &mut counts);
            let nw = kernels::norm2(&pw);
            counts.dots += 1;
            counts.vector_ops += 1;
            if nw <= 0.0 || !nw.is_finite() {
                break;
            }
            lam = nw;
            kernels::scal(1.0 / nw, &mut pw);
            std::mem::swap(&mut pv, &mut pw);
        }
        let lam_max = (lam * 1.05).max(f64::MIN_POSITIVE);
        let sigma: Vec<f64> = (0..l)
            .map(|k| {
                let t = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * l as f64);
                lam_max / 2.0 * (1.0 - t.cos())
            })
            .collect();

        // ---- preallocated pipeline state ------------------------------
        let band = 2 * l; // B (and G) columns reach 2l rows above the diagonal
        let rz = l + 2; // live z window: z_{k-1} .. z_{k+1} plus the dot tail
        let rv = band + 1; // live v window: v_{m-2l} .. v_m
        let rt = 3 * l + 3; // T-entry history depth (g-recurrence reaches m-3l-1)
        let rb = band + 1; // live B columns: m-2l .. m
        let rp = l + 1; // dot batches in flight: columns m .. m+l
        let mut zs: Vec<Vec<f64>> = (0..rz).map(|_| vec![0.0; n]).collect();
        let mut vs: Vec<Vec<f64>> = (0..rv).map(|_| vec![0.0; n]).collect();
        let mut q = vec![0.0; n];
        let mut scratch = pw; // reused for refills and exhaustion checks
        let mut bcols = vec![vec![0.0f64; band + 1]; rb];
        let mut bnew = vec![0.0f64; band + 1];
        let mut gcols = vec![vec![0.0f64; band + 1]; 3];
        let mut gnew = vec![0.0f64; band + 1];
        let mut pend: Vec<Vec<Option<PendingScalar>>> =
            (0..rp).map(|_| (0..=l).map(|_| None).collect()).collect();
        let mut gam = vec![0.0f64; rt];
        let mut del = vec![0.0f64; rt];

        // Checkpoint ring: in-flight reductions cannot be snapshotted, so
        // the deep pipeline checkpoints only [x] (+ its residual norm²) at
        // update boundaries; rollback restores x and refills the pipeline.
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 1, n, 1));
        if let Some(rg) = ring.as_mut() {
            rg.maybe_save(opts, 0, &[&x], &[rr]);
        }

        let mut kglob = 0usize;

        // Rollback-and-refill: restore the checkpointed iterate, truncate
        // the recorded history to it, and restart the epoch loop (whose
        // top refills the Lanczos pipeline from the restored x). Falls
        // through to `$fallback` when no checkpoint budget remains. The
        // epoch label is a parameter because labels are macro-hygienic.
        macro_rules! rollback_deep {
            ($epochs:lifetime, $fallback:block) => {
                if let Some(rg) = ring.as_mut() {
                    let mut scal = [0.0f64; 1];
                    if let Some(chk) = rg.rollback(opts, &mut [&mut x], &mut scal) {
                        rr = scal[0];
                        last_rnorm = rr.max(0.0).sqrt();
                        rstats.rollbacks += 1;
                        if opts.record_residuals {
                            norms.truncate(chk + 1);
                        }
                        updates = chk;
                        continue $epochs;
                    }
                }
                $fallback
            };
        }

        // squared residual at the last Krylov-exhaustion restart: each
        // further restart must show real progress (10% in rr), else the
        // solve is pinned at its floor and ends honestly
        let mut last_exhaust_rr = f64::INFINITY;

        // Numerical-drift restart: the deep Gram recurrence loses accuracy
        // over long epochs, eventually driving a Cholesky/LDLᵀ pivot
        // negative even though x itself is fine. Measure the TRUE residual
        // of the current iterate; if it converged, say so, if it is still
        // making progress, restart a fresh Lanczos epoch from x
        // (residual-replacement style), and only when pinned give up.
        macro_rules! restart_if_progress {
            ($epochs:lifetime, $fallback:block) => {
                opts.matvec(a, &x, &mut scratch, &mut counts);
                counts.vector_ops += 1;
                counts.dots += 1;
                opts.span(vr_obs::SpanKind::VectorOp, || {
                    for (si, bi) in scratch.iter_mut().zip(b) {
                        *si = bi - *si;
                    }
                });
                let rr_true = opts.dot(&scratch, &scratch);
                last_rnorm = rr_true.max(0.0).sqrt();
                if rr_true <= thresh_sq {
                    termination = Termination::Converged;
                    break $epochs;
                }
                if rr_true.is_finite() && rr_true < 0.9 * last_exhaust_rr {
                    last_exhaust_rr = rr_true;
                    continue $epochs;
                }
                $fallback
            };
        }

        'epochs: loop {
            // ---- (re)fill: fresh Lanczos process from the current x ---
            if kglob > 0 {
                // refill after a rollback: recompute r = b − A·x
                opts.matvec(a, &x, &mut scratch, &mut counts);
                counts.vector_ops += 1;
                opts.span(vr_obs::SpanKind::VectorOp, || {
                    for ((ri, bi), axi) in r.iter_mut().zip(b).zip(&scratch) {
                        *ri = bi - axi;
                    }
                });
                counts.dots += 1;
                rr = opts.dot(&r, &r);
                last_rnorm = rr.max(0.0).sqrt();
                if rr <= thresh_sq {
                    termination = Termination::Converged;
                    break 'epochs;
                }
                if guard::check_pivot(rr).is_err() {
                    termination = Termination::Breakdown;
                    break 'epochs;
                }
            }
            let eta = rr.max(0.0).sqrt();
            counts.vector_ops += 2;
            opts.span(vr_obs::SpanKind::VectorOp, || {
                zs[0].copy_from_slice(&r);
                kernels::scal(1.0 / eta, &mut zs[0]);
            });
            for slot in pend.iter_mut().flatten() {
                *slot = None; // stale in-flight reductions from before a rollback
            }
            pend[0][0] = Some(opts.dot_deferred(&zs[0], &zs[0], &mut counts));

            // per-epoch Lanczos / LDLᵀ state (all basis indices restart)
            let mut kloc = 0usize;
            let mut d_prev = 0.0f64;
            let mut ucoef = eta;

            loop {
                if kglob >= opts.max_iters {
                    break 'epochs;
                }
                kglob += 1;
                opts.iter_mark();
                if opts.service_poll(kglob - 1, last_rnorm * last_rnorm) {
                    termination = Termination::Cancelled;
                    break 'epochs;
                }

                // ---- consume phase: assemble B column m ---------------
                if kloc + 1 >= l {
                    let m = kloc + 1 - l;
                    let lod = m.min(l); // measured Gram rows m-lod..m
                    let lo = m.min(band); // full band height of column m
                    for d in 0..=lod {
                        gnew[d] = pend[m % rp][d]
                            .take()
                            .expect("deep pipeline: dot consumed before launch")
                            .wait();
                    }
                    // Lower Gram rows i = m-2l..m-l-1 cost no reduction:
                    // push the z_m recurrence (and then A·z_i's own
                    // recurrence) inside the inner product, leaving only
                    // Gram entries of columns m-1 and m-2.
                    #[allow(clippy::needless_range_loop)]
                    for d in (lod + 1)..=lo {
                        let i = m - d;
                        let gm1 = &gcols[(m - 1) % 3]; // gm1[e] = g(m-1-e, m-1)
                        let az = if i >= l {
                            let mut v = gam[(i - l) % rt] * gm1[m - 2 - i]
                                + del[(i - l) % rt] * gm1[m - 1 - i];
                            if i > l {
                                v += gam[(i - l - 1) % rt] * gm1[m - i];
                            }
                            v
                        } else {
                            gm1[m - 2 - i] + sigma[i] * gm1[m - 1 - i]
                        };
                        let mut num = az - del[(m - 1 - l) % rt] * gm1[m - 1 - i];
                        if m >= l + 2 {
                            num -= gam[(m - l - 2) % rt] * gcols[(m - 2) % 3][m - 2 - i];
                        }
                        gnew[d] = num / gam[(m - 1 - l) % rt];
                    }
                    gcols[m % 3][..=lo].copy_from_slice(&gnew[..=lo]);
                    // forward substitution for the off-diagonal entries
                    let tstart = m.saturating_sub(band);
                    for i in tstart..m {
                        let mut sum = 0.0;
                        for t in tstart..i {
                            sum += bcols[i % rb][i - t] * bnew[m - t];
                        }
                        bnew[m - i] = (gnew[m - i] - sum) / bcols[i % rb][0];
                    }
                    let mut pivot_sq = gnew[0];
                    for t in tstart..m {
                        pivot_sq -= bnew[m - t] * bnew[m - t];
                    }
                    counts.scalar_ops += lo * (lo + 1) / 2 + 2;
                    let exhausted = pivot_sq.is_finite()
                        && pivot_sq <= (EXHAUSTION_EPS * EXHAUSTION_EPS) * gnew[0].abs();
                    if guard::check_pivot(pivot_sq).is_err() && !(exhausted && m > 0) {
                        rollback_deep!('epochs, {
                            if m > 0 {
                                restart_if_progress!('epochs, {
                                    termination = Termination::Breakdown;
                                    break 'epochs;
                                });
                            }
                            termination = Termination::Breakdown;
                            break 'epochs;
                        });
                    }
                    bnew[0] = if exhausted { 0.0 } else { pivot_sq.sqrt() };

                    if m >= 1 {
                        // ---- T extraction for j = m − 1 ----------------
                        let j = m - 1;
                        let u = if j >= l { gam[(j - l) % rt] } else { 1.0 };
                        let c = if j >= l { del[(j - l) % rt] } else { sigma[j] };
                        let bjj = bcols[j % rb][0];
                        let bj1j = if j >= 1 { bcols[j % rb][1] } else { 0.0 };
                        let gprev = if j >= 1 { gam[(j - 1) % rt] } else { 0.0 };
                        let gamma_j = opts.scalar(u * bnew[0] / bjj);
                        let delta_j = opts.scalar((u * bnew[1] + c * bjj - gprev * bj1j) / bjj);
                        counts.scalar_ops += 2;
                        if guard::check_finite(gamma_j).is_err()
                            || guard::check_finite(delta_j).is_err()
                        {
                            rollback_deep!('epochs, {
                                restart_if_progress!('epochs, {
                                    termination = Termination::Breakdown;
                                    break 'epochs;
                                });
                            });
                        }
                        gam[j % rt] = gamma_j;
                        del[j % rt] = delta_j;

                        // ---- LDLᵀ step j and the lagged x-update -------
                        let d_cur = if j == 0 {
                            counts.vector_ops += 1;
                            opts.span(vr_obs::SpanKind::VectorOp, || {
                                q.copy_from_slice(&vs[0]);
                            });
                            delta_j
                        } else {
                            let lj = gprev / d_prev;
                            ucoef *= -lj;
                            opts.xpay(&vs[j % rv], -lj, &mut q, &mut counts);
                            delta_j - gprev * lj
                        };
                        counts.scalar_ops += 2;
                        if guard::check_pivot(d_cur).is_err() {
                            rollback_deep!('epochs, {
                                restart_if_progress!('epochs, {
                                    termination = Termination::Breakdown;
                                    break 'epochs;
                                });
                            });
                        }
                        d_prev = d_cur;
                        let zeta = opts.scalar(ucoef / d_cur);
                        opts.axpy(zeta, &q, &mut x, &mut counts);
                        updates += 1;
                        let rn = (gamma_j * zeta).abs();
                        last_rnorm = rn;
                        if opts.record_residuals {
                            norms.push(rn);
                        }
                        rr = rn * rn;

                        if exhausted {
                            // Krylov space exhausted: the step above was
                            // the final lagged update. Its γ·ζ residual is
                            // forced to ~0, so validate against the TRUE
                            // residual before claiming convergence.
                            opts.matvec(a, &x, &mut scratch, &mut counts);
                            counts.vector_ops += 1;
                            counts.dots += 1;
                            opts.span(vr_obs::SpanKind::VectorOp, || {
                                for (si, bi) in scratch.iter_mut().zip(b) {
                                    *si = bi - *si;
                                }
                            });
                            let rr_true = opts.dot(&scratch, &scratch);
                            last_rnorm = rr_true.max(0.0).sqrt();
                            if opts.record_residuals {
                                *norms.last_mut().expect("pushed above") = last_rnorm;
                            }
                            if rr_true <= thresh_sq {
                                termination = Termination::Converged;
                                break 'epochs;
                            }
                            // Not yet converged: restart a fresh Lanczos
                            // epoch from the improved x (same path as the
                            // rollback refill). A restart pinned at the
                            // attainable-accuracy floor would exhaust again
                            // at the same residual, so demand real progress
                            // per epoch to keep iterating.
                            if rr_true.is_finite() && rr_true < 0.9 * last_exhaust_rr {
                                last_exhaust_rr = rr_true;
                                continue 'epochs;
                            }
                            termination = Termination::Breakdown;
                            break 'epochs;
                        }
                        if rr <= thresh_sq {
                            termination = Termination::Converged;
                            break 'epochs;
                        }
                        if guard::check_finite(rr).is_err() {
                            rollback_deep!('epochs, {
                                restart_if_progress!('epochs, {
                                    termination = Termination::Breakdown;
                                    break 'epochs;
                                });
                            });
                        }
                        if let Some(rg) = ring.as_mut() {
                            rg.maybe_save(opts, updates, &[&x], &[rr]);
                        }
                    }

                    // ---- store column m and recover v_m ----------------
                    bcols[m % rb][..=lo].copy_from_slice(&bnew[..=lo]);
                    let mut vnew = std::mem::take(&mut vs[m % rv]);
                    counts.vector_ops += 2;
                    opts.span(vr_obs::SpanKind::VectorOp, || {
                        vnew.copy_from_slice(&zs[m % rz]);
                    });
                    for d in 1..=lo {
                        let coef = bnew[d];
                        opts.axpy(-coef, &vs[(m - d) % rv], &mut vnew, &mut counts);
                    }
                    opts.span(vr_obs::SpanKind::VectorOp, || {
                        kernels::scal(1.0 / bnew[0], &mut vnew);
                    });
                    vs[m % rv] = vnew;
                }

                // ---- z-recurrence: form z_{kloc+1} and launch its dots -
                let znext_idx = (kloc + 1) % rz;
                let mut znext = std::mem::take(&mut zs[znext_idx]);
                opts.matvec(a, &zs[kloc % rz], &mut znext, &mut counts);
                if kloc < l {
                    opts.axpy(-sigma[kloc], &zs[kloc % rz], &mut znext, &mut counts);
                } else {
                    let dlag = del[(kloc - l) % rt];
                    let glag = gam[(kloc - l) % rt];
                    opts.axpy(-dlag, &zs[kloc % rz], &mut znext, &mut counts);
                    if kloc > l {
                        let glag2 = gam[(kloc - l - 1) % rt];
                        opts.axpy(-glag2, &zs[(kloc - 1) % rz], &mut znext, &mut counts);
                    }
                    if guard::check_pivot(glag).is_err() {
                        zs[znext_idx] = znext;
                        rollback_deep!('epochs, {
                            restart_if_progress!('epochs, {
                                termination = Termination::Breakdown;
                                break 'epochs;
                            });
                        });
                    }
                    counts.vector_ops += 1;
                    opts.span(vr_obs::SpanKind::VectorOp, || {
                        kernels::scal(1.0 / glag, &mut znext);
                    });
                }
                zs[znext_idx] = znext;

                let mcol = kloc + 1;
                let lo2 = mcol.min(l);
                // l+1 Gram dots sharing z_{mcol}, launched split-phase in
                // shared-left pairs; consumed l iterations from now.
                let mut d = 0usize;
                while d < lo2 {
                    let (p0, p1) = opts.dot2_deferred(
                        &zs[mcol % rz],
                        &zs[(mcol - d) % rz],
                        &zs[(mcol - d - 1) % rz],
                        &mut counts,
                    );
                    pend[mcol % rp][d] = Some(p0);
                    pend[mcol % rp][d + 1] = Some(p1);
                    d += 2;
                }
                if d <= lo2 {
                    pend[mcol % rp][d] =
                        Some(opts.dot_deferred(&zs[mcol % rz], &zs[(mcol - d) % rz], &mut counts));
                }
                kloc += 1;
            }
        }
    }

    if termination == Termination::Converged && rstats.rollbacks > 0 {
        termination = Termination::RecoveredConverged;
    }
    if !opts.record_residuals {
        norms.push(last_rnorm);
    }
    rstats.faults_detected += opts.drain_checksum_detections();
    let mut res = SolveResult::new(x, termination, updates, norms, counts);
    res.recovery = rstats;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::pipelined::PipelinedCg;
    use crate::standard::StandardCg;
    use vr_linalg::gen;
    use vr_linalg::kernels::DotMode;

    #[test]
    fn depth1_is_bitwise_ghysels_vanroose() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let gv = PipelinedCg::new().solve(&a, &b, None, &opts);
        let d1 = DeepPipelinedCg::new(1).solve(&a, &b, None, &opts);
        assert_eq!(gv.iterations, d1.iterations);
        let gb: Vec<u64> = gv.residual_norms.iter().map(|v| v.to_bits()).collect();
        let db: Vec<u64> = d1.residual_norms.iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, db);
    }

    #[test]
    fn deep_l2_converges_and_tracks_standard_cg() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let dp = DeepPipelinedCg::new(2).solve(&a, &b, None, &opts);
        assert!(dp.converged, "{:?}", dp.termination);
        assert!(dp.true_residual(&a, &b) < 1e-6);
        // same Krylov process: early residual trajectories agree loosely
        let m = std.residual_norms.len().min(dp.residual_norms.len());
        for i in 0..m.saturating_sub(4) {
            let (s, o) = (std.residual_norms[i], dp.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-3 * (1.0 + s.abs()),
                "iter {i}: {s} vs {o}"
            );
        }
    }

    #[test]
    fn deep_l3_converges_on_anisotropic() {
        let a = gen::anisotropic2d(10, 0.1);
        let b = gen::rand_vector(100, 5);
        let res =
            DeepPipelinedCg::new(3).solve(&a, &b, None, &SolveOptions::default().with_tol(1e-8));
        assert!(res.converged, "{:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-5);
    }

    #[test]
    fn exhaustion_path_validates_true_residual() {
        // poisson1d needs a full n-step Krylov sweep: the deep pipeline
        // hits basis exhaustion and must convert the final lagged step
        // into a true-residual-validated convergence.
        let a = gen::poisson1d(30);
        let b = gen::rand_vector(30, 7);
        let res =
            DeepPipelinedCg::new(2).solve(&a, &b, None, &SolveOptions::default().with_tol(1e-8));
        assert!(
            res.converged,
            "{:?} after {} updates",
            res.termination, res.iterations
        );
        assert!(res.true_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn dot_modes_converge() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
            let opts = SolveOptions::default().with_tol(1e-8).with_dot_mode(mode);
            let res = DeepPipelinedCg::new(2).solve(&a, &b, None, &opts);
            assert!(res.converged, "{mode:?}: {:?}", res.termination);
        }
    }

    #[test]
    fn honest_on_indefinite() {
        let a = gen::tridiag_toeplitz(10, 0.2, -1.0);
        let b = gen::rand_vector(10, 4);
        let res = DeepPipelinedCg::new(2).solve(&a, &b, None, &SolveOptions::default());
        assert!(
            !res.converged || res.true_residual(&a, &b) < 1e-6,
            "dishonest {:?}",
            res.termination
        );
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(5);
        let res = DeepPipelinedCg::new(2).solve(&a, &[0.0; 5], None, &SolveOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn name_depth_and_backoff_ladder() {
        let d3 = DeepPipelinedCg::new(3);
        assert_eq!(d3.name(), "deep-pipelined-cg(l=3)");
        assert_eq!(d3.depth(), 3);
        let d2 = d3.backoff().unwrap();
        assert_eq!(d2.name(), "deep-pipelined-cg(l=2)");
        let d1 = d2.backoff().unwrap();
        assert_eq!(d1.name(), "deep-pipelined-cg(l=1)");
        assert_eq!(d1.backoff().unwrap().name(), "standard-cg");
    }
}
