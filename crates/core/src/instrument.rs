//! Operation counting shared by all solvers.
//!
//! Claims C4/C5 of the paper are about *operation counts*: one matrix-vector
//! product per iteration, two-ish directly computed inner products, and a
//! sequential complexity "essentially the same" as standard CG. Every solver
//! tallies its work here so the E4/E7 experiments can print the measured
//! counts next to the claims.

/// Cumulative operation counts for one solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Sparse matrix-vector products.
    pub matvecs: usize,
    /// Inner products computed directly from vectors (full `O(N)` work +
    /// fan-in). Inner products obtained through scalar recurrences are NOT
    /// counted here — that is the point of the algorithm.
    pub dots: usize,
    /// Elementwise vector updates (axpy/xpay/waxpby/copy), each `O(N)`.
    pub vector_ops: usize,
    /// Scalar recurrence operations (`O(1)` each).
    pub scalar_ops: usize,
    /// Preconditioner applications.
    pub precond_applies: usize,
    /// Warm restarts taken after window validation failed (look-ahead
    /// solvers only).
    pub restarts: usize,
    /// Single-pass fused kernel invocations (`KernelPolicy::Fused` only).
    ///
    /// The *logical* tallies above always count reference-equivalent work —
    /// a fused matvec+dot still increments `matvecs` and `dots` — so the
    /// E4/E7 op-count claims are policy-independent. This counter records
    /// how many of those logical groups were actually executed as one
    /// memory sweep.
    pub fused_ops: usize,
}

impl OpCounts {
    /// Counts per iteration, averaged over `iters` iterations.
    #[must_use]
    pub fn per_iteration(&self, iters: usize) -> PerIteration {
        let it = iters.max(1) as f64;
        PerIteration {
            matvecs: self.matvecs as f64 / it,
            dots: self.dots as f64 / it,
            vector_ops: self.vector_ops as f64 / it,
            scalar_ops: self.scalar_ops as f64 / it,
            precond_applies: self.precond_applies as f64 / it,
            fused_ops: self.fused_ops as f64 / it,
        }
    }

    /// Estimated sequential flop count for vectors of length `n` with `d`
    /// nonzeros per matrix row.
    #[must_use]
    pub fn sequential_flops(&self, n: usize, d: usize) -> f64 {
        let n = n as f64;
        self.matvecs as f64 * 2.0 * n * d as f64
            + self.dots as f64 * 2.0 * n
            + self.vector_ops as f64 * 2.0 * n
            + self.scalar_ops as f64
            + self.precond_applies as f64 * 2.0 * n
    }
}

/// Per-iteration averages (see [`OpCounts::per_iteration`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerIteration {
    /// Matrix-vector products per iteration.
    pub matvecs: f64,
    /// Direct inner products per iteration.
    pub dots: f64,
    /// Elementwise vector ops per iteration.
    pub vector_ops: f64,
    /// Scalar ops per iteration.
    pub scalar_ops: f64,
    /// Preconditioner applications per iteration.
    pub precond_applies: f64,
    /// Fused single-pass kernel invocations per iteration.
    pub fused_ops: f64,
}

/// Counters from the resilience machinery, surfaced on every
/// [`crate::SolveResult`] (all zero when no recovery policy is active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Detectably corrupted values observed (non-finite reductions or
    /// recurrence scalars caught by the guard).
    pub faults_detected: u64,
    /// Residual replacements: the recursive residual was discarded and
    /// recomputed as `b − A·x`.
    pub replacements: usize,
    /// Warm restarts taken by the recovery ladder.
    pub restarts: usize,
    /// Checkpoint rollbacks taken: corruption was localized by a guard and
    /// the solve resumed from a [`crate::resilience::CheckpointRing`]
    /// snapshot ≤ C iterations back instead of restarting from scratch.
    pub rollbacks: usize,
    /// Look-ahead depth of the variant that produced the final result
    /// (0 = standard CG): where on the `k → k/2 → … → standard` ladder
    /// the solve ended.
    pub final_k: usize,
}

impl std::ops::Add for RecoveryStats {
    type Output = RecoveryStats;
    fn add(self, o: RecoveryStats) -> RecoveryStats {
        RecoveryStats {
            faults_detected: self.faults_detected + o.faults_detected,
            replacements: self.replacements + o.replacements,
            restarts: self.restarts + o.restarts,
            rollbacks: self.rollbacks + o.rollbacks,
            // not additive: keep the later (more backed-off) depth
            final_k: o.final_k,
        }
    }
}

impl std::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(self, o: OpCounts) -> OpCounts {
        OpCounts {
            matvecs: self.matvecs + o.matvecs,
            dots: self.dots + o.dots,
            vector_ops: self.vector_ops + o.vector_ops,
            scalar_ops: self.scalar_ops + o.scalar_ops,
            precond_applies: self.precond_applies + o.precond_applies,
            restarts: self.restarts + o.restarts,
            fused_ops: self.fused_ops + o.fused_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_iteration_averages() {
        let c = OpCounts {
            matvecs: 10,
            dots: 20,
            vector_ops: 30,
            scalar_ops: 40,
            precond_applies: 0,
            restarts: 0,
            fused_ops: 5,
        };
        let p = c.per_iteration(10);
        assert_eq!(p.matvecs, 1.0);
        assert_eq!(p.dots, 2.0);
        assert_eq!(p.vector_ops, 3.0);
        assert_eq!(p.scalar_ops, 4.0);
        // zero iterations guarded
        let p0 = c.per_iteration(0);
        assert_eq!(p0.matvecs, 10.0);
    }

    #[test]
    fn sequential_flops_formula() {
        let c = OpCounts {
            matvecs: 1,
            dots: 2,
            vector_ops: 3,
            scalar_ops: 4,
            precond_applies: 1,
            restarts: 0,
            fused_ops: 0,
        };
        // n=100, d=5: 1*1000 + 2*200 + 3*200 + 4 + 1*200
        assert_eq!(
            c.sequential_flops(100, 5),
            1000.0 + 400.0 + 600.0 + 4.0 + 200.0
        );
    }

    #[test]
    fn add_accumulates() {
        let a = OpCounts {
            matvecs: 1,
            dots: 2,
            vector_ops: 3,
            scalar_ops: 4,
            precond_applies: 5,
            restarts: 1,
            fused_ops: 6,
        };
        let s = a + a;
        assert_eq!(s.matvecs, 2);
        assert_eq!(s.precond_applies, 10);
        assert_eq!(s.restarts, 2);
    }
}
