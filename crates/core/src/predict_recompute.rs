//! Predict-and-recompute CG (Chen & Carson, arXiv 1905.01549).
//!
//! Pipelined CG variants buy reduction overlap by replacing directly
//! computed quantities with recurrences, and the recurrences drift: the
//! attainable accuracy floor of Ghysels-Vanroose pipelined CG is orders of
//! magnitude above standard CG's. The predict-and-recompute idea restores
//! most of that floor while keeping the communication shape:
//!
//! * **predict** — the scalar needed *immediately* (the next β) is
//!   predicted from the quadratic identity
//!   `ν′ = (r−αs, r−αs) = ν − 2αδ + α²γ` using already-known dots, so the
//!   direction update never waits on a reduction;
//! * **recompute** — every inner product is then *recomputed from the
//!   actual vectors* in one batched split-phase reduction, and the
//!   recomputed values (not the predictions) drive the next iteration.
//!   Scalars therefore never compound recurrence error across iterations.
//!
//! Two variants:
//!
//! * [`PredictRecomputeCg`] (PR-CG): `s = A·p` is a true matvec each
//!   iteration — one matvec, one batched 4-dot reduction launched after it
//!   and consumed at the next loop top. Attainable accuracy ≈ standard CG.
//! * [`PipelinedPrCg`]: additionally maintains `w = A·r`, `u = A·s` by
//!   recurrences so the single matvec `c = A·w` overlaps the in-flight
//!   reduction batch (the Ghysels-Vanroose communication shape with the
//!   predict-and-recompute scalar schedule).
//!
//! Per iteration both launch the same four dots, as two shared-left
//! split-phase pairs ([`SolveOptions::dot2_deferred`]):
//! `(r,r), (r,s)` and `(s,s), (s,p)`.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use crate::standard::StandardCg;
use vr_linalg::LinearOperator;

/// PR-CG: predict-and-recompute CG with a true matvec `s = A·p` per
/// iteration (the non-pipelined variant of Chen & Carson 1905.01549).
#[derive(Debug, Clone, Copy, Default)]
pub struct PredictRecomputeCg;

impl PredictRecomputeCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        PredictRecomputeCg
    }
}

/// Pipelined PR-CG: `s = A·p`, `w = A·r`, `u = A·s` maintained by
/// recurrences; the one matvec per iteration (`c = A·w`) overlaps the
/// batched reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelinedPrCg;

impl PipelinedPrCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        PipelinedPrCg
    }
}

impl CgVariant for PredictRecomputeCg {
    fn name(&self) -> String {
        "predict-recompute-cg".into()
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            // The predicted/recomputed scalar pairs straddle the matvec —
            // no single-pass schedule exists.
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        solve_pr(a, b, x0, opts, false)
    }

    fn backoff(&self) -> Option<Box<dyn CgVariant>> {
        Some(Box::new(StandardCg::new()))
    }

    fn depth(&self) -> usize {
        1
    }
}

impl CgVariant for PipelinedPrCg {
    fn name(&self) -> String {
        "pipelined-pr-cg".into()
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            // Same as the plain variant: the predict/recompute scalar pairs
            // straddle the matvec — no single-pass schedule exists.
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        solve_pr(a, b, x0, opts, true)
    }

    fn backoff(&self) -> Option<Box<dyn CgVariant>> {
        Some(Box::new(PredictRecomputeCg::new()))
    }

    fn depth(&self) -> usize {
        1
    }
}

/// The shared predict-and-recompute loop. `pipelined` selects the vector
/// schedule: `false` recomputes `s = A·p` directly (PR-CG), `true`
/// maintains `s`, `w`, `u` by recurrences around the single matvec
/// `c = A·w` (pipelined PR-CG). The scalar schedule — predict `ν′`,
/// recompute all four dots — is identical.
fn solve_pr(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    pipelined: bool,
) -> SolveResult {
    let n = a.dim();
    let mut counts = OpCounts::default();
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let thresh_sq = util::threshold_sq(opts, bnorm);
    let _ = opts.drain_checksum_detections();

    // p = r, s = A·p; the pipelined schedule also needs w = A·r (= s at
    // startup, but kept as its own buffer) and u = A·s.
    let mut p = r.clone();
    let mut s = opts.matvec_alloc(a, &p, &mut counts);
    let mut w = if pipelined { s.clone() } else { Vec::new() };
    let mut u = if pipelined {
        opts.matvec_alloc(a, &s, &mut counts)
    } else {
        Vec::new()
    };
    let mut c = if pipelined { vec![0.0; n] } else { Vec::new() };

    // Startup dots, computed through the same split-phase launch the loop
    // uses (consumed immediately here — there is nothing to overlap yet).
    let (nu_p, delta_p) = opts.dot2_deferred(&r, &r, &s, &mut counts);
    let (gamma_p, mu_p) = opts.dot2_deferred(&s, &s, &p, &mut counts);
    let (mut nu, mut delta) = (nu_p.wait(), delta_p.wait());
    let (mut gamma, mut mu) = (gamma_p.wait(), mu_p.wait());

    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(nu.max(0.0).sqrt());
    }

    // Checkpoint ring (policy-gated). Snapshot = the full loop-top vector
    // state plus the four recomputed dots; the pipelined schedule carries
    // two extra recurrence vectors (u is snapshotted, c is recomputed).
    let mut rstats = RecoveryStats::default();
    let nvecs = if pipelined { 6 } else { 4 };
    let mut ring = opts
        .recovery
        .as_ref()
        .and_then(|policy| CheckpointRing::from_policy(policy, nvecs, n, 4));

    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    if nu <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0usize;
        macro_rules! rollback_or {
            ($fallback:block) => {
                if let Some(rg) = ring.as_mut() {
                    let mut scal = [0.0; 4];
                    let restored = if pipelined {
                        rg.rollback(
                            opts,
                            &mut [&mut x, &mut r, &mut p, &mut s, &mut w, &mut u],
                            &mut scal,
                        )
                    } else {
                        rg.rollback(opts, &mut [&mut x, &mut r, &mut p, &mut s], &mut scal)
                    };
                    if let Some(chk) = restored {
                        nu = scal[0];
                        mu = scal[1];
                        delta = scal[2];
                        gamma = scal[3];
                        rstats.rollbacks += 1;
                        if opts.record_residuals {
                            norms.truncate(chk + 1);
                        }
                        iterations = chk;
                        it = chk;
                        continue;
                    }
                }
                $fallback
            };
        }
        while it < opts.max_iters {
            opts.iter_mark();
            if opts.service_poll(it, nu) {
                termination = Termination::Cancelled;
                iterations = it;
                break;
            }
            if let Some(rg) = ring.as_mut() {
                if pipelined {
                    rg.maybe_save(opts, it, &[&x, &r, &p, &s, &w, &u], &[nu, mu, delta, gamma]);
                } else {
                    rg.maybe_save(opts, it, &[&x, &r, &p, &s], &[nu, mu, delta, gamma]);
                }
            }
            if guard::check_pivot(mu).is_err() || guard::check_pivot(nu).is_err() {
                rollback_or!({
                    termination = Termination::Breakdown;
                    iterations = it;
                    break;
                });
            }
            let alpha = nu / mu;
            // Predict ν′ = (r − αs, r − αs) from the recomputed dots of
            // this loop top — β never waits on a reduction.
            let nu_pred = opts.scalar(nu - 2.0 * alpha * delta + alpha * alpha * gamma);
            let beta = nu_pred / nu;
            counts.scalar_ops += 3;

            opts.axpy(alpha, &p, &mut x, &mut counts);
            opts.axpy(-alpha, &s, &mut r, &mut counts);
            if pipelined {
                // w = A·r maintained by recurrence: w ← w − α·u.
                opts.axpy(-alpha, &u, &mut w, &mut counts);
            }
            opts.xpay(&r, beta, &mut p, &mut counts);
            if pipelined {
                // s = A·p by recurrence, then recompute every dot from the
                // actual vectors; the matvec c = A·w runs with the batch
                // in flight and lands in u ← c + β·u.
                opts.xpay(&w, beta, &mut s, &mut counts);
                let (nu_p, delta_p) = opts.dot2_deferred(&r, &r, &s, &mut counts);
                let (gamma_p, mu_p) = opts.dot2_deferred(&s, &s, &p, &mut counts);
                opts.matvec(a, &w, &mut c, &mut counts);
                opts.xpay(&c, beta, &mut u, &mut counts);
                nu = nu_p.wait();
                delta = delta_p.wait();
                gamma = gamma_p.wait();
                mu = mu_p.wait();
            } else {
                // True matvec s = A·p, then the recompute batch. The four
                // dots launch split-phase and are consumed after the loop
                // tail bookkeeping — on the paper's machine they overlap
                // the next iteration's control flow.
                opts.matvec(a, &p, &mut s, &mut counts);
                let (nu_p, delta_p) = opts.dot2_deferred(&r, &r, &s, &mut counts);
                let (gamma_p, mu_p) = opts.dot2_deferred(&s, &s, &p, &mut counts);
                nu = nu_p.wait();
                delta = delta_p.wait();
                gamma = gamma_p.wait();
                mu = mu_p.wait();
            }

            if opts.record_residuals {
                norms.push(nu.max(0.0).sqrt());
            }
            iterations = it + 1;
            if nu <= thresh_sq {
                termination = Termination::Converged;
                break;
            }
            if guard::check_finite(nu).is_err() {
                rollback_or!({
                    termination = Termination::Breakdown;
                    break;
                });
            }
            it += 1;
        }
    }
    if termination == Termination::Converged && rstats.rollbacks > 0 {
        termination = Termination::RecoveredConverged;
    }

    if !opts.record_residuals {
        norms.push(nu.max(0.0).sqrt());
    }
    rstats.faults_detected += opts.drain_checksum_detections();
    let mut res = SolveResult::new(x, termination, iterations, norms, counts);
    res.recovery = rstats;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;
    use vr_linalg::kernels::DotMode;

    #[test]
    fn pr_cg_converges_and_matches_standard() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let pr = PredictRecomputeCg::new().solve(&a, &b, None, &opts);
        assert!(pr.converged, "{:?}", pr.termination);
        let m = std.residual_norms.len().min(pr.residual_norms.len());
        for i in 0..m.saturating_sub(2) {
            let (s, o) = (std.residual_norms[i], pr.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-5 * (1.0 + s.abs()),
                "iter {i}: {s} vs {o}"
            );
        }
    }

    #[test]
    fn pipelined_pr_cg_converges_and_matches_standard() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let pr = PipelinedPrCg::new().solve(&a, &b, None, &opts);
        assert!(pr.converged, "{:?}", pr.termination);
        let m = std.residual_norms.len().min(pr.residual_norms.len());
        for i in 0..m.saturating_sub(2) {
            let (s, o) = (std.residual_norms[i], pr.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-4 * (1.0 + s.abs()),
                "iter {i}: {s} vs {o}"
            );
        }
    }

    #[test]
    fn operation_shape_per_iteration() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        // PR-CG: 1 matvec + 4 dots per iteration; pipelined PR-CG the same
        // (its startup costs one extra matvec for u = A·s).
        let pr = PredictRecomputeCg::new().solve(&a, &b, None, &SolveOptions::default());
        assert!(pr.converged);
        let per = pr.counts.per_iteration(pr.iterations);
        assert!((per.matvecs - 1.0).abs() < 0.2, "matvecs {}", per.matvecs);
        assert!((per.dots - 4.0).abs() < 0.4, "dots {}", per.dots);
        let pp = PipelinedPrCg::new().solve(&a, &b, None, &SolveOptions::default());
        assert!(pp.converged);
        let per = pp.counts.per_iteration(pp.iterations);
        assert!((per.matvecs - 1.0).abs() < 0.2, "matvecs {}", per.matvecs);
        assert!((per.dots - 4.0).abs() < 0.4, "dots {}", per.dots);
    }

    #[test]
    fn dot_modes_and_threads_converge() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
            let opts = SolveOptions::default().with_tol(1e-9).with_dot_mode(mode);
            for v in [
                Box::new(PredictRecomputeCg::new()) as Box<dyn CgVariant>,
                Box::new(PipelinedPrCg::new()),
            ] {
                let res = v.solve(&a, &b, None, &opts);
                assert!(res.converged, "{} with {mode:?}", v.name());
                assert!(res.true_residual(&a, &b) < 1e-6);
            }
        }
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(5);
        for v in [
            Box::new(PredictRecomputeCg::new()) as Box<dyn CgVariant>,
            Box::new(PipelinedPrCg::new()),
        ] {
            let res = v.solve(&a, &[0.0; 5], None, &SolveOptions::default());
            assert!(res.converged, "{}", v.name());
            assert_eq!(res.iterations, 0, "{}", v.name());
        }
    }

    #[test]
    fn breakdown_on_indefinite() {
        let a = gen::tridiag_toeplitz(10, 0.2, -1.0);
        let b = gen::rand_vector(10, 4);
        for v in [
            Box::new(PredictRecomputeCg::new()) as Box<dyn CgVariant>,
            Box::new(PipelinedPrCg::new()),
        ] {
            let res = v.solve(&a, &b, None, &SolveOptions::default());
            assert!(
                !res.converged || res.true_residual(&a, &b) < 1e-6 * vr_linalg::kernels::norm2(&b),
                "{}: dishonest {:?}",
                v.name(),
                res.termination
            );
        }
    }

    #[test]
    fn backoff_ladder() {
        assert_eq!(
            PipelinedPrCg::new().backoff().unwrap().name(),
            "predict-recompute-cg"
        );
        assert_eq!(
            PredictRecomputeCg::new().backoff().unwrap().name(),
            "standard-cg"
        );
    }
}
