//! Whole-iteration sweep twins: one cache-resident pass per CG iteration.
//!
//! Under [`SweepPolicy::WholeIteration`](crate::solver::SweepPolicy) an
//! eligible variant routes here instead of running its per-kernel loop. Each
//! twin replays the *exact* scalar recurrence, guard sequence, and norm
//! recording of its unfused counterpart, but executes the vector work of an
//! iteration as a small number of barrier-separated team epochs on a
//! [`FusedIterationSweep`] engine: every epoch walks the fixed 256-leaf
//! chunk layout once, staging operator rows into a cache-resident band and
//! folding the iteration's reductions in the same pass. Because each chunk
//! is processed by the identical leaf-kernel call sequence as the per-kernel
//! path (see `vr_linalg::sweep`), the produced bits — `x`, residual norms,
//! iteration counts, termination — are identical to
//! [`SweepPolicy::Fused`](crate::solver::SweepPolicy) at any staging tile,
//! SIMD lane width, and team width.
//!
//! # Eligibility
//!
//! The sweep schedule replays the *fused tree* arithmetic, so it refuses —
//! with [`Termination::Unsupported`], mirroring [`crate::mixed::reject`] —
//! any configuration whose unfused bits it could not reproduce:
//!
//! * `dot_mode != Tree` (serial/Kahan orders fold on the calling thread),
//! * `kernel_policy != Fused` (the reference two-pass kernels pair
//!   reductions differently),
//! * fault injection, recovery policies, or checksum-guarded reductions
//!   (their retry/validation hooks interleave with the kernels),
//! * `precision != F64`,
//! * operators without a native sweep decomposition
//!   ([`LinearOperator::as_sweep`] returning `None`).
//!
//! # Operation accounting
//!
//! Twins tally the *logical* algorithm — the same [`OpCounts`] as the
//! unfused path — even though the standard-CG schedule physically evaluates
//! the operator twice per iteration (the `p·Ap` pass does not store `A·p`;
//! the update pass recomputes it in-band, trading a streamed store for
//! cache-resident flops). The physical traffic is what the per-shard
//! [`IterSweep`](vr_obs::SpanKind::IterSweep) spans record.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::guard;
use crate::solver::{util, KernelPolicy, Precision, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::{dot, DotMode};
use vr_linalg::sweep::FusedIterationSweep;
use vr_linalg::LinearOperator;

/// Whether this (operator, options) pair can run the whole-iteration sweep
/// with bits identical to the per-kernel fused path.
pub(crate) fn eligible(a: &dyn LinearOperator, opts: &SolveOptions) -> bool {
    opts.dot_mode == DotMode::Tree
        && opts.kernel_policy == KernelPolicy::Fused
        && opts.injector.is_none()
        && opts.recovery.is_none()
        && !opts.checksum
        && opts.precision == Precision::F64
        && a.as_sweep().is_some()
}

/// Explicit rejection of a whole-iteration-sweep request: no iterations,
/// the starting point handed back unchanged with its honest initial
/// residual, and [`Termination::Unsupported`]. Used by every ineligible
/// variant and by eligible variants on ineligible configurations (see the
/// module docs for the eligibility rules).
pub(crate) fn reject(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let mut counts = OpCounts::default();
    let (x, r, _bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let rr = dot(opts.dot_mode, &r, &r);
    counts.dots += 1;
    SolveResult::new(
        x,
        Termination::Unsupported,
        0,
        vec![rr.max(0.0).sqrt()],
        counts,
    )
}

/// Standard CG as a three-epoch sweep per iteration.
///
/// Epoch schedule (distinct vector streams per epoch in parentheses;
/// the staging band is cache-resident and unstreamed):
///
/// 1. `pap ← (p, A·p)` without storing `A·p` (read `p`: 8n bytes),
/// 2. `x ← x + λp`, `r ← r − λ·(A·p)` recomputed in-band, carrying
///    `rr = (r, r)` (read `p`, update `x`, `r`: 40n bytes),
/// 3. `p ← r + αp` (read `r`, update `p`: 24n bytes),
///
/// for 72n logical bytes/iteration against the per-kernel fused path's
/// 104n (matvec+dot 24n, update 48n, xpay 24n, `w` store 8n).
pub(crate) fn solve_standard(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    if !eligible(a, opts) {
        return reject(a, b, x0, opts);
    }
    let mut counts = OpCounts::default();
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let team = opts.team();
    let tm = team.as_deref();
    let mut eng = FusedIterationSweep::new(
        a.as_sweep().expect("eligibility implies a sweep operator"),
        tm,
        opts.sweep_tile,
        opts.tracer.clone(),
    );
    let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let thresh_sq = util::threshold_sq(opts, bnorm);

    let mut p = r.clone();
    counts.vector_ops += 1;

    let mut rstats = RecoveryStats::default();
    let mut rr = guard::guarded_dot(opts, &r, &r, &mut rstats);
    counts.dots += 1;
    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(rr.max(0.0).sqrt());
    }

    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    if rr <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0usize;
        while it < opts.max_iters {
            opts.iter_mark();
            if opts.service_poll(it, rr) {
                termination = Termination::Cancelled;
                iterations = it;
                break;
            }
            // Epoch 1: pap = (p, A·p), no w store. Logically one
            // matvec+dot, like the unfused guarded_matvec_dot.
            let pap = eng.epoch_matvec_dot_nostore(tm, &p);
            counts.matvecs += 1;
            counts.dots += 1;
            if let Err(kind) = guard::check_pivot(pap) {
                termination = kind.termination();
                iterations = it;
                break;
            }
            let lambda = opts.scalar(rr / pap);
            counts.scalar_ops += 1;
            // Epoch 2: x/r updates with A·p recomputed in-band, carrying
            // (r, r) — bit-identical to guarded_update_xr on a stored w.
            let rr_next = eng.epoch_update_xr_recompute(tm, lambda, &p, &mut x, &mut r);
            counts.vector_ops += 2;
            counts.dots += 1;
            counts.fused_ops += 1;
            iterations = it + 1;

            if rr_next <= thresh_sq {
                if opts.record_residuals {
                    norms.push(rr_next.max(0.0).sqrt());
                }
                termination = Termination::Converged;
                rr = rr_next;
                break;
            }
            if opts.record_residuals {
                norms.push(rr_next.max(0.0).sqrt());
            }
            if guard::check_finite(rr_next).is_err() {
                termination = Termination::Breakdown;
                rr = rr_next;
                break;
            }
            let alpha = opts.scalar(rr_next / rr);
            counts.scalar_ops += 1;
            // Epoch 3: direction update p ← r + α·p.
            eng.epoch_xpay(tm, &r, alpha, &mut p);
            counts.vector_ops += 1;
            rr = rr_next;
            it += 1;
        }
    }

    if !opts.record_residuals {
        norms.push(rr.max(0.0).sqrt());
    }
    let mut res = SolveResult::new(x, termination, iterations, norms, counts);
    res.recovery = rstats;
    res
}

/// Chronopoulos-Gear CG as a two-epoch sweep per iteration.
///
/// Epoch schedule: (1) the four-way vector update `p ← r + βp`,
/// `s ← w + βs`, `x ← x + λp`, `r ← r − λs` carrying `ρ = (r, r)`
/// (72n bytes); (2) `w ← A·r` carrying `μ = (r, w)` (16n) — 88n
/// logical bytes/iteration against the per-kernel path's 128n.
pub(crate) fn solve_chronopoulos_gear(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    if !eligible(a, opts) {
        return reject(a, b, x0, opts);
    }
    let n = a.dim();
    let md = opts.dot_mode;
    let mut counts = OpCounts::default();
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let team = opts.team();
    let tm = team.as_deref();
    let mut eng = FusedIterationSweep::new(
        a.as_sweep().expect("eligibility implies a sweep operator"),
        tm,
        opts.sweep_tile,
        opts.tracer.clone(),
    );
    let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let thresh_sq = util::threshold_sq(opts, bnorm);

    let mut w = opts.matvec_alloc(a, &r, &mut counts);
    let mut rho = dot(md, &r, &r);
    let mut mu = dot(md, &r, &w);
    counts.dots += 2;

    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(rho.max(0.0).sqrt());
    }

    let mut p = vec![0.0; n];
    let mut s = vec![0.0; n]; // s = A·p maintained by recurrence
    let mut lambda_prev = 0.0;
    let mut rho_prev = 0.0;

    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    if rho <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0usize;
        while it < opts.max_iters {
            opts.iter_mark();
            if opts.service_poll(it, rho) {
                termination = Termination::Cancelled;
                iterations = it;
                break;
            }
            let (beta, denom) = if it == 0 {
                (0.0, mu)
            } else {
                let beta = rho / rho_prev;
                (beta, mu - beta * rho / lambda_prev)
            };
            counts.scalar_ops += 3;
            if guard::check_pivot(denom).is_err() {
                termination = Termination::Breakdown;
                iterations = it;
                break;
            }
            let lambda = rho / denom;

            rho_prev = rho;
            // Epoch 1: p ← r + β·p ; s ← w + β·s ; x ← x + λ·p ;
            // r ← r − λ·s carrying ρ = (r, r). Logically two xpay, one
            // axpy, and one fused axpy+norm — same tallies as unfused.
            rho = eng.epoch_cg_update(tm, beta, lambda, &mut r, &mut p, &w, &mut s, &mut x);
            counts.vector_ops += 4;
            counts.dots += 1;
            counts.fused_ops += 1;
            // Epoch 2: w ← A·r carrying μ = (r, w) — the barrier above
            // finalizes r before any shard's matvec reads it.
            mu = eng.epoch_matvec_store_dot(tm, &r, &mut w);
            counts.matvecs += 1;
            counts.dots += 1;
            lambda_prev = lambda;

            if opts.record_residuals {
                norms.push(rho.max(0.0).sqrt());
            }
            iterations = it + 1;
            if rho <= thresh_sq {
                termination = Termination::Converged;
                break;
            }
            if guard::check_finite(rho).is_err() {
                termination = Termination::Breakdown;
                break;
            }
            it += 1;
        }
    }

    if !opts.record_residuals {
        norms.push(rho.max(0.0).sqrt());
    }
    SolveResult::new(x, termination, iterations, norms, counts)
}

/// Ghysels-Vanroose pipelined CG as a two-epoch sweep per iteration.
///
/// Epoch schedule: (1) `q ← A·w` (16n bytes); (2) the six-way update
/// `p ← r + βp`, `s ← w + βs`, `z ← q + βz`, `x ← x + λp`,
/// `r ← r − λs` carrying `γ`, `w ← w − λz` carrying next-δ (104n) —
/// 120n logical bytes/iteration against the per-kernel path's 168n.
///
/// The w-update half of epoch 2 runs even on a converging final
/// iteration, where the unfused loop breaks before it; `w` and the
/// carried δ are dead on every exit path, so no observable bit changes
/// (the unfused code relies on the mirror-image of this argument to skip
/// the update on exit). Its tallies are added only when the unfused
/// path would have executed it.
pub(crate) fn solve_pipelined(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    if !eligible(a, opts) {
        return reject(a, b, x0, opts);
    }
    let n = a.dim();
    let md = opts.dot_mode;
    let mut counts = OpCounts::default();
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let team = opts.team();
    let tm = team.as_deref();
    let mut eng = FusedIterationSweep::new(
        a.as_sweep().expect("eligibility implies a sweep operator"),
        tm,
        opts.sweep_tile,
        opts.tracer.clone(),
    );
    let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let thresh_sq = util::threshold_sq(opts, bnorm);

    let mut w = opts.matvec_alloc(a, &r, &mut counts);

    let mut p = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut q = vec![0.0; n];

    let mut gamma_old = 1.0;
    let mut lambda_old = 1.0;
    let mut gamma = dot(md, &r, &r);
    counts.dots += 1;

    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(gamma.max(0.0).sqrt());
    }

    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    // Eligibility pins KernelPolicy::Fused, so as in the unfused loop the
    // w-update sweep of iteration `it` carries δ for iteration `it + 1`
    // (bit-identical association) and only startup pays a standalone dot.
    let mut delta_carried = 0.0;
    if gamma <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0usize;
        while it < opts.max_iters {
            opts.iter_mark();
            if opts.service_poll(it, gamma) {
                termination = Termination::Cancelled;
                iterations = it;
                break;
            }
            let delta = if it > 0 {
                delta_carried
            } else {
                counts.dots += 1;
                opts.dot(&w, &r)
            };
            // Epoch 1: q ← A·w (on the paper's machine this overlaps the
            // reductions; numerically it is just computed here).
            eng.epoch_matvec_store(tm, &w, &mut q);
            counts.matvecs += 1;

            let (beta, denom) = if it == 0 {
                (0.0, delta)
            } else {
                let beta = gamma / gamma_old;
                (beta, delta - beta * gamma / lambda_old)
            };
            counts.scalar_ops += 3;
            if guard::check_pivot(denom).is_err() {
                termination = Termination::Breakdown;
                iterations = it;
                break;
            }
            let lambda = gamma / denom;

            gamma_old = gamma;
            lambda_old = lambda;
            // Epoch 2: all six recurrence updates, carrying γ = (r, r) and
            // next iteration's δ = (w, r).
            let (g, d) = eng.epoch_pipelined_update(
                tm, beta, lambda, &q, &mut r, &mut p, &mut w, &mut s, &mut z, &mut x,
            );
            gamma = g;
            // three xpay + one axpy + the fused r-update norm
            counts.vector_ops += 5;
            counts.dots += 1;
            counts.fused_ops += 1;

            if opts.record_residuals {
                norms.push(gamma.max(0.0).sqrt());
            }
            iterations = it + 1;
            if gamma <= thresh_sq {
                termination = Termination::Converged;
                break;
            }
            if guard::check_finite(gamma).is_err() {
                termination = Termination::Breakdown;
                break;
            }
            // the w update executed in epoch 2; tally it where the unfused
            // loop runs its axpy_dot
            delta_carried = d;
            counts.vector_ops += 1;
            counts.dots += 1;
            counts.fused_ops += 1;
            it += 1;
        }
    }

    if !opts.record_residuals {
        norms.push(gamma.max(0.0).sqrt());
    }
    SolveResult::new(x, termination, iterations, norms, counts)
}

/// Overlap-k1 CG as a four-epoch sweep per iteration.
///
/// Epoch schedule: (1) the four overlappable inner products
/// `(r,w) (r,v) (w,w) (w,v)` on pre-update vectors, fused with
/// `x ← x + λp` and `r ← r − λw` (56n bytes); (2) `p ← r + αp` (24n);
/// (3) `w ← A·p` (16n); (4) `v ← A·w` (16n) — 112n logical
/// bytes/iteration against the per-kernel path's 176n.
///
/// Epoch 1 applies the r update before the convergence/finiteness checks
/// where the unfused loop defers it; on every early-exit path `r` is
/// either dead (converged / breakdown return only `x`), overwritten (warm
/// restart copies the true residual), or consistent (the validation branch
/// reads only `x` and `b`), so no observable bit changes. Its tally is
/// added only when the unfused path would have executed the axpy.
pub(crate) fn solve_overlap_k1(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    resync: usize,
) -> SolveResult {
    if !eligible(a, opts) {
        return reject(a, b, x0, opts);
    }
    let n = a.dim();
    let md = opts.dot_mode;
    let mut counts = OpCounts::default();
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let team = opts.team();
    let tm = team.as_deref();
    let mut eng = FusedIterationSweep::new(
        a.as_sweep().expect("eligibility implies a sweep operator"),
        tm,
        opts.sweep_tile,
        opts.tracer.clone(),
    );
    let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let thresh_sq = util::threshold_sq(opts, bnorm);

    // State: p, w = A·p, v = A·w; scalars rr = (r,r), rar = (r,Ar),
    // pap = (p,Ap).
    let mut p = r.clone();
    counts.vector_ops += 1;
    let mut w = opts.matvec_alloc(a, &p, &mut counts);
    let mut v = opts.matvec_alloc(a, &w, &mut counts);

    let mut rr = dot(md, &r, &r);
    // p = r at start ⇒ (r, Ar) = (r, w).
    let mut rar = dot(md, &r, &w);
    counts.dots += 2;
    let mut pap = rar;

    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(rr.max(0.0).sqrt());
    }

    let mut last_restart_rr = f64::INFINITY;
    // Scratch for true-residual validation and resync matvecs — reused
    // across restarts so the hot path stays allocation-free.
    let mut vscratch = vec![0.0; n];

    let mut rstats = RecoveryStats::default();
    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    if rr <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0;
        while it < opts.max_iters {
            if guard::check_pivot(pap).is_err() || guard::check_pivot(rr).is_err() {
                // validate against the true residual
                let rr_true = opts.span(vr_obs::SpanKind::Guard, || {
                    a.apply(&x, &mut vscratch);
                    for (vi, bi) in vscratch.iter_mut().zip(b) {
                        *vi = bi - *vi;
                    }
                    dot(md, &vscratch, &vscratch)
                });
                counts.matvecs += 1;
                counts.vector_ops += 1;
                counts.dots += 1;
                if rr_true <= thresh_sq {
                    termination = Termination::Converged;
                    iterations = it;
                    if let Some(last) = norms.last_mut() {
                        *last = rr_true.max(0.0).sqrt();
                    }
                    break;
                }
                if rr_true >= 0.25 * last_restart_rr {
                    termination = Termination::Breakdown;
                    iterations = it;
                    break;
                }
                // warm restart
                last_restart_rr = rr_true;
                counts.restarts += 1;
                opts.span(vr_obs::SpanKind::Recovery, || {
                    r.copy_from_slice(&vscratch);
                    p.copy_from_slice(&r);
                });
                eng.epoch_matvec_store(tm, &p, &mut w);
                eng.epoch_matvec_store(tm, &w, &mut v);
                counts.matvecs += 2;
                counts.vector_ops += 1;
                rr = rr_true;
                rar = dot(md, &r, &w);
                counts.dots += 1;
                pap = rar;
                continue;
            }
            it += 1;
            opts.iter_mark();
            if opts.service_poll(it - 1, rr) {
                termination = Termination::Cancelled;
                iterations = it - 1;
                break;
            }
            let lambda = rr / pap;
            // Epoch 1: the four overlappable inner products — folded on the
            // pre-update r and w within each chunk, exactly the leaf
            // partials the unfused dot2_deferred launches before the
            // updates — fused with x ← x + λ·p and r ← r − λ·w.
            let (rw, rv, ww, wv) = eng.epoch_overlap_update(tm, lambda, &w, &v, &p, &mut r, &mut x);
            counts.dots += 4;
            counts.fused_ops += 2; // the two shared-sweep dot2 launches
            counts.vector_ops += 1; // the x axpy; the r axpy tallies below

            // scalar recurrences (claim C3, k = 1)
            let rr_next = rr - 2.0 * lambda * rw + lambda * lambda * ww;
            let rar_next = rar - 2.0 * lambda * rv + lambda * lambda * wv;
            let alpha = rr_next / rr;
            let rnext_w = rw - lambda * ww;
            let pap_next = rar_next + 2.0 * alpha * rnext_w + alpha * alpha * pap;
            counts.scalar_ops += 12;

            if opts.record_residuals {
                norms.push(rr_next.max(0.0).sqrt());
            }
            iterations = it;
            if rr_next <= thresh_sq {
                termination = Termination::Converged;
                break;
            }
            if guard::check_finite(rr_next).is_err() {
                // route through the validation branch at the loop top
                rr = rr_next;
                continue;
            }

            // the r update executed in epoch 1; epochs 2-4 rebuild the
            // direction and its operator images
            counts.vector_ops += 1;
            eng.epoch_xpay(tm, &r, alpha, &mut p);
            counts.vector_ops += 1;
            eng.epoch_matvec_store(tm, &p, &mut w);
            eng.epoch_matvec_store(tm, &w, &mut v);
            counts.matvecs += 2;

            rr = rr_next;
            rar = rar_next;
            pap = pap_next;

            if resync > 0 && it.is_multiple_of(resync) {
                // residual replacement: recompute the carried scalars
                // directly (one extra matvec for A·r)
                rr = dot(md, &r, &r);
                a.apply(&r, &mut vscratch);
                rar = dot(md, &r, &vscratch);
                pap = dot(md, &p, &w);
                counts.matvecs += 1;
                counts.dots += 3;
            }
        }
    }

    if !opts.record_residuals {
        norms.push(rr.max(0.0).sqrt());
    }
    rstats.faults_detected += opts.drain_checksum_detections();
    let mut res = SolveResult::new(x, termination, iterations, norms, counts);
    res.recovery = rstats;
    res
}
