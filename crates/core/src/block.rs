//! Block conjugate gradients for multiple right-hand sides (O'Leary 1980).
//!
//! Contemporary with the paper, and its spatial dual: Van Rosendale
//! amortizes each reduction's latency across k *iterations*; block CG
//! amortizes it across s *right-hand sides* — one batched Gram reduction
//! serves all s systems, and the shared block Krylov space accelerates
//! convergence for clustered spectra.
//!
//! Iteration (X, R, P are n×s blocks):
//!
//! ```text
//! W  = A·P
//! Λ  = (PᵀW)⁻¹ · (PᵀR)            — s×s Cholesky solve
//! X += P·Λ;   R −= W·Λ
//! Β  = −(PᵀW)⁻¹ · (WᵀR)
//! P  = R + P·Β
//! ```
//!
//! All `2s²` inner products per iteration form batched Gram families.
//! They are computed serially with the SIMD leaf kernel over whole
//! columns: serial summation is trivially bit-invariant across team
//! widths (the property the daemon's batch scheduler relies on), and at
//! block sizes the flat single-pass dot beats the 256-chunk partitioned
//! reduction — the chunks exist to shard work across workers, but the
//! s × s Gram family is many *small* dots, where per-chunk dispatch
//! overhead would dominate the arithmetic.

use crate::instrument::OpCounts;
use crate::resilience::guard;
use crate::solver::{SolveOptions, Termination};
use vr_linalg::kernels;
use vr_linalg::{DenseMatrix, LinearOperator};
use vr_par::simd::leaf_dot;

/// Serial SIMD Gram block `G[i][j] = (u[i], v[j])`, one flat pass per dot.
fn gram_block(u: &[&[f64]], v: &[&[f64]]) -> Vec<Vec<f64>> {
    u.iter()
        .map(|x| v.iter().map(|y| leaf_dot(x, y)).collect())
        .collect()
}

/// Result of a block solve.
#[derive(Debug, Clone)]
pub struct BlockSolveResult {
    /// Solution columns, one per right-hand side.
    pub x: Vec<Vec<f64>>,
    /// Why the iteration stopped.
    pub termination: Termination,
    /// Block iterations performed.
    pub iterations: usize,
    /// Residual norm history per column (recursive).
    pub residual_norms: Vec<Vec<f64>>,
    /// Operation counts (matvecs counted per column application).
    pub counts: OpCounts,
    /// Whether every column converged.
    pub converged: bool,
}

/// Block CG solver for `A·X = B` with `s` right-hand sides.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockCg;

impl BlockCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        BlockCg
    }

    /// Solve for all columns of `b` simultaneously.
    ///
    /// # Panics
    /// Panics if `b` is empty or its columns mismatch the operator
    /// dimension.
    #[must_use]
    pub fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[Vec<f64>],
        opts: &SolveOptions,
    ) -> BlockSolveResult {
        let s = b.len();
        assert!(s > 0, "block solve needs at least one right-hand side");
        let n = a.dim();
        for col in b {
            assert_eq!(col.len(), n, "rhs column length mismatch");
        }
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();

        let mut x: Vec<Vec<f64>> = vec![vec![0.0; n]; s];
        let mut r: Vec<Vec<f64>> = b.to_vec();
        counts.vector_ops += s;

        let thresh_sq: Vec<f64> = b
            .iter()
            .map(|col| {
                let t = opts.tol * kernels::norm2(col);
                (t * t).max(f64::MIN_POSITIVE)
            })
            .collect();

        let mut norms: Vec<Vec<f64>> = vec![Vec::new(); s];
        let col_rr = |r: &[Vec<f64>], counts: &mut OpCounts| -> Vec<f64> {
            counts.dots += s;
            r.iter().map(|c| leaf_dot(c, c)).collect()
        };
        let mut rr = col_rr(&r, &mut counts);
        if opts.record_residuals {
            for (h, v) in norms.iter_mut().zip(&rr) {
                h.push(v.max(0.0).sqrt());
            }
        }

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;

        // Deflation: only unconverged columns stay in the direction block.
        // `active[i]` maps block column i to its rhs index.
        let mut active: Vec<usize> = (0..s).filter(|&j| rr[j] > thresh_sq[j]).collect();
        let mut p: Vec<Vec<f64>> = active.iter().map(|&j| r[j].clone()).collect();
        counts.vector_ops += active.len();

        if active.is_empty() {
            termination = Termination::Converged;
        } else {
            let mut w: Vec<Vec<f64>> = vec![vec![0.0; n]; active.len()];
            'outer: for it in 0..opts.max_iters {
                opts.iter_mark();
                // progress streams the worst (max) active-column squared
                // residual — the quantity the block's convergence gates on
                let worst = active
                    .iter()
                    .map(|&j| rr[j])
                    .fold(f64::NEG_INFINITY, f64::max);
                if opts.service_poll(it, worst) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break 'outer;
                }
                let sa = active.len();
                // W = A·P (sa matvecs); the buffer is hoisted — deflation
                // only ever shrinks the block, so truncate and reuse
                w.truncate(sa);
                for (wc, pc) in w.iter_mut().zip(&p) {
                    opts.matvec(a, pc, wc, &mut counts);
                }

                // Gram blocks, flat serial SIMD passes over views (no
                // per-iteration column clones)
                let (ptw, ptr) = {
                    let pv: Vec<&[f64]> = p.iter().map(Vec::as_slice).collect();
                    let wv: Vec<&[f64]> = w.iter().map(Vec::as_slice).collect();
                    let rv: Vec<&[f64]> = active.iter().map(|&j| r[j].as_slice()).collect();
                    (gram_block(&pv, &wv), gram_block(&pv, &rv)) // PᵀW (sa×sa), PᵀR_active
                };
                counts.dots += 2 * sa * sa;

                let gram = DenseMatrix::from_rows(&ptw).expect("square");
                let chol = match gram.cholesky() {
                    Ok(c) => c,
                    Err(_) => {
                        termination = Termination::Breakdown;
                        iterations = it;
                        break 'outer;
                    }
                };

                // Λ column c solves (PᵀW)·λ_c = (PᵀR)·e_c
                let lambda: Vec<Vec<f64>> = (0..sa)
                    .map(|c| {
                        let rhs: Vec<f64> = (0..sa).map(|i| ptr[i][c]).collect();
                        chol.solve(&rhs)
                    })
                    .collect();
                counts.scalar_ops += sa * sa * sa;

                // X += P·Λ ; R −= W·Λ (active columns only)
                for (c, &j) in active.iter().enumerate() {
                    for (i, (pc, wc)) in p.iter().zip(&w).enumerate() {
                        let lic = lambda[c][i];
                        if lic != 0.0 {
                            kernels::axpy(lic, pc, &mut x[j]);
                            kernels::axpy(-lic, wc, &mut r[j]);
                        }
                    }
                }
                counts.vector_ops += 2 * sa * sa;

                rr = col_rr(&r, &mut counts);
                if opts.record_residuals {
                    for (h, v) in norms.iter_mut().zip(&rr) {
                        h.push(v.max(0.0).sqrt());
                    }
                }
                iterations = it + 1;
                if !guard::all_finite(rr.iter().copied()) {
                    termination = Termination::Breakdown;
                    break;
                }

                // deflate newly converged columns out of the block
                let still: Vec<usize> = (0..sa)
                    .filter(|&c| rr[active[c]] > thresh_sq[active[c]])
                    .collect();
                if still.is_empty() {
                    termination = Termination::Converged;
                    break;
                }

                // Β = −(PᵀW)⁻¹(WᵀR_still); P ← R_still + P·Β
                let wtr = {
                    let wv: Vec<&[f64]> = w.iter().map(Vec::as_slice).collect();
                    let rv: Vec<&[f64]> = still.iter().map(|&c| r[active[c]].as_slice()).collect();
                    gram_block(&wv, &rv)
                };
                counts.dots += sa * still.len();
                let beta: Vec<Vec<f64>> = (0..still.len())
                    .map(|c| {
                        let rhs: Vec<f64> = (0..sa).map(|i| -wtr[i][c]).collect();
                        chol.solve(&rhs)
                    })
                    .collect();
                counts.scalar_ops += sa * sa * still.len();
                let p_old = p;
                p = Vec::with_capacity(still.len());
                for (c, &sc) in still.iter().enumerate() {
                    let mut new_col = r[active[sc]].clone();
                    for (i, pc) in p_old.iter().enumerate() {
                        let bic = beta[c][i];
                        if bic != 0.0 {
                            kernels::axpy(bic, pc, &mut new_col);
                        }
                    }
                    p.push(new_col);
                }
                counts.vector_ops += still.len() * (sa + 1);
                active = still.iter().map(|&c| active[c]).collect();
            }
        }

        BlockSolveResult {
            x,
            converged: termination == Termination::Converged,
            termination,
            iterations,
            residual_norms: norms,
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use crate::CgVariant;
    use vr_linalg::gen;

    fn opts() -> SolveOptions {
        SolveOptions::default().with_tol(1e-9).with_max_iters(2000)
    }

    #[test]
    fn single_rhs_matches_standard_cg() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let single = StandardCg::new().solve(&a, &b, None, &opts());
        let block = BlockCg::new().solve(&a, std::slice::from_ref(&b), &opts());
        assert!(block.converged, "{:?}", block.termination);
        for (u, v) in block.x[0].iter().zip(&single.x) {
            assert!((u - v).abs() < 1e-6 * (1.0 + v.abs()), "{u} vs {v}");
        }
    }

    #[test]
    fn multiple_rhs_all_solved() {
        let a = gen::poisson2d(12);
        let n = a.nrows();
        let bs: Vec<Vec<f64>> = (0..4).map(|k| gen::rand_vector(n, 60 + k)).collect();
        let res = BlockCg::new().solve(&a, &bs, &opts());
        assert!(res.converged, "{:?}", res.termination);
        for (j, b) in bs.iter().enumerate() {
            let ax = a.spmv(&res.x[j]);
            let mut r = vec![0.0; n];
            kernels::sub(b, &ax, &mut r);
            assert!(
                kernels::norm2(&r) < 1e-6 * kernels::norm2(b),
                "column {j}: residual {}",
                kernels::norm2(&r)
            );
        }
    }

    #[test]
    fn block_converges_in_fewer_iterations_than_single() {
        // the block Krylov space sees s directions per iteration: strictly
        // better per-iteration progress on a shared spectrum
        let a = gen::poisson2d(14);
        let n = a.nrows();
        let bs: Vec<Vec<f64>> = (0..4).map(|k| gen::rand_vector(n, 70 + k)).collect();
        let block = BlockCg::new().solve(&a, &bs, &opts());
        assert!(block.converged);
        let worst_single = bs
            .iter()
            .map(|b| StandardCg::new().solve(&a, b, None, &opts()).iterations)
            .max()
            .unwrap();
        assert!(
            block.iterations < worst_single,
            "block {} !< worst single {}",
            block.iterations,
            worst_single
        );
    }

    #[test]
    fn reduction_batching_is_constant_per_iteration() {
        // dots per block iteration = 3s² + s regardless of n — two Gram
        // batches + WᵀR + the per-column residual check
        let a = gen::poisson2d(10);
        let n = a.nrows();
        let s = 3;
        let bs: Vec<Vec<f64>> = (0..s).map(|k| gen::rand_vector(n, 80 + k as u64)).collect();
        let res = BlockCg::new().solve(&a, &bs, &opts());
        assert!(res.converged);
        let per_iter = (res.counts.dots as f64 - s as f64) / res.iterations as f64;
        let expect = (3 * s * s + s) as f64;
        assert!(
            (per_iter - expect).abs() <= expect * 0.2,
            "dots/iter {per_iter} vs expected ≈ {expect}"
        );
    }

    #[test]
    fn zero_rhs_column_converges_immediately_with_others() {
        let a = gen::poisson1d(20);
        let bs = vec![vec![0.0; 20], gen::rand_vector(20, 90)];
        let res = BlockCg::new().solve(&a, &bs, &opts());
        assert!(res.converged, "{:?}", res.termination);
        assert!(kernels::norm2(&res.x[0]) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_block_rejected() {
        let a = gen::poisson1d(4);
        let _ = BlockCg::new().solve(&a, &[], &opts());
    }

    #[test]
    fn breakdown_on_dependent_rhs_handled() {
        // two identical right-hand sides make PᵀAP singular in exact
        // arithmetic; round-off may keep it barely SPD — accept either
        // clean convergence or an honest Breakdown, never a wrong answer
        let a = gen::poisson1d(16);
        let b = gen::rand_vector(16, 91);
        let res = BlockCg::new().solve(&a, &[b.clone(), b.clone()], &opts());
        if res.converged {
            let ax = a.spmv(&res.x[0]);
            let mut r = vec![0.0; 16];
            kernels::sub(&b, &ax, &mut r);
            assert!(kernels::norm2(&r) < 1e-6 * kernels::norm2(&b));
        } else {
            assert_eq!(res.termination, Termination::Breakdown);
        }
    }
}
