//! The shared breakdown/recovery guard.
//!
//! Before this module existed every variant carried its own ad-hoc
//! `is_finite()` / positivity checks. They are now centralized here so
//! that (a) every solver classifies failures the same way, and (b) the
//! recovery machinery has one choke point to observe faults at.
//!
//! Two layers:
//!
//! * **Scalar guards** ([`check_pivot`], [`check_finite`], [`all_finite`],
//!   [`guarded_dot`]) — pure classification of suspicious scalars, plus
//!   detect-and-retry for corrupted reductions.
//! * **[`ResidualGuard`]** — an in-loop monitor owning the recovery
//!   policy's *numerical* defenses: periodic true-residual recomputation,
//!   residual replacement, stagnation and divergence detection.

use crate::instrument::RecoveryStats;
use crate::resilience::recovery::RecoveryPolicy;
use crate::solver::{SolveOptions, Termination};
use vr_linalg::kernels;
use vr_linalg::LinearOperator;

/// How a scalar failed its guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownKind {
    /// NaN or ±∞ where a finite value is required.
    NonFinite,
    /// A pivot quantity (`pᵀAp`, `rᵀr` in a denominator, a Gram pivot)
    /// that must be strictly positive for an SPD system was ≤ 0.
    NonPositivePivot,
}

impl BreakdownKind {
    /// The [`Termination`] this failure maps to.
    #[must_use]
    pub fn termination(self) -> Termination {
        Termination::Breakdown
    }
}

/// Guard a pivot quantity: finite **and** strictly positive.
///
/// # Errors
/// [`BreakdownKind::NonFinite`] for NaN/∞, [`BreakdownKind::NonPositivePivot`]
/// for a finite value ≤ 0.
pub fn check_pivot(v: f64) -> Result<f64, BreakdownKind> {
    if !v.is_finite() {
        Err(BreakdownKind::NonFinite)
    } else if v <= 0.0 {
        Err(BreakdownKind::NonPositivePivot)
    } else {
        Ok(v)
    }
}

/// Guard a scalar that only needs to be finite (residual norms, β, …).
///
/// # Errors
/// [`BreakdownKind::NonFinite`] for NaN/∞.
pub fn check_finite(v: f64) -> Result<f64, BreakdownKind> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(BreakdownKind::NonFinite)
    }
}

/// Whether every scalar in the iterator is finite (block solvers guard
/// whole residual-norm vectors at once).
pub fn all_finite<I: IntoIterator<Item = f64>>(vals: I) -> bool {
    vals.into_iter().all(f64::is_finite)
}

/// Retries for a reduction that produced a non-finite value.
const MAX_REDUCTION_RETRIES: usize = 2;

/// Inner product with detect-and-retry.
///
/// Computes `xᵀy` through the options' fault path. If the result is
/// non-finite *and* a recovery policy is active, the reduction is
/// re-executed (still through the injector — a retry can fault too) up to
/// [`MAX_REDUCTION_RETRIES`] times, counting each detection in `stats`.
/// This models the checksum-detect-and-recompute defense for reductions:
/// a NaN/∞ in a global sum is detectable at the combine node, and
/// re-running one reduction is far cheaper than restarting the solve.
#[must_use]
pub fn guarded_dot(opts: &SolveOptions, x: &[f64], y: &[f64], stats: &mut RecoveryStats) -> f64 {
    let v = opts.dot(x, y);
    retry_reduction(opts, x, y, v, stats)
}

/// Fused matvec+dot ([`SolveOptions::matvec_dot`]) with detect-and-retry
/// on the reduction.
///
/// `y` holds `A·x` after the call, so a non-finite combined value is
/// repaired by re-running only the *reduction* (`xᵀy` through the fault
/// path) — the matvec result is already materialized and is not recomputed.
/// Retries are not tallied (matching [`guarded_dot`]).
#[must_use]
pub fn guarded_matvec_dot(
    opts: &SolveOptions,
    a: &dyn LinearOperator,
    x: &[f64],
    y: &mut [f64],
    counts: &mut crate::instrument::OpCounts,
    stats: &mut RecoveryStats,
) -> f64 {
    let v = opts.matvec_dot(a, x, y, counts);
    retry_reduction(opts, x, y, v, stats)
}

/// Fused solution/residual update ([`SolveOptions::update_xr`]) with
/// detect-and-retry on the `(r, r)` reduction.
///
/// The vector updates land exactly once; only the reduction re-runs on a
/// detected fault, reading the already-updated `r`.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn guarded_update_xr(
    opts: &SolveOptions,
    lambda: f64,
    p: &[f64],
    w: &[f64],
    x: &mut [f64],
    r: &mut [f64],
    counts: &mut crate::instrument::OpCounts,
    stats: &mut RecoveryStats,
) -> f64 {
    let v = opts.update_xr(lambda, p, w, x, r, counts);
    retry_reduction(opts, r, r, v, stats)
}

/// Fused shared-left dot pair ([`SolveOptions::dot2`]) with independent
/// detect-and-retry on each component reduction.
#[must_use]
pub fn guarded_dot2(
    opts: &SolveOptions,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    counts: &mut crate::instrument::OpCounts,
    stats: &mut RecoveryStats,
) -> (f64, f64) {
    let (dy, dz) = opts.dot2(x, y, z, counts);
    (
        retry_reduction(opts, x, y, dy, stats),
        retry_reduction(opts, x, z, dz, stats),
    )
}

/// Shared retry tail: if `v` is non-finite and recovery is active,
/// re-execute the reduction `xᵀy` (still through the injector) up to
/// [`MAX_REDUCTION_RETRIES`] times. The same policy [`guarded_dot`]
/// applies after its first attempt.
fn retry_reduction(
    opts: &SolveOptions,
    x: &[f64],
    y: &[f64],
    v: f64,
    stats: &mut RecoveryStats,
) -> f64 {
    if v.is_finite() || opts.recovery.is_none() {
        return v;
    }
    let mut last = v;
    for _ in 0..MAX_REDUCTION_RETRIES {
        stats.faults_detected += 1;
        last = opts.dot(x, y);
        if last.is_finite() {
            return last;
        }
    }
    stats.faults_detected += 1;
    last
}

/// What the in-loop monitor tells the solver to do after inspecting one
/// iteration.
#[derive(Debug)]
pub enum GuardSignal {
    /// All checks passed — continue the recurrence.
    Proceed,
    /// Replace the recursive residual with the freshly computed true
    /// residual `b − A·x` (and restart the direction from it). Carries the
    /// new residual vector and its squared norm.
    Replace {
        /// The true residual `b − A·x`.
        r: Vec<f64>,
        /// Its squared norm `‖r‖²`.
        rr: f64,
    },
    /// Stop with the given termination (stagnated, diverged, or broken
    /// down beyond repair). Convergence is never signalled here: a
    /// replacement that lands below tolerance surfaces as `Replace`, and
    /// the variant's own threshold check converges on it.
    Halt(Termination),
}

/// In-loop residual monitor implementing the numerical half of a
/// [`RecoveryPolicy`]: periodic true-residual recomputation, residual
/// replacement, stagnation and divergence detection.
pub struct ResidualGuard<'a> {
    a: &'a dyn LinearOperator,
    b: &'a [f64],
    policy: RecoveryPolicy,
    initial_rr: f64,
    best_rr: f64,
    since_progress: usize,
    /// Scratch for `A·x` during true-residual recomputation, lazily sized
    /// on first use and reused across inspections.
    ax: Vec<f64>,
    /// Counters surfaced through `SolveResult::recovery`.
    pub stats: RecoveryStats,
    /// Extra matvecs spent on true-residual recomputation (for `OpCounts`).
    pub extra_matvecs: usize,
}

impl<'a> ResidualGuard<'a> {
    /// Monitor for the system `A·x = b`, starting from the squared
    /// initial residual norm `rr0`.
    #[must_use]
    pub fn new(a: &'a dyn LinearOperator, b: &'a [f64], policy: RecoveryPolicy, rr0: f64) -> Self {
        ResidualGuard {
            a,
            b,
            policy,
            initial_rr: rr0.max(f64::MIN_POSITIVE),
            best_rr: rr0.max(f64::MIN_POSITIVE),
            since_progress: 0,
            ax: Vec::new(),
            stats: RecoveryStats::default(),
            extra_matvecs: 0,
        }
    }

    fn true_residual(&mut self, x: &[f64]) -> (Vec<f64>, f64) {
        // Recorded through the solve thread's TLS attachment (the guard
        // has no handle on `SolveOptions`); a detached thread skips it.
        vr_obs::tls::with_span(vr_obs::SpanKind::Guard, || {
            self.ax.resize(self.b.len(), 0.0);
            self.a.apply(x, &mut self.ax);
            // The residual vector itself is still allocated: `GuardSignal::
            // Replace` hands ownership to the solver, and replacements only
            // fire on (rare) fault events — never on the per-iteration path.
            let mut r = vec![0.0; self.b.len()];
            kernels::sub(self.b, &self.ax, &mut r);
            self.extra_matvecs += 1;
            let rr = kernels::dot_serial(&r, &r);
            (r, rr)
        })
    }

    /// Inspect the state after iteration `iter` produced the recursive
    /// squared residual norm `rr` at iterate `x`.
    pub fn inspect(&mut self, iter: usize, x: &[f64], rr: f64) -> GuardSignal {
        // A non-finite iterate is beyond residual replacement: the solution
        // itself is poisoned and only a restart (the ladder) can help.
        if !all_finite(x.iter().copied()) {
            return GuardSignal::Halt(Termination::Breakdown);
        }

        // 1) detectable fault in the residual recurrence → replace
        if !rr.is_finite() {
            self.stats.faults_detected += 1;
            return self.replace(x);
        }

        // 2) divergence: the recursive residual exploded relative to the
        //    start. Validate against the true residual before giving up —
        //    a corrupted recurrence can *look* divergent while x is fine.
        let div_sq = self.policy.divergence_factor * self.policy.divergence_factor;
        if rr > div_sq * self.initial_rr {
            let (r_true, rr_true) = self.true_residual(x);
            if rr_true > div_sq * self.initial_rr {
                return GuardSignal::Halt(Termination::Diverged);
            }
            self.stats.replacements += 1;
            return self.finish_replacement(r_true, rr_true);
        }

        // 3) stagnation bookkeeping: "progress" = 1% reduction of the best
        //    squared norm seen so far.
        if rr < 0.99 * self.best_rr {
            self.best_rr = rr;
            self.since_progress = 0;
        } else {
            self.since_progress += 1;
            if self.policy.stagnation_window > 0
                && self.since_progress >= self.policy.stagnation_window
            {
                return GuardSignal::Halt(Termination::Stagnated);
            }
        }

        // 4) periodic drift check: recompute the true residual and replace
        //    if the recursive one has silently drifted away (the defense
        //    against Perturb-style silent data corruption).
        if self.policy.true_residual_period > 0
            && iter > 0
            && iter.is_multiple_of(self.policy.true_residual_period)
        {
            let (r_true, rr_true) = self.true_residual(x);
            let dev = (rr_true.max(0.0).sqrt() - rr.max(0.0).sqrt()).abs();
            if dev > self.policy.replacement_threshold * rr_true.max(0.0).sqrt().max(1e-300) {
                self.stats.replacements += 1;
                return self.finish_replacement(r_true, rr_true);
            }
        }

        GuardSignal::Proceed
    }

    /// Validate a claimed convergence (`rr ≤ threshold`) against the true
    /// residual. A corrupted reduction can *shrink* the recursive `rr`
    /// (e.g. a dropped partial sum → 0.0), so under a recovery policy a
    /// below-threshold signal is only trusted after this check.
    ///
    /// Returns `None` when the convergence is genuine; otherwise the true
    /// residual `(r, ‖r‖²)` to replace the corrupted recursive one with
    /// (the solve continues from it).
    pub fn confirm_convergence(&mut self, x: &[f64], thresh_sq: f64) -> Option<(Vec<f64>, f64)> {
        let (r_true, rr_true) = self.true_residual(x);
        if rr_true.is_finite() && rr_true <= thresh_sq {
            return None;
        }
        self.stats.faults_detected += 1;
        self.stats.replacements += 1;
        self.best_rr = self.best_rr.min(rr_true.max(f64::MIN_POSITIVE));
        self.since_progress = 0;
        Some((r_true, rr_true))
    }

    fn replace(&mut self, x: &[f64]) -> GuardSignal {
        let (r_true, rr_true) = self.true_residual(x);
        if !rr_true.is_finite() {
            return GuardSignal::Halt(Termination::Breakdown);
        }
        self.stats.replacements += 1;
        self.finish_replacement(r_true, rr_true)
    }

    fn finish_replacement(&mut self, r_true: Vec<f64>, rr_true: f64) -> GuardSignal {
        self.best_rr = self.best_rr.min(rr_true.max(f64::MIN_POSITIVE));
        self.since_progress = 0;
        GuardSignal::Replace {
            r: r_true,
            rr: rr_true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;

    #[test]
    fn scalar_guards_classify() {
        assert_eq!(check_pivot(1.0), Ok(1.0));
        assert_eq!(check_pivot(0.0), Err(BreakdownKind::NonPositivePivot));
        assert_eq!(check_pivot(-2.0), Err(BreakdownKind::NonPositivePivot));
        assert_eq!(check_pivot(f64::NAN), Err(BreakdownKind::NonFinite));
        assert_eq!(check_pivot(f64::INFINITY), Err(BreakdownKind::NonFinite));
        assert_eq!(check_finite(-5.0), Ok(-5.0));
        assert_eq!(check_finite(f64::NAN), Err(BreakdownKind::NonFinite));
        assert_eq!(
            BreakdownKind::NonFinite.termination(),
            Termination::Breakdown
        );
        assert!(all_finite([1.0, 2.0]));
        assert!(!all_finite([1.0, f64::NAN]));
    }

    #[test]
    fn guard_replaces_non_finite_recursive_residual() {
        let a = gen::poisson1d(8);
        let b = vec![1.0; 8];
        let mut g = ResidualGuard::new(&a, &b, RecoveryPolicy::default(), 8.0);
        let x = vec![0.0; 8]; // true residual = b, ‖b‖² = 8
        match g.inspect(1, &x, f64::NAN) {
            GuardSignal::Replace { r, rr } => {
                assert_eq!(r, b);
                assert!((rr - 8.0).abs() < 1e-12);
            }
            other => panic!("expected Replace, got {other:?}"),
        }
        assert_eq!(g.stats.faults_detected, 1);
        assert_eq!(g.stats.replacements, 1);
    }

    #[test]
    fn guard_halts_on_poisoned_iterate() {
        let a = gen::poisson1d(4);
        let b = vec![1.0; 4];
        let mut g = ResidualGuard::new(&a, &b, RecoveryPolicy::default(), 4.0);
        let x = vec![0.0, f64::NAN, 0.0, 0.0];
        assert!(matches!(
            g.inspect(1, &x, 1.0),
            GuardSignal::Halt(Termination::Breakdown)
        ));
    }

    #[test]
    fn guard_detects_stagnation_and_divergence() {
        let a = gen::poisson1d(4);
        let b = vec![1.0; 4];
        let policy = RecoveryPolicy::default()
            .with_stagnation_window(5)
            .with_true_residual_period(0);
        let mut g = ResidualGuard::new(&a, &b, policy, 4.0);
        let x = vec![0.1; 4];
        let mut halted = None;
        for it in 1..20 {
            if let GuardSignal::Halt(t) = g.inspect(it, &x, 4.0) {
                halted = Some((it, t));
                break;
            }
        }
        let (it, t) = halted.expect("must stagnate");
        assert_eq!(t, Termination::Stagnated);
        assert!(it <= 6, "stagnated at iter {it}");

        // divergence: recursive AND true residual both enormous
        let mut g = ResidualGuard::new(&a, &b, RecoveryPolicy::default(), 1.0);
        let x_far = vec![1e12; 4];
        assert!(matches!(
            g.inspect(1, &x_far, 1e30),
            GuardSignal::Halt(Termination::Diverged)
        ));
    }

    #[test]
    fn confirm_convergence_rejects_fake_and_accepts_real() {
        let a = gen::poisson1d(8);
        let b = vec![1.0; 8];
        let mut g = ResidualGuard::new(&a, &b, RecoveryPolicy::default(), 8.0);
        // x = 0 with a claimed rr of 0 (a dropped reduction): spurious
        let (r, rr) = g
            .confirm_convergence(&[0.0; 8], 1e-16)
            .expect("fake convergence must be rejected");
        assert_eq!(r, b);
        assert!((rr - 8.0).abs() < 1e-12);
        assert_eq!(g.stats.faults_detected, 1);
        assert_eq!(g.stats.replacements, 1);
        // a genuinely converged iterate passes
        let dense = vr_linalg::DenseMatrix::from_rows(&a.to_dense()).unwrap();
        let exact = dense.solve_spd(&b).unwrap();
        assert!(g.confirm_convergence(&exact, 1e-16).is_none());
    }

    #[test]
    fn periodic_check_catches_silent_drift() {
        let a = gen::poisson1d(8);
        let b = vec![1.0; 8];
        let policy = RecoveryPolicy::default().with_true_residual_period(10);
        let mut g = ResidualGuard::new(&a, &b, policy, 8.0);
        let x = vec![0.0; 8]; // true ‖r‖² = 8
                              // at a non-check iteration a drifted rr passes
        assert!(matches!(g.inspect(9, &x, 0.5), GuardSignal::Proceed));
        // at the periodic checkpoint the deviation triggers replacement
        assert!(matches!(
            g.inspect(10, &x, 0.5),
            GuardSignal::Replace { .. }
        ));
        assert_eq!(g.stats.replacements, 1);
    }
}
