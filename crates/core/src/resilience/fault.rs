//! Deterministic seeded fault injectors.
//!
//! The injector *interface* lives in [`vr_par::fault`] (the bottom of the
//! workspace dependency graph); the concrete injectors live here because
//! they are solver-facing policy. All injectors are driven by a SplitMix64
//! hash of `seed ^ call-counter`, so a given seed reproduces the exact
//! same fault pattern — the property every experiment and test in this
//! subsystem leans on.

use std::sync::atomic::{AtomicU64, Ordering};
use vr_par::fault::splitmix64;
pub use vr_par::fault::{FaultInjector, FaultSite, NoFaults};

/// What a fault does to the value flowing through the reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Replace with NaN (detectable: the classic soft-error checksum case).
    Nan,
    /// Replace with +∞ (detectable overflow).
    Inf,
    /// Silent data corruption: multiply by `1 + magnitude·u` with
    /// `u ∈ [−1, 1)` drawn from the fault hash. Not detectable by
    /// finiteness checks — only residual replacement catches it.
    Perturb(f64),
    /// Drop the contribution: the value is replaced by `0.0`, modeling a
    /// lost partial sum in the fan-in tree.
    Drop,
}

impl FaultKind {
    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::Perturb(_) => "perturb",
            FaultKind::Drop => "drop",
        }
    }

    fn apply(&self, value: f64, hash: u64) -> f64 {
        match *self {
            FaultKind::Nan => f64::NAN,
            FaultKind::Inf => f64::INFINITY,
            FaultKind::Perturb(mag) => {
                // map hash to u ∈ [−1, 1)
                let u = (hash >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
                value * (1.0 + mag * u)
            }
            FaultKind::Drop => 0.0,
        }
    }
}

/// Bernoulli fault injector: every value passing a matching site is
/// corrupted independently with probability `rate`, decided by
/// `splitmix64(seed ^ call#)`.
#[derive(Debug)]
pub struct SeededInjector {
    seed: u64,
    rate: f64,
    kind: FaultKind,
    /// Restrict injection to this site (None = all sites).
    only_site: Option<FaultSite>,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl SeededInjector {
    /// Injector corrupting any site with probability `rate` per value.
    #[must_use]
    pub fn new(seed: u64, rate: f64, kind: FaultKind) -> Self {
        SeededInjector {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kind,
            only_site: None,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Restrict injection to a single [`FaultSite`].
    #[must_use]
    pub fn at_site(mut self, site: FaultSite) -> Self {
        self.only_site = Some(site);
        self
    }

    /// Total values inspected so far.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl FaultInjector for SeededInjector {
    fn corrupt(&self, site: FaultSite, value: f64) -> f64 {
        let c = self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(only) = self.only_site {
            if only != site {
                return value;
            }
        }
        let h = splitmix64(self.seed ^ c.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // top 53 bits → uniform in [0, 1)
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.rate {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.kind.apply(value, splitmix64(h))
        } else {
            value
        }
    }

    fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// Inject exactly one fault, at the `at_call`-th value inspected.
///
/// The workhorse for targeted tests: "a single upset strikes reduction
/// number m — does the solver still converge?"
#[derive(Debug)]
pub struct SingleFault {
    at_call: u64,
    kind: FaultKind,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl SingleFault {
    /// Corrupt the `at_call`-th inspected value (0-based) with `kind`.
    #[must_use]
    pub fn new(at_call: u64, kind: FaultKind) -> Self {
        SingleFault {
            at_call,
            kind,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }
}

impl FaultInjector for SingleFault {
    fn corrupt(&self, _site: FaultSite, value: f64) -> f64 {
        let c = self.calls.fetch_add(1, Ordering::Relaxed);
        if c == self.at_call {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.kind.apply(value, splitmix64(c ^ 0xdead_beef))
        } else {
            value
        }
    }

    fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_never_injects() {
        let inj = SeededInjector::new(42, 0.0, FaultKind::Nan);
        for i in 0..10_000 {
            assert!(inj.corrupt(FaultSite::DotFinal, i as f64).is_finite());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn rate_one_always_injects() {
        let inj = SeededInjector::new(42, 1.0, FaultKind::Nan);
        for _ in 0..100 {
            assert!(inj.corrupt(FaultSite::DotPartial, 1.0).is_nan());
        }
        assert_eq!(inj.injected(), 100);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let run = |seed| {
            let inj = SeededInjector::new(seed, 0.01, FaultKind::Nan);
            (0..5000)
                .map(|i| inj.corrupt(FaultSite::DotPartial, i as f64).is_nan())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn empirical_rate_close_to_nominal() {
        let inj = SeededInjector::new(3, 0.05, FaultKind::Drop);
        let n = 100_000;
        for _ in 0..n {
            inj.corrupt(FaultSite::DotPartial, 1.0);
        }
        let rate = inj.injected() as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn perturb_is_silent_and_bounded() {
        let inj = SeededInjector::new(11, 1.0, FaultKind::Perturb(0.5));
        for _ in 0..100 {
            let v = inj.corrupt(FaultSite::DotFinal, 2.0);
            assert!(v.is_finite());
            assert!((v - 2.0).abs() <= 1.0 + 1e-12, "perturbed {v}");
        }
    }

    #[test]
    fn site_filter_respected() {
        let inj = SeededInjector::new(5, 1.0, FaultKind::Inf).at_site(FaultSite::DotFinal);
        assert!(inj.corrupt(FaultSite::DotPartial, 1.0).is_finite());
        assert!(inj.corrupt(FaultSite::DotFinal, 1.0).is_infinite());
    }

    #[test]
    fn single_fault_strikes_once() {
        let inj = SingleFault::new(3, FaultKind::Nan);
        let hits: Vec<bool> = (0..10)
            .map(|i| inj.corrupt(FaultSite::ScalarRecurrence, i as f64).is_nan())
            .collect();
        assert_eq!(hits.iter().filter(|&&h| h).count(), 1);
        assert!(hits[3]);
        assert_eq!(inj.injected(), 1);
    }
}
