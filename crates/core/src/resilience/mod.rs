//! Fault injection and breakdown recovery for every CG variant.
//!
//! The 1983 restructuring deliberately *weakens* the feedback loop of CG:
//! scalars that standard CG computes fresh each iteration are instead
//! carried by long recurrences with k iterations of slack. That is
//! exactly what makes the algorithm parallel — and exactly what makes it
//! fragile: a single corrupted reduction propagates through the moment
//! window for k iterations before any observable symptom. This module
//! supplies the three pieces needed to study and survive that fragility:
//!
//! * [`fault`] — deterministic seeded fault injectors implementing the
//!   [`vr_par::fault::FaultInjector`] interface: Bernoulli NaN/∞/silent
//!   perturbation/dropped-partial faults on the reduction path, plus a
//!   single-shot injector for targeted tests.
//! * [`guard`] — the shared breakdown guard all variants route their
//!   checks through, plus the in-loop [`guard::ResidualGuard`] doing
//!   periodic true-residual recomputation and residual replacement.
//! * [`checkpoint`] — the preallocated [`checkpoint::CheckpointRing`]:
//!   periodic snapshots of minimal solver state so a detected corruption
//!   rolls back ≤ C iterations instead of restarting from zero.
//! * [`recovery`] — the [`recovery::RecoveryPolicy`] knobs and the restart
//!   ladder with look-ahead-depth backoff (`k → k/2 → … → standard CG`).
//!
//! ```
//! use std::sync::Arc;
//! use vr_cg::lookahead::LookaheadCg;
//! use vr_cg::resilience::fault::{FaultKind, SeededInjector};
//! use vr_cg::resilience::recovery::{solve_with_recovery, RecoveryPolicy};
//! use vr_cg::SolveOptions;
//! use vr_linalg::gen;
//!
//! let a = gen::poisson2d(10);
//! let b = gen::poisson2d_rhs(10);
//! let opts = SolveOptions::default()
//!     .with_tol(1e-8)
//!     .with_injector(Arc::new(SeededInjector::new(7, 1e-3, FaultKind::Nan)))
//!     .with_recovery(RecoveryPolicy::default());
//! let res = solve_with_recovery(&LookaheadCg::new(2), &a, &b, None, &opts);
//! assert!(res.converged, "{:?}", res.termination);
//! ```

pub mod checkpoint;
pub mod fault;
pub mod guard;
pub mod recovery;

pub use checkpoint::CheckpointRing;
pub use fault::{FaultKind, SeededInjector, SingleFault};
pub use guard::{GuardSignal, ResidualGuard};
pub use recovery::{solve_with_recovery, Recoverable, RecoveryPolicy};
