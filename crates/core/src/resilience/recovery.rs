//! Breakdown recovery: policy, restart ladder, and the [`Recoverable`]
//! wrapper.
//!
//! The look-ahead restructuring buys parallelism at the price of fragility
//! (deep moment windows amplify round-off and any injected fault). The
//! recovery ladder makes that trade safe: when a guarded solve fails, it
//! warm-restarts from the best iterate so far with the look-ahead depth
//! **backed off** — `k → k/2 → … → standard CG` — under a bounded retry
//! budget. Standard CG is the floor of the ladder because it is the
//! self-correcting member of the family.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::solver::{CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels;
use vr_linalg::LinearOperator;

/// Knobs for the recovery machinery. Attach to a solve with
/// [`SolveOptions::with_recovery`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Recompute the true residual `b − A·x` every this many iterations
    /// and compare against the recursive one (0 = never). Catches silent
    /// data corruption the finiteness guards cannot see.
    pub true_residual_period: usize,
    /// Relative norm deviation `|‖r_true‖ − ‖r_rec‖| / ‖r_true‖` above
    /// which the recursive residual is replaced by the true one.
    pub replacement_threshold: f64,
    /// Halt with [`Termination::Stagnated`] after this many consecutive
    /// iterations without 1% progress on the best residual (0 = never).
    pub stagnation_window: usize,
    /// Halt with [`Termination::Diverged`] when the residual norm exceeds
    /// this factor times the initial residual norm.
    pub divergence_factor: f64,
    /// Retry budget for the restart ladder.
    pub max_restarts: usize,
    /// Back off the look-ahead depth (`k → k/2 → … → standard CG`) on each
    /// restart; `false` retries the same variant (faults are transient).
    pub backoff: bool,
    /// Restart from the best finite iterate seen so far (`true`, the
    /// default) or from the caller's `x0` (`false` — the classic cold
    /// restart, the baseline the checkpoint/rollback rung is measured
    /// against in E20).
    pub warm_restart: bool,
    /// Snapshot minimal solver state into a
    /// [`crate::resilience::CheckpointRing`] every this many iterations
    /// (0 = checkpointing disabled, the classic ladder). With a period C,
    /// guard-detected corruption rolls the solve back ≤ C iterations —
    /// the rung of the recovery ladder *above* restart.
    pub checkpoint_period: usize,
    /// Budget of checkpoint rollbacks per solve attempt; once spent, the
    /// next corruption falls through to the restart ladder as before.
    pub max_rollbacks: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            true_residual_period: 25,
            replacement_threshold: 0.5,
            stagnation_window: 400,
            divergence_factor: 1e8,
            max_restarts: 8,
            backoff: true,
            warm_restart: true,
            checkpoint_period: 0,
            max_rollbacks: 8,
        }
    }
}

impl RecoveryPolicy {
    /// Set the periodic true-residual recomputation interval.
    #[must_use]
    pub fn with_true_residual_period(mut self, period: usize) -> Self {
        self.true_residual_period = period;
        self
    }

    /// Set the residual-replacement deviation threshold.
    #[must_use]
    pub fn with_replacement_threshold(mut self, t: f64) -> Self {
        self.replacement_threshold = t;
        self
    }

    /// Set the stagnation window.
    #[must_use]
    pub fn with_stagnation_window(mut self, w: usize) -> Self {
        self.stagnation_window = w;
        self
    }

    /// Set the restart budget.
    #[must_use]
    pub fn with_max_restarts(mut self, n: usize) -> Self {
        self.max_restarts = n;
        self
    }

    /// Enable or disable look-ahead-depth backoff.
    #[must_use]
    pub fn with_backoff(mut self, on: bool) -> Self {
        self.backoff = on;
        self
    }

    /// Enable or disable warm restarts (restart from the best finite
    /// iterate rather than from `x0`).
    #[must_use]
    pub fn with_warm_restart(mut self, on: bool) -> Self {
        self.warm_restart = on;
        self
    }

    /// Set the checkpoint period (0 disables checkpoint/rollback).
    #[must_use]
    pub fn with_checkpoint_period(mut self, c: usize) -> Self {
        self.checkpoint_period = c;
        self
    }

    /// Set the per-attempt rollback budget.
    #[must_use]
    pub fn with_max_rollbacks(mut self, n: usize) -> Self {
        self.max_rollbacks = n;
        self
    }
}

/// Solve with the full recovery ladder around `variant`.
///
/// Each attempt runs the variant's own guarded solve. On a failed attempt
/// (breakdown, stagnation, divergence) the ladder warm-restarts from the
/// best finite iterate seen so far, backing off the look-ahead depth via
/// [`CgVariant::backoff`] when the policy asks for it, until the retry
/// budget `policy.max_restarts` is spent or the total iteration budget
/// `opts.max_iters` runs out. A convergence reached after ≥ 1 restart is
/// reported as [`Termination::RecoveredConverged`].
#[must_use]
pub fn solve_with_recovery(
    variant: &dyn CgVariant,
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let policy = opts.recovery.clone().unwrap_or_default();
    let mut inner_opts = opts.clone();
    inner_opts.recovery = Some(policy.clone());

    let mut owned: Option<Box<dyn CgVariant>> = None;
    let mut x_start: Option<Vec<f64>> = x0.map(<[f64]>::to_vec);
    let mut best_start_rr = f64::INFINITY;
    let mut total_counts = OpCounts::default();
    let mut all_norms: Vec<f64> = Vec::new();
    let mut total_iters = 0usize;
    let mut stats = RecoveryStats::default();
    let mut restarts = 0usize;
    let mut vscratch = vec![0.0; b.len()];

    loop {
        let v: &dyn CgVariant = owned.as_deref().unwrap_or(variant);
        inner_opts.max_iters = opts.max_iters.saturating_sub(total_iters).max(1);
        let res = v.solve(a, b, x_start.as_deref(), &inner_opts);

        total_iters += res.iterations;
        total_counts = total_counts + res.counts;
        stats.faults_detected += res.recovery.faults_detected;
        stats.replacements += res.recovery.replacements;
        stats.rollbacks += res.recovery.rollbacks;
        if all_norms.is_empty() {
            all_norms.extend_from_slice(&res.residual_norms);
        } else {
            // an attempt's first recorded norm is its (warm) initial
            // residual, already recorded as the previous attempt's final
            all_norms.extend_from_slice(&res.residual_norms[1.min(res.residual_norms.len())..]);
        }

        let done =
            res.converged || restarts >= policy.max_restarts || total_iters >= opts.max_iters;
        if done {
            let termination = if res.converged && restarts > 0 {
                Termination::RecoveredConverged
            } else {
                res.termination
            };
            stats.restarts = restarts;
            stats.final_k = v.depth();
            let mut out =
                SolveResult::new(res.x, termination, total_iters, all_norms, total_counts);
            out.recovery = stats;
            return out;
        }

        // ----- prepare the next rung of the ladder -----
        restarts += 1;
        total_counts.restarts += 1;

        // Warm start from the attempt's iterate if it is finite AND at
        // least as good (by true residual) as the start it came from —
        // never let a faulted attempt drag the ladder backwards. A
        // cold-restart policy skips this entirely and replays from `x0`.
        if policy.warm_restart && res.x.iter().all(|v| v.is_finite()) {
            let rr = inner_opts.span(vr_obs::SpanKind::Recovery, || {
                a.apply(&res.x, &mut vscratch);
                for (vi, bi) in vscratch.iter_mut().zip(b) {
                    *vi = bi - *vi;
                }
                kernels::dot_serial(&vscratch, &vscratch)
            });
            total_counts.matvecs += 1;
            if rr.is_finite() && rr < best_start_rr {
                best_start_rr = rr;
                x_start = Some(res.x);
            }
        }

        if policy.backoff {
            if let Some(next) = v.backoff() {
                owned = Some(next);
            }
        }
    }
}

/// Wrapper turning any variant into its recovered version, so experiment
/// sweeps can treat "look-ahead k=4 with recovery" as just another
/// [`CgVariant`].
#[derive(Debug, Clone)]
pub struct Recoverable<V> {
    inner: V,
}

impl<V: CgVariant> Recoverable<V> {
    /// Wrap `inner` in the recovery ladder.
    #[must_use]
    pub fn new(inner: V) -> Self {
        Recoverable { inner }
    }
}

impl<V: CgVariant> CgVariant for Recoverable<V> {
    fn name(&self) -> String {
        format!("recoverable({})", self.inner.name())
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        solve_with_recovery(&self.inner, a, b, x0, opts)
    }

    fn depth(&self) -> usize {
        self.inner.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookahead::LookaheadCg;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    #[test]
    fn policy_builders() {
        let p = RecoveryPolicy::default()
            .with_true_residual_period(10)
            .with_replacement_threshold(0.25)
            .with_stagnation_window(50)
            .with_max_restarts(3)
            .with_backoff(false)
            .with_warm_restart(false)
            .with_checkpoint_period(16)
            .with_max_rollbacks(4);
        assert_eq!(p.true_residual_period, 10);
        assert_eq!(p.replacement_threshold, 0.25);
        assert_eq!(p.stagnation_window, 50);
        assert_eq!(p.max_restarts, 3);
        assert!(!p.backoff);
        assert!(!p.warm_restart);
        assert_eq!(p.checkpoint_period, 16);
        assert_eq!(p.max_rollbacks, 4);
        assert!(RecoveryPolicy::default().warm_restart);
    }

    #[test]
    fn fault_free_recovery_is_transparent() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let plain = StandardCg::new().solve(&a, &b, None, &opts);
        let rec = solve_with_recovery(&StandardCg::new(), &a, &b, None, &opts);
        assert_eq!(rec.termination, Termination::Converged);
        assert_eq!(rec.recovery.restarts, 0);
        // residual replacement at the periodic checkpoints must not hurt
        assert!(rec.iterations <= plain.iterations + 5);
        assert!(rec.true_residual(&a, &b) < 1e-7);
    }

    #[test]
    fn ladder_backs_off_to_standard_on_indefinite() {
        // an indefinite matrix defeats every rung: the ladder must walk
        // k=4 → 2 → 1 → standard and stop within budget, never "converge"
        let a = gen::tridiag_toeplitz(12, 0.5, -1.0);
        let b = gen::rand_vector(12, 3);
        let opts =
            SolveOptions::default().with_recovery(RecoveryPolicy::default().with_max_restarts(4));
        let res = solve_with_recovery(&LookaheadCg::new(4), &a, &b, None, &opts);
        assert!(!res.converged);
        assert_eq!(res.recovery.restarts, 4);
        assert_eq!(res.recovery.final_k, 0, "ladder must end at standard CG");
    }

    #[test]
    fn recoverable_wrapper_names_and_delegates() {
        let r = Recoverable::new(LookaheadCg::new(2));
        assert_eq!(r.name(), "recoverable(lookahead-cg(k=2))");
        assert_eq!(r.depth(), 2);
        let a = gen::poisson2d(8);
        let b = gen::poisson2d_rhs(8);
        let res = r.solve(&a, &b, None, &SolveOptions::default().with_tol(1e-8));
        assert!(res.converged);
    }
}
