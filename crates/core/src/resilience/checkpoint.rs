//! Checkpoint/rollback: the rung of the recovery ladder *above* restart.
//!
//! A restart throws away every iteration since the beginning of the attempt;
//! a checkpoint rollback throws away at most `C` iterations. The ring keeps
//! a small number of snapshots of the *minimal* per-variant state (following
//! Cools et al., the iterate, residual, direction and the recurrence scalars
//! are enough — everything else is recomputable), saved every `C` iterations
//! into preallocated scratch so the hot path never allocates.
//!
//! The ring holds two slots: a rollback consumes the newest valid snapshot,
//! so a second corruption inside the same replay window falls back to the
//! previous one instead of spinning on a possibly-tainted state. Replaying
//! past a checkpoint boundary re-saves (and thus re-validates) a slot.

use super::recovery::RecoveryPolicy;
use crate::solver::SolveOptions;

/// One preallocated snapshot: the iteration it was taken at, the vector
/// state, and the recurrence scalars.
#[derive(Debug, Clone)]
struct Slot {
    iter: usize,
    valid: bool,
    vecs: Vec<Vec<f64>>,
    scalars: Vec<f64>,
}

/// Preallocated ring of solver-state snapshots (see module docs).
///
/// Shapes are fixed at construction: `nvecs` vectors of length `n` and
/// `nscalars` recurrence scalars per snapshot. [`CheckpointRing::save`] and
/// [`CheckpointRing::rollback`] only `copy_from_slice` into that scratch —
/// zero allocation on the iteration path.
#[derive(Debug, Clone)]
pub struct CheckpointRing {
    period: usize,
    max_rollbacks: usize,
    taken: usize,
    next: usize,
    slots: Vec<Slot>,
}

impl CheckpointRing {
    /// Ring with `period`-iteration checkpoints, a `max_rollbacks` budget,
    /// and room for `nvecs` vectors of length `n` plus `nscalars` scalars.
    #[must_use]
    pub fn new(
        period: usize,
        max_rollbacks: usize,
        nvecs: usize,
        n: usize,
        nscalars: usize,
    ) -> Self {
        let slot = Slot {
            iter: 0,
            valid: false,
            vecs: vec![vec![0.0; n]; nvecs],
            scalars: vec![0.0; nscalars],
        };
        CheckpointRing {
            period: period.max(1),
            max_rollbacks,
            taken: 0,
            next: 0,
            slots: vec![slot.clone(), slot],
        }
    }

    /// Build from a [`RecoveryPolicy`]; `None` when `checkpoint_period == 0`
    /// (checkpointing disabled — the classic restart-only ladder).
    #[must_use]
    pub fn from_policy(
        policy: &RecoveryPolicy,
        nvecs: usize,
        n: usize,
        nscalars: usize,
    ) -> Option<Self> {
        (policy.checkpoint_period > 0).then(|| {
            CheckpointRing::new(
                policy.checkpoint_period,
                policy.max_rollbacks,
                nvecs,
                n,
                nscalars,
            )
        })
    }

    /// Is a checkpoint due at `iter`? (Every `period` iterations, including
    /// iteration 0 so a rollback target always exists.)
    #[must_use]
    pub fn due(&self, iter: usize) -> bool {
        iter.is_multiple_of(self.period)
    }

    /// Snapshot `vecs`/`scalars` as the state at `iter` if a checkpoint is
    /// due there; no-op otherwise. Traced as [`vr_obs::SpanKind::Checkpoint`].
    pub fn maybe_save(
        &mut self,
        opts: &SolveOptions,
        iter: usize,
        vecs: &[&[f64]],
        scalars: &[f64],
    ) {
        if self.due(iter) {
            self.save(opts, iter, vecs, scalars);
        }
    }

    /// Unconditionally snapshot `vecs`/`scalars` as the state at `iter`.
    pub fn save(&mut self, opts: &SolveOptions, iter: usize, vecs: &[&[f64]], scalars: &[f64]) {
        let slot_idx = self.next;
        self.next = (self.next + 1) % self.slots.len();
        let slot = &mut self.slots[slot_idx];
        debug_assert_eq!(vecs.len(), slot.vecs.len());
        debug_assert_eq!(scalars.len(), slot.scalars.len());
        opts.span(vr_obs::SpanKind::Checkpoint, || {
            for (dst, src) in slot.vecs.iter_mut().zip(vecs) {
                dst.copy_from_slice(src);
            }
            slot.scalars.copy_from_slice(scalars);
            slot.iter = iter;
            slot.valid = true;
        });
    }

    /// Restore the newest valid snapshot into `vecs`/`scalars`, consuming
    /// it, and return the iteration it was taken at. `None` when the
    /// rollback budget is spent or no valid snapshot remains — the caller
    /// then falls through to the restart ladder. Traced as
    /// [`vr_obs::SpanKind::Recovery`].
    pub fn rollback(
        &mut self,
        opts: &SolveOptions,
        vecs: &mut [&mut [f64]],
        scalars: &mut [f64],
    ) -> Option<usize> {
        if self.taken >= self.max_rollbacks {
            return None;
        }
        let slot_idx = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .max_by_key(|(_, s)| s.iter)
            .map(|(i, _)| i)?;
        let slot = &mut self.slots[slot_idx];
        debug_assert_eq!(vecs.len(), slot.vecs.len());
        debug_assert_eq!(scalars.len(), slot.scalars.len());
        opts.span(vr_obs::SpanKind::Recovery, || {
            for (dst, src) in vecs.iter_mut().zip(&slot.vecs) {
                dst.copy_from_slice(src);
            }
            scalars.copy_from_slice(&slot.scalars);
        });
        slot.valid = false;
        // next save overwrites the consumed slot first
        self.next = slot_idx;
        self.taken += 1;
        Some(slot.iter)
    }

    /// Rollbacks consumed so far.
    #[must_use]
    pub fn rollbacks_taken(&self) -> usize {
        self.taken
    }

    /// Checkpoint period in iterations.
    #[must_use]
    pub fn period(&self) -> usize {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn from_policy_respects_zero_period() {
        let p = RecoveryPolicy::default();
        assert!(CheckpointRing::from_policy(&p, 3, 8, 1).is_none());
        let p = p.with_checkpoint_period(10);
        let ring = CheckpointRing::from_policy(&p, 3, 8, 1).unwrap();
        assert_eq!(ring.period(), 10);
    }

    #[test]
    fn save_and_rollback_round_trip() {
        let o = opts();
        let mut ring = CheckpointRing::new(5, 4, 2, 4, 2);
        let x = [1.0, 2.0, 3.0, 4.0];
        let r = [5.0, 6.0, 7.0, 8.0];
        ring.maybe_save(&o, 0, &[&x, &r], &[0.25, 0.5]);
        // not due at 3: state unchanged
        ring.maybe_save(&o, 3, &[&[9.0; 4], &[9.0; 4]], &[9.0, 9.0]);

        let mut xb = [0.0; 4];
        let mut rb = [0.0; 4];
        let mut sb = [0.0; 2];
        let iter = ring
            .rollback(&o, &mut [&mut xb, &mut rb], &mut sb)
            .expect("one valid snapshot");
        assert_eq!(iter, 0);
        assert_eq!(xb, x);
        assert_eq!(rb, r);
        assert_eq!(sb, [0.25, 0.5]);
        assert_eq!(ring.rollbacks_taken(), 1);
    }

    #[test]
    fn rollback_consumes_newest_then_falls_to_older() {
        let o = opts();
        let mut ring = CheckpointRing::new(5, 4, 1, 2, 1);
        ring.maybe_save(&o, 0, &[&[1.0, 1.0]], &[1.0]);
        ring.maybe_save(&o, 5, &[&[2.0, 2.0]], &[2.0]);

        let mut v = [0.0; 2];
        let mut s = [0.0];
        assert_eq!(ring.rollback(&o, &mut [&mut v], &mut s), Some(5));
        assert_eq!(s, [2.0]);
        // newest consumed: second rollback reaches the older snapshot
        assert_eq!(ring.rollback(&o, &mut [&mut v], &mut s), Some(0));
        assert_eq!(s, [1.0]);
        // ring empty now
        assert_eq!(ring.rollback(&o, &mut [&mut v], &mut s), None);
    }

    #[test]
    fn rollback_budget_is_enforced() {
        let o = opts();
        let mut ring = CheckpointRing::new(5, 1, 1, 2, 0);
        ring.maybe_save(&o, 0, &[&[1.0, 1.0]], &[]);
        ring.maybe_save(&o, 5, &[&[2.0, 2.0]], &[]);
        let mut v = [0.0; 2];
        assert!(ring.rollback(&o, &mut [&mut v], &mut []).is_some());
        // budget of 1 spent: older snapshot still valid but unreachable
        assert!(ring.rollback(&o, &mut [&mut v], &mut []).is_none());
    }

    #[test]
    fn replay_resaves_into_consumed_slot() {
        let o = opts();
        let mut ring = CheckpointRing::new(5, 8, 1, 2, 1);
        ring.maybe_save(&o, 0, &[&[1.0, 1.0]], &[1.0]);
        ring.maybe_save(&o, 5, &[&[2.0, 2.0]], &[2.0]);
        let mut v = [0.0; 2];
        let mut s = [0.0];
        // corruption at iter 7 → roll back to 5, replay, re-save at 5
        assert_eq!(ring.rollback(&o, &mut [&mut v], &mut s), Some(5));
        ring.maybe_save(&o, 5, &[&v[..]], &s);
        // both snapshots valid again: newest is the re-saved iter 5
        assert_eq!(ring.rollback(&o, &mut [&mut v], &mut s), Some(5));
        assert_eq!(ring.rollback(&o, &mut [&mut v], &mut s), Some(0));
    }
}
