//! # vr-cg
//!
//! The core algorithms of the reproduction of Van Rosendale,
//! *Minimizing Inner Product Data Dependencies in Conjugate Gradient
//! Iteration* (NASA CR-172178 / ICASE 83-36, 1983).
//!
//! ## The paper in one paragraph
//!
//! Standard CG serializes two `log N`-deep inner-product fan-ins per
//! iteration, so on a machine with ≥ N processors an iteration costs
//! `Θ(log N)`. The paper restructures the algorithm algebraically: the
//! scalars `(r⁽ⁿ⁾,r⁽ⁿ⁾)` and `(p⁽ⁿ⁾,Ap⁽ⁿ⁾)` are expressed as linear
//! combinations (relation (*)) of inner products of *iteration n−k*
//! vectors, whose fan-ins therefore have k iterations of slack. With
//! `k = log N`, only the `log k = log log N`-deep combination of the (*)
//! terms remains on the critical path, giving per-iteration parallel time
//! `max(log d, log log N)`.
//!
//! ## Solvers
//!
//! | module | algorithm | paper section |
//! |---|---|---|
//! | [`standard`] | Hestenes-Stiefel CG | §2 |
//! | [`overlap_k1`] | one-step overlapped CG | §3 |
//! | [`lookahead`] | general look-ahead CG (moment window) | §4-5 |
//! | [`baselines::chronopoulos_gear`] | Chronopoulos-Gear CG | later literature |
//! | [`baselines::pipelined`] | Ghysels-Vanroose pipelined CG | later literature |
//! | [`baselines::three_term`] | three-term recurrence CG | Concus-Golub-O'Leary |
//! | [`baselines::precond`] | preconditioned CG | §1 (mentions preconditioning) |
//! | [`sstep`] | s-step / communication-avoiding CG (monomial, Newton, Chebyshev bases) | the paper's descendants |
//! | [`block`] | block CG for multiple right-hand sides | O'Leary 1980, contemporary |
//! | [`pipelined_deep`] | depth-l pipelined CG | Cornelis-Cools-Vanroose 2018 |
//! | [`predict_recompute`] | predict-and-recompute CG (plain and pipelined) | Chen-Carson 2019 |
//!
//! [`registry`] holds the canonical list of all registered variants; test
//! suites and the stability shoot-out derive their sweeps from it.
//!
//! All solvers implement [`CgVariant`] and are *numerically equivalent to
//! CG in exact arithmetic* — the integration tests verify iterate-level
//! agreement, and [`recurrence::symbolic`] machine-derives the (*)
//! coefficients the 1983 paper deferred to a never-published follow-up.
//!
//! ```
//! use vr_cg::{standard::StandardCg, CgVariant, SolveOptions};
//! use vr_linalg::gen;
//!
//! let a = gen::poisson2d(16);
//! let b = gen::poisson2d_rhs(16);
//! let res = StandardCg::new().solve(&a, &b, None, &SolveOptions::default());
//! assert!(res.converged);
//! assert!(res.final_residual < 1e-8 * vr_linalg::kernels::norm2(&b));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod block;
pub mod instrument;
pub mod lookahead;
pub mod mixed;
pub mod overlap_k1;
pub mod pipelined_deep;
pub mod predict_recompute;
pub mod recurrence;
pub mod registry;
pub mod resilience;
pub mod solver;
pub mod sstep;
pub mod standard;
pub mod sweep;

pub use instrument::{OpCounts, RecoveryStats};
pub use solver::{
    BasisEngine, CgVariant, KernelPolicy, Precision, ProgressHook, RoutingMeta, SimdPolicy,
    SolveOptions, SolveResult, SweepPolicy, Termination,
};
