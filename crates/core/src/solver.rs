//! Common solver API shared by all CG variants.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::recovery::RecoveryPolicy;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use vr_linalg::kernels::{self, DotMode};
use vr_linalg::{fused, LinearOperator};
use vr_par::fault::{FaultInjector, FaultSite};
use vr_par::team::{self, Team};
use vr_par::{reduce, PendingScalar};

/// How per-iteration vector updates and the reductions that consume them
/// are executed.
///
/// Both policies compute *bit-identical* scalar sequences for a given
/// `(dot_mode, threads, injector)` configuration — the fused kernels in
/// [`vr_linalg::fused`] preserve the exact association order of their
/// two-pass compositions. The difference is purely memory traffic: `Fused`
/// streams each vector through memory once where `Reference` makes separate
/// passes for the update and the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Textbook composition: separate axpy/xpay passes followed by separate
    /// inner products. The formulation all op-count claims are stated in.
    Reference,
    /// Single-pass fused kernels (update + reduction in one sweep); on
    /// operators that support it, matvec+dot without materializing `A·p`.
    #[default]
    Fused,
}

/// How much of an iteration a single kernel invocation covers.
///
/// [`KernelPolicy`] fuses *pairs* (an update with the reduction that
/// consumes it); `SweepPolicy::WholeIteration` generalizes that to the whole
/// iteration: matvec staging, both dot reductions, and the x/r/p updates run
/// as one pass over cache-resident chunk slices (the
/// [`vr_linalg::sweep::FusedIterationSweep`] engine), so each vector element
/// is loaded from DRAM once per iteration instead of once per kernel.
///
/// Both policies compute **bit-identical** solves for an eligible
/// configuration — the sweep engine reproduces the fixed 256-leaf chunk
/// reduction layout and the exact elementwise operation sequences of the
/// unfused path at any tile size, lane width, and thread width. The sweep is
/// opt-in and deliberately narrow: it requires `DotMode::Tree`,
/// `Precision::F64`, no fault injector, no recovery policy, no reduction
/// checksum, a sweepable operator ([`LinearOperator::as_sweep`]), and a
/// variant whose dependency structure permits a single-pass schedule
/// ([`CgVariant::sweep_eligible`]). Anything else terminates with
/// [`Termination::Unsupported`] — rejecting explicitly beats silently
/// falling back and reporting numbers the caller would misattribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepPolicy {
    /// Per-kernel execution under [`KernelPolicy`] (the default).
    #[default]
    Fused,
    /// One cache-resident pass per CG iteration (see
    /// [`vr_linalg::sweep`]).
    WholeIteration,
}

/// How block Krylov bases (s-step columns, lookahead startup families)
/// are constructed.
///
/// Both engines compute every element through the exact same per-row
/// arithmetic, so solver traces are **bit-identical** between them for
/// any `(dot_mode, threads)` configuration — the difference is purely
/// memory traffic: `Mpk` streams each operand tile through cache once
/// per `s` operator applications where `Naive` makes `s` full-vector
/// passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BasisEngine {
    /// Level-by-level full-vector sweeps (the reference formulation all
    /// op-count claims are stated in).
    Naive,
    /// Cache-blocked matrix-powers kernel: one temporally-tiled sweep
    /// builds all `s` columns (see [`vr_linalg::mpk`]).
    #[default]
    Mpk,
}

/// Which instruction-set backend the leaf kernels run on.
///
/// Every level of [`vr_par::simd`] produces **bit-identical** results — the
/// lane-blocked accumulator layout is part of the numerical contract, not
/// an implementation detail — so this policy only ever changes speed. It
/// exists so measurements (and the differential suite) can pin a backend
/// explicitly instead of depending on the `VR_SIMD` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Ambient selection: the thread-local override if one is installed,
    /// else the process level (`VR_SIMD` env, else best available).
    #[default]
    Auto,
    /// Force the portable scalar backend on the solve thread.
    Scalar,
    /// Force the widest available vector backend on the solve thread
    /// (falls back to scalar on hosts without AVX2).
    Simd,
}

/// Working precision of the iteration's vector recurrences.
///
/// `Mixed` keeps the CG working vectors (`x`, `r`, `p`, and the variant's
/// auxiliaries) in `f32` — halving the bytes every sweep streams — while
/// *all* safety-critical arithmetic stays in `f64`: reduction accumulation
/// (the `f32` leaf kernels widen every product before summing), the scalar
/// recurrences, periodic true-residual recomputation, residual replacement,
/// and convergence confirmation. A mixed solve never reports convergence
/// from the `f32` recurrence alone; the claim is always confirmed against
/// the `f64` true residual (see [`crate::mixed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full double precision everywhere (the reference formulation).
    #[default]
    F64,
    /// `f32` working vectors with `f64` guard arithmetic. Only variants
    /// with [`CgVariant::mixed_eligible`]` == true` support it; others
    /// terminate immediately with [`Termination::Unsupported`]. Requires
    /// an operator with a native `f32` path
    /// ([`LinearOperator::apply_f32`]).
    Mixed,
}

/// Per-iteration progress callback: `(iteration, residual_norm)`.
///
/// Invoked from [`SolveOptions::service_poll`] at the top of every
/// iteration of every variant, with the *recursive* residual norm the
/// variant is tracking (the square root of the same squared quantity its
/// convergence test compares — for variants that push per-iteration
/// entries into [`SolveResult::residual_norms`], the streamed value is
/// bit-identical to the recorded one). The callback runs on the solve
/// thread, so it must be cheap and must not block on the solve itself;
/// the solve daemon uses it to stream convergence events to clients.
#[derive(Clone)]
pub struct ProgressHook(Arc<dyn Fn(usize, f64) + Send + Sync>);

impl ProgressHook {
    /// Wrap a callback.
    pub fn new(f: impl Fn(usize, f64) + Send + Sync + 'static) -> Self {
        ProgressHook(Arc::new(f))
    }

    /// Invoke the callback.
    #[inline]
    pub fn call(&self, iter: usize, residual: f64) {
        (self.0)(iter, residual);
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Record of a thread request clamped to the host's parallelism by
/// [`SolveOptions::with_threads`] — the recorded warning that replaces
/// silent oversubscription on small containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadClamp {
    /// What the caller asked for.
    pub requested: usize,
    /// What the host could grant (`available_parallelism`).
    pub granted: usize,
}

/// The host's available parallelism (1 if it cannot be determined).
#[must_use]
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Options controlling a solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Relative residual tolerance: converge when
    /// `‖r‖₂ ≤ tol · ‖b‖₂`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Summation order for inner products.
    pub dot_mode: DotMode,
    /// Record the (recursive) residual norm at every iteration.
    pub record_residuals: bool,
    /// Fault injector threaded through the reduction path and scalar
    /// recurrences (None = fault-free). See [`crate::resilience::fault`].
    pub injector: Option<Arc<dyn FaultInjector>>,
    /// Breakdown-recovery policy (None = classic behavior: fail on the
    /// first suspicious scalar). See [`crate::resilience::recovery`].
    pub recovery: Option<RecoveryPolicy>,
    /// Kernel execution policy (fused single-pass vs reference two-pass).
    pub kernel_policy: KernelPolicy,
    /// Iteration execution policy (per-kernel vs whole-iteration sweep
    /// fusion; see [`SweepPolicy`]).
    pub sweep_policy: SweepPolicy,
    /// Explicit whole-iteration sweep staging-tile size, in *elements* per
    /// staged sub-range (see [`vr_linalg::sweep::FusedIterationSweep`]).
    /// `None` uses the L1-derived heuristic from the [`vr_par::cache`]
    /// probe. Numerically inert — any tile size produces identical bits —
    /// so it exists for cache experiments and the differential tests'
    /// degenerate (1-element / whole-domain) coverage. Ignored under
    /// [`SweepPolicy::Fused`].
    pub sweep_tile: Option<usize>,
    /// Resolved non-temporal-store cutoff (bytes), read once from the
    /// [`vr_par::cache`] sysfs probe when the options are built. Kernels
    /// that stream a pure output compare their output size against this
    /// precomputed value ([`SolveOptions::nt_stores`]) instead of
    /// re-deriving the cutoff per invocation.
    pub nt_cutoff_bytes: usize,
    /// Worker threads for vector kernels and reductions. `1` (the default)
    /// keeps everything on the calling thread; `>= 2` runs matvecs, vector
    /// updates and `DotMode::Tree` reductions on a persistent SPMD team
    /// (see [`vr_par::team`]). Thread count never changes result bits:
    /// elementwise kernels and row-partitioned matvecs are exact, and
    /// `Tree` reductions use a fixed 256-leaf chunk layout at *every*
    /// width, including 1. Order-preserving modes (`Serial`, `Kahan`)
    /// keep their reductions on the calling thread (see
    /// [`SolveOptions::dot`]).
    pub threads: usize,
    /// Persistent worker team backing multi-threaded solves. Attached once
    /// by [`SolveOptions::with_threads`] (shared per-process, keyed by
    /// width) so solver hot loops never spawn threads; `None` for
    /// single-threaded solves. [`SolveOptions::team`] re-resolves the
    /// handle if `threads` was mutated directly.
    pub team: Option<Arc<Team>>,
    /// Set when [`SolveOptions::with_threads`] clamped an oversubscribing
    /// request down to the host's parallelism (graceful degradation on
    /// small containers; `None` when the request was granted as asked).
    /// Explicit [`SolveOptions::with_team`] attachments are never clamped.
    pub thread_clamp: Option<ThreadClamp>,
    /// Duplicate-leaf checksum guard on split-phase reductions
    /// ([`SolveOptions::dot2_deferred`]): when `true` under
    /// `DotMode::Tree`, every deferred dot computes its fixed-layout leaf
    /// partials twice and the consume point compares the copies bit-for-bit
    /// (see [`PendingScalar::checked_deferred`]), so injected corruption is
    /// detected — and where possible repaired — in the *same* iteration
    /// window instead of smearing forward through the recurrences. Costs
    /// one extra leaf sweep per guarded reduction; fault-free checked
    /// solves stay bit-identical to unchecked ones.
    pub checksum: bool,
    /// Corrupted-leaf detections from checksum-guarded reductions, counted
    /// at their consume points. Variants drain this into
    /// [`RecoveryStats::faults_detected`] (see
    /// [`SolveOptions::drain_checksum_detections`]).
    pub checksum_detected: Arc<AtomicU64>,
    /// Engine for block Krylov basis construction (s-step / lookahead).
    pub basis_engine: BasisEngine,
    /// Explicit matrix-powers tile size (rows/planes per tile for
    /// stencils, matrix rows for CSR). `None` uses the operator's L2
    /// working-set heuristic. Ignored under [`BasisEngine::Naive`].
    pub mpk_tile: Option<usize>,
    /// Instruction-set backend for leaf kernels (never changes bits; see
    /// [`SimdPolicy`]). Variants install it on the solve thread via
    /// [`SolveOptions::simd_guard`].
    pub simd_policy: SimdPolicy,
    /// Working precision of the vector recurrences (see [`Precision`]).
    pub precision: Precision,
    /// Span tracer for critical-path profiling (None = untraced). When
    /// attached, solver helpers record [`vr_obs`] spans on shard 0 and the
    /// team/kernel layers add worker-side detail. Tracing never changes
    /// result bits — every instrumented call runs the exact same kernel
    /// sequence — and the untraced path is a single branch per helper.
    pub tracer: Option<Arc<vr_obs::Tracer>>,
    /// Cooperative cancellation flag (None = uncancellable). Checked at
    /// every iteration boundary by [`SolveOptions::service_poll`]: when
    /// the flag is observed `true`, the variant stops *before* starting
    /// the iteration and returns [`Termination::Cancelled`] with the
    /// honest partial state (iterate, residual history, op counts) it had
    /// accumulated. Checking never changes result bits of uncancelled
    /// solves — it is a relaxed atomic load per iteration.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Per-iteration progress callback (None = silent). See
    /// [`ProgressHook`].
    pub progress: Option<ProgressHook>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-10,
            max_iters: 10_000,
            dot_mode: DotMode::Serial,
            record_residuals: true,
            injector: None,
            recovery: None,
            kernel_policy: KernelPolicy::default(),
            sweep_policy: SweepPolicy::default(),
            sweep_tile: None,
            nt_cutoff_bytes: vr_par::cache::nt_store_cutoff_bytes(),
            threads: 1,
            team: None,
            thread_clamp: None,
            checksum: false,
            checksum_detected: Arc::new(AtomicU64::new(0)),
            basis_engine: BasisEngine::default(),
            mpk_tile: None,
            simd_policy: SimdPolicy::default(),
            precision: Precision::default(),
            tracer: None,
            cancel: None,
            progress: None,
        }
    }
}

impl SolveOptions {
    /// Set the tolerance.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Set the iteration cap.
    #[must_use]
    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }

    /// Set the summation order.
    #[must_use]
    pub fn with_dot_mode(mut self, mode: DotMode) -> Self {
        self.dot_mode = mode;
        self
    }

    /// Attach a fault injector to the reduction path.
    #[must_use]
    pub fn with_injector(mut self, inj: Arc<dyn FaultInjector>) -> Self {
        self.injector = Some(inj);
        self
    }

    /// Attach a breakdown-recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Set the kernel execution policy.
    #[must_use]
    pub fn with_kernel_policy(mut self, policy: KernelPolicy) -> Self {
        self.kernel_policy = policy;
        self
    }

    /// Set the iteration execution policy (see [`SweepPolicy`]).
    #[must_use]
    pub fn with_sweep_policy(mut self, policy: SweepPolicy) -> Self {
        self.sweep_policy = policy;
        self
    }

    /// Override the whole-iteration sweep staging tile (see
    /// [`SolveOptions::sweep_tile`]).
    #[must_use]
    pub fn with_sweep_tile(mut self, tile: Option<usize>) -> Self {
        self.sweep_tile = tile;
        self
    }

    /// Whether a pure streaming write of `len` `f64` elements should bypass
    /// the cache with non-temporal stores, decided against the cutoff
    /// resolved once at option-build time (values are unchanged either way;
    /// this is purely a traffic heuristic).
    #[must_use]
    pub fn nt_stores(&self, len: usize) -> bool {
        len * std::mem::size_of::<f64>() > self.nt_cutoff_bytes
    }

    /// Set the block Krylov basis engine.
    #[must_use]
    pub fn with_basis_engine(mut self, engine: BasisEngine) -> Self {
        self.basis_engine = engine;
        self
    }

    /// Override the matrix-powers tile size (see [`SolveOptions::mpk_tile`]).
    #[must_use]
    pub fn with_mpk_tile(mut self, tile: Option<usize>) -> Self {
        self.mpk_tile = tile;
        self
    }

    /// Set the instruction-set backend policy (see [`SimdPolicy`]).
    #[must_use]
    pub fn with_simd_policy(mut self, policy: SimdPolicy) -> Self {
        self.simd_policy = policy;
        self
    }

    /// Set the working precision (see [`Precision`]).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Install this solve's [`SimdPolicy`] on the calling thread for the
    /// duration of the returned guard. Variants call this once at the top
    /// of `solve`, next to [`SolveOptions::trace_attach`]. `Auto` installs
    /// nothing (ambient level); `Scalar`/`Simd` pin the backend via
    /// [`vr_par::simd::lane_guard`]. Team workers always run at the
    /// process level — safe because every level produces the same bits.
    #[must_use]
    pub fn simd_guard(&self) -> Option<vr_par::simd::LaneGuard> {
        match self.simd_policy {
            SimdPolicy::Auto => None,
            SimdPolicy::Scalar => Some(vr_par::simd::lane_guard(vr_par::simd::SimdLevel::Scalar)),
            SimdPolicy::Simd => Some(vr_par::simd::lane_guard(vr_par::simd::auto_level())),
        }
    }

    /// Attach a span tracer (size it with [`vr_obs::Tracer::for_width`] to
    /// match `threads` if worker-side detail is wanted).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<vr_obs::Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach the tracer (if any) to the calling thread as shard 0 — and to
    /// the solve's worker team, so every worker records its barrier-epoch
    /// busy window on its own shard — for the duration of the returned
    /// guard. Variants call this once at the top of `solve` so the
    /// TLS-instrumented layers (team epochs, reduction fan-ins, deferred
    /// waits) record alongside the solver-level spans. Size the tracer with
    /// [`vr_obs::Tracer::for_width`] to match `threads`; out-of-range
    /// shards are silently dropped by the tracer, so a shard-0-only tracer
    /// simply skips the worker-side detail.
    #[must_use]
    pub fn trace_attach(&self) -> Option<TraceGuard> {
        self.tracer.as_ref().map(|tr| {
            let team = self.team();
            if let Some(t) = &team {
                t.set_tracer(Some(Arc::clone(tr)));
            }
            TraceGuard {
                // SAFETY: the tracer Arc lives in `self` for the whole solve
                // and the guard is bound to a local in the variant's `solve`
                // frame, which borrows `self` — so the guard cannot outlive
                // the tracer, and it is dropped (not leaked) on every exit
                // path. The solve thread is shard 0 by convention.
                _tls: unsafe { vr_obs::tls::attach(tr, 0) },
                team,
            }
        })
    }

    /// Record an iteration-boundary marker (shard 0). Variants call this
    /// at the top of each iteration; the critical-path aggregator buckets
    /// spans into the windows between consecutive marks.
    #[inline]
    pub fn iter_mark(&self) {
        if let Some(tr) = self.tracer.as_deref() {
            tr.mark(0, vr_obs::SpanKind::IterMark);
        }
    }

    /// Attach a cooperative cancellation flag (see
    /// [`SolveOptions::cancel`]).
    #[must_use]
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Attach a per-iteration progress callback (see [`ProgressHook`]).
    #[must_use]
    pub fn with_progress(mut self, f: impl Fn(usize, f64) + Send + Sync + 'static) -> Self {
        self.progress = Some(ProgressHook::new(f));
        self
    }

    /// Service hook, called by every variant at the top of each iteration
    /// right after [`SolveOptions::iter_mark`], with the *squared*
    /// recursive residual norm its convergence test is about to compare.
    /// Streams progress (as `rr_sq.max(0.0).sqrt()` — exactly how variants
    /// derive recorded norms from their squared recurrences) and polls the
    /// cancellation flag; returns `true` when the solve should stop with
    /// [`Termination::Cancelled`] instead of starting the iteration. The
    /// unattached path is two `None` branches — no atomics, no arithmetic.
    #[inline]
    #[must_use]
    pub fn service_poll(&self, iter: usize, rr_sq: f64) -> bool {
        if let Some(p) = &self.progress {
            p.call(iter, rr_sq.max(0.0).sqrt());
        }
        match &self.cancel {
            None => false,
            Some(flag) => flag.load(Ordering::Relaxed),
        }
    }

    /// Run `f` under a shard-0 span of `kind` when traced; just run it
    /// when not. The untraced cost is this one branch.
    #[inline]
    pub(crate) fn span<R>(&self, kind: vr_obs::SpanKind, f: impl FnOnce() -> R) -> R {
        self.span_bytes(kind, 0, f)
    }

    /// [`SolveOptions::span`] carrying a logical-traffic byte tally: the
    /// vector elements the wrapped sweep accesses × their element width,
    /// read-modify-write streams counted twice (see
    /// [`vr_obs::Span::bytes`]). Untraced, `bytes` is dropped unevaluated
    /// work-free — callers pass a precomputed product, never a closure.
    #[inline]
    pub(crate) fn span_bytes<R>(
        &self,
        kind: vr_obs::SpanKind,
        bytes: u64,
        f: impl FnOnce() -> R,
    ) -> R {
        match self.tracer.as_deref() {
            None => f(),
            Some(tr) => {
                let start = tr.now_ns();
                let out = f();
                tr.record_since_bytes(0, kind, start, bytes);
                out
            }
        }
    }

    /// Set the worker-thread count for kernels and reductions.
    ///
    /// The request is clamped to the host's available parallelism — a team
    /// wider than the machine only adds context-switch latency to every
    /// barrier epoch, so oversubscription degrades gracefully instead of
    /// silently: a clamp is recorded in [`SolveOptions::thread_clamp`].
    /// (Values are width-invariant, so clamping never changes result
    /// bits.) Callers that genuinely want an oversubscribed or
    /// fault-injected team attach one explicitly with
    /// [`SolveOptions::with_team`].
    ///
    /// For an effective width `>= 2` this attaches the process-shared
    /// persistent [`Team`] *now*, so the solve itself never spawns — hot
    /// loops step the long-lived workers through barrier-synchronized
    /// epochs instead.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        let requested = threads.max(1);
        let granted = requested.min(host_cpus());
        self.thread_clamp = (granted < requested).then_some(ThreadClamp { requested, granted });
        self.threads = granted;
        self.team = if self.threads >= 2 {
            Some(team::shared_team(self.threads))
        } else {
            None
        };
        self
    }

    /// Attach an explicit [`Team`] (no host-parallelism clamp — the caller
    /// owns the width choice). Used by failover experiments that need a
    /// team they can kill workers of, and by tests pinning multi-shard
    /// behavior on small hosts.
    #[must_use]
    pub fn with_team(mut self, team: Arc<Team>) -> Self {
        self.threads = team.width();
        self.thread_clamp = None;
        self.team = Some(team);
        self
    }

    /// Enable / disable the duplicate-leaf reduction checksum (see
    /// [`SolveOptions::checksum`]).
    #[must_use]
    pub fn with_reduction_checksum(mut self, on: bool) -> Self {
        self.checksum = on;
        self
    }

    /// Drain the checksum detection counter (returns the count since the
    /// last drain). Variants call this once at solve start (discarding
    /// leftovers from an aborted earlier consumer of a cloned option set)
    /// and once at solve end, folding the result into
    /// [`RecoveryStats::faults_detected`].
    #[must_use]
    pub fn drain_checksum_detections(&self) -> u64 {
        self.checksum_detected.swap(0, Ordering::Relaxed)
    }

    /// The persistent team handle for this solve (`None` ⇒ single-threaded).
    ///
    /// Fast path: the handle attached by [`SolveOptions::with_threads`] /
    /// [`SolveOptions::with_team`] — *unless it is poisoned*: a poisoned
    /// handle is never returned (the solve that poisoned it already
    /// surfaced its breakdown; later consumers must not inherit the dying
    /// team, which used to be a race when two solves observed the poison
    /// concurrently). A *degraded* team (lost workers, failover active) is
    /// still returned: mid-solve worker loss keeps the solve on the
    /// surviving members, bit-identically. If `threads` was mutated
    /// directly (leaving `team` stale) or the attached team is poisoned,
    /// this re-resolves the shared team so the fields cannot disagree.
    #[must_use]
    pub fn team(&self) -> Option<Arc<Team>> {
        match &self.team {
            Some(t) if t.width() == self.threads && !t.is_poisoned() => Some(Arc::clone(t)),
            _ if self.threads >= 2 => Some(team::shared_team(self.threads)),
            _ => None,
        }
    }

    /// Inner product through this solve's fault and threading path.
    ///
    /// * **Injector attached** — the deterministic 256-leaf chunk tree with
    ///   per-partial and final-value corruption
    ///   ([`reduce::par_dot_with_in`]); bits are independent of the team
    ///   width because the partial layout is fixed by the chunk count, not
    ///   the thread count.
    /// * **`DotMode::Tree`** — the same fixed-layout chunk tree at *every*
    ///   width, including 1, so `Tree` solves are bit-identical for any
    ///   team size.
    /// * **`DotMode::Serial` / `DotMode::Kahan`** — order-preserving
    ///   left-to-right sums that no partitioned reduction can reproduce
    ///   bit-exactly, so they stay on the calling thread even when a team
    ///   is attached (the team still parallelizes matvecs and elementwise
    ///   updates, which are exact per element). Requesting threads must
    ///   never silently change the summation order the user asked for.
    #[must_use]
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        // The caller consumes the scalar immediately, so the whole call —
        // leaf sweep plus fan-in — is dependency-gated (`DotWait`).
        self.span_bytes(vr_obs::SpanKind::DotWait, 16 * x.len() as u64, || {
            let t = self.team();
            match &self.injector {
                Some(inj) => reduce::par_dot_with_in(t.as_deref(), x, y, inj.as_ref()),
                None => match self.dot_mode {
                    DotMode::Tree => reduce::par_dot_in(t.as_deref(), x, y),
                    DotMode::Serial | DotMode::Kahan => kernels::dot(self.dot_mode, x, y),
                },
            }
        })
    }

    /// Pass a scalar-recurrence result through this solve's fault path.
    #[must_use]
    pub fn scalar(&self, v: f64) -> f64 {
        if let Some(tr) = self.tracer.as_deref() {
            tr.mark(0, vr_obs::SpanKind::ScalarOp);
        }
        match &self.injector {
            None => v,
            Some(inj) => inj.corrupt(FaultSite::ScalarRecurrence, v),
        }
    }

    /// Whether this configuration executes fused kernels.
    fn fuse(&self) -> bool {
        self.kernel_policy == KernelPolicy::Fused
    }

    /// Fused `y ← A·x` + `(x, y)`, tallying one matvec and one dot
    /// (reference-equivalent logical counts, regardless of policy).
    ///
    /// The matvec itself always runs team-parallel when a team is attached
    /// (row partitions are exact). The dot follows [`SolveOptions::dot`]'s
    /// decision table; single-pass fusion (`apply_dot`, counted in
    /// `fused_ops`) additionally requires the serial, fault-free,
    /// order-preserving path, since an operator's fused sweep reduces with
    /// `dot_mode` association on the calling thread.
    #[must_use]
    pub fn matvec_dot(
        &self,
        a: &dyn LinearOperator,
        x: &[f64],
        y: &mut [f64],
        counts: &mut OpCounts,
    ) -> f64 {
        counts.matvecs += 1;
        counts.dots += 1;
        // Byte tallies cover the *vector* streams only (x read, y write =
        // 16n; the ride-along dot re-reads both = +16n) — operator-internal
        // data (CSR values/indices, stencil coefficients) is not counted,
        // matching `SolveOptions::matvec`.
        let mv_bytes = 16 * x.len() as u64;
        let t = self.team();
        if self.injector.is_some() {
            self.span_bytes(vr_obs::SpanKind::Matvec, mv_bytes, || {
                a.apply_team(t.as_deref(), x, y)
            });
            return self.dot(x, y);
        }
        match self.dot_mode {
            // Tree: matvec + fixed-layout chunk-tree dot at every width.
            // Written as the two calls [`LinearOperator::apply_dot_team`]'s
            // default body composes (bit-identical by its contract) so the
            // matvec sweep and the eager, dependency-gated dot are
            // attributed separately.
            DotMode::Tree => {
                let t = t.as_deref();
                self.span_bytes(vr_obs::SpanKind::Matvec, mv_bytes, || a.apply_team(t, x, y));
                self.span_bytes(vr_obs::SpanKind::DotWait, mv_bytes, || {
                    reduce::par_dot_in(t, x, y)
                })
            }
            DotMode::Serial | DotMode::Kahan => {
                if t.is_none() && self.fuse() {
                    counts.fused_ops += 1;
                    // Single fused sweep: the dot rides the matvec's memory
                    // traffic, so the whole pass is attributed as matvec.
                    self.span_bytes(vr_obs::SpanKind::Matvec, mv_bytes, || {
                        a.apply_dot(self.dot_mode, x, y)
                    })
                } else {
                    self.span_bytes(vr_obs::SpanKind::Matvec, mv_bytes, || {
                        a.apply_team(t.as_deref(), x, y)
                    });
                    self.span_bytes(vr_obs::SpanKind::DotWait, mv_bytes, || {
                        kernels::dot(self.dot_mode, x, y)
                    })
                }
            }
        }
    }

    /// Fused CG update `x ← x + λp`, `r ← r − λw`, returning `(r, r)`;
    /// tallies two vector ops and one dot.
    #[must_use]
    pub fn update_xr(
        &self,
        lambda: f64,
        p: &[f64],
        w: &[f64],
        x: &mut [f64],
        r: &mut [f64],
        counts: &mut OpCounts,
    ) -> f64 {
        counts.vector_ops += 2;
        counts.dots += 1;
        // p, w read; x, r read-modify-write → 6 streams of f64.
        let up_bytes = 48 * p.len() as u64;
        let t = self.team();
        let t = t.as_deref();
        if !self.fuse() {
            self.span_bytes(vr_obs::SpanKind::VectorOp, up_bytes, || {
                team::par_axpy_in(t, lambda, p, x);
                team::par_axpy_in(t, -lambda, w, r);
            });
            return self.dot(r, r);
        }
        counts.fused_ops += 1;
        // One fused sweep: the update is the useful work and the folded dot
        // partials ride along, so the pass is `VectorOp`; only the fan-in
        // inside the kernel (recorded as `DotFanIn` at the combine choke
        // point) is dependency-gated.
        self.span_bytes(vr_obs::SpanKind::VectorOp, up_bytes, || {
            match &self.injector {
                Some(inj) => fused::par_update_xr_with_in(t, lambda, p, w, x, r, inj.as_ref()),
                None => match self.dot_mode {
                    DotMode::Tree => fused::par_update_xr_in(t, lambda, p, w, x, r),
                    DotMode::Serial | DotMode::Kahan => {
                        fused::update_xr(self.dot_mode, lambda, p, w, x, r)
                    }
                },
            }
        })
    }

    /// Fused `y ← y + a·x` + `(y, z)`; tallies one vector op and one dot.
    #[must_use]
    pub fn axpy_dot(
        &self,
        a: f64,
        x: &[f64],
        y: &mut [f64],
        z: &[f64],
        counts: &mut OpCounts,
    ) -> f64 {
        counts.vector_ops += 1;
        counts.dots += 1;
        // x read, y read-modify-write, z read by the folded dot → 4 streams.
        let op_bytes = 32 * x.len() as u64;
        let t = self.team();
        let t = t.as_deref();
        if !self.fuse() {
            self.span_bytes(vr_obs::SpanKind::VectorOp, 24 * x.len() as u64, || {
                team::par_axpy_in(t, a, x, y)
            });
            return self.dot(y, z);
        }
        counts.fused_ops += 1;
        self.span_bytes(vr_obs::SpanKind::VectorOp, op_bytes, || {
            match &self.injector {
                Some(inj) => fused::par_axpy_dot_with_in(t, a, x, y, z, inj.as_ref()),
                None => match self.dot_mode {
                    DotMode::Tree => fused::par_axpy_dot_in(t, a, x, y, z),
                    DotMode::Serial | DotMode::Kahan => fused::axpy_dot(self.dot_mode, a, x, y, z),
                },
            }
        })
    }

    /// Fused `y ← y + a·x` + `(y, y)`; tallies one vector op and one dot.
    #[must_use]
    pub fn axpy_norm2_sq(&self, a: f64, x: &[f64], y: &mut [f64], counts: &mut OpCounts) -> f64 {
        counts.vector_ops += 1;
        counts.dots += 1;
        // x read, y read-modify-write (the norm rides the update) → 3 streams.
        let op_bytes = 24 * x.len() as u64;
        let t = self.team();
        let t = t.as_deref();
        if !self.fuse() {
            self.span_bytes(vr_obs::SpanKind::VectorOp, op_bytes, || {
                team::par_axpy_in(t, a, x, y)
            });
            return self.dot(y, y);
        }
        counts.fused_ops += 1;
        self.span_bytes(vr_obs::SpanKind::VectorOp, op_bytes, || {
            match &self.injector {
                Some(inj) => fused::par_axpy_norm2_sq_with_in(t, a, x, y, inj.as_ref()),
                None => match self.dot_mode {
                    DotMode::Tree => fused::par_axpy_norm2_sq_in(t, a, x, y),
                    DotMode::Serial | DotMode::Kahan => {
                        fused::axpy_norm2_sq(self.dot_mode, a, x, y)
                    }
                },
            }
        })
    }

    /// Two inner products sharing the left vector, `((x,y), (x,z))`, in one
    /// sweep under `Fused`; tallies two dots.
    #[must_use]
    pub fn dot2(&self, x: &[f64], y: &[f64], z: &[f64], counts: &mut OpCounts) -> (f64, f64) {
        counts.dots += 2;
        if !self.fuse() {
            return (self.dot(x, y), self.dot(x, z));
        }
        counts.fused_ops += 1;
        let t = self.team();
        let t = t.as_deref();
        // Eager pair: the sweep produces only dot partials and the caller
        // consumes both scalars immediately — the whole call is gated.
        // x, y, z each read once in the shared sweep → 3 streams.
        self.span_bytes(
            vr_obs::SpanKind::DotWait,
            24 * x.len() as u64,
            || match &self.injector {
                Some(inj) => fused::par_dot2_with_in(t, x, y, z, inj.as_ref()),
                None => match self.dot_mode {
                    DotMode::Tree => fused::par_dot2_in(t, x, y, z),
                    DotMode::Serial | DotMode::Kahan => fused::dot2(self.dot_mode, x, y, z),
                },
            },
        )
    }

    /// Split-phase variant of [`SolveOptions::dot2`]: *launch* both
    /// reductions now, *consume* them later.
    ///
    /// Under `DotMode::Tree` without an injector the team folds the
    /// fixed-layout leaf partials during the sweep epoch and the handles
    /// defer the `tree_combine` fan-in to their consume point
    /// ([`PendingScalar::wait`]), so the combine overlaps whatever vector
    /// work the caller schedules in between — the paper's overlap of
    /// summation with iteration work, realized on a real team. The
    /// resolved values are bit-identical to [`SolveOptions::dot2`] for the
    /// same configuration. Order-preserving modes and injected-fault runs
    /// evaluate eagerly (the fault contract fixes the corruption-event
    /// order at launch time), returning ready handles.
    #[must_use]
    pub fn dot2_deferred(
        &self,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        counts: &mut OpCounts,
    ) -> (PendingScalar, PendingScalar) {
        if self.dot_mode != DotMode::Tree || (self.injector.is_some() && !self.checksum) {
            let (dy, dz) = self.dot2(x, y, z, counts);
            return (PendingScalar::ready(dy), PendingScalar::ready(dz));
        }
        if self.checksum {
            return self.dot2_checked_deferred(x, y, z, counts);
        }
        counts.dots += 2;
        let t = self.team();
        let t = t.as_deref();
        // Launch-only: the leaf sweeps fold partials but nothing consumes a
        // scalar here, so this is overlappable work (`DotLaunch`); only the
        // `PendingScalar::wait` consume points are gated (`DeferredWait`).
        if self.fuse() {
            counts.fused_ops += 1;
            // Shared sweep: x, y, z read once → 3 streams.
            let folded = self.span_bytes(vr_obs::SpanKind::DotLaunch, 24 * x.len() as u64, || {
                fused::par_dot2_partials_in(t, x, y, z)
            });
            match folded {
                Ok((py, pz)) => (PendingScalar::deferred(py), PendingScalar::deferred(pz)),
                Err(_) => (
                    PendingScalar::ready(f64::NAN),
                    PendingScalar::ready(f64::NAN),
                ),
            }
        } else {
            // Two separate sweeps, each reading two vectors → 4 streams.
            let (py, pz) =
                self.span_bytes(vr_obs::SpanKind::DotLaunch, 32 * x.len() as u64, || {
                    (
                        reduce::par_dot_partials_in(t, x, y),
                        reduce::par_dot_partials_in(t, x, z),
                    )
                });
            match (py, pz) {
                (Ok(py), Ok(pz)) => (PendingScalar::deferred(py), PendingScalar::deferred(pz)),
                _ => (
                    PendingScalar::ready(f64::NAN),
                    PendingScalar::ready(f64::NAN),
                ),
            }
        }
    }

    /// Split-phase single inner product `(x, y)`: *launch* the reduction
    /// now, *consume* it later.
    ///
    /// The one-reduction sibling of [`SolveOptions::dot2_deferred`], for
    /// schedules that keep an odd number of dots in flight (the depth-l
    /// pipeline launches `l + 1` Gram-column dots per iteration). Same
    /// decision table: `DotMode::Tree` defers the fan-in to the consume
    /// point (checksum-guarded when enabled), order-preserving modes and
    /// injected-fault runs evaluate eagerly and return a ready handle.
    /// Resolved values are bit-identical to [`SolveOptions::dot`].
    #[must_use]
    pub fn dot_deferred(&self, x: &[f64], y: &[f64], counts: &mut OpCounts) -> PendingScalar {
        if self.dot_mode != DotMode::Tree || (self.injector.is_some() && !self.checksum) {
            counts.dots += 1;
            return PendingScalar::ready(self.dot(x, y));
        }
        counts.dots += 1;
        let t = self.team();
        let t = t.as_deref();
        if self.checksum {
            // Duplicate sweeps for the checksum: 2 × (x, y read).
            let launched =
                self.span_bytes(vr_obs::SpanKind::DotLaunch, 32 * x.len() as u64, || {
                    (
                        reduce::par_dot_partials_in(t, x, y),
                        reduce::par_dot_partials_in(t, x, y),
                    )
                });
            let (Ok(mut pa), Ok(mut pb)) = launched else {
                return PendingScalar::ready(f64::NAN);
            };
            if let Some(inj) = &self.injector {
                // Fixed serial corruption order (copy A then copy B),
                // matching the dot2 checked path's width-independent
                // fault determinism.
                for p in pa.iter_mut().chain(&mut pb) {
                    *p = inj.corrupt(FaultSite::DotPartial, *p);
                }
            }
            return PendingScalar::checked_deferred(pa, pb, Arc::clone(&self.checksum_detected));
        }
        let folded = self.span_bytes(vr_obs::SpanKind::DotLaunch, 16 * x.len() as u64, || {
            reduce::par_dot_partials_in(t, x, y)
        });
        match folded {
            Ok(p) => PendingScalar::deferred(p),
            Err(_) => PendingScalar::ready(f64::NAN),
        }
    }

    /// Checksum-guarded launch half of [`SolveOptions::dot2_deferred`]:
    /// each reduction's fixed-layout leaf partials are computed *twice*
    /// (independent sweeps of the same deterministic schedule), both copies
    /// pass through the fault injector as separate `DotPartial` event
    /// streams in a fixed program order, and the consume point verifies
    /// them against each other. This genuinely defers the fan-in even with
    /// an injector attached — the corruption surface moves to launch time,
    /// preserving the width-independent fault determinism contract.
    fn dot2_checked_deferred(
        &self,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        counts: &mut OpCounts,
    ) -> (PendingScalar, PendingScalar) {
        counts.dots += 2;
        let t = self.team();
        let t = t.as_deref();
        // Four sweeps (two per dot for the checksum), two reads each.
        let launched = self.span_bytes(vr_obs::SpanKind::DotLaunch, 64 * x.len() as u64, || {
            let ya = reduce::par_dot_partials_in(t, x, y);
            let za = reduce::par_dot_partials_in(t, x, z);
            let yb = reduce::par_dot_partials_in(t, x, y);
            let zb = reduce::par_dot_partials_in(t, x, z);
            (ya, za, yb, zb)
        });
        let (Ok(mut ya), Ok(mut za), Ok(mut yb), Ok(mut zb)) = launched else {
            return (
                PendingScalar::ready(f64::NAN),
                PendingScalar::ready(f64::NAN),
            );
        };
        if let Some(inj) = &self.injector {
            // Fixed serial corruption order (copy A of both dots, then
            // copy B) so a given seed reproduces the same fault pattern at
            // any team width, like the eager path.
            for p in ya.iter_mut().chain(&mut za).chain(&mut yb).chain(&mut zb) {
                *p = inj.corrupt(FaultSite::DotPartial, *p);
            }
        }
        (
            PendingScalar::checked_deferred(ya, yb, Arc::clone(&self.checksum_detected)),
            PendingScalar::checked_deferred(za, zb, Arc::clone(&self.checksum_detected)),
        )
    }

    /// Team-parallel `y ← A·x`; tallies one matvec. The matvec has no
    /// fault surface (faults inject on reductions and scalar recurrences),
    /// and row partitions are bit-exact at any width.
    ///
    /// Byte accounting covers the vector streams only (x read, y write);
    /// operator-internal data — CSR values/indices, stencil coefficients —
    /// is excluded, keeping the tally operator-shape-independent.
    pub fn matvec(&self, a: &dyn LinearOperator, x: &[f64], y: &mut [f64], counts: &mut OpCounts) {
        counts.matvecs += 1;
        let t = self.team();
        self.span_bytes(vr_obs::SpanKind::Matvec, 16 * x.len() as u64, || {
            a.apply_team(t.as_deref(), x, y)
        });
    }

    /// [`SolveOptions::matvec`] into a freshly allocated vector.
    #[must_use]
    pub fn matvec_alloc(
        &self,
        a: &dyn LinearOperator,
        x: &[f64],
        counts: &mut OpCounts,
    ) -> Vec<f64> {
        let mut y = vec![0.0; a.dim()];
        self.matvec(a, x, &mut y, counts);
        y
    }

    /// Team-parallel `y ← y + a·x` (exact per element at any width);
    /// tallies one vector op.
    pub fn axpy(&self, a: f64, x: &[f64], y: &mut [f64], counts: &mut OpCounts) {
        counts.vector_ops += 1;
        let t = self.team();
        // x read, y read-modify-write → 3 streams.
        self.span_bytes(vr_obs::SpanKind::VectorOp, 24 * x.len() as u64, || {
            team::par_axpy_in(t.as_deref(), a, x, y);
        });
    }

    /// Team-parallel `y ← x + a·y` (exact per element at any width);
    /// tallies one vector op.
    pub fn xpay(&self, x: &[f64], a: f64, y: &mut [f64], counts: &mut OpCounts) {
        counts.vector_ops += 1;
        let t = self.team();
        // x read, y read-modify-write → 3 streams.
        self.span_bytes(vr_obs::SpanKind::VectorOp, 24 * x.len() as u64, || {
            team::par_xpay_in(t.as_deref(), x, a, y);
        });
    }
}

/// Guard returned by [`SolveOptions::trace_attach`]: detaches the calling
/// thread's shard-0 tracer and clears the worker team's tracer slot when
/// dropped, so spans from a later (possibly untraced) solve on the shared
/// team never leak into this solve's recorder.
pub struct TraceGuard {
    _tls: vr_obs::tls::AttachGuard,
    team: Option<Arc<Team>>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(t) = &self.team {
            t.set_tracer(None);
        }
    }
}

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The residual tolerance was met.
    Converged,
    /// The residual tolerance was met, but only after ≥ 1 recovery restart
    /// (see [`crate::resilience::recovery`]). Counts as converged.
    RecoveredConverged,
    /// `max_iters` was exhausted.
    MaxIterations,
    /// A scalar recurrence produced a non-finite or non-positive quantity
    /// that must be positive for an SPD system (breakdown).
    Breakdown,
    /// The guard saw no residual progress over the policy's stagnation
    /// window (recovery-guarded solves only).
    Stagnated,
    /// The true residual grew beyond the policy's divergence factor
    /// (recovery-guarded solves only).
    Diverged,
    /// The requested configuration is not supported by this variant — e.g.
    /// [`Precision::Mixed`] on a variant without a mixed-precision path, or
    /// on an operator without [`LinearOperator::apply_f32`]. The solve
    /// performed no iterations; rejecting explicitly beats silently
    /// falling back to `f64` and reporting numbers the caller would
    /// misattribute.
    Unsupported,
    /// The caller's cancellation flag ([`SolveOptions::with_cancel_flag`])
    /// was observed set at an iteration boundary. The result carries the
    /// honest partial state — iterate, residual history, op counts — as of
    /// the last completed iteration; never counts as converged, even if
    /// the residual happened to be below tolerance when the flag landed
    /// (the convergence test for that iteration never ran).
    Cancelled,
}

impl Termination {
    /// Whether this termination means the tolerance was met.
    #[must_use]
    pub fn is_converged(self) -> bool {
        matches!(
            self,
            Termination::Converged | Termination::RecoveredConverged
        )
    }
}

/// How a solve was routed by a scheduling layer (the solve daemon): which
/// registry variant ran, why it was chosen, and whether the job was
/// coalesced into a block-CG batch. Attached after the fact by the
/// scheduler via [`SolveResult::with_routing`] — the variants themselves
/// never populate it (a library solve has no routing decision to record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingMeta {
    /// Registry key of the variant that ran (e.g. `"predict_recompute"`),
    /// or `"block"` for batched solves.
    pub variant_key: String,
    /// Why the router picked it (e.g. `"accuracy: lowest measured residual
    /// floor"`, `"explicit request"`, `"batched with 3 compatible jobs"`).
    pub reason: String,
    /// Whether the job was coalesced into a block-CG batch.
    pub batched: bool,
    /// Number of right-hand sides sharing the batch (1 for singletons).
    pub batch_width: usize,
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Why the iteration stopped.
    pub termination: Termination,
    /// Iterations performed.
    pub iterations: usize,
    /// Recursive residual norm per iteration (index 0 = initial), if
    /// recording was enabled; always contains at least the final value.
    pub residual_norms: Vec<f64>,
    /// Final *recursive* residual norm (as tracked by the algorithm).
    ///
    /// Contract: this is always `residual_norms.last()` — every variant
    /// records at least one norm, even with residual recording disabled
    /// and even for the zero-iteration case (where it is the initial
    /// residual norm). It is NaN only when the recurrence itself produced
    /// NaN, e.g. under injected faults without recovery.
    pub final_residual: f64,
    /// Operation counts.
    pub counts: OpCounts,
    /// Recovery counters (all zero for unguarded solves).
    pub recovery: RecoveryStats,
    /// Whether the tolerance was met ([`Termination::is_converged`]).
    pub converged: bool,
    /// Routing metadata attached by a scheduling layer (`None` for plain
    /// library solves; see [`RoutingMeta`]).
    pub routing: Option<RoutingMeta>,
}

impl SolveResult {
    /// Construct from parts, deriving `converged` and `final_residual`.
    ///
    /// # Panics
    /// Panics if `residual_norms` is empty — every variant must record at
    /// least the final residual norm (see the `final_residual` contract).
    #[must_use]
    pub fn new(
        x: Vec<f64>,
        termination: Termination,
        iterations: usize,
        residual_norms: Vec<f64>,
        counts: OpCounts,
    ) -> Self {
        let final_residual = *residual_norms
            .last()
            .expect("SolveResult: every variant must record at least one residual norm");
        SolveResult {
            x,
            converged: termination.is_converged(),
            termination,
            iterations,
            residual_norms,
            final_residual,
            counts,
            recovery: RecoveryStats::default(),
            routing: None,
        }
    }

    /// Attach routing metadata (builder used by scheduling layers).
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingMeta) -> Self {
        self.routing = Some(routing);
        self
    }

    /// True residual norm `‖b − A·x‖₂`, recomputed from scratch.
    #[must_use]
    pub fn true_residual(&self, a: &dyn LinearOperator, b: &[f64]) -> f64 {
        let ax = a.apply_alloc(&self.x);
        let mut r = vec![0.0; b.len()];
        vr_linalg::kernels::sub(b, &ax, &mut r);
        vr_linalg::kernels::norm2(&r)
    }
}

/// A conjugate-gradient variant: anything that can solve `A·u = b` for SPD
/// `A`. Object safe so that experiment harnesses can sweep over
/// `Vec<Box<dyn CgVariant>>`.
pub trait CgVariant {
    /// Short name for reports ("standard-cg", "lookahead-cg(k=4)", ...).
    fn name(&self) -> String;

    /// Solve `A·u = b` starting from `x0` (zero if `None`).
    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult;

    /// The next rung of the recovery ladder: a strictly more robust
    /// configuration of this variant (halved look-ahead depth / block
    /// size), or standard CG at the bottom. `None` means there is nothing
    /// more robust to fall back to — the ladder retries this variant
    /// as-is.
    fn backoff(&self) -> Option<Box<dyn CgVariant>> {
        None
    }

    /// Look-ahead depth / block size for reporting (0 = none; used for
    /// [`RecoveryStats::final_k`]).
    fn depth(&self) -> usize {
        0
    }

    /// Whether this variant supports [`Precision::Mixed`]. Defaults to
    /// `false`; variants with a mixed-precision twin in [`crate::mixed`]
    /// override it. A mixed solve on an ineligible variant terminates with
    /// [`Termination::Unsupported`] instead of silently running in `f64`.
    fn mixed_eligible(&self) -> bool {
        false
    }

    /// Whether this variant supports [`SweepPolicy::WholeIteration`].
    /// Defaults to `false`; variants whose dependency structure permits a
    /// single-pass iteration schedule (a whole-iteration twin in
    /// [`crate::sweep`]) override it. A sweep solve on an ineligible
    /// variant terminates with [`Termination::Unsupported`] instead of
    /// silently running per-kernel.
    fn sweep_eligible(&self) -> bool {
        false
    }
}

/// Shared solver-loop helpers.
pub(crate) mod util {
    use super::SolveOptions;
    use vr_linalg::kernels;
    use vr_linalg::LinearOperator;

    /// Initial residual `r = b − A·x0` and starting point. Returns
    /// `(x, r, ‖b‖)`.
    pub fn init_residual(
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
    ) -> (Vec<f64>, Vec<f64>, f64) {
        let n = a.dim();
        assert_eq!(b.len(), n, "rhs length != operator dim");
        let bnorm = kernels::norm2(b);
        match x0 {
            None => (vec![0.0; n], b.to_vec(), bnorm),
            Some(x0) => {
                assert_eq!(x0.len(), n, "x0 length != operator dim");
                // r ← A·x0, then r ← b − r in place: same bits as the
                // two-buffer `sub(b, ax, r)`, one allocation fewer.
                let mut r = vec![0.0; n];
                a.apply(x0, &mut r);
                for (ri, bi) in r.iter_mut().zip(b) {
                    *ri = bi - *ri;
                }
                (x0.to_vec(), r, bnorm)
            }
        }
    }

    /// Convergence threshold on the *squared* residual norm. Floored at
    /// the smallest positive normal so a zero rhs still terminates.
    pub fn threshold_sq(opts: &SolveOptions, bnorm: f64) -> f64 {
        let t = opts.tol * bnorm;
        (t * t).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builders() {
        let o = SolveOptions::default()
            .with_tol(1e-6)
            .with_max_iters(42)
            .with_dot_mode(DotMode::Tree);
        assert_eq!(o.tol, 1e-6);
        assert_eq!(o.max_iters, 42);
        assert_eq!(o.dot_mode, DotMode::Tree);
    }

    #[test]
    fn result_derives_converged_and_final() {
        let r = SolveResult::new(
            vec![0.0],
            Termination::Converged,
            3,
            vec![1.0, 0.1, 0.01],
            OpCounts::default(),
        );
        assert!(r.converged);
        assert_eq!(r.final_residual, 0.01);
        let r = SolveResult::new(
            vec![0.0],
            Termination::MaxIterations,
            3,
            vec![1.0],
            OpCounts::default(),
        );
        assert!(!r.converged);
        assert_eq!(r.final_residual, 1.0);
        // recovered convergence counts as converged
        let r = SolveResult::new(
            vec![0.0],
            Termination::RecoveredConverged,
            3,
            vec![1.0, 1e-12],
            OpCounts::default(),
        );
        assert!(r.converged);
    }

    #[test]
    #[should_panic(expected = "at least one residual norm")]
    fn result_rejects_empty_residual_history() {
        // the silent unwrap_or(NAN) is gone: an empty history is a variant
        // bug, not a representable result
        let _ = SolveResult::new(
            vec![0.0],
            Termination::MaxIterations,
            3,
            vec![],
            OpCounts::default(),
        );
    }

    #[test]
    fn termination_convergence_classification() {
        assert!(Termination::Converged.is_converged());
        assert!(Termination::RecoveredConverged.is_converged());
        for t in [
            Termination::MaxIterations,
            Termination::Breakdown,
            Termination::Stagnated,
            Termination::Diverged,
            Termination::Unsupported,
            Termination::Cancelled,
        ] {
            assert!(!t.is_converged(), "{t:?}");
        }
    }

    #[test]
    fn service_poll_streams_progress_and_polls_cancel() {
        use std::sync::Mutex;
        // unattached: free and never cancels
        let o = SolveOptions::default();
        assert!(!o.service_poll(0, 4.0));

        let seen: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let flag = Arc::new(AtomicBool::new(false));
        let o = SolveOptions::default()
            .with_cancel_flag(Arc::clone(&flag))
            .with_progress(move |it, res| seen2.lock().unwrap().push((it, res)));
        assert!(!o.service_poll(0, 4.0));
        flag.store(true, Ordering::Relaxed);
        assert!(o.service_poll(1, 1.0), "set flag must cancel");
        // progress streamed the sqrt of the squared residual, both times
        assert_eq!(*seen.lock().unwrap(), vec![(0, 2.0), (1, 1.0)]);
        // a negative squared residual (breakdown in flight) streams 0, not NaN
        let _ = o.service_poll(2, -1.0);
        assert_eq!(seen.lock().unwrap().last(), Some(&(2, 0.0)));
    }

    #[test]
    fn routing_meta_attaches_without_perturbing_result() {
        let r = SolveResult::new(
            vec![0.0],
            Termination::Converged,
            3,
            vec![1.0, 0.01],
            OpCounts::default(),
        );
        assert_eq!(r.routing, None, "library solves carry no routing");
        let routed = r.clone().with_routing(RoutingMeta {
            variant_key: "predict_recompute".into(),
            reason: "accuracy: lowest measured residual floor".into(),
            batched: false,
            batch_width: 1,
        });
        assert_eq!(routed.routing.as_ref().unwrap().batch_width, 1);
        assert_eq!(routed.x, r.x);
        assert_eq!(routed.final_residual, r.final_residual);
    }

    #[test]
    fn options_fault_path_is_identity_without_injector() {
        let o = SolveOptions::default();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(o.dot(&x, &x), 14.0);
        assert_eq!(o.scalar(2.5), 2.5);
        assert!(o.injector.is_none() && o.recovery.is_none());
    }

    #[test]
    fn init_residual_zero_start_copies_b() {
        let a = vr_linalg::gen::poisson1d(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let (x, r, bn) = util::init_residual(&a, &b, None);
        assert_eq!(x, vec![0.0; 4]);
        assert_eq!(r, b);
        assert!((bn - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn init_residual_nonzero_start() {
        let a = vr_linalg::gen::poisson1d(3);
        let x0 = vec![1.0, 1.0, 1.0];
        let b = vec![1.0, 0.0, 1.0];
        // A*x0 = [1, 0, 1] → r = 0
        let (_, r, _) = util::init_residual(&a, &b, Some(&x0));
        assert_eq!(r, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn threshold_handles_zero_rhs() {
        let o = SolveOptions::default();
        let t = util::threshold_sq(&o, 0.0);
        assert!(t > 0.0); // no divide-by-zero convergence trap
    }

    #[test]
    fn kernel_policy_default_is_fused() {
        assert_eq!(SolveOptions::default().kernel_policy, KernelPolicy::Fused);
        assert_eq!(SolveOptions::default().threads, 1);
        let o = SolveOptions::default()
            .with_kernel_policy(KernelPolicy::Reference)
            .with_threads(0);
        assert_eq!(o.kernel_policy, KernelPolicy::Reference);
        assert_eq!(o.threads, 1, "with_threads clamps to >= 1");
    }

    #[test]
    fn fused_helpers_bit_match_reference_and_tally_identical_logical_counts() {
        let a = vr_linalg::gen::poisson2d(7);
        let n = a.dim();
        let p = vr_linalg::gen::rand_vector(n, 3);
        let w0 = a.apply_alloc(&p);
        for mode in [DotMode::Serial, DotMode::Tree, DotMode::Kahan] {
            for threads in [1usize, 3] {
                // An explicit team bypasses the host-cpu clamp so the
                // multi-shard arm still exercises width 3 on 1-core hosts.
                let base = if threads > 1 {
                    SolveOptions::default()
                        .with_dot_mode(mode)
                        .with_team(team::shared_team(threads))
                } else {
                    SolveOptions::default().with_dot_mode(mode).with_threads(1)
                };
                let fo = base.clone().with_kernel_policy(KernelPolicy::Fused);
                let ro = base.with_kernel_policy(KernelPolicy::Reference);
                let (mut cf, mut cr) = (OpCounts::default(), OpCounts::default());

                let mut yf = vec![0.0; n];
                let mut yr = vec![0.0; n];
                let df = fo.matvec_dot(&a, &p, &mut yf, &mut cf);
                let dr = ro.matvec_dot(&a, &p, &mut yr, &mut cr);
                assert_eq!(yf, yr, "{mode:?} t={threads}");
                assert_eq!(df.to_bits(), dr.to_bits(), "{mode:?} t={threads}");

                let (mut xf, mut rf) = (vec![0.1; n], p.clone());
                let (mut xr, mut rr) = (vec![0.1; n], p.clone());
                let uf = fo.update_xr(0.25, &p, &w0, &mut xf, &mut rf, &mut cf);
                let ur = ro.update_xr(0.25, &p, &w0, &mut xr, &mut rr, &mut cr);
                assert_eq!((xf, rf), (xr, rr), "{mode:?} t={threads}");
                assert_eq!(uf.to_bits(), ur.to_bits(), "{mode:?} t={threads}");

                let af = fo.axpy_norm2_sq(-0.5, &p, &mut yf, &mut cf);
                let ar = ro.axpy_norm2_sq(-0.5, &p, &mut yr, &mut cr);
                assert_eq!(af.to_bits(), ar.to_bits(), "{mode:?} t={threads}");

                let bf = fo.axpy_dot(0.7, &w0, &mut yf, &p, &mut cf);
                let br = ro.axpy_dot(0.7, &w0, &mut yr, &p, &mut cr);
                assert_eq!(bf.to_bits(), br.to_bits(), "{mode:?} t={threads}");

                let pf = fo.dot2(&p, &yf, &w0, &mut cf);
                let pr = ro.dot2(&p, &yr, &w0, &mut cr);
                assert_eq!(pf.0.to_bits(), pr.0.to_bits(), "{mode:?} t={threads}");
                assert_eq!(pf.1.to_bits(), pr.1.to_bits(), "{mode:?} t={threads}");

                // logical tallies are policy-independent; only fused_ops differs
                assert_eq!(cf.matvecs, cr.matvecs);
                assert_eq!(cf.dots, cr.dots);
                assert_eq!(cf.vector_ops, cr.vector_ops);
                assert_eq!(cr.fused_ops, 0);
                // matvec_dot fuses (apply_dot) only on the serial
                // order-preserving path: Tree always takes the
                // width-invariant apply_dot_team two-pass, and an attached
                // team parallelizes the matvec instead of fusing. The four
                // sweep kernels (update_xr, axpy_norm2_sq, axpy_dot, dot2)
                // fuse under every fault-free configuration.
                let expected_fused = if threads == 1 && mode != DotMode::Tree {
                    5
                } else {
                    4
                };
                assert_eq!(cf.fused_ops, expected_fused, "{mode:?} t={threads}");
            }
        }
    }
}
