//! Mixed-precision CG twins: `f32` working vectors, `f64` safety net.
//!
//! The bandwidth argument: CG at useful problem sizes is memory-bound, and
//! every hot sweep (matvec, fused update, reduction leaf) streams working
//! vectors whose *storage* precision is what the memory bus pays for.
//! Holding `x`, `r`, `p` and the variant's auxiliaries in `f32` halves the
//! bytes per iteration; the arithmetic that decides anything — reduction
//! accumulation, scalar recurrences, convergence — stays in `f64`:
//!
//! * every `f32` reduction leaf widens each product to `f64` *before*
//!   summing ([`vr_par::simd::leaf_dot_f32`] and friends), in the same
//!   lane-blocked accumulator layout as the `f64` leaves, so reduction
//!   values are bit-identical across scalar/AVX2/AVX-512 backends;
//! * the scalar recurrences (`λ`, `β`, and the overlapped identities of
//!   the paper's §3) run entirely in `f64`;
//! * a **shadow guard** periodically widens the `f32` iterate to `f64`,
//!   recomputes the true residual `b − A·x` through the operator's full
//!   `f64` [`LinearOperator::apply`], and either *confirms* convergence,
//!   *replaces* the working residual (Cools-style residual replacement —
//!   the `f32` recurrence restarts from the `f64` truth), or declares
//!   stagnation at the `f32`-attainable floor.
//!
//! A mixed solve **never** reports convergence from the `f32` recurrence
//! alone: [`Termination::Converged`] is only ever set after the shadow
//! guard's `f64` confirmation. Tolerances below the `f32` floor terminate
//! with [`Termination::Stagnated`] instead of falsely converging.
//!
//! Only variants whose dependency structure has a faithful `f32` twin here
//! are eligible ([`CgVariant::mixed_eligible`]): standard CG, the paper's
//! one-step overlapped CG, and Ghysels-Vanroose pipelined CG. Every other
//! variant rejects [`Precision::Mixed`] with
//! [`Termination::Unsupported`] — an explicit error beats a silent `f64`
//! fallback whose numbers the caller would misattribute (see
//! [`reject`]). Likewise an operator without a native `f32` path
//! ([`LinearOperator::apply_f32`]).

use crate::instrument::OpCounts;
use crate::resilience::guard;
use crate::solver::{util, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels;
use vr_linalg::LinearOperator;
use vr_par::{reduce, simd};

#[cfg(doc)]
use crate::solver::{CgVariant, Precision};

/// Confirm the `f32` recurrence against the `f64` truth every this many
/// iterations (in addition to every convergence claim and every suspicious
/// scalar). Frequent enough to bound drift, rare enough that the extra
/// `f64` matvec is noise against the per-iteration sweep traffic.
const CONFIRM_PERIOD: usize = 32;

/// Widen `src` into `dst` (exact: every `f32` is representable in `f64`).
fn widen_into(src: &[f32], dst: &mut [f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = f64::from(*s);
    }
}

/// Narrow `src` into `dst` (round-to-nearest).
fn narrow_into(src: &[f64], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s as f32;
    }
}

/// Explicit rejection of a mixed-precision request: no iterations, the
/// starting point handed back unchanged with its honest initial residual,
/// and [`Termination::Unsupported`]. Used by every ineligible variant and
/// by eligible variants on operators without a native `f32` path.
pub(crate) fn reject(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let mut counts = OpCounts::default();
    let (x, r, _bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let rr = kernels::dot(opts.dot_mode, &r, &r);
    counts.dots += 1;
    SolveResult::new(
        x,
        Termination::Unsupported,
        0,
        vec![rr.max(0.0).sqrt()],
        counts,
    )
}

/// Verdict of one `f64` shadow confirmation.
enum Confirm {
    /// True residual meets the tolerance: the solve is genuinely done.
    Converged(f64),
    /// Not converged, but still making progress — the caller replaces its
    /// working residual with the `f64` truth (left in [`Shadow::rt`]) and
    /// restarts its direction state.
    Replace(f64),
    /// No meaningful progress across consecutive confirmations: the
    /// `f32`-attainable floor. Terminate honestly.
    Stagnated(f64),
}

/// The `f64` safety net: widened iterate, true residual, and a progress
/// tracker deciding replacement vs stagnation.
struct Shadow {
    /// Widened copy of the `f32` iterate.
    xw: Vec<f64>,
    /// True residual `b − A·xw` as of the last confirmation.
    rt: Vec<f64>,
    /// Scratch for `A·xw`.
    ax: Vec<f64>,
    thresh_sq: f64,
    /// Best confirmed squared true-residual norm so far.
    best: f64,
    /// Consecutive confirmations without the required improvement.
    strikes: u32,
}

impl Shadow {
    /// Confirmations in a row that may fail to improve [`Shadow::best`] by
    /// [`Shadow::IMPROVE`] before the solve is declared stagnated.
    const MAX_STRIKES: u32 = 3;
    /// Required squared-norm reduction factor between confirmations.
    const IMPROVE: f64 = 0.5;

    fn new(n: usize, thresh_sq: f64) -> Self {
        Shadow {
            xw: vec![0.0; n],
            rt: vec![0.0; n],
            ax: vec![0.0; n],
            thresh_sq,
            best: f64::INFINITY,
            strikes: 0,
        }
    }

    /// Recompute the `f64` true residual of the `f32` iterate and judge it.
    /// Costs one `f64` matvec + one vector op + one dot, tallied honestly.
    fn confirm(
        &mut self,
        a: &dyn LinearOperator,
        opts: &SolveOptions,
        b: &[f64],
        x32: &[f32],
        counts: &mut OpCounts,
    ) -> Confirm {
        // Widen (4n + 8n) + f64 matvec vector streams (16n) + residual
        // subtraction (24n) + dot (16n): the guard's full-width traffic,
        // tallied so E22 sees the true cost of the f64 safety net.
        let guard_bytes = 68 * x32.len() as u64;
        let rr_true = opts.span_bytes(vr_obs::SpanKind::Guard, guard_bytes, || {
            widen_into(x32, &mut self.xw);
            a.apply(&self.xw, &mut self.ax);
            for (rt, (bi, axi)) in self.rt.iter_mut().zip(b.iter().zip(&self.ax)) {
                *rt = bi - axi;
            }
            kernels::dot(opts.dot_mode, &self.rt, &self.rt)
        });
        counts.matvecs += 1;
        counts.vector_ops += 1;
        counts.dots += 1;
        if rr_true <= self.thresh_sq {
            return Confirm::Converged(rr_true);
        }
        if rr_true.is_finite() && rr_true <= Self::IMPROVE * self.best {
            self.strikes = 0;
        } else {
            self.strikes += 1;
        }
        if rr_true.is_finite() {
            self.best = self.best.min(rr_true);
        }
        if self.strikes >= Self::MAX_STRIKES {
            Confirm::Stagnated(rr_true)
        } else {
            Confirm::Replace(rr_true)
        }
    }
}

/// Common startup for all mixed loops: `f64` initial residual (exact),
/// narrowed working copies, threshold, and the `f32`-path probe.
///
/// Returns `Err` with the explicit rejection when the operator has no
/// native `f32` matvec.
// The large `Err` (a full `SolveResult`) is built once per rejected solve,
// never on a hot path — boxing would only move the rejection allocation.
#[allow(clippy::type_complexity, clippy::result_large_err)]
fn mixed_init(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    counts: &mut OpCounts,
) -> Result<(Vec<f32>, Vec<f32>, f64, f64), SolveResult> {
    let (xw, rw, bnorm) = util::init_residual(a, b, x0);
    if x0.is_some() {
        counts.matvecs += 1;
        counts.vector_ops += 1;
    }
    let thresh_sq = util::threshold_sq(opts, bnorm);
    // Initial convergence is judged on the f64 residual before narrowing —
    // the one convergence decision that needs no shadow confirmation.
    let rr0 = kernels::dot(opts.dot_mode, &rw, &rw);
    counts.dots += 1;
    let x: Vec<f32> = xw.iter().map(|&v| v as f32).collect();
    let r: Vec<f32> = rw.iter().map(|&v| v as f32).collect();
    counts.vector_ops += 2;
    // Capability probe: one f32 sweep. Operators answer statically, so a
    // `false` here is a configuration error, not a transient.
    let mut probe = vec![0.0f32; a.dim()];
    if !a.apply_f32(&x, &mut probe) {
        return Err(reject(a, b, x0, opts));
    }
    Ok((x, r, rr0, thresh_sq))
}

/// Mixed-precision standard CG (Hestenes-Stiefel structure, `f32` working
/// vectors). The loop shape mirrors [`crate::standard::StandardCg`]: one
/// matvec and two dependent reductions per iteration, with the fused
/// update-and-norm sweep; the shadow guard replaces the `f64` path's
/// [`crate::resilience::guard::ResidualGuard`].
pub(crate) fn solve_standard(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let n = a.dim();
    let mut counts = OpCounts::default();
    let (mut x, mut r, rr0, thresh_sq) = match mixed_init(a, b, x0, opts, &mut counts) {
        Ok(init) => init,
        Err(rejected) => return rejected,
    };
    let mut p = r.clone();
    let mut w = vec![0.0f32; n];
    counts.vector_ops += 1;

    let mut rr = rr0;
    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(rr.max(0.0).sqrt());
    }
    let mut shadow = Shadow::new(n, thresh_sq);
    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    // Set after a residual replacement; a pivot failure in the very next
    // iteration is a genuine breakdown, not accumulated f32 drift.
    let mut just_replaced = false;

    if rr <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0;
        while it < opts.max_iters {
            opts.iter_mark();
            if opts.service_poll(it, rr) {
                termination = Termination::Cancelled;
                iterations = it;
                break;
            }
            counts.matvecs += 1;
            counts.dots += 1;
            opts.span_bytes(vr_obs::SpanKind::Matvec, 8 * n as u64, || {
                a.apply_f32(&p, &mut w)
            });
            let pap = opts.span_bytes(vr_obs::SpanKind::DotWait, 8 * n as u64, || {
                reduce::dot_f32_wide(&p, &w)
            });
            if guard::check_pivot(pap).is_err() {
                if just_replaced {
                    termination = Termination::Breakdown;
                    iterations = it;
                    break;
                }
                match shadow.confirm(a, opts, b, &x, &mut counts) {
                    Confirm::Converged(rt) => {
                        termination = Termination::Converged;
                        iterations = it;
                        push_final(&mut norms, opts, rt);
                        break;
                    }
                    Confirm::Stagnated(rt) => {
                        termination = Termination::Stagnated;
                        iterations = it;
                        push_final(&mut norms, opts, rt);
                        break;
                    }
                    Confirm::Replace(rt) => {
                        narrow_into(&shadow.rt, &mut r);
                        p.copy_from_slice(&r);
                        counts.vector_ops += 2;
                        counts.restarts += 1;
                        rr = rt;
                        just_replaced = true;
                        continue;
                    }
                }
            }
            let lambda = opts.scalar(rr / pap);
            counts.scalar_ops += 1;
            counts.vector_ops += 2;
            counts.dots += 1;
            // p, w read; x, r read-modify-write → 6 f32 streams.
            let rr_next = opts.span_bytes(vr_obs::SpanKind::VectorOp, 24 * n as u64, || {
                simd::leaf_update_xr_f32(lambda as f32, &p, &w, &mut x, &mut r)
            });
            if opts.record_residuals {
                norms.push(rr_next.max(0.0).sqrt());
            }
            iterations = it + 1;

            let due = (it + 1).is_multiple_of(CONFIRM_PERIOD);
            if rr_next <= thresh_sq || due || !rr_next.is_finite() {
                match shadow.confirm(a, opts, b, &x, &mut counts) {
                    Confirm::Converged(rt) => {
                        termination = Termination::Converged;
                        set_final(&mut norms, rt);
                        break;
                    }
                    Confirm::Stagnated(rt) => {
                        termination = Termination::Stagnated;
                        set_final(&mut norms, rt);
                        break;
                    }
                    Confirm::Replace(rt) => {
                        narrow_into(&shadow.rt, &mut r);
                        p.copy_from_slice(&r);
                        counts.vector_ops += 2;
                        counts.restarts += 1;
                        rr = rt;
                        just_replaced = true;
                        it += 1;
                        continue;
                    }
                }
            }
            just_replaced = false;
            let beta = opts.scalar(rr_next / rr);
            counts.scalar_ops += 1;
            rr = rr_next;
            counts.vector_ops += 1;
            opts.span_bytes(vr_obs::SpanKind::VectorOp, 12 * n as u64, || {
                simd::leaf_xpay_f32(&r, beta as f32, &mut p)
            });
            it += 1;
        }
    }
    finish(x, termination, iterations, norms, counts, rr, opts)
}

/// Mixed-precision one-step overlapped CG (the paper's §3 structure). The
/// four overlappable inner products run as two shared-sweep pairs over the
/// `f32` vectors (widened accumulation); the (*) scalar recurrences stay
/// pure `f64`. Scalar-recurrence drift — the classic weakness this
/// formulation trades for its overlap — is caught by the same shadow guard
/// cadence as the other mixed loops.
pub(crate) fn solve_overlap_k1(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let n = a.dim();
    let mut counts = OpCounts::default();
    let (mut x, mut r, rr0, thresh_sq) = match mixed_init(a, b, x0, opts, &mut counts) {
        Ok(init) => init,
        Err(rejected) => return rejected,
    };
    let mut p = r.clone();
    let mut w = vec![0.0f32; n];
    let mut v = vec![0.0f32; n];
    counts.vector_ops += 1;

    // Startup: w = A·p, v = A·w, carried scalars.
    counts.matvecs += 2;
    opts.span_bytes(vr_obs::SpanKind::Matvec, 16 * n as u64, || {
        a.apply_f32(&p, &mut w);
        a.apply_f32(&w, &mut v);
    });
    let mut rr = rr0;
    let mut rar = opts.span_bytes(vr_obs::SpanKind::DotWait, 8 * n as u64, || {
        reduce::dot_f32_wide(&r, &w)
    });
    counts.dots += 1;
    let mut pap = rar;

    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(rr.max(0.0).sqrt());
    }
    let mut shadow = Shadow::new(n, thresh_sq);
    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    let mut just_replaced = false;

    if rr <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0;
        while it < opts.max_iters {
            opts.iter_mark();
            if opts.service_poll(it, rr) {
                termination = Termination::Cancelled;
                iterations = it;
                break;
            }
            let suspicious = guard::check_pivot(pap).is_err() || guard::check_pivot(rr).is_err();
            let due = it > 0 && it.is_multiple_of(CONFIRM_PERIOD);
            if suspicious || due {
                if suspicious && just_replaced {
                    termination = Termination::Breakdown;
                    iterations = it;
                    break;
                }
                match shadow.confirm(a, opts, b, &x, &mut counts) {
                    Confirm::Converged(rt) => {
                        termination = Termination::Converged;
                        iterations = it;
                        push_final(&mut norms, opts, rt);
                        break;
                    }
                    Confirm::Stagnated(rt) => {
                        termination = Termination::Stagnated;
                        iterations = it;
                        push_final(&mut norms, opts, rt);
                        break;
                    }
                    Confirm::Replace(rt) => {
                        // Warm restart from the f64 truth: p = r, direct
                        // carried scalars (one extra matvec pair).
                        narrow_into(&shadow.rt, &mut r);
                        p.copy_from_slice(&r);
                        counts.vector_ops += 2;
                        counts.restarts += 1;
                        counts.matvecs += 2;
                        opts.span_bytes(vr_obs::SpanKind::Matvec, 16 * n as u64, || {
                            a.apply_f32(&p, &mut w);
                            a.apply_f32(&w, &mut v);
                        });
                        rr = rt;
                        rar = opts.span_bytes(vr_obs::SpanKind::DotWait, 8 * n as u64, || {
                            reduce::dot_f32_wide(&r, &w)
                        });
                        counts.dots += 1;
                        pap = rar;
                        just_replaced = suspicious;
                    }
                }
            }
            it += 1;
            // The four overlappable inner products on CURRENT vectors —
            // (r,w)/(r,v) share the sweep over r, (w,w)/(w,v) the sweep
            // over w, exactly like the f64 formulation.
            counts.dots += 4;
            let ((rw, rv), (ww, wv)) =
                opts.span_bytes(vr_obs::SpanKind::DotWait, 24 * n as u64, || {
                    (
                        simd::leaf_dot2_f32(&r, &w, &v),
                        simd::leaf_dot2_f32(&w, &w, &v),
                    )
                });
            let lambda = opts.scalar(rr / pap);
            counts.vector_ops += 1;
            opts.span_bytes(vr_obs::SpanKind::VectorOp, 12 * n as u64, || {
                simd::leaf_axpy_f32(lambda as f32, &p, &mut x)
            });

            // Scalar recurrences (claim C3, k = 1) — pure f64.
            let rr_next = rr - 2.0 * lambda * rw + lambda * lambda * ww;
            let rar_next = rar - 2.0 * lambda * rv + lambda * lambda * wv;
            let alpha = rr_next / rr;
            let rnext_w = rw - lambda * ww;
            let pap_next = rar_next + 2.0 * alpha * rnext_w + alpha * alpha * pap;
            counts.scalar_ops += 12;

            if opts.record_residuals {
                norms.push(rr_next.max(0.0).sqrt());
            }
            iterations = it;
            if rr_next <= thresh_sq {
                match shadow.confirm(a, opts, b, &x, &mut counts) {
                    Confirm::Converged(rt) => {
                        termination = Termination::Converged;
                        set_final(&mut norms, rt);
                        break;
                    }
                    Confirm::Stagnated(rt) => {
                        termination = Termination::Stagnated;
                        set_final(&mut norms, rt);
                        break;
                    }
                    Confirm::Replace(rt) => {
                        narrow_into(&shadow.rt, &mut r);
                        p.copy_from_slice(&r);
                        counts.vector_ops += 2;
                        counts.restarts += 1;
                        counts.matvecs += 2;
                        opts.span_bytes(vr_obs::SpanKind::Matvec, 16 * n as u64, || {
                            a.apply_f32(&p, &mut w);
                            a.apply_f32(&w, &mut v);
                        });
                        rr = rt;
                        rar = opts.span_bytes(vr_obs::SpanKind::DotWait, 8 * n as u64, || {
                            reduce::dot_f32_wide(&r, &w)
                        });
                        counts.dots += 1;
                        pap = rar;
                        just_replaced = false;
                        continue;
                    }
                }
            }
            if guard::check_finite(rr_next).is_err() {
                // Route through the validation branch at the loop top.
                rr = rr_next;
                continue;
            }

            // Vector updates + the next matvec pair.
            counts.vector_ops += 2;
            opts.span_bytes(vr_obs::SpanKind::VectorOp, 24 * n as u64, || {
                simd::leaf_axpy_f32(-(lambda as f32), &w, &mut r);
                simd::leaf_xpay_f32(&r, alpha as f32, &mut p);
            });
            counts.matvecs += 2;
            opts.span_bytes(vr_obs::SpanKind::Matvec, 16 * n as u64, || {
                a.apply_f32(&p, &mut w);
                a.apply_f32(&w, &mut v);
            });

            rr = rr_next;
            rar = rar_next;
            pap = pap_next;
            just_replaced = false;
        }
    }
    finish(x, termination, iterations, norms, counts, rr, opts)
}

/// Mixed-precision Ghysels-Vanroose pipelined CG. Recurrence-maintained
/// auxiliaries `s = A·p`, `q = A·w`, `z = A·s` live in `f32` alongside the
/// working vectors; `γ`, `δ`, `β`, `λ` stay `f64`. A residual replacement
/// restarts the pipeline cleanly (next iteration takes the `β = 0` startup
/// branch), since the auxiliary recurrences are only valid along an
/// uninterrupted direction history.
pub(crate) fn solve_pipelined(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    let _simd = opts.simd_guard();
    let _trace = opts.trace_attach();
    let n = a.dim();
    let mut counts = OpCounts::default();
    let (mut x, mut r, rr0, thresh_sq) = match mixed_init(a, b, x0, opts, &mut counts) {
        Ok(init) => init,
        Err(rejected) => return rejected,
    };
    let mut w = vec![0.0f32; n];
    counts.matvecs += 1;
    opts.span_bytes(vr_obs::SpanKind::Matvec, 8 * n as u64, || {
        a.apply_f32(&r, &mut w)
    });
    let mut p = vec![0.0f32; n];
    let mut s = vec![0.0f32; n];
    let mut z = vec![0.0f32; n];
    let mut q = vec![0.0f32; n];

    let mut gamma_old = 1.0f64;
    let mut lambda_old = 1.0f64;
    let mut gamma = rr0;

    let mut norms = Vec::new();
    if opts.record_residuals {
        norms.push(gamma.max(0.0).sqrt());
    }
    let mut shadow = Shadow::new(n, thresh_sq);
    let mut termination = Termination::MaxIterations;
    let mut iterations = 0;
    let mut just_replaced = false;
    // Forces the β = 0 startup branch (fresh pipeline) — true at solve
    // start and after every residual replacement.
    let mut fresh = true;

    if gamma <= thresh_sq {
        termination = Termination::Converged;
    } else {
        let mut it = 0usize;
        while it < opts.max_iters {
            opts.iter_mark();
            if opts.service_poll(it, gamma) {
                termination = Termination::Cancelled;
                iterations = it;
                break;
            }
            counts.dots += 1;
            let delta = opts.span_bytes(vr_obs::SpanKind::DotWait, 8 * n as u64, || {
                reduce::dot_f32_wide(&w, &r)
            });
            // q = A·w — the reduction-overlapped matvec of the pipeline.
            counts.matvecs += 1;
            opts.span_bytes(vr_obs::SpanKind::Matvec, 8 * n as u64, || {
                a.apply_f32(&w, &mut q)
            });

            let (beta, denom) = if fresh {
                (0.0, delta)
            } else {
                let beta = gamma / gamma_old;
                (beta, delta - beta * gamma / lambda_old)
            };
            counts.scalar_ops += 3;
            if guard::check_pivot(denom).is_err() {
                if just_replaced {
                    termination = Termination::Breakdown;
                    iterations = it;
                    break;
                }
                match shadow.confirm(a, opts, b, &x, &mut counts) {
                    Confirm::Converged(rt) => {
                        termination = Termination::Converged;
                        iterations = it;
                        push_final(&mut norms, opts, rt);
                        break;
                    }
                    Confirm::Stagnated(rt) => {
                        termination = Termination::Stagnated;
                        iterations = it;
                        push_final(&mut norms, opts, rt);
                        break;
                    }
                    Confirm::Replace(rt) => {
                        narrow_into(&shadow.rt, &mut r);
                        counts.vector_ops += 1;
                        counts.restarts += 1;
                        counts.matvecs += 1;
                        opts.span_bytes(vr_obs::SpanKind::Matvec, 8 * n as u64, || {
                            a.apply_f32(&r, &mut w)
                        });
                        gamma = rt;
                        fresh = true;
                        just_replaced = true;
                        continue;
                    }
                }
            }
            let lambda = opts.scalar(gamma / denom);
            counts.scalar_ops += 1;

            counts.vector_ops += 4;
            opts.span_bytes(vr_obs::SpanKind::VectorOp, 48 * n as u64, || {
                let bf = beta as f32;
                simd::leaf_xpay_f32(&r, bf, &mut p);
                simd::leaf_xpay_f32(&w, bf, &mut s);
                simd::leaf_xpay_f32(&q, bf, &mut z);
                simd::leaf_axpy_f32(lambda as f32, &p, &mut x);
            });

            gamma_old = gamma;
            lambda_old = lambda;
            // r ← r − λ·s carries γ = (r,r) in its sweep.
            counts.vector_ops += 1;
            counts.dots += 1;
            gamma = opts.span_bytes(vr_obs::SpanKind::VectorOp, 12 * n as u64, || {
                simd::leaf_axpy_norm2_sq_f32(-(lambda as f32), &s, &mut r)
            });

            if opts.record_residuals {
                norms.push(gamma.max(0.0).sqrt());
            }
            iterations = it + 1;

            let due = (it + 1).is_multiple_of(CONFIRM_PERIOD);
            if gamma <= thresh_sq || due || guard::check_finite(gamma).is_err() {
                match shadow.confirm(a, opts, b, &x, &mut counts) {
                    Confirm::Converged(rt) => {
                        termination = Termination::Converged;
                        set_final(&mut norms, rt);
                        break;
                    }
                    Confirm::Stagnated(rt) => {
                        termination = Termination::Stagnated;
                        set_final(&mut norms, rt);
                        break;
                    }
                    Confirm::Replace(rt) => {
                        narrow_into(&shadow.rt, &mut r);
                        counts.vector_ops += 1;
                        counts.restarts += 1;
                        counts.matvecs += 1;
                        opts.span_bytes(vr_obs::SpanKind::Matvec, 8 * n as u64, || {
                            a.apply_f32(&r, &mut w)
                        });
                        gamma = rt;
                        fresh = true;
                        just_replaced = true;
                        it += 1;
                        continue;
                    }
                }
            }

            // w ← w − λ·z maintains the matvec image for the next δ.
            counts.vector_ops += 1;
            opts.span_bytes(vr_obs::SpanKind::VectorOp, 12 * n as u64, || {
                simd::leaf_axpy_f32(-(lambda as f32), &z, &mut w)
            });
            fresh = false;
            just_replaced = false;
            it += 1;
        }
    }
    finish(x, termination, iterations, norms, counts, gamma, opts)
}

/// Append the final true-residual norm when it would otherwise be lost
/// (early-exit paths that break before the per-iteration push).
fn push_final(norms: &mut Vec<f64>, opts: &SolveOptions, rr_true: f64) {
    let v = rr_true.max(0.0).sqrt();
    if opts.record_residuals || norms.is_empty() {
        norms.push(v);
    } else {
        *norms.last_mut().expect("nonempty") = v;
    }
}

/// Overwrite the last recorded norm with the confirmed `f64` truth (the
/// recursive value it replaces described the same iterate, less honestly).
fn set_final(norms: &mut Vec<f64>, rr_true: f64) {
    let v = rr_true.max(0.0).sqrt();
    match norms.last_mut() {
        Some(last) => *last = v,
        None => norms.push(v),
    }
}

/// Widen the `f32` iterate and assemble the [`SolveResult`].
fn finish(
    x32: Vec<f32>,
    termination: Termination,
    iterations: usize,
    mut norms: Vec<f64>,
    counts: OpCounts,
    last_rr: f64,
    _opts: &SolveOptions,
) -> SolveResult {
    if norms.is_empty() {
        // record_residuals off and no confirmation fired before exit.
        norms.push(last_rr.max(0.0).sqrt());
    }
    let x: Vec<f64> = x32.iter().map(|&v| f64::from(v)).collect();
    SolveResult::new(x, termination, iterations, norms, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{CgVariant, Precision, SolveOptions};
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    fn mixed_opts(tol: f64) -> SolveOptions {
        SolveOptions::default()
            .with_precision(Precision::Mixed)
            .with_tol(tol)
    }

    #[test]
    fn standard_mixed_converges_and_confirms_in_f64() {
        let a = gen::poisson2d(24);
        let b = gen::poisson2d_rhs(24);
        let res = StandardCg::new().solve(&a, &b, None, &mixed_opts(1e-5));
        assert!(res.converged, "termination {:?}", res.termination);
        // The claim is confirmed against the f64 true residual, so the
        // reported final norm must match a from-scratch recomputation.
        let true_res = res.true_residual(&a, &b);
        let bnorm = vr_linalg::kernels::norm2(&b);
        assert!(
            true_res <= 1e-5 * bnorm,
            "reported convergence but true residual is {true_res:e} (bnorm {bnorm:e})"
        );
    }

    #[test]
    fn standard_mixed_never_falsely_converges_below_f32_floor() {
        let a = gen::poisson2d(16);
        let b = gen::poisson2d_rhs(16);
        // Far below the f32-attainable floor: must NOT report convergence.
        let res = StandardCg::new().solve(&a, &b, None, &mixed_opts(1e-14).with_max_iters(2000));
        assert!(!res.converged, "false convergence at tol 1e-14");
        assert!(
            matches!(
                res.termination,
                Termination::Stagnated | Termination::MaxIterations
            ),
            "termination {:?}",
            res.termination
        );
    }

    #[test]
    fn mixed_rejects_operator_without_f32_path() {
        // DenseMatrix has no apply_f32 override.
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| if i == j { 2.0 } else { 0.1 }).collect())
            .collect();
        let a = vr_linalg::DenseMatrix::from_rows(&rows).unwrap();
        let b = vec![1.0; 4];
        let res = StandardCg::new().solve(&a, &b, None, &mixed_opts(1e-6));
        assert_eq!(res.termination, Termination::Unsupported);
        assert!(!res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn mixed_solution_matches_f64_solution() {
        let a = gen::poisson2d(16);
        let b = gen::poisson2d_rhs(16);
        let f64_res = StandardCg::new().solve(&a, &b, None, &SolveOptions::default());
        let mix_res = StandardCg::new().solve(&a, &b, None, &mixed_opts(1e-5));
        assert!(mix_res.converged);
        let err: f64 = f64_res
            .x
            .iter()
            .zip(&mix_res.x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let xnorm = vr_linalg::kernels::norm2(&f64_res.x);
        assert!(
            err <= 1e-3 * xnorm,
            "mixed solution drifted: err {err:e} vs ‖x‖ {xnorm:e}"
        );
    }
}
