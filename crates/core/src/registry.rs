//! The solver registry: one canonical list of every CG variant.
//!
//! Test suites (golden traces, cross-variant conformance, the stability
//! shoot-out bench) must not each hand-maintain their own variant list —
//! a variant added to the crate but missing from a suite is silently
//! untested. They all derive their sweep from [`keyed_variants`] and
//! assert [`VARIANT_COUNT`], so adding a solver without registering it
//! (or registering without extending the suites' golden data) fails
//! loudly.

use crate::baselines::{ChronopoulosGearCg, PipelinedCg, PrecondCg, ThreeTermCg};
use crate::lookahead::LookaheadCg;
use crate::overlap_k1::OverlapK1Cg;
use crate::pipelined_deep::DeepPipelinedCg;
use crate::predict_recompute::{PipelinedPrCg, PredictRecomputeCg};
use crate::solver::CgVariant;
use crate::sstep::SStepCg;
use crate::standard::StandardCg;
use vr_linalg::precond::Jacobi;
use vr_linalg::CsrMatrix;

/// Number of registered variants. Suites assert this against the length
/// of [`keyed_variants`] so the registry and its consumers cannot drift.
pub const VARIANT_COUNT: usize = 11;

/// Every registered variant, paired with its stable golden-trace key
/// (`tests/golden/<key>.txt`). Constructor parameters (look-ahead resync
/// periods, s-step basis, pipeline depth) are the canonical defaults the
/// whole test tree pins against.
///
/// # Panics
/// Panics if the Jacobi preconditioner cannot be built (zero diagonal),
/// which no registry consumer's SPD test matrix triggers.
#[must_use]
pub fn keyed_variants(a: &CsrMatrix) -> Vec<(&'static str, Box<dyn CgVariant>)> {
    let list: Vec<(&'static str, Box<dyn CgVariant>)> = vec![
        ("standard", Box::new(StandardCg::new())),
        ("overlap_k1", Box::new(OverlapK1Cg::new().with_resync(20))),
        (
            "lookahead_k2",
            Box::new(LookaheadCg::new(2).with_resync(12)),
        ),
        ("sstep_s3", Box::new(SStepCg::monomial(3))),
        ("three_term", Box::new(ThreeTermCg::new())),
        ("chronopoulos_gear", Box::new(ChronopoulosGearCg::new())),
        ("pipelined", Box::new(PipelinedCg::new())),
        (
            "precond_jacobi",
            Box::new(PrecondCg::new(Jacobi::new(a).unwrap(), "pcg-jacobi")),
        ),
        ("deep_pipelined_l2", Box::new(DeepPipelinedCg::new(2))),
        ("predict_recompute", Box::new(PredictRecomputeCg::new())),
        (
            "pipelined_predict_recompute",
            Box::new(PipelinedPrCg::new()),
        ),
    ];
    debug_assert_eq!(list.len(), VARIANT_COUNT);
    list
}

/// The registered variants without their keys, for sweeps that only need
/// the solvers.
#[must_use]
pub fn all_variants(a: &CsrMatrix) -> Vec<Box<dyn CgVariant>> {
    keyed_variants(a).into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;

    #[test]
    fn registry_has_declared_count_and_unique_names() {
        let a = gen::poisson2d(4);
        let list = keyed_variants(&a);
        assert_eq!(list.len(), VARIANT_COUNT);
        let mut keys: Vec<_> = list.iter().map(|(k, _)| *k).collect();
        let mut names: Vec<_> = list.iter().map(|(_, v)| v.name()).collect();
        keys.sort_unstable();
        keys.dedup();
        names.sort();
        names.dedup();
        assert_eq!(keys.len(), VARIANT_COUNT, "duplicate golden keys");
        assert_eq!(names.len(), VARIANT_COUNT, "duplicate solver names");
    }

    #[test]
    fn every_registered_variant_solves_a_small_poisson_problem() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = crate::solver::SolveOptions::default().with_tol(1e-8);
        for (key, solver) in keyed_variants(&a) {
            let res = solver.solve(&a, &b, None, &opts);
            assert!(res.converged, "{key}: {:?}", res.termination);
        }
    }
}
