//! The paper's §3 one-step overlapped CG.
//!
//! The observation: with `r⁽ⁿ⁾ = r⁽ⁿ⁻¹⁾ − λ_{n−1}·A·p⁽ⁿ⁻¹⁾`,
//!
//! ```text
//! (r⁽ⁿ⁾,r⁽ⁿ⁾) = (r,r) − 2λ(r,Ap) + λ²(Ap,Ap)
//! ```
//!
//! — every inner product on the right involves only iteration-(n−1)
//! vectors, so their summation fan-ins can be *launched a full iteration
//! before their results are needed*, roughly doubling parallel speed
//! (claim C2). (The paper's printed formula drops two of these terms by
//! exploiting CG orthogonality and loses a sign to OCR; we use the fully
//! general identity, valid without orthogonality assumptions — see
//! [`crate::recurrence::identities`] for both forms.)
//!
//! The analogous relation for `(p⁽ⁿ⁾,Ap⁽ⁿ⁾)` requires the carried scalar
//! `(r,Ar)` and the vector `v = A²p`:
//!
//! ```text
//! (r⁽ⁿ⁾,Ar⁽ⁿ⁾)  = (r,Ar) − 2λ(r,v) + λ²(w,v)           with w = Ap
//! (p⁽ⁿ⁾,Ap⁽ⁿ⁾)  = (r⁽ⁿ⁾,Ar⁽ⁿ⁾) + 2α(r⁽ⁿ⁾,w) + α²(p,Ap)
//! (r⁽ⁿ⁾,w)     = (r,w) − λ(w,w)
//! ```
//!
//! Cost per iteration: **2 SpMVs** (`w = Ap`, `v = Aw`) and **4 inner
//! products** (`(r,w), (w,w), (r,v), (w,v)`), all launchable immediately
//! after the vectors exist — versus standard CG's 1 SpMV + 2 serialized
//! inner products. The sequential overhead buys removal of one reduction
//! from the critical cycle; E4/E7 quantify both sides.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, BasisEngine, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::dot;
use vr_linalg::mpk::{MpkTransform, MpkWorkspace};
use vr_linalg::LinearOperator;
use vr_par::team::Team;

/// `w ← A·p`, `v ← A·w` as one monomial matrix-powers call (`s = 2`): the
/// cache-blocked kernel streams each operand tile through cache once for
/// both applications instead of making two full-vector passes, and is
/// **bit-identical** to the two plain matvecs by the
/// [`LinearOperator::matrix_powers`] contract (every row goes through the
/// exact `apply` arithmetic). The seed column is swapped in from `p` and
/// the image columns swapped out into `w` and `v`, so the hot loop stays
/// allocation-free after the buffers warm.
#[allow(clippy::too_many_arguments)]
fn mpk_powers2(
    a: &dyn LinearOperator,
    opts: &SolveOptions,
    team: Option<&Team>,
    ws: &mut MpkWorkspace,
    cols_v: &mut [Vec<f64>],
    cols_av: &mut [Vec<f64>],
    p: &mut Vec<f64>,
    w: &mut Vec<f64>,
    v: &mut Vec<f64>,
    counts: &mut OpCounts,
) {
    counts.matvecs += 2;
    std::mem::swap(p, &mut cols_v[0]);
    opts.span(vr_obs::SpanKind::MpkBuild, || {
        a.matrix_powers(
            &MpkTransform::Monomial,
            cols_v,
            cols_av,
            team,
            opts.mpk_tile,
            ws,
        );
    });
    // Monomial, s = 2: av[0] = A·v[0] and av[1] = A·av[0] (v[1] is the
    // kernel's copy of av[0] — scratch for the next call).
    std::mem::swap(p, &mut cols_v[0]);
    std::mem::swap(w, &mut cols_av[0]);
    std::mem::swap(v, &mut cols_av[1]);
}

/// One-step overlapped CG (paper §3).
///
/// Like all scalar-recurrence CG reformulations, the recursively tracked
/// residual norm stagnates near `√ε`-level relative accuracy (the classic
/// attainable-accuracy loss of s-step/pipelined CG — measured by E9).
/// [`OverlapK1Cg::with_resync`] recomputes the carried scalars directly
/// every R iterations (costing one extra matvec + three dots per resync),
/// restoring standard-CG attainable accuracy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapK1Cg {
    /// Recompute carried scalars directly every `resync` iterations
    /// (0 = never).
    pub resync: usize,
}

impl OverlapK1Cg {
    /// Construct with no resync.
    #[must_use]
    pub fn new() -> Self {
        OverlapK1Cg { resync: 0 }
    }

    /// Enable periodic direct recomputation of the carried scalars.
    #[must_use]
    pub fn with_resync(mut self, every: usize) -> Self {
        self.resync = every;
        self
    }
}

impl CgVariant for OverlapK1Cg {
    fn name(&self) -> String {
        if self.resync > 0 {
            format!("overlap-k1-cg(resync={})", self.resync)
        } else {
            "overlap-k1-cg".into()
        }
    }

    fn mixed_eligible(&self) -> bool {
        true
    }

    fn sweep_eligible(&self) -> bool {
        true
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            return crate::sweep::solve_overlap_k1(a, b, x0, opts, self.resync);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::solve_overlap_k1(a, b, x0, opts);
        }
        let n = a.dim();
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);
        let md = opts.dot_mode;

        // Basis engine for the per-iteration `w = A·p`, `v = A·w` pair:
        // under `Mpk` both applications run as one s = 2 matrix-powers
        // build (bit-identical by contract); under `Naive` they stay two
        // plain matvecs. Buffers are allocated once, outside the loop.
        let use_mpk = opts.basis_engine == BasisEngine::Mpk && n > 0;
        let team = opts.team();
        let mut ws = MpkWorkspace::new();
        ws.set_tracer(opts.tracer.clone());
        let (mut cols_v, mut cols_av): (Vec<Vec<f64>>, Vec<Vec<f64>>) = if use_mpk {
            (vec![vec![0.0; n]; 2], vec![vec![0.0; n]; 2])
        } else {
            (Vec::new(), Vec::new())
        };

        // State: p, w = A·p, v = A·w; scalars rr = (r,r), rar = (r,Ar),
        // pap = (p,Ap).
        let mut p = r.clone();
        counts.vector_ops += 1;
        let mut w = opts.matvec_alloc(a, &p, &mut counts);
        let mut v = opts.matvec_alloc(a, &w, &mut counts);

        let mut rr = dot(md, &r, &r);
        // p = r at start ⇒ (r, Ar) = (r, w).
        let mut rar = dot(md, &r, &w);
        counts.dots += 2;
        let mut pap = rar;

        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        // Recurrence drift near convergence can push the carried `pap`
        // non-positive before the threshold trips. A suspicious signal is
        // validated against the true residual; if unconverged but still
        // progressing, the solver warm-restarts (p = r, direct scalars).
        let mut last_restart_rr = f64::INFINITY;
        // Scratch for true-residual validation and resync matvecs — reused
        // across restarts so the hot path stays allocation-free.
        let mut vscratch = vec![0.0; n];

        // Checkpoint ring (policy-gated): snapshots [x, r, p] plus the three
        // carried scalars [rr, rar, pap]; w and v are recomputed on restore
        // (two matvecs — per Cools' minimal-state checkpointing for
        // pipelined CG).
        let mut rstats = RecoveryStats::default();
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 3, n, 3));

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        if rr <= thresh_sq {
            termination = Termination::Converged;
        } else {
            let mut it = 0;
            while it < opts.max_iters {
                if guard::check_pivot(pap).is_err() || guard::check_pivot(rr).is_err() {
                    // validate against the true residual
                    let rr_true = opts.span(vr_obs::SpanKind::Guard, || {
                        a.apply(&x, &mut vscratch);
                        for (vi, bi) in vscratch.iter_mut().zip(b) {
                            *vi = bi - *vi;
                        }
                        dot(md, &vscratch, &vscratch)
                    });
                    counts.matvecs += 1;
                    counts.vector_ops += 1;
                    counts.dots += 1;
                    if rr_true <= thresh_sq {
                        termination = Termination::Converged;
                        iterations = it;
                        if let Some(last) = norms.last_mut() {
                            *last = rr_true.max(0.0).sqrt();
                        }
                        break;
                    }
                    // rollback rung: restore the newest checkpoint and
                    // replay ≤ C iterations — keeps the Krylov direction
                    // history a warm restart would throw away
                    if let Some(rg) = ring.as_mut() {
                        let mut scal = [0.0; 3];
                        if let Some(c) = rg.rollback(opts, &mut [&mut x, &mut r, &mut p], &mut scal)
                        {
                            rr = scal[0];
                            rar = scal[1];
                            pap = scal[2];
                            rstats.rollbacks += 1;
                            if use_mpk {
                                mpk_powers2(
                                    a,
                                    opts,
                                    team.as_deref(),
                                    &mut ws,
                                    &mut cols_v,
                                    &mut cols_av,
                                    &mut p,
                                    &mut w,
                                    &mut v,
                                    &mut counts,
                                );
                            } else {
                                opts.matvec(a, &p, &mut w, &mut counts);
                                opts.matvec(a, &w, &mut v, &mut counts);
                            }
                            if opts.record_residuals {
                                norms.truncate(c + 1);
                            }
                            iterations = c;
                            it = c;
                            continue;
                        }
                    }
                    if rr_true >= 0.25 * last_restart_rr {
                        termination = Termination::Breakdown;
                        iterations = it;
                        break;
                    }
                    // warm restart
                    last_restart_rr = rr_true;
                    counts.restarts += 1;
                    opts.span(vr_obs::SpanKind::Recovery, || {
                        r.copy_from_slice(&vscratch);
                        p.copy_from_slice(&r);
                    });
                    if use_mpk {
                        mpk_powers2(
                            a,
                            opts,
                            team.as_deref(),
                            &mut ws,
                            &mut cols_v,
                            &mut cols_av,
                            &mut p,
                            &mut w,
                            &mut v,
                            &mut counts,
                        );
                    } else {
                        opts.matvec(a, &p, &mut w, &mut counts);
                        opts.matvec(a, &w, &mut v, &mut counts);
                    }
                    counts.vector_ops += 1;
                    rr = rr_true;
                    rar = dot(md, &r, &w);
                    counts.dots += 1;
                    pap = rar;
                    continue;
                }
                if let Some(rg) = ring.as_mut() {
                    rg.maybe_save(opts, it, &[&x, &r, &p], &[rr, rar, pap]);
                }
                it += 1;
                opts.iter_mark();
                if opts.service_poll(it - 1, rr) {
                    termination = Termination::Cancelled;
                    iterations = it - 1;
                    break;
                }
                // The four overlappable inner products — on CURRENT vectors,
                // launched before any of this iteration's scalar results
                // are needed (on the paper's machine their fan-ins overlap
                // the rest of this iteration).
                // Fused pairing: (r,w)/(r,v) share the sweep over r and
                // (w,w)/(w,v) the sweep over w; the per-element products are
                // commutative so the scalars are bit-identical to the four
                // separate dots of the reference formulation.
                // Split-phase: the sweeps fold leaf partials *now*; the
                // tree_combine fan-ins run at the `.wait()` consume points
                // below, so they overlap the x update in between — the
                // paper's launch-early/consume-late schedule on the team.
                let (rw_p, rv_p) = opts.dot2_deferred(&r, &w, &v, &mut counts);
                let (ww_p, wv_p) = opts.dot2_deferred(&w, &w, &v, &mut counts);

                let lambda = rr / pap;
                opts.axpy(lambda, &p, &mut x, &mut counts);

                // consume: deferred fan-ins resolve here, bit-identical to
                // the eager dot2 values
                let (rw, rv) = (rw_p.wait(), rv_p.wait());
                let (ww, wv) = (ww_p.wait(), wv_p.wait());

                // scalar recurrences (claim C3, k = 1)
                let rr_next = rr - 2.0 * lambda * rw + lambda * lambda * ww;
                let rar_next = rar - 2.0 * lambda * rv + lambda * lambda * wv;
                let alpha = rr_next / rr;
                let rnext_w = rw - lambda * ww;
                let pap_next = rar_next + 2.0 * alpha * rnext_w + alpha * alpha * pap;
                counts.scalar_ops += 12;

                if opts.record_residuals {
                    norms.push(rr_next.max(0.0).sqrt());
                }
                iterations = it;
                if rr_next <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if guard::check_finite(rr_next).is_err() {
                    // route through the validation branch at the loop top
                    rr = rr_next;
                    continue;
                }

                // vector updates
                opts.axpy(-lambda, &w, &mut r, &mut counts);
                opts.xpay(&r, alpha, &mut p, &mut counts);
                if use_mpk {
                    mpk_powers2(
                        a,
                        opts,
                        team.as_deref(),
                        &mut ws,
                        &mut cols_v,
                        &mut cols_av,
                        &mut p,
                        &mut w,
                        &mut v,
                        &mut counts,
                    );
                } else {
                    opts.matvec(a, &p, &mut w, &mut counts);
                    opts.matvec(a, &w, &mut v, &mut counts);
                }

                rr = rr_next;
                rar = rar_next;
                pap = pap_next;

                if self.resync > 0 && it.is_multiple_of(self.resync) {
                    // residual replacement: recompute the carried scalars
                    // directly (one extra matvec for A·r)
                    rr = dot(md, &r, &r);
                    a.apply(&r, &mut vscratch);
                    rar = dot(md, &r, &vscratch);
                    pap = dot(md, &p, &w);
                    counts.matvecs += 1;
                    counts.dots += 3;
                }
            }
        }

        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }
        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        // ABFT checksum verdicts from the split-phase reductions: repaired
        // (or NaN-localized) leaf corruptions detected at the consume points
        rstats.faults_detected += opts.drain_checksum_detections();
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        res.recovery = rstats;
        res
    }

    fn backoff(&self) -> Option<Box<dyn CgVariant>> {
        Some(Box::new(crate::standard::StandardCg::new()))
    }

    fn depth(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    #[test]
    fn converges_on_poisson2d_with_resync() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = OverlapK1Cg::new()
            .with_resync(20)
            .solve(&a, &b, None, &SolveOptions::default());
        assert!(res.converged, "termination {:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn converges_to_moderate_tolerance_without_resync() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = OverlapK1Cg::new().solve(&a, &b, None, &SolveOptions::default().with_tol(1e-6));
        assert!(res.converged, "termination {:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-4);
    }

    #[test]
    fn recursive_residual_stagnates_without_resync() {
        // The E9 phenomenon: at tight tolerances the recursive residual
        // plateaus above the threshold (attainable-accuracy loss).
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let opts = SolveOptions::default().with_tol(1e-12).with_max_iters(200);
        let res = OverlapK1Cg::new().solve(&a, &b, None, &opts);
        assert!(!res.converged, "expected stagnation at tol 1e-12");
        // ... which resync repairs
        let fixed = OverlapK1Cg::new()
            .with_resync(15)
            .solve(&a, &b, None, &opts);
        assert!(fixed.converged, "resync failed: {:?}", fixed.termination);
    }

    #[test]
    fn matches_standard_cg_iterates() {
        // In exact arithmetic the scalar recurrences reproduce the directly
        // computed inner products, so the residual histories must agree to
        // round-off.
        let a = gen::poisson2d(8);
        let b = gen::poisson2d_rhs(8);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let k1 = OverlapK1Cg::new().solve(&a, &b, None, &opts);
        assert!(k1.converged);
        let m = std.residual_norms.len().min(k1.residual_norms.len());
        for i in 0..m.saturating_sub(2) {
            let (s, o) = (std.residual_norms[i], k1.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-6 * (1.0 + s.abs()),
                "iter {i}: std {s} vs k1 {o}"
            );
        }
    }

    #[test]
    fn recursive_scalars_match_direct_dots_on_random_spd() {
        // Drive the solver a few iterations and verify the carried scalars
        // against direct computation (uses solve internals indirectly: the
        // final solution must equal standard CG's).
        let a = gen::rand_spd(40, 5, 2.0, 11);
        let b = gen::rand_vector(40, 12);
        let opts = SolveOptions::default().with_tol(1e-11);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let k1 = OverlapK1Cg::new().solve(&a, &b, None, &opts);
        assert!(k1.converged);
        for (xi, yi) in std.x.iter().zip(&k1.x) {
            assert!((xi - yi).abs() < 1e-7, "{xi} vs {yi}");
        }
    }

    #[test]
    fn op_counts_two_matvecs_four_dots() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let res = OverlapK1Cg::new().solve(&a, &b, None, &SolveOptions::default());
        let per = res.counts.per_iteration(res.iterations);
        assert!((per.matvecs - 2.0).abs() < 0.2, "matvecs {}", per.matvecs);
        assert!((per.dots - 4.0).abs() < 0.4, "dots {}", per.dots);
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(6);
        let res = OverlapK1Cg::new().solve(&a, &[0.0; 6], None, &SolveOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn checkpoint_rollback_beats_warm_restart_under_faults() {
        // with the ring active, guard-detected corruption replays ≤ C
        // iterations instead of warm-restarting; the solve still reaches
        // the fault-free answer
        use crate::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
        use std::sync::Arc;
        use vr_par::fault::FaultSite;
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let mut total_rollbacks = 0usize;
        for seed in 0..10u64 {
            // overlap-k1's fault surface is its reductions (the scalar
            // recurrences consume them): corrupt the dot partials
            let inj =
                SeededInjector::new(seed, 0.001, FaultKind::Nan).at_site(FaultSite::DotPartial);
            let o = SolveOptions::default()
                .with_tol(1e-6)
                .with_injector(Arc::new(inj))
                .with_recovery(RecoveryPolicy::default().with_checkpoint_period(8));
            let res = OverlapK1Cg::new().with_resync(20).solve(&a, &b, None, &o);
            if res.recovery.rollbacks > 0 && res.converged {
                assert_eq!(
                    res.termination,
                    Termination::RecoveredConverged,
                    "seed {seed}"
                );
                assert!(res.true_residual(&a, &b) < 1e-4, "seed {seed}");
                total_rollbacks += res.recovery.rollbacks;
            }
        }
        assert!(total_rollbacks >= 1, "no seed exercised the rollback path");
    }

    #[test]
    fn checksum_guard_localizes_partial_corruption() {
        // duplicate-leaf checksum on the split-phase dots: a corrupted
        // partial is detected (and repaired when one copy is clean) at the
        // consume point, surfacing through recovery.faults_detected
        use crate::resilience::{FaultKind, SeededInjector};
        use std::sync::Arc;
        use vr_linalg::kernels::DotMode;
        use vr_par::fault::FaultSite;
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let inj = SeededInjector::new(3, 0.002, FaultKind::Nan).at_site(FaultSite::DotPartial);
        let o = SolveOptions::default()
            .with_tol(1e-6)
            .with_dot_mode(DotMode::Tree)
            .with_reduction_checksum(true)
            .with_injector(Arc::new(inj));
        let res = OverlapK1Cg::new().with_resync(20).solve(&a, &b, None, &o);
        // single-copy NaN leaves are repaired in place: the solve converges
        // and every detection is tallied
        assert!(res.converged, "termination {:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-4);
        assert!(res.recovery.faults_detected >= 1, "{:?}", res.recovery);
    }

    #[test]
    fn breakdown_on_indefinite() {
        let a = gen::tridiag_toeplitz(10, 0.5, -1.0);
        let b = gen::rand_vector(10, 3);
        let res = OverlapK1Cg::new().solve(&a, &b, None, &SolveOptions::default());
        assert_eq!(res.termination, Termination::Breakdown);
    }
}
