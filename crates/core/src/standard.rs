//! Standard Hestenes-Stiefel conjugate gradient iteration (paper §2).
//!
//! This is the baseline the paper restructures. Per iteration: one SpMV,
//! two inner products **in serial dependency** (`(r,r)` gates `α` gates `p`
//! gates `Ap` gates `(p,Ap)` gates `λ`), three vector updates.

use crate::instrument::OpCounts;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::{self, dot};
use vr_linalg::LinearOperator;

/// Standard CG solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardCg;

impl StandardCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        StandardCg
    }
}

impl CgVariant for StandardCg {
    fn name(&self) -> String {
        "standard-cg".into()
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        let n = a.dim();
        let mut counts = OpCounts::default();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut p = r.clone();
        counts.vector_ops += 1;
        let mut w = vec![0.0; n];

        let mut rr = dot(opts.dot_mode, &r, &r);
        counts.dots += 1;
        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        if rr <= thresh_sq {
            termination = Termination::Converged;
        } else {
            for it in 0..opts.max_iters {
                a.apply(&p, &mut w);
                counts.matvecs += 1;
                let pap = dot(opts.dot_mode, &p, &w);
                counts.dots += 1;
                if !(pap.is_finite() && pap > 0.0) {
                    termination = Termination::Breakdown;
                    iterations = it;
                    break;
                }
                let lambda = rr / pap;
                counts.scalar_ops += 1;
                kernels::axpy(lambda, &p, &mut x);
                kernels::axpy(-lambda, &w, &mut r);
                counts.vector_ops += 2;

                let rr_next = dot(opts.dot_mode, &r, &r);
                counts.dots += 1;
                if opts.record_residuals {
                    norms.push(rr_next.max(0.0).sqrt());
                }
                iterations = it + 1;
                if rr_next <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if !rr_next.is_finite() {
                    termination = Termination::Breakdown;
                    break;
                }
                let alpha = rr_next / rr;
                counts.scalar_ops += 1;
                kernels::xpay(&r, alpha, &mut p);
                counts.vector_ops += 1;
                rr = rr_next;
            }
        }

        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        SolveResult::new(x, termination, iterations, norms, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;
    use vr_linalg::DenseMatrix;

    fn solve_default(a: &vr_linalg::CsrMatrix, b: &[f64]) -> SolveResult {
        StandardCg::new().solve(a, b, None, &SolveOptions::default())
    }

    #[test]
    fn solves_poisson1d_exactly_in_n_iterations() {
        // CG converges in ≤ n iterations in exact arithmetic; for the 1-D
        // Laplacian with n distinct eigenvalues it takes exactly n (modulo
        // the rhs spectrum).
        let n = 20;
        let a = gen::poisson1d(n);
        let b = gen::rand_vector(n, 1);
        let res = solve_default(&a, &b);
        assert!(res.converged);
        assert!(res.iterations <= n + 1);
        assert!(res.true_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn matches_cholesky_on_small_spd() {
        let a = gen::rand_spd(25, 4, 2.0, 7);
        let b = gen::rand_vector(25, 8);
        let res = solve_default(&a, &b);
        assert!(res.converged);
        let dense = DenseMatrix::from_rows(&a.to_dense()).unwrap();
        let exact = dense.solve_spd(&b).unwrap();
        for (xi, ei) in res.x.iter().zip(&exact) {
            assert!((xi - ei).abs() < 1e-7, "{xi} vs {ei}");
        }
    }

    #[test]
    fn residuals_monotone_overall_on_poisson2d() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = solve_default(&a, &b);
        assert!(res.converged);
        // ‖r‖ in CG is not strictly monotone, but must shrink overall.
        let first = res.residual_norms[0];
        let last = *res.residual_norms.last().unwrap();
        assert!(last < 1e-9 * first.max(1.0));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = gen::poisson1d(8);
        let b = vec![0.0; 8];
        let res = solve_default(&a, &b);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert_eq!(res.x, vec![0.0; 8]);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let cold = solve_default(&a, &b);
        // warm start from the cold solution: should converge instantly
        let warm = StandardCg::new().solve(&a, &b, Some(&cold.x), &SolveOptions::default());
        assert!(warm.converged);
        assert!(warm.iterations <= 2, "warm iterations {}", warm.iterations);
    }

    #[test]
    fn op_counts_per_iteration_match_classic_cg() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let res = solve_default(&a, &b);
        let per = res.counts.per_iteration(res.iterations);
        assert!((per.matvecs - 1.0).abs() < 0.1, "matvecs {}", per.matvecs);
        assert!((per.dots - 2.0).abs() < 0.2, "dots {}", per.dots);
        assert!(per.vector_ops <= 3.5, "vector ops {}", per.vector_ops);
    }

    #[test]
    fn indefinite_matrix_breaks_down() {
        let a = gen::tridiag_toeplitz(10, 0.5, -1.0); // indefinite
        let b = gen::rand_vector(10, 3);
        let res = solve_default(&a, &b);
        assert_eq!(res.termination, Termination::Breakdown);
    }

    #[test]
    fn max_iters_respected() {
        let a = gen::poisson2d(16);
        let b = gen::poisson2d_rhs(16);
        let res = StandardCg::new().solve(
            &a,
            &b,
            None,
            &SolveOptions::default().with_max_iters(3),
        );
        assert_eq!(res.termination, Termination::MaxIterations);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn tree_dot_mode_converges_identically_shaped() {
        let a = gen::poisson2d(8);
        let b = gen::poisson2d_rhs(8);
        let serial = solve_default(&a, &b);
        let tree = StandardCg::new().solve(
            &a,
            &b,
            None,
            &SolveOptions::default().with_dot_mode(vr_linalg::kernels::DotMode::Tree),
        );
        assert!(tree.converged);
        // same iteration count up to ±2 (round-off differences only)
        assert!((tree.iterations as i64 - serial.iterations as i64).abs() <= 2);
    }
}
