//! Standard Hestenes-Stiefel conjugate gradient iteration (paper §2).
//!
//! This is the baseline the paper restructures. Per iteration: one SpMV,
//! two inner products **in serial dependency** (`(r,r)` gates `α` gates `p`
//! gates `Ap` gates `(p,Ap)` gates `λ`), three vector updates.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard::{self, GuardSignal, ResidualGuard};
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::LinearOperator;

/// Roll the `[x, r, p]` + `[rr]` state back to the newest checkpoint, fixing
/// up the residual history and rollback tally. Returns the checkpoint
/// iteration to resume from, or `None` when the rollback rung is exhausted
/// (the failure then falls through to the restart ladder as before).
#[allow(clippy::too_many_arguments)]
fn try_rollback(
    ring: &mut Option<CheckpointRing>,
    opts: &SolveOptions,
    x: &mut [f64],
    r: &mut [f64],
    p: &mut [f64],
    rr: &mut f64,
    norms: &mut Vec<f64>,
    rstats: &mut RecoveryStats,
) -> Option<usize> {
    let ring = ring.as_mut()?;
    let mut scalars = [0.0];
    let c = ring.rollback(opts, &mut [x, r, p], &mut scalars)?;
    *rr = scalars[0];
    rstats.rollbacks += 1;
    if opts.record_residuals {
        norms.truncate(c + 1);
    }
    Some(c)
}

/// Standard CG solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardCg;

impl StandardCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        StandardCg
    }
}

impl CgVariant for StandardCg {
    fn name(&self) -> String {
        "standard-cg".into()
    }

    fn mixed_eligible(&self) -> bool {
        true
    }

    fn sweep_eligible(&self) -> bool {
        true
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            return crate::sweep::solve_standard(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::solve_standard(a, b, x0, opts);
        }
        let n = a.dim();
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut p = r.clone();
        counts.vector_ops += 1;
        let mut w = vec![0.0; n];

        let mut rstats = RecoveryStats::default();
        let mut rr = guard::guarded_dot(opts, &r, &r, &mut rstats);
        counts.dots += 1;
        let mut rguard: Option<ResidualGuard<'_>> = opts
            .recovery
            .as_ref()
            .map(|policy| ResidualGuard::new(a, b, policy.clone(), rr));
        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        let mut start_converged = rr <= thresh_sq;
        if start_converged {
            // same spurious-convergence hazard as in the loop below
            if let Some((r_new, rr_new)) = rguard
                .as_mut()
                .and_then(|g| g.confirm_convergence(&x, thresh_sq))
            {
                r = r_new;
                rr = rr_new;
                p.copy_from_slice(&r);
                counts.vector_ops += 2;
                start_converged = false;
            }
        }
        // checkpoint ring (policy-gated): snapshots [x, r, p] + [rr]
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 3, n, 1));

        if start_converged {
            termination = Termination::Converged;
        } else {
            let mut it = 0usize;
            while it < opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(it, rr) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                if let Some(ring) = ring.as_mut() {
                    ring.maybe_save(opts, it, &[&x, &r, &p], &[rr]);
                }
                // Under the fused policy this iteration runs in three sweeps:
                // matvec+(p,Ap) fused, then x/r updates+(r,r) fused, then the
                // direction xpay. (The operator-level no-store kernels that
                // skip materializing w trade that store for a second stencil
                // evaluation — a loss on compute-bound cores, so the solver
                // keeps w and fuses around it.)
                let pap = guard::guarded_matvec_dot(opts, a, &p, &mut w, &mut counts, &mut rstats);
                if let Err(kind) = guard::check_pivot(pap) {
                    if let Some(c) = try_rollback(
                        &mut ring,
                        opts,
                        &mut x,
                        &mut r,
                        &mut p,
                        &mut rr,
                        &mut norms,
                        &mut rstats,
                    ) {
                        iterations = c;
                        it = c;
                        continue;
                    }
                    termination = kind.termination();
                    iterations = it;
                    break;
                }
                let lambda = opts.scalar(rr / pap);
                counts.scalar_ops += 1;
                let mut rr_next = guard::guarded_update_xr(
                    opts,
                    lambda,
                    &p,
                    &w,
                    &mut x,
                    &mut r,
                    &mut counts,
                    &mut rstats,
                );
                iterations = it + 1;

                // recovery hook: periodic true-residual check, residual
                // replacement, stagnation/divergence detection
                let mut replaced = false;
                if let Some(g) = rguard.as_mut() {
                    match g.inspect(iterations, &x, rr_next) {
                        GuardSignal::Proceed => {}
                        GuardSignal::Replace {
                            r: r_new,
                            rr: rr_new,
                        } => {
                            r = r_new;
                            rr_next = rr_new;
                            // direction restart from the replaced residual
                            p.copy_from_slice(&r);
                            counts.vector_ops += 2;
                            replaced = true;
                        }
                        GuardSignal::Halt(t) => {
                            // rollback can undo fault-driven divergence, but
                            // stagnation persists in the guard's window — a
                            // replay would halt again immediately
                            if t != Termination::Stagnated {
                                if let Some(c) = try_rollback(
                                    &mut ring,
                                    opts,
                                    &mut x,
                                    &mut r,
                                    &mut p,
                                    &mut rr,
                                    &mut norms,
                                    &mut rstats,
                                ) {
                                    iterations = c;
                                    it = c;
                                    continue;
                                }
                            }
                            termination = t;
                            if opts.record_residuals {
                                norms.push(rr_next.max(0.0).sqrt());
                            }
                            rr = rr_next;
                            break;
                        }
                    }
                }

                if rr_next <= thresh_sq {
                    // a corrupted reduction can fake convergence (a dropped
                    // partial shrinks rr): under a recovery policy the
                    // signal must survive a true-residual check
                    match rguard
                        .as_mut()
                        .and_then(|g| g.confirm_convergence(&x, thresh_sq))
                    {
                        None => {
                            if opts.record_residuals {
                                norms.push(rr_next.max(0.0).sqrt());
                            }
                            termination = Termination::Converged;
                            rr = rr_next;
                            break;
                        }
                        Some((r_new, rr_new)) => {
                            r = r_new;
                            rr_next = rr_new;
                            p.copy_from_slice(&r);
                            counts.vector_ops += 2;
                            replaced = true;
                        }
                    }
                }
                if opts.record_residuals {
                    norms.push(rr_next.max(0.0).sqrt());
                }
                if guard::check_finite(rr_next).is_err() {
                    if let Some(c) = try_rollback(
                        &mut ring,
                        opts,
                        &mut x,
                        &mut r,
                        &mut p,
                        &mut rr,
                        &mut norms,
                        &mut rstats,
                    ) {
                        iterations = c;
                        it = c;
                        continue;
                    }
                    termination = Termination::Breakdown;
                    rr = rr_next;
                    break;
                }
                if !replaced {
                    let alpha = opts.scalar(rr_next / rr);
                    counts.scalar_ops += 1;
                    opts.xpay(&r, alpha, &mut p, &mut counts);
                }
                rr = rr_next;
                it += 1;
            }
        }
        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }

        if let Some(g) = rguard {
            rstats.faults_detected += g.stats.faults_detected;
            rstats.replacements += g.stats.replacements;
            counts.matvecs += g.extra_matvecs;
            counts.dots += g.extra_matvecs;
            counts.vector_ops += g.extra_matvecs;
        }
        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        res.recovery = rstats;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;
    use vr_linalg::DenseMatrix;

    fn solve_default(a: &vr_linalg::CsrMatrix, b: &[f64]) -> SolveResult {
        StandardCg::new().solve(a, b, None, &SolveOptions::default())
    }

    #[test]
    fn solves_poisson1d_exactly_in_n_iterations() {
        // CG converges in ≤ n iterations in exact arithmetic; for the 1-D
        // Laplacian with n distinct eigenvalues it takes exactly n (modulo
        // the rhs spectrum).
        let n = 20;
        let a = gen::poisson1d(n);
        let b = gen::rand_vector(n, 1);
        let res = solve_default(&a, &b);
        assert!(res.converged);
        assert!(res.iterations <= n + 1);
        assert!(res.true_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn matches_cholesky_on_small_spd() {
        let a = gen::rand_spd(25, 4, 2.0, 7);
        let b = gen::rand_vector(25, 8);
        let res = solve_default(&a, &b);
        assert!(res.converged);
        let dense = DenseMatrix::from_rows(&a.to_dense()).unwrap();
        let exact = dense.solve_spd(&b).unwrap();
        for (xi, ei) in res.x.iter().zip(&exact) {
            assert!((xi - ei).abs() < 1e-7, "{xi} vs {ei}");
        }
    }

    #[test]
    fn residuals_monotone_overall_on_poisson2d() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = solve_default(&a, &b);
        assert!(res.converged);
        // ‖r‖ in CG is not strictly monotone, but must shrink overall.
        let first = res.residual_norms[0];
        let last = *res.residual_norms.last().unwrap();
        assert!(last < 1e-9 * first.max(1.0));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = gen::poisson1d(8);
        let b = vec![0.0; 8];
        let res = solve_default(&a, &b);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert_eq!(res.x, vec![0.0; 8]);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let cold = solve_default(&a, &b);
        // warm start from the cold solution: should converge instantly
        let warm = StandardCg::new().solve(&a, &b, Some(&cold.x), &SolveOptions::default());
        assert!(warm.converged);
        assert!(warm.iterations <= 2, "warm iterations {}", warm.iterations);
    }

    #[test]
    fn op_counts_per_iteration_match_classic_cg() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let res = solve_default(&a, &b);
        let per = res.counts.per_iteration(res.iterations);
        assert!((per.matvecs - 1.0).abs() < 0.1, "matvecs {}", per.matvecs);
        assert!((per.dots - 2.0).abs() < 0.2, "dots {}", per.dots);
        assert!(per.vector_ops <= 3.5, "vector ops {}", per.vector_ops);
    }

    #[test]
    fn indefinite_matrix_breaks_down() {
        let a = gen::tridiag_toeplitz(10, 0.5, -1.0); // indefinite
        let b = gen::rand_vector(10, 3);
        let res = solve_default(&a, &b);
        assert_eq!(res.termination, Termination::Breakdown);
    }

    #[test]
    fn max_iters_respected() {
        let a = gen::poisson2d(16);
        let b = gen::poisson2d_rhs(16);
        let res = StandardCg::new().solve(&a, &b, None, &SolveOptions::default().with_max_iters(3));
        assert_eq!(res.termination, Termination::MaxIterations);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn single_injected_fault_recovered_in_loop() {
        // one NaN strikes a reduction mid-solve; with a recovery policy the
        // guarded dot retries the reduction and the solve proceeds to the
        // fault-free answer — no restart ladder needed
        use crate::resilience::{FaultKind, RecoveryPolicy, SingleFault};
        use std::sync::Arc;
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let o = SolveOptions::default()
            .with_tol(1e-9)
            .with_injector(Arc::new(SingleFault::new(5000, FaultKind::Nan)))
            .with_recovery(RecoveryPolicy::default());
        let res = StandardCg::new().solve(&a, &b, None, &o);
        assert!(res.converged, "termination {:?}", res.termination);
        assert!(res.recovery.faults_detected >= 1, "{:?}", res.recovery);
        assert!(res.true_residual(&a, &b) < 1e-7);
    }

    #[test]
    fn dropped_reductions_never_fake_convergence() {
        // a Drop fault shrinks rr toward 0, which *looks* like convergence;
        // the honesty property: whenever the solver claims convergence, the
        // true residual really is small — for any fault seed
        use crate::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
        use std::sync::Arc;
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let bnorm = vr_linalg::kernels::norm2(&b);
        for seed in 0..6u64 {
            let o = SolveOptions::default()
                .with_tol(1e-8)
                .with_injector(Arc::new(SeededInjector::new(seed, 0.05, FaultKind::Drop)))
                .with_recovery(RecoveryPolicy::default());
            let res = StandardCg::new().solve(&a, &b, None, &o);
            if res.converged {
                let rel = res.true_residual(&a, &b) / bnorm;
                assert!(rel < 1e-6, "seed {seed}: claimed convergence at rel {rel}");
            }
        }
    }

    #[test]
    fn checkpoint_rollback_rescues_poisoned_iterate() {
        // a NaN in the scalar recurrence poisons x itself — beyond residual
        // replacement. With a checkpoint ring the solve rolls back ≤ C
        // iterations and replays (fresh injector draws), instead of
        // surfacing Breakdown to the restart ladder.
        use crate::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
        use std::sync::Arc;
        use vr_par::fault::FaultSite;
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let mut total_rollbacks = 0usize;
        for seed in 0..10u64 {
            let inj = SeededInjector::new(seed, 0.02, FaultKind::Nan)
                .at_site(FaultSite::ScalarRecurrence);
            let o = SolveOptions::default()
                .with_tol(1e-9)
                .with_injector(Arc::new(inj))
                .with_recovery(RecoveryPolicy::default().with_checkpoint_period(8));
            let res = StandardCg::new().solve(&a, &b, None, &o);
            if res.recovery.rollbacks > 0 && res.converged {
                assert_eq!(
                    res.termination,
                    Termination::RecoveredConverged,
                    "seed {seed}"
                );
                assert!(res.true_residual(&a, &b) < 1e-7, "seed {seed}");
                total_rollbacks += res.recovery.rollbacks;
            }
        }
        assert!(total_rollbacks >= 1, "no seed exercised the rollback path");
    }

    #[test]
    fn rollback_disabled_by_default_keeps_breakdown_contract() {
        // checkpoint_period defaults to 0: a poisoned iterate still
        // surfaces Breakdown for the restart ladder, bit-for-bit as before
        use crate::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
        use std::sync::Arc;
        use vr_par::fault::FaultSite;
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let inj =
            SeededInjector::new(11, 0.05, FaultKind::Nan).at_site(FaultSite::ScalarRecurrence);
        let o = SolveOptions::default()
            .with_tol(1e-9)
            .with_injector(Arc::new(inj))
            .with_recovery(RecoveryPolicy::default());
        let res = StandardCg::new().solve(&a, &b, None, &o);
        assert_eq!(res.recovery.rollbacks, 0);
        assert!(!res.converged || res.termination == Termination::Converged);
    }

    #[test]
    fn tree_dot_mode_converges_identically_shaped() {
        let a = gen::poisson2d(8);
        let b = gen::poisson2d_rhs(8);
        let serial = solve_default(&a, &b);
        let tree = StandardCg::new().solve(
            &a,
            &b,
            None,
            &SolveOptions::default().with_dot_mode(vr_linalg::kernels::DotMode::Tree),
        );
        assert!(tree.converged);
        // same iteration count up to ±2 (round-off differences only)
        assert!((tree.iterations as i64 - serial.iterations as i64).abs() <= 2);
    }
}
