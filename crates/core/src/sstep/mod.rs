//! s-step (communication-avoiding) conjugate gradients — the descendant of
//! Van Rosendale's look-ahead idea.
//!
//! The 1983 paper restructures CG so inner-product fan-ins have k
//! iterations of slack. The s-step family (Chronopoulos-Gear 1989, later
//! CA-CG) takes the complementary step the paper's machinery makes
//! possible: perform `s` CG iterations as **one block step** — build an
//! s-dimensional Krylov basis with `s` matvecs, form all inner products in
//! **one batched Gram computation** (a single reduction per block instead
//! of 2s), and advance by solving an s×s SPD system.
//!
//! Each outer step of [`SStepCg`]:
//!
//! 1. `V = [p₀(A)r, p₁(A)r, …, p_{s−1}(A)r]` — the basis polynomials come
//!    from [`basis::BasisKind`]: monomial (the paper's powers `Aⁱr`),
//!    Newton (shifted by Leja-ordered Ritz values), or Chebyshev (scaled to
//!    the spectral interval). The latter two fix the numerical instability
//!    of the power basis that E9 maps.
//! 2. A-conjugate `V` against the previous block `P_prev`:
//!    `P = V − P_prev·B` with `B = (P_prevᵀAP_prev)⁻¹(P_prevᵀAV)`.
//! 3. Solve `(PᵀAP)·y = Pᵀr` by dense Cholesky and update
//!    `x += P·y`, `r −= AP·y`.
//!
//! In exact arithmetic this reproduces `s` iterations of CG (same Krylov
//! space, same A-norm minimization). The Gram matrices are computed by
//! batched deterministic reductions, so the block has **two reduction
//! points per s iterations** — the communication-avoiding property.

pub mod basis;

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use basis::{BasisKind, KrylovBasis};
use vr_linalg::dense::Cholesky;
use vr_linalg::kernels::dot;
use vr_linalg::mpk::MpkWorkspace;
use vr_linalg::{DenseMatrix, LinearOperator};

/// s-step CG solver.
#[derive(Debug, Clone)]
pub struct SStepCg {
    /// Block size `s ≥ 1` (s CG iterations per outer step).
    pub s: usize,
    /// Basis polynomials for the block Krylov space.
    pub basis: BasisKind,
}

impl SStepCg {
    /// Monomial-basis s-step CG (the paper's power basis).
    #[must_use]
    pub fn monomial(s: usize) -> Self {
        SStepCg {
            s: s.max(1),
            basis: BasisKind::Monomial,
        }
    }

    /// Newton-basis s-step CG with shifts estimated by Lanczos.
    #[must_use]
    pub fn newton(s: usize) -> Self {
        SStepCg {
            s: s.max(1),
            basis: BasisKind::Newton,
        }
    }

    /// Chebyshev-basis s-step CG scaled to a Lanczos-estimated interval.
    #[must_use]
    pub fn chebyshev(s: usize) -> Self {
        SStepCg {
            s: s.max(1),
            basis: BasisKind::Chebyshev,
        }
    }
}

impl CgVariant for SStepCg {
    fn name(&self) -> String {
        format!("sstep-cg(s={},{})", self.s, self.basis.label())
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            // The s-step block exchange (basis build + Gram solve) spans
            // s matvec depths — no single-pass schedule exists.
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let s = self.s;
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);
        let team = opts.team();

        // Basis parameters (shifts / interval) from a short Lanczos run.
        let params = basis::BasisParams::estimate(self.basis, a, s, &mut counts);

        let mut norms = Vec::new();
        let mut rr = dot(md, &r, &r);
        counts.dots += 1;
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        // Two direction blocks, alternating roles each outer step:
        // `blocks[cur]` receives the fresh basis (becoming the current P),
        // `blocks[1 − cur]` holds the previous step's P (valid only when
        // `prev_active`). Swapping indices instead of buffers keeps every
        // outer step allocation-free once both blocks are warm.
        let mut blocks = [KrylovBasis::default(), KrylovBasis::default()];
        let mut cur = 0usize;
        let mut prev_active = false;
        let mut ws = MpkWorkspace::new();
        ws.set_tracer(opts.tracer.clone());
        // dense scratch, sized once
        let mut gram = DenseMatrix::zeros(s, s);
        let mut chol = Cholesky::zeros(s);
        let mut rhs = vec![0.0; s];
        let mut ycoef = vec![0.0; s];
        let mut bcoef = vec![0.0; s];
        // validation scratch for `validate_or_restart`
        let mut vscratch = vec![0.0; r.len()];

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0usize;
        let mut last_restart_rr = f64::INFINITY;

        // Checkpoint ring (policy-gated): snapshots [x, r] + [rr] at block
        // boundaries; the direction blocks are NOT saved — a restore
        // resumes with `prev_active = false`, so the next block starts
        // unconjugated (exactly the state after a warm restart, but from a
        // ≤ C-iterations-old known-good iterate).
        let mut rstats = RecoveryStats::default();
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 2, r.len(), 1));
        macro_rules! rollback_or_break {
            ($lbl:lifetime) => {
                if termination == Termination::Breakdown {
                    if let Some(rg) = ring.as_mut() {
                        let mut scal = [0.0];
                        if let Some(c) = rg.rollback(opts, &mut [&mut x, &mut r], &mut scal) {
                            rr = scal[0];
                            rstats.rollbacks += 1;
                            if opts.record_residuals {
                                norms.truncate(c / s + 1);
                            }
                            iterations = c;
                            termination = Termination::MaxIterations;
                            prev_active = false;
                            continue $lbl;
                        }
                    }
                }
                break $lbl;
            };
        }

        if rr <= thresh_sq {
            termination = Termination::Converged;
        }

        'outer: while termination == Termination::MaxIterations && iterations < opts.max_iters {
            // 1) block basis from the current residual (one mark per outer
            // block step — the natural iteration unit of s-step CG)
            opts.iter_mark();
            if opts.service_poll(iterations, rr) {
                termination = Termination::Cancelled;
                break 'outer;
            }
            if let Some(rg) = ring.as_mut() {
                rg.maybe_save(opts, iterations, &[&x, &r], &[rr]);
            }
            opts.span(vr_obs::SpanKind::MpkBuild, || {
                basis::build_into(
                    a,
                    &r,
                    s,
                    &params,
                    opts.basis_engine,
                    team.as_deref(),
                    opts.mpk_tile,
                    &mut ws,
                    &mut blocks[cur],
                    &mut counts,
                );
            });

            // 2) A-conjugation against the previous block:
            //    B = (P'ᵀAP')⁻¹ (P'ᵀAV);  P = V − P'B;  AP = AV − AP'B
            let (lo, hi) = blocks.split_at_mut(1);
            let (blk, prev) = if cur == 0 {
                (&mut lo[0], &hi[0])
            } else {
                (&mut hi[0], &lo[0])
            };
            let (p, ap) = (&mut blk.v, &mut blk.av);
            if prev_active {
                let (p_prev, ap_prev) = (&prev.v, &prev.av);
                let sp = p_prev.len();
                for i in 0..sp {
                    for j in 0..sp {
                        gram[(i, j)] = dot(md, &p_prev[i], &ap_prev[j]);
                    }
                }
                counts.dots += sp * sp;
                if gram.cholesky_into(&mut chol).is_err() {
                    if !validate_or_restart(
                        a,
                        b,
                        md,
                        thresh_sq,
                        &x,
                        &mut r,
                        &mut rr,
                        &mut last_restart_rr,
                        &mut vscratch,
                        &mut counts,
                        &mut termination,
                    ) {
                        rollback_or_break!('outer);
                    }
                    prev_active = false;
                    continue 'outer;
                }
                for (pc, apc) in p.iter_mut().zip(ap.iter_mut()) {
                    // rhs_i = (p_prev_i, A·v) = (ap_prev_i, v)
                    for (ri, api) in rhs.iter_mut().zip(ap_prev) {
                        *ri = dot(md, api, &*pc);
                    }
                    counts.dots += sp;
                    chol.solve_into(&rhs, &mut bcoef);
                    for (i, &bi) in bcoef.iter().enumerate() {
                        opts.axpy(-bi, &p_prev[i], pc, &mut counts);
                        opts.axpy(-bi, &ap_prev[i], apc, &mut counts);
                    }
                    counts.scalar_ops += sp * sp;
                }
            }

            // 3) small SPD solve: (PᵀAP) y = Pᵀ r
            for i in 0..s {
                for j in 0..s {
                    gram[(i, j)] = dot(md, &p[i], &ap[j]);
                }
            }
            for (ri, pi) in rhs.iter_mut().zip(p.iter()) {
                *ri = dot(md, pi, &r);
            }
            counts.dots += s * s + s;

            if gram.cholesky_into(&mut chol).is_err() {
                if !validate_or_restart(
                    a,
                    b,
                    md,
                    thresh_sq,
                    &x,
                    &mut r,
                    &mut rr,
                    &mut last_restart_rr,
                    &mut vscratch,
                    &mut counts,
                    &mut termination,
                ) {
                    rollback_or_break!('outer);
                }
                prev_active = false;
                continue 'outer;
            }
            chol.solve_into(&rhs, &mut ycoef);
            counts.scalar_ops += s * s * s / 3;

            // 4) block update; the final r-axpy carries the residual norm
            //    in the same sweep (bit-identical to axpy-then-dot)
            let (&y_last, y_rest) = ycoef.split_last().expect("s >= 1");
            for (i, &yi) in y_rest.iter().enumerate() {
                opts.axpy(yi, &p[i], &mut x, &mut counts);
                opts.axpy(-yi, &ap[i], &mut r, &mut counts);
            }
            opts.axpy(y_last, &p[s - 1], &mut x, &mut counts);

            rr = opts.axpy_norm2_sq(-y_last, &ap[s - 1], &mut r, &mut counts);
            iterations += s.min(opts.max_iters - iterations);
            if opts.record_residuals {
                norms.push(rr.max(0.0).sqrt());
            }
            if rr <= thresh_sq {
                termination = Termination::Converged;
                break;
            }
            if guard::check_finite(rr).is_err() {
                if !validate_or_restart(
                    a,
                    b,
                    md,
                    thresh_sq,
                    &x,
                    &mut r,
                    &mut rr,
                    &mut last_restart_rr,
                    &mut vscratch,
                    &mut counts,
                    &mut termination,
                ) {
                    rollback_or_break!('outer);
                }
                prev_active = false;
                continue 'outer;
            }

            // the fresh block becomes the previous block for the next step
            cur = 1 - cur;
            prev_active = true;
        }

        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }
        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        rstats.restarts = counts.restarts;
        rstats.final_k = s;
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        res.recovery = rstats;
        res
    }

    fn backoff(&self) -> Option<Box<dyn CgVariant>> {
        if self.s > 1 {
            Some(Box::new(SStepCg {
                s: self.s / 2,
                basis: self.basis,
            }))
        } else {
            Some(Box::new(crate::standard::StandardCg::new()))
        }
    }

    fn depth(&self) -> usize {
        self.s
    }
}

/// Shared suspicious-signal handler: recompute the true residual; set
/// `Converged` (returning false to stop), or refresh `r`/`rr` for a warm
/// restart (returning true), or set `Breakdown` when no progress
/// (returning false). `scratch` holds `A·x` transiently (no allocation).
#[allow(clippy::too_many_arguments)]
fn validate_or_restart(
    a: &dyn LinearOperator,
    b: &[f64],
    md: vr_linalg::kernels::DotMode,
    thresh_sq: f64,
    x: &[f64],
    r: &mut [f64],
    rr: &mut f64,
    last_restart_rr: &mut f64,
    scratch: &mut [f64],
    counts: &mut OpCounts,
    termination: &mut Termination,
) -> bool {
    a.apply(x, scratch);
    // scratch ← b − A·x in place (same bits as the two-buffer sub)
    for (si, bi) in scratch.iter_mut().zip(b) {
        *si = bi - *si;
    }
    let rr_true = dot(md, scratch, scratch);
    counts.matvecs += 1;
    counts.vector_ops += 1;
    counts.dots += 1;
    if rr_true <= thresh_sq {
        *termination = Termination::Converged;
        return false;
    }
    // non-finite true residual: the iterate is poisoned, restarting from
    // it would loop forever — breakdown (NaN fails every comparison, so
    // the progress test alone would let it through)
    if crate::resilience::guard::check_finite(rr_true).is_err()
        || rr_true >= 0.25 * *last_restart_rr
    {
        *termination = Termination::Breakdown;
        return false;
    }
    *last_restart_rr = rr_true;
    counts.restarts += 1;
    r.copy_from_slice(scratch);
    *rr = rr_true;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    fn opts() -> SolveOptions {
        SolveOptions::default().with_tol(1e-8).with_max_iters(4000)
    }

    #[test]
    fn monomial_s2_matches_standard_cg_blocks() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let std = StandardCg::new().solve(&a, &b, None, &opts());
        let ss = SStepCg::monomial(2).solve(&a, &b, None, &opts());
        assert!(ss.converged, "{:?}", ss.termination);
        // Block boundaries align with every 2nd CG iterate: residual norms
        // at outer step j must match CG iterate 2j.
        for (j, rn) in ss.residual_norms.iter().enumerate().skip(1).take(8) {
            let cg_idx = 2 * j;
            if cg_idx < std.residual_norms.len() {
                let cg = std.residual_norms[cg_idx];
                assert!(
                    (rn - cg).abs() <= 1e-4 * (1.0 + cg),
                    "block {j}: {rn} vs CG[{cg_idx}] = {cg}"
                );
            }
        }
    }

    #[test]
    fn all_bases_converge_on_poisson2d() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        for solver in [
            SStepCg::monomial(4),
            SStepCg::newton(4),
            SStepCg::chebyshev(4),
        ] {
            let res = solver.solve(&a, &b, None, &opts());
            assert!(
                res.converged,
                "{}: {:?} after {}",
                solver.name(),
                res.termination,
                res.iterations
            );
            assert!(
                res.true_residual(&a, &b) < 1e-5,
                "{}: true residual {}",
                solver.name(),
                res.true_residual(&a, &b)
            );
        }
    }

    #[test]
    fn stable_bases_survive_larger_s_than_monomial() {
        // On a moderately conditioned problem, s = 12 with the monomial
        // basis degrades (restarts / extra iterations); Chebyshev stays
        // clean. Quantified: Chebyshev needs no more than half the
        // monomial's iteration count or the monomial fails outright.
        let a = gen::poisson2d(16);
        let b = gen::poisson2d_rhs(16);
        let o = SolveOptions::default().with_tol(1e-8).with_max_iters(4000);
        let mono = SStepCg::monomial(12).solve(&a, &b, None, &o);
        let cheb = SStepCg::chebyshev(12).solve(&a, &b, None, &o);
        assert!(cheb.converged, "chebyshev: {:?}", cheb.termination);
        assert!(cheb.true_residual(&a, &b) < 1e-5);
        let mono_ok = mono.converged && mono.counts.restarts == 0;
        assert!(
            !mono_ok || mono.iterations >= cheb.iterations,
            "monomial unexpectedly clean at s=12: {} iters vs chebyshev {}",
            mono.iterations,
            cheb.iterations
        );
    }

    #[test]
    fn s1_equals_standard_cg() {
        // s = 1 degenerates to steepest-descent-with-conjugation = CG
        let a = gen::rand_spd(30, 4, 2.0, 8);
        let b = gen::rand_vector(30, 9);
        let std = StandardCg::new().solve(&a, &b, None, &opts());
        let ss = SStepCg::monomial(1).solve(&a, &b, None, &opts());
        assert!(ss.converged);
        let m = std.residual_norms.len().min(ss.residual_norms.len());
        for i in 0..m.saturating_sub(2) {
            let (s0, s1) = (std.residual_norms[i], ss.residual_norms[i]);
            assert!(
                (s0 - s1).abs() <= 1e-6 * (1.0 + s0),
                "iter {i}: {s0} vs {s1}"
            );
        }
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(6);
        let res = SStepCg::monomial(3).solve(&a, &[0.0; 6], None, &opts());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(SStepCg::monomial(4).name(), "sstep-cg(s=4,monomial)");
        assert_eq!(SStepCg::newton(2).name(), "sstep-cg(s=2,newton)");
        assert_eq!(SStepCg::chebyshev(8).name(), "sstep-cg(s=8,chebyshev)");
        assert_eq!(SStepCg::monomial(0).s, 1);
    }

    #[test]
    fn solves_random_spd_with_all_bases() {
        let a = gen::rand_spd(60, 5, 1.5, 44);
        let b = gen::rand_vector(60, 45);
        for solver in [
            SStepCg::monomial(3),
            SStepCg::newton(3),
            SStepCg::chebyshev(3),
        ] {
            let res = solver.solve(&a, &b, None, &opts());
            assert!(res.converged, "{}", solver.name());
            assert!(res.true_residual(&a, &b) < 1e-5, "{}", solver.name());
        }
    }
}
