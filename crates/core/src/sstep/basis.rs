//! Krylov block bases for s-step CG.
//!
//! The monomial basis `{r, Ar, A²r, …}` is the one implicit in the 1983
//! paper's moment families — and its columns become numerically dependent
//! after ~10 powers (condition ~ κ^s). The fix from the later
//! communication-avoiding literature is to run the *same algorithm* on a
//! better-conditioned polynomial basis of the *same Krylov space*:
//!
//! * **Newton**: `v_{i+1} = (A − θᵢI)·vᵢ`, shifts `θᵢ` = Ritz values of a
//!   short Lanczos run in Leja order;
//! * **Chebyshev**: the scaled three-term recurrence of `Tᵢ` mapped to the
//!   estimated spectral interval `[λ_min, λ_max]`.
//!
//! Both need one matvec per column, same as monomial (claim C4 preserved).

use crate::instrument::OpCounts;
use crate::solver::BasisEngine;
use vr_linalg::eig;
use vr_linalg::mpk::{self, MpkTransform, MpkWorkspace};
use vr_linalg::LinearOperator;

/// Which polynomial family spans the block Krylov basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisKind {
    /// Powers `Aⁱr` (the paper's moment basis).
    Monomial,
    /// Newton polynomials with Leja-ordered Ritz shifts.
    Newton,
    /// Chebyshev polynomials scaled to the spectral interval.
    Chebyshev,
}

impl BasisKind {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BasisKind::Monomial => "monomial",
            BasisKind::Newton => "newton",
            BasisKind::Chebyshev => "chebyshev",
        }
    }
}

/// Precomputed basis parameters (shifts / interval).
#[derive(Debug, Clone)]
pub struct BasisParams {
    kind: BasisKind,
    /// Newton: Leja-ordered shifts (length ≥ s−1). Chebyshev: unused.
    shifts: Vec<f64>,
    /// Newton: per-level power-of-two magnitude scales (one per shift).
    ///
    /// `scales[i] = 2^(−round(log₂ max(|λ_max−θᵢ|, |λ_min−θᵢ|)))` keeps
    /// every column O(1) in magnitude like the classical per-column 2-norm
    /// normalization, but (a) multiplying by an exact power of two is
    /// round-off free, and (b) the scale is known *before* the sweep — no
    /// data-dependent norm stands between levels, so all `s` columns fuse
    /// into one matrix-powers pass.
    scales: Vec<f64>,
    /// Chebyshev interval center.
    center: f64,
    /// Chebyshev interval half-width.
    half_width: f64,
}

impl BasisParams {
    /// Estimate parameters for `kind` with a short Lanczos run (spectrum
    /// probing counts toward the solve's op budget).
    #[must_use]
    pub fn estimate(
        kind: BasisKind,
        a: &dyn LinearOperator,
        s: usize,
        counts: &mut OpCounts,
    ) -> BasisParams {
        match kind {
            BasisKind::Monomial => BasisParams {
                kind,
                shifts: Vec::new(),
                scales: Vec::new(),
                center: 0.0,
                half_width: 1.0,
            },
            BasisKind::Newton => {
                let m = (2 * s).clamp(4, 40).min(a.dim());
                let tri = eig::LanczosTridiagonal::run(a, m, 0x5eed);
                counts.matvecs += tri.steps();
                counts.dots += 2 * tri.steps();
                let ritz = tri.eigenvalues();
                let b = tri.spectral_bounds();
                let shifts = leja_order(&ritz, s.max(2) - 1);
                let scales = pow2_scales(&shifts, b.lambda_min, b.lambda_max);
                BasisParams {
                    kind,
                    shifts,
                    scales,
                    center: 0.0,
                    half_width: 1.0,
                }
            }
            BasisKind::Chebyshev => {
                let m = (2 * s).clamp(4, 40).min(a.dim());
                let tri = eig::LanczosTridiagonal::run(a, m, 0x5eed);
                counts.matvecs += tri.steps();
                counts.dots += 2 * tri.steps();
                let b = tri.spectral_bounds();
                // widen slightly: Ritz values under-estimate the interval
                let lo = (b.lambda_min * 0.9).max(0.0);
                let hi = b.lambda_max * 1.1;
                BasisParams {
                    kind,
                    shifts: Vec::new(),
                    scales: Vec::new(),
                    center: 0.5 * (lo + hi),
                    half_width: (0.5 * (hi - lo)).max(1e-12),
                }
            }
        }
    }

    /// The shifts in use (Newton only).
    #[must_use]
    pub fn shifts(&self) -> &[f64] {
        &self.shifts
    }

    /// The per-level power-of-two scales (Newton only).
    #[must_use]
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Chebyshev interval `(center, half_width)`.
    #[must_use]
    pub fn interval(&self) -> (f64, f64) {
        (self.center, self.half_width)
    }

    /// The per-level column transform these parameters describe, in the
    /// form the matrix-powers kernel consumes.
    #[must_use]
    pub fn transform(&self) -> MpkTransform<'_> {
        match self.kind {
            BasisKind::Monomial => MpkTransform::Monomial,
            BasisKind::Newton => MpkTransform::Newton {
                shifts: &self.shifts,
                scales: &self.scales,
            },
            BasisKind::Chebyshev => MpkTransform::Chebyshev {
                center: self.center,
                half_width: self.half_width,
            },
        }
    }
}

/// Power-of-two magnitude scales for Newton columns: `(A − θᵢ)·v` has
/// magnitude ≈ `max(|λ_max−θᵢ|, |λ_min−θᵢ|)·‖v‖`, so dividing by the
/// nearest power of two keeps columns O(1) without introducing any
/// round-off (the mantissa is untouched). Degenerate estimates (zero,
/// non-finite) fall back to 1.0.
fn pow2_scales(shifts: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    shifts
        .iter()
        .map(|&theta| {
            let d = (hi - theta).abs().max((lo - theta).abs());
            if !d.is_finite() || d <= 0.0 {
                return 1.0;
            }
            let e = d.log2().round().clamp(-1022.0, 1022.0);
            f64::exp2(-e)
        })
        .collect()
}

/// Leja ordering of candidate points: start at the point of largest
/// magnitude; greedily append the candidate maximizing the product of
/// distances to already-chosen points. Cycles if more shifts are needed
/// than candidates exist.
#[must_use]
pub fn leja_order(candidates: &[f64], count: usize) -> Vec<f64> {
    if candidates.is_empty() || count == 0 {
        return Vec::new();
    }
    let mut chosen: Vec<f64> = Vec::with_capacity(count);
    let mut remaining: Vec<f64> = candidates.to_vec();
    // first: max |θ|
    let (first_idx, _) = remaining
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .expect("non-empty");
    chosen.push(remaining.swap_remove(first_idx));
    while chosen.len() < count {
        if remaining.is_empty() {
            // cycle through the same pattern again
            let idx = chosen.len() % candidates.len();
            chosen.push(candidates[idx]);
            continue;
        }
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let logprod: f64 = chosen.iter().map(|&z| (c - z).abs().max(1e-300).ln()).sum();
                (i, logprod)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        chosen.push(remaining.swap_remove(best_idx));
    }
    chosen
}

/// A block Krylov basis: `v[i]` spans the space, `av[i] = A·v[i]`.
#[derive(Debug, Clone, Default)]
pub struct KrylovBasis {
    /// Basis columns, `s` of them.
    pub v: Vec<Vec<f64>>,
    /// Their images `A·v[i]`.
    pub av: Vec<Vec<f64>>,
}

impl KrylovBasis {
    /// Resize to `s` columns of length `n`, reusing existing column
    /// storage (allocation-free once warm at a fixed shape).
    fn reshape(&mut self, s: usize, n: usize) {
        for block in [&mut self.v, &mut self.av] {
            block.resize_with(s, Vec::new);
            for col in block.iter_mut() {
                col.resize(n, 0.0);
            }
        }
    }
}

/// Build an `s`-column basis of `K_s(A, r)` into `out`, with exactly `s`
/// matvecs — `av` levels double as the next column under the shift/
/// three-term recurrences, so no column costs more than one application.
///
/// `engine` selects the execution strategy: `Naive` sweeps the full
/// vector once per level ([`mpk::naive_powers`]); `Mpk` runs the
/// operator's cache-blocked [`LinearOperator::matrix_powers`] kernel,
/// which is bit-identical by contract for every tile size and team
/// width. `ws` carries the kernel's reusable scratch; `out` is reshaped
/// in place, so repeated builds at a fixed `(s, n)` are allocation-free.
///
/// Op tallies are stated in the reference (per-column) formulation and
/// are engine-independent: 1 vector op for seeding `v[0]`, `s` matvecs,
/// plus per level the column recurrence (Newton: shift-axpy + scale = 2
/// ops; Chebyshev: one fused three-term op; monomial: free).
#[allow(clippy::too_many_arguments)]
pub fn build_into(
    a: &dyn LinearOperator,
    r: &[f64],
    s: usize,
    params: &BasisParams,
    engine: BasisEngine,
    team: Option<&vr_par::Team>,
    tile: Option<usize>,
    ws: &mut MpkWorkspace,
    out: &mut KrylovBasis,
    counts: &mut OpCounts,
) {
    out.reshape(s, r.len());
    out.v[0].copy_from_slice(r);
    counts.vector_ops += 1;
    let transform = params.transform();
    match engine {
        BasisEngine::Naive => mpk::naive_powers(a, &transform, &mut out.v, &mut out.av, team),
        BasisEngine::Mpk => a.matrix_powers(&transform, &mut out.v, &mut out.av, team, tile, ws),
    }
    counts.matvecs += s;
    counts.vector_ops += match params.kind {
        BasisKind::Monomial => 0,
        BasisKind::Newton => 2 * (s - 1),
        BasisKind::Chebyshev => s - 1,
    };
}

/// Build an `s`-column basis of `K_s(A, r)` with exactly `s` matvecs
/// (convenience wrapper over [`build_into`]: naive engine, serial, fresh
/// scratch).
#[must_use]
pub fn build(
    a: &dyn LinearOperator,
    r: &[f64],
    s: usize,
    params: &BasisParams,
    counts: &mut OpCounts,
) -> KrylovBasis {
    let mut out = KrylovBasis::default();
    let mut ws = MpkWorkspace::new();
    build_into(
        a,
        r,
        s,
        params,
        BasisEngine::Naive,
        None,
        None,
        &mut ws,
        &mut out,
        counts,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;
    use vr_linalg::DenseMatrix;

    fn check_av(a: &vr_linalg::CsrMatrix, basis: &KrylovBasis) {
        for (vi, avi) in basis.v.iter().zip(&basis.av) {
            let direct = a.spmv(vi);
            for (x, y) in avi.iter().zip(&direct) {
                assert!((x - y).abs() <= 1e-10 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn monomial_av_consistent() {
        let a = gen::poisson2d(6);
        let r = gen::rand_vector(36, 5);
        let mut c = OpCounts::default();
        let p = BasisParams::estimate(BasisKind::Monomial, &a, 4, &mut c);
        let basis = build(&a, &r, 4, &p, &mut c);
        check_av(&a, &basis);
        assert_eq!(c.matvecs, 4, "s matvecs for s columns");
    }

    #[test]
    fn newton_av_consistent_and_spans_krylov() {
        let a = gen::poisson2d(6);
        let r = gen::rand_vector(36, 6);
        let mut c = OpCounts::default();
        let p = BasisParams::estimate(BasisKind::Newton, &a, 4, &mut c);
        assert!(!p.shifts().is_empty());
        let basis = build(&a, &r, 4, &p, &mut c);
        check_av(&a, &basis);
    }

    #[test]
    fn chebyshev_av_consistent() {
        let a = gen::poisson2d(6);
        let r = gen::rand_vector(36, 7);
        let mut c = OpCounts::default();
        let p = BasisParams::estimate(BasisKind::Chebyshev, &a, 5, &mut c);
        let (center, hw) = p.interval();
        assert!(center > 0.0 && hw > 0.0);
        let basis = build(&a, &r, 5, &p, &mut c);
        check_av(&a, &basis);
    }

    /// Gram-matrix condition of each basis over the same Krylov space —
    /// the quantitative reason the stable bases exist.
    #[test]
    fn chebyshev_basis_better_conditioned_than_monomial() {
        let a = gen::poisson2d(10);
        let r = gen::rand_vector(100, 8);
        let s = 8;
        let mut c = OpCounts::default();

        let mut cond = |kind: BasisKind| -> f64 {
            let p = BasisParams::estimate(kind, &a, s, &mut c);
            let basis = build(&a, &r, s, &p, &mut c);
            // normalize columns, then estimate cond(VᵀV) via its extreme
            // eigenvalues from dense Cholesky-based power iteration proxy:
            // use the ratio of largest to smallest diagonal pivot of the
            // Cholesky factor as a cheap underestimate.
            let mut g = DenseMatrix::zeros(s, s);
            for i in 0..s {
                let ni = vr_linalg::kernels::norm2(&basis.v[i]).max(1e-300);
                for j in 0..s {
                    let nj = vr_linalg::kernels::norm2(&basis.v[j]).max(1e-300);
                    g[(i, j)] =
                        vr_linalg::kernels::dot_serial(&basis.v[i], &basis.v[j]) / (ni * nj);
                }
            }
            match g.cholesky() {
                Ok(ch) => {
                    let mut lo = f64::INFINITY;
                    let mut hi = 0.0_f64;
                    for i in 0..s {
                        let d = ch.l()[(i, i)];
                        lo = lo.min(d);
                        hi = hi.max(d);
                    }
                    (hi / lo).powi(2)
                }
                Err(_) => f64::INFINITY, // numerically rank-deficient
            }
        };

        let mono = cond(BasisKind::Monomial);
        let cheb = cond(BasisKind::Chebyshev);
        assert!(
            cheb * 10.0 < mono,
            "chebyshev cond {cheb:.2e} not ≪ monomial cond {mono:.2e}"
        );
    }

    #[test]
    fn leja_ordering_properties() {
        let pts = [1.0, 5.0, 2.0, 8.0, 3.0];
        let l = leja_order(&pts, 5);
        assert_eq!(l.len(), 5);
        assert_eq!(l[0], 8.0, "first Leja point is max magnitude");
        // all points distinct and from the candidate set
        for p in &l {
            assert!(pts.contains(p));
        }
        let mut sorted = l.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        // cycling beyond candidates
        let l7 = leja_order(&pts, 7);
        assert_eq!(l7.len(), 7);
        // empty cases
        assert!(leja_order(&[], 3).is_empty());
        assert!(leja_order(&pts, 0).is_empty());
    }

    #[test]
    fn basis_labels() {
        assert_eq!(BasisKind::Monomial.label(), "monomial");
        assert_eq!(BasisKind::Newton.label(), "newton");
        assert_eq!(BasisKind::Chebyshev.label(), "chebyshev");
    }
}
