//! General look-ahead CG (paper §4-5): the moment-window formulation.
//!
//! ## How the paper's scheme is realized
//!
//! The paper maintains, by recurrence, the vector families
//!
//! ```text
//! zᵢ = Aⁱ·r⁽ⁿ⁾  (i = 0..k)      wᵢ = Aⁱ·p⁽ⁿ⁾  (i = 0..k+1)
//! ```
//!
//! costing **one SpMV per iteration** (`w_{k+1} = A·w_k`; claim C4), and the
//! scalar *moment window*
//!
//! ```text
//! μᵢ = (r, Aⁱr)   i = 0..2k
//! νᵢ = (r, Aⁱp)   i = 0..2k+1
//! σᵢ = (p, Aⁱp)   i = 0..2k+2
//! ```
//!
//! updated by the recurrences (exact identities, using only symmetry of A;
//! `λ = λ_n`, `α = α_{n+1}`, `tᵢ = νᵢ − λ·σᵢ₊₁`):
//!
//! ```text
//! μᵢ' = μᵢ − 2λ·νᵢ₊₁ + λ²·σᵢ₊₂
//! νᵢ' = μᵢ' + α·tᵢ
//! σᵢ' = μᵢ' + 2α·tᵢ + α²·σᵢ
//! ```
//!
//! Each update consumes two extra orders of σ and one of ν, so the top
//! entries `ν_{2k+1}, σ_{2k+1}, σ_{2k+2}` are recomputed **directly** from
//! the vector families each iteration — **three** direct inner products
//! (the paper claims "only two"; our count is three because we do not
//! assume CG orthogonality in the recurrences — E4 reports this measured
//! discrepancy).
//!
//! ## Where the look-ahead is
//!
//! `λ_n = μ₀/σ₁` comes from the window through O(1)-depth scalar
//! recurrences. A directly computed dot enters the window at order `2k+2`
//! and trickles down two orders per iteration, reaching `σ₁` only after
//! ~`k` iterations — that is exactly the paper's k-iteration slack between
//! *launching* an inner-product fan-in and *consuming* it. On the machine
//! model this removes the `log N` fan-in from the per-iteration critical
//! path (see `vr_sim::builders::lookahead_cg`).
//!
//! ## Numerical behaviour
//!
//! The window recurrences are exact algebra but amplify round-off with
//! growing k (the moments span a power basis whose conditioning degrades
//! like κ(A)^k — the classical s-step stability problem this 1983 paper
//! predates). [`LookaheadCg::with_resync`] recomputes the whole window
//! directly every R iterations as mitigation; E9 maps the drift.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::recurrence::moments::MomentWindow;
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, BasisEngine, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::dot;
use vr_linalg::mpk::{self, MpkTransform, MpkWorkspace};
use vr_linalg::LinearOperator;

/// General look-ahead CG solver (paper §4-5).
#[derive(Debug, Clone, Copy)]
pub struct LookaheadCg {
    /// Look-ahead depth `k ≥ 1` (the paper suggests `k = log N`).
    pub k: usize,
    /// Recompute the full moment window directly every `resync` iterations
    /// (0 = never).
    pub resync: usize,
}

impl LookaheadCg {
    /// Construct with look-ahead `k` (clamped to ≥ 1) and no resync.
    #[must_use]
    pub fn new(k: usize) -> Self {
        LookaheadCg {
            k: k.max(1),
            resync: 0,
        }
    }

    /// Enable periodic direct recomputation of the moment window.
    #[must_use]
    pub fn with_resync(mut self, every: usize) -> Self {
        self.resync = every;
        self
    }
}

impl CgVariant for LookaheadCg {
    fn name(&self) -> String {
        if self.resync > 0 {
            format!("lookahead-cg(k={},resync={})", self.k, self.resync)
        } else {
            format!("lookahead-cg(k={})", self.k)
        }
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            // The k-deep moment window interleaves basis builds with the
            // deferred Gram reductions — no single-pass schedule exists.
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let n = a.dim();
        let k = self.k;
        let m = 2 * k; // window order for μ
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r0, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut norms = Vec::new();
        let mut iterations = 0usize;
        let mut rstats = RecoveryStats::default();
        let mut last_restart_rr = f64::INFINITY;
        #[allow(unused_assignments)]
        let mut final_rr = f64::NAN;

        // Buffers reused across restart passes and inner iterations, so
        // the whole solve is allocation-free after the first pass warms
        // them: the z/w vector families, the matrix-powers images and
        // workspace, the moment window and its μ-step scratch, and the
        // validation residual scratch.
        let team = opts.team();
        let mut ws = MpkWorkspace::new();
        ws.set_tracer(opts.tracer.clone());
        let mut z: Vec<Vec<f64>> = (0..=k).map(|_| vec![0.0; n]).collect();
        let mut avfam: Vec<Vec<f64>> = (0..=k).map(|_| vec![0.0; n]).collect();
        let mut w: Vec<Vec<f64>> = (0..=k + 1).map(|_| vec![0.0; n]).collect();
        let mut win = MomentWindow {
            mu: Vec::new(),
            nu: Vec::new(),
            sigma: Vec::new(),
        };
        let mut mu_scratch: Vec<f64> = Vec::with_capacity(m + 1);
        let mut vscratch = vec![0.0; n];

        // Checkpoint ring (policy-gated): snapshots [x, r] only — the
        // vector families and moment window are rebuilt by the outer
        // startup pass on rollback, exactly like a warm restart but from a
        // known-good ≤ C-iterations-old state instead of the (possibly
        // poisoned) current iterate.
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 2, n, 0));

        // Outer restart loop: each pass performs the paper's "initial start
        // up" (build vector families + moment window from the current true
        // residual) and then iterates on recurrences. When the drifted
        // window signals convergence or breaks down, the signal is
        // VALIDATED against the true residual; a spurious signal triggers a
        // warm restart from the current iterate, and lack of progress
        // between restarts terminates with `Breakdown`.
        let mut termination = 'outer: loop {
            // start-up: z[i] = A^i r, i ≤ k; w[i] = A^i p, i ≤ k+1 (p = r).
            // One monomial matrix-powers pass of depth k+1 yields the whole
            // z family plus its images; the top image A·z[k] IS the startup
            // w[k+1] = A^{k+1}·p (p = r), so no extra application is needed.
            // Either engine computes every column through the exact `apply`
            // row arithmetic — bit-identical to the legacy per-level loop.
            z[0].copy_from_slice(&r0);
            opts.span(vr_obs::SpanKind::MpkBuild, || match opts.basis_engine {
                BasisEngine::Naive => {
                    mpk::naive_powers(
                        a,
                        &MpkTransform::Monomial,
                        &mut z,
                        &mut avfam,
                        team.as_deref(),
                    );
                }
                BasisEngine::Mpk => {
                    a.matrix_powers(
                        &MpkTransform::Monomial,
                        &mut z,
                        &mut avfam,
                        team.as_deref(),
                        opts.mpk_tile,
                        &mut ws,
                    );
                }
            });
            counts.matvecs += k + 1;
            for (wi, zi) in w.iter_mut().zip(z.iter()) {
                wi.copy_from_slice(zi);
            }
            w[k + 1].copy_from_slice(&avfam[k]);
            counts.vector_ops += k + 1;

            let spent = win.direct_in(&z, &w, m, md);
            counts.dots += spent;

            if norms.is_empty() && opts.record_residuals {
                norms.push(win.mu[0].max(0.0).sqrt());
            }
            if win.mu[0] <= thresh_sq {
                // the window was just built from the true residual directly,
                // so this signal needs no further validation
                final_rr = win.mu[0];
                break 'outer Termination::Converged;
            }

            // inner recurrence loop
            let mut suspicious = false;
            while iterations < opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(iterations, win.mu[0]) {
                    final_rr = win.mu[0];
                    break 'outer Termination::Cancelled;
                }
                let (mu0, sigma1) = (win.mu[0], win.sigma[1]);
                if guard::check_pivot(sigma1).is_err() || guard::check_pivot(mu0).is_err() {
                    suspicious = true;
                    break;
                }
                if let Some(rg) = ring.as_mut() {
                    rg.maybe_save(opts, iterations, &[&x, &z[0]], &[]);
                }
                let lambda = opts.scalar(mu0 / sigma1);
                opts.axpy(lambda, &w[0], &mut x, &mut counts);
                counts.scalar_ops += 1;

                // scalar window step (in place — no per-iteration allocs)
                win.mu_step_into(lambda, &mut mu_scratch);
                let alpha = opts.scalar(mu_scratch[0] / mu0);
                counts.scalar_ops += win.step_scalar_ops() + 1;

                if opts.record_residuals {
                    norms.push(mu_scratch[0].max(0.0).sqrt());
                }
                iterations += 1;
                if mu_scratch[0] <= thresh_sq || guard::check_finite(mu_scratch[0]).is_err() {
                    suspicious = true;
                    break;
                }
                win.finish_step_in_place(&mut mu_scratch, lambda, alpha);

                // vector family updates: z_i ← z_i − λ·w_{i+1} (old w)
                for i in 0..=k {
                    opts.axpy(-lambda, &w[i + 1], &mut z[i], &mut counts);
                }
                // w_i ← z_i + α·w_i
                for i in 0..=k {
                    opts.xpay(&z[i], alpha, &mut w[i], &mut counts);
                }
                // one matvec: w_{k+1} = A·w_k
                if self.resync > 0 && iterations.is_multiple_of(self.resync) {
                    let (head, tail) = w.split_at_mut(k + 1);
                    opts.matvec(a, &head[k], &mut tail[0], &mut counts);
                    // periodic drift correction: rebuild the window in place
                    let spent = win.direct_in(&z, &w, m, md);
                    counts.dots += spent;
                } else {
                    // three direct top-of-window inner products — these
                    // are the reductions with k iterations of slack, i.e.
                    // the fault surface the paper's restructuring creates.
                    // Fused: the matvec sweep carries the (w_k, w_{k+1})
                    // moment and the other two share one pass over w_{k+1}
                    // (per-element products are commutative, so the scalars
                    // are bit-identical to the unfused formulation).
                    let (head, tail) = w.split_at_mut(k + 1);
                    win.sigma[m + 1] = guard::guarded_matvec_dot(
                        opts,
                        a,
                        &head[k],
                        &mut tail[0],
                        &mut counts,
                        &mut rstats,
                    );
                    let (nu_top, sigma_top) = guard::guarded_dot2(
                        opts,
                        &tail[0],
                        &z[k],
                        &tail[0],
                        &mut counts,
                        &mut rstats,
                    );
                    win.nu[m + 1] = nu_top;
                    win.sigma[m + 2] = sigma_top;
                }
            }

            // validate against the TRUE residual (scratch, no allocation)
            let rr_true = opts.span(vr_obs::SpanKind::Guard, || {
                a.apply_team(team.as_deref(), &x, &mut vscratch);
                for (vi, bi) in vscratch.iter_mut().zip(b) {
                    *vi = bi - *vi;
                }
                dot(md, &vscratch, &vscratch)
            });
            counts.matvecs += 1;
            counts.vector_ops += 1;
            counts.dots += 1;
            final_rr = rr_true;
            if rr_true <= thresh_sq {
                break 'outer Termination::Converged;
            }
            if !suspicious {
                break 'outer Termination::MaxIterations;
            }
            // rollback rung: a poisoned or non-progressing iterate can
            // still be rescued from a ≤ C-iterations-old snapshot; the
            // outer startup pass rebuilds the families and window from the
            // restored residual
            if let Some(rg) = ring.as_mut() {
                if let Some(c) = rg.rollback(opts, &mut [&mut x, &mut r0], &mut []) {
                    rstats.rollbacks += 1;
                    if opts.record_residuals {
                        norms.truncate(c + 1);
                    }
                    iterations = c;
                    continue 'outer;
                }
            }
            // spurious signal: restart if we are still making progress.
            // A non-finite true residual means the iterate itself is
            // poisoned (e.g. a corrupted λ reached x) — restarting from it
            // would loop forever, so that is a breakdown too.
            if guard::check_finite(rr_true).is_err()
                || rr_true >= 0.25 * last_restart_rr
                || iterations >= opts.max_iters
            {
                break 'outer Termination::Breakdown;
            }
            last_restart_rr = rr_true;
            counts.restarts += 1;
            r0.copy_from_slice(&vscratch);
        };

        if !opts.record_residuals || norms.is_empty() {
            norms.push(final_rr.max(0.0).sqrt());
        } else if guard::check_finite(final_rr).is_ok() {
            // replace the (possibly drifted) last recursive value with the
            // validated true residual norm
            *norms.last_mut().expect("non-empty") = final_rr.max(0.0).sqrt();
        }
        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        rstats.restarts = counts.restarts;
        rstats.final_k = k;
        res.recovery = rstats;
        res
    }

    fn backoff(&self) -> Option<Box<dyn CgVariant>> {
        if self.k > 1 {
            Some(Box::new(LookaheadCg {
                k: self.k / 2,
                resync: self.resync,
            }))
        } else {
            Some(Box::new(crate::standard::StandardCg::new()))
        }
    }

    fn depth(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    fn opts() -> SolveOptions {
        SolveOptions::default().with_tol(1e-9)
    }

    #[test]
    fn k1_converges_on_poisson2d() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = LookaheadCg::new(1)
            .with_resync(20)
            .solve(&a, &b, None, &opts());
        assert!(res.converged, "termination {:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-7);
    }

    #[test]
    fn k1_converges_to_moderate_tolerance_without_resync() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = LookaheadCg::new(1).solve(&a, &b, None, &SolveOptions::default().with_tol(1e-6));
        assert!(res.converged, "termination {:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-4);
    }

    #[test]
    fn small_k_matches_standard_cg_residual_history() {
        let a = gen::poisson2d(8);
        let b = gen::poisson2d_rhs(8);
        let std = StandardCg::new().solve(&a, &b, None, &opts());
        for k in [1usize, 2, 3] {
            let la = LookaheadCg::new(k).solve(&a, &b, None, &opts());
            assert!(la.converged, "k={k}: {:?}", la.termination);
            let m = std.residual_norms.len().min(la.residual_norms.len());
            for i in 0..m.saturating_sub(3) {
                let (s, o) = (std.residual_norms[i], la.residual_norms[i]);
                assert!(
                    (s - o).abs() <= 1e-4 * (1.0 + s.abs()),
                    "k={k} iter {i}: std {s} vs lookahead {o}"
                );
            }
        }
    }

    #[test]
    fn one_matvec_three_dots_per_iteration_in_steady_state() {
        let a = gen::poisson2d(16);
        let b = gen::poisson2d_rhs(16);
        let k = 3;
        // moderate tolerance so the run finishes in one pass (no restarts)
        let res = LookaheadCg::new(k).solve(&a, &b, None, &SolveOptions::default().with_tol(1e-6));
        assert!(res.converged, "{:?}", res.termination);
        let iters = res.iterations as f64;
        // Each pass (initial + one per restart) costs k+1 startup matvecs,
        // 3(2k+2) startup dots, and 1 matvec + 1 dot for validation.
        // Steady state: 1 matvec + 3 direct dots per iteration (claim C4).
        // (The final iteration of each pass breaks before its family matvec
        // and top dots, hence the `− passes` corrections.)
        let passes = (res.counts.restarts + 1) as f64;
        let expect_mv = iters - passes + passes * (k + 1 + 1) as f64;
        assert!(
            (res.counts.matvecs as f64 - expect_mv).abs() < 0.5,
            "matvecs {} vs expected {expect_mv}",
            res.counts.matvecs
        );
        let expect_dots = 3.0 * (iters - passes) + passes * (3 * (2 * k + 2) + 1) as f64;
        assert!(
            (res.counts.dots as f64 - expect_dots).abs() < 0.5,
            "dots {} vs expected {expect_dots}",
            res.counts.dots
        );
    }

    #[test]
    fn larger_k_still_converges_with_resync() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        for k in [4usize, 6] {
            let res = LookaheadCg::new(k).with_resync(8).solve(
                &a,
                &b,
                None,
                &SolveOptions::default().with_tol(1e-7),
            );
            assert!(
                res.converged,
                "k={k} with resync should converge: {:?}",
                res.termination
            );
            assert!(res.true_residual(&a, &b) < 1e-4, "k={k}");
        }
    }

    #[test]
    fn true_residual_tracks_recursive_residual_for_small_k() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let res = LookaheadCg::new(2)
            .with_resync(15)
            .solve(&a, &b, None, &opts());
        assert!(res.converged);
        let true_r = res.true_residual(&a, &b);
        // recursive residual may drift from the true one; for k=2 on a
        // well-conditioned problem they stay within a few orders
        assert!(
            true_r < 1e-5,
            "true residual {true_r} vs recursive {}",
            res.final_residual
        );
    }

    #[test]
    fn name_reflects_parameters() {
        assert_eq!(LookaheadCg::new(4).name(), "lookahead-cg(k=4)");
        assert_eq!(
            LookaheadCg::new(4).with_resync(10).name(),
            "lookahead-cg(k=4,resync=10)"
        );
        // k clamps to 1
        assert_eq!(LookaheadCg::new(0).k, 1);
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(6);
        let res = LookaheadCg::new(2).solve(&a, &[0.0; 6], None, &opts());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn breakdown_detected_on_indefinite() {
        let a = gen::tridiag_toeplitz(12, 0.5, -1.0);
        let b = gen::rand_vector(12, 3);
        let res = LookaheadCg::new(2).solve(&a, &b, None, &opts());
        assert_eq!(res.termination, Termination::Breakdown);
    }

    #[test]
    fn matches_cholesky_solution_k2() {
        let a = gen::rand_spd(30, 4, 2.0, 5);
        let b = gen::rand_vector(30, 6);
        let res = LookaheadCg::new(2).solve(&a, &b, None, &opts());
        assert!(res.converged);
        let dense = vr_linalg::DenseMatrix::from_rows(&a.to_dense()).unwrap();
        let exact = dense.solve_spd(&b).unwrap();
        for (xi, ei) in res.x.iter().zip(&exact) {
            assert!((xi - ei).abs() < 1e-6, "{xi} vs {ei}");
        }
    }

    #[test]
    fn checkpoint_rollback_survives_moderate_faults() {
        // with the ring active, a corrupted λ that poisons x no longer
        // forces Breakdown: the solve restores a ≤ C-old [x, r] snapshot
        // and rebuilds the window from it via the outer startup pass
        use crate::resilience::{FaultKind, RecoveryPolicy, SeededInjector};
        use std::sync::Arc;
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let mut total_rollbacks = 0usize;
        for seed in 0..10u64 {
            let o = SolveOptions::default()
                .with_tol(1e-7)
                .with_max_iters(600)
                .with_injector(Arc::new(SeededInjector::new(seed, 2e-3, FaultKind::Nan)))
                .with_recovery(
                    RecoveryPolicy::default()
                        .with_checkpoint_period(10)
                        .with_max_rollbacks(16),
                );
            let res = LookaheadCg::new(4).with_resync(10).solve(&a, &b, None, &o);
            if res.recovery.rollbacks > 0 && res.converged {
                assert_eq!(
                    res.termination,
                    Termination::RecoveredConverged,
                    "seed {seed}"
                );
                assert!(res.true_residual(&a, &b) < 1e-4, "seed {seed}");
                total_rollbacks += res.recovery.rollbacks;
            }
        }
        assert!(total_rollbacks >= 1, "no seed exercised the rollback path");
    }

    #[test]
    fn heavy_nan_faults_terminate_instead_of_looping() {
        // regression: a corrupted λ (ScalarRecurrence fault, fired after
        // the pivot check) poisons x, making the validation residual NaN.
        // NaN fails every comparison, so the old no-progress test
        // `rr_true >= 0.25·last` let the solver warm-restart from a NaN
        // residual forever. It must break down instead.
        use crate::resilience::{FaultKind, SeededInjector};
        use std::sync::Arc;
        let a = gen::poisson2d(20);
        let b = gen::poisson2d_rhs(20);
        let o = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(2000)
            .with_injector(Arc::new(SeededInjector::new(
                0xE15 + 22,
                1e-2,
                FaultKind::Nan,
            )));
        let res = LookaheadCg::new(4).solve(&a, &b, None, &o);
        assert_eq!(res.termination, Termination::Breakdown);
    }
}
