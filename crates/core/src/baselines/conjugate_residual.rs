//! Conjugate Residual iteration — the "large class" demonstration.
//!
//! §4 of the paper notes its recurrence relations are "one of a large class
//! of such relations". CR is the nearest sibling of CG (minimizes `‖r‖₂`
//! instead of the A-norm error; needs `(r,Ar)` and `(Ap,Ap)` instead of
//! `(r,r)` and `(p,Ap)`), and the same restructuring applies: with
//! `r⁺ = r − λAp`,
//!
//! ```text
//! (r⁺,Ar⁺)   = (r,Ar) − 2λ(Ar,Ap)... — expressible in iteration-n
//! (Ap⁺,Ap⁺)  inner products exactly as in §3
//! ```
//!
//! [`ConjugateResidual`] is the textbook method; [`OverlapCr`] applies the
//! paper's one-step overlap to it, carrying `(r,Ar)` and `(Ap,Ap)` by
//! scalar recurrences — evidence that the restructuring is method-generic,
//! not CG-specific.

use crate::instrument::OpCounts;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::dot;
use vr_linalg::LinearOperator;

/// Classical conjugate residual iteration.
///
/// Per iteration: one matvec `Ar`, two inner products `(r,Ar)`, `(Ap,Ap)`
/// (serialized like standard CG's), recurrence `Ap⁺ = Ar⁺ + β·Ap`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConjugateResidual;

impl ConjugateResidual {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        ConjugateResidual
    }
}

impl CgVariant for ConjugateResidual {
    fn name(&self) -> String {
        "conjugate-residual".into()
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let n = a.dim();
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut ar = opts.matvec_alloc(a, &r, &mut counts);
        let mut p = r.clone();
        let mut ap = ar.clone();
        counts.vector_ops += 2;

        let mut rar = dot(md, &r, &ar);
        counts.dots += 1;
        let mut rr = dot(md, &r, &r);
        counts.dots += 1;

        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        if rr <= thresh_sq {
            termination = Termination::Converged;
        } else {
            for it in 0..opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(it, rr) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                let apap = dot(md, &ap, &ap);
                counts.dots += 1;
                if guard::check_pivot(apap).is_err() || guard::check_pivot(rar).is_err() {
                    termination = Termination::Breakdown;
                    iterations = it;
                    break;
                }
                let lambda = rar / apap;
                opts.axpy(lambda, &p, &mut x, &mut counts);
                opts.axpy(-lambda, &ap, &mut r, &mut counts);
                counts.scalar_ops += 1;

                opts.matvec(a, &r, &mut ar, &mut counts);
                let rar_next = dot(md, &r, &ar);
                rr = dot(md, &r, &r);
                counts.dots += 2;

                if opts.record_residuals {
                    norms.push(rr.max(0.0).sqrt());
                }
                iterations = it + 1;
                if rr <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if guard::check_finite(rr).is_err() {
                    termination = Termination::Breakdown;
                    break;
                }

                let beta = rar_next / rar;
                counts.scalar_ops += 1;
                opts.xpay(&r, beta, &mut p, &mut counts);
                opts.xpay(&ar, beta, &mut ap, &mut counts);
                rar = rar_next;
            }
        }

        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        let _ = n;
        SolveResult::new(x, termination, iterations, norms, counts)
    }
}

/// CR with the paper's §3 one-step overlap applied.
///
/// The scalars `(r,Ar)` and `(Ap,Ap)` of iteration n are computed from
/// inner products of iteration n−1 vectors, so their fan-ins overlap a full
/// iteration of other work. Carried state: `rar = (r,Ar)`,
/// `apap = (Ap,Ap)`; per-iteration direct inner products (on current
/// vectors, launchable immediately): `(Ar,Ap), (Ap,Ap)', (Ar,Ar)` where
/// `Ar` is this iteration's matvec product.
///
/// Derivation (exact algebra, only symmetry of A):
///
/// ```text
/// r⁺ = r − λAp;  Ar⁺ = Ar − λA(Ap)         — needs v = A·Ap (2nd matvec)
/// (r⁺,Ar⁺)  = (r,Ar) − 2λ(Ar,Ap) + λ²(Ap,v)
/// p⁺ = r⁺ + βp;  Ap⁺ = Ar⁺ + βAp
/// (Ap⁺,Ap⁺) = (Ar⁺,Ar⁺) + 2β(Ar⁺,Ap) + β²(Ap,Ap)
/// (Ar⁺,Ar⁺) = (Ar,Ar) − 2λ(Ar,v) + λ²(v,v)
/// (Ar⁺,Ap)  = (Ar,Ap) − λ(v,Ap)
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapCr;

impl OverlapCr {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        OverlapCr
    }
}

impl CgVariant for OverlapCr {
    fn name(&self) -> String {
        "overlap-cr".into()
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut ar = opts.matvec_alloc(a, &r, &mut counts);
        let mut p = r.clone();
        let mut ap = ar.clone();
        counts.vector_ops += 2;
        let mut v = opts.matvec_alloc(a, &ap, &mut counts); // A·Ap

        let mut rr = dot(md, &r, &r);
        let mut rar = dot(md, &r, &ar);
        let mut apap = dot(md, &ap, &ap);
        counts.dots += 3;

        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        let mut vscratch = vec![0.0; b.len()];
        if rr <= thresh_sq {
            termination = Termination::Converged;
        } else {
            for it in 0..opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(it, rr) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                if guard::check_pivot(apap).is_err() || guard::check_pivot(rar).is_err() {
                    // validate: near convergence the drifted recursive
                    // scalars can cross zero just before the threshold trips
                    a.apply(&x, &mut vscratch);
                    for (vi, bi) in vscratch.iter_mut().zip(b) {
                        *vi = bi - *vi;
                    }
                    let rr_true = dot(md, &vscratch, &vscratch);
                    counts.matvecs += 1;
                    counts.vector_ops += 1;
                    counts.dots += 1;
                    termination = if rr_true <= thresh_sq {
                        Termination::Converged
                    } else {
                        Termination::Breakdown
                    };
                    iterations = it;
                    if let Some(last) = norms.last_mut() {
                        *last = rr_true.max(0.0).sqrt();
                    }
                    break;
                }
                // overlappable inner products on CURRENT vectors
                let arap = dot(md, &ar, &ap);
                let apv = dot(md, &ap, &v);
                let arar = dot(md, &ar, &ar);
                let arv = dot(md, &ar, &v);
                let vv = dot(md, &v, &v);
                let rw = dot(md, &r, &ap); // for ‖r⁺‖ tracking
                let ww = apap;
                counts.dots += 6;

                let lambda = rar / apap;
                opts.axpy(lambda, &p, &mut x, &mut counts);

                // scalar recurrences
                let rr_next = rr - 2.0 * lambda * rw + lambda * lambda * ww;
                let rar_next = rar - 2.0 * lambda * arap + lambda * lambda * apv;
                let arar_next = arar - 2.0 * lambda * arv + lambda * lambda * vv;
                let beta = rar_next / rar;
                let arnext_ap = arap - lambda * apv;
                let apap_next = arar_next + 2.0 * beta * arnext_ap + beta * beta * apap;
                counts.scalar_ops += 14;

                if opts.record_residuals {
                    norms.push(rr_next.max(0.0).sqrt());
                }
                iterations = it + 1;
                if rr_next <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if guard::check_finite(rr_next).is_err() {
                    termination = Termination::Breakdown;
                    break;
                }

                // vector updates
                opts.axpy(-lambda, &ap, &mut r, &mut counts);
                opts.axpy(-lambda, &v, &mut ar, &mut counts);
                opts.xpay(&r, beta, &mut p, &mut counts);
                opts.xpay(&ar, beta, &mut ap, &mut counts);
                opts.matvec(a, &ap, &mut v, &mut counts);

                rr = rr_next;
                rar = rar_next;
                apap = apap_next;
            }
        }

        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        SolveResult::new(x, termination, iterations, norms, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;

    fn opts() -> SolveOptions {
        SolveOptions::default().with_tol(1e-8)
    }

    #[test]
    fn cr_converges_on_poisson2d() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = ConjugateResidual::new().solve(&a, &b, None, &opts());
        assert!(res.converged, "{:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn cr_residual_norm_is_monotone() {
        // CR minimizes ‖r‖₂ over the Krylov space: the residual history is
        // monotonically non-increasing (unlike CG's).
        let a = gen::rand_spd(50, 4, 1.5, 31);
        let b = gen::rand_vector(50, 32);
        let res = ConjugateResidual::new().solve(&a, &b, None, &opts());
        assert!(res.converged);
        for w in res.residual_norms.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-10),
                "CR residual increased: {} → {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn overlap_cr_matches_cr_iterates() {
        let a = gen::poisson2d(9);
        let b = gen::poisson2d_rhs(9);
        let cr = ConjugateResidual::new().solve(&a, &b, None, &opts());
        let ocr = OverlapCr::new().solve(&a, &b, None, &opts());
        assert!(ocr.converged, "{:?}", ocr.termination);
        let m = cr.residual_norms.len().min(ocr.residual_norms.len());
        for i in 0..m.saturating_sub(3) {
            let (s, o) = (cr.residual_norms[i], ocr.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-5 * (1.0 + s.abs()),
                "iter {i}: cr {s} vs overlap {o}"
            );
        }
    }

    #[test]
    fn overlap_cr_op_counts() {
        // 1 matvec + 6 dots per iteration: v = A·Ap serves both the Ar
        // recurrence and the (·,v) moments
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let res = OverlapCr::new().solve(&a, &b, None, &opts());
        assert!(res.converged);
        let per = res.counts.per_iteration(res.iterations);
        assert!((per.matvecs - 1.0).abs() < 0.3, "matvecs {}", per.matvecs);
        assert!((per.dots - 6.0).abs() < 0.7, "dots {}", per.dots);
    }

    #[test]
    fn cr_equals_cg_solution_on_spd() {
        use crate::standard::StandardCg;
        let a = gen::rand_spd(30, 4, 2.0, 77);
        let b = gen::rand_vector(30, 78);
        let o = SolveOptions::default().with_tol(1e-11);
        let cg = StandardCg::new().solve(&a, &b, None, &o);
        let cr = ConjugateResidual::new().solve(&a, &b, None, &o);
        assert!(cr.converged);
        for (xi, yi) in cg.x.iter().zip(&cr.x) {
            assert!((xi - yi).abs() < 1e-7, "{xi} vs {yi}");
        }
    }

    #[test]
    fn zero_rhs_and_breakdown() {
        let a = gen::poisson1d(5);
        let res = ConjugateResidual::new().solve(&a, &[0.0; 5], None, &opts());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        let res = OverlapCr::new().solve(&a, &[0.0; 5], None, &opts());
        assert!(res.converged);

        let ind = gen::tridiag_toeplitz(8, 0.2, -1.0);
        let b = gen::rand_vector(8, 3);
        let res = ConjugateResidual::new().solve(&ind, &b, None, &opts());
        assert_eq!(res.termination, Termination::Breakdown);
    }
}
