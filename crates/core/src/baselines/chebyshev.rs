//! Chebyshev iteration — the zero-reduction comparator.
//!
//! The 1983-era alternative the paper is implicitly racing: Chebyshev
//! semi-iteration needs **no inner products at all** (its parameters come
//! from precomputed spectral bounds), so on the paper's machine its
//! per-iteration time is `log d + O(1)` — the floor the look-ahead
//! algorithm approaches. The price: it needs `[λ_min, λ_max]` up front,
//! converges slower than CG when the estimates are loose, and provides no
//! residual-norm feedback without paying for a reduction.
//!
//! Recurrence (standard three-term form on `[λ_min, λ_max]`):
//!
//! ```text
//! θ = (λ_max + λ_min)/2,  δ = (λ_max − λ_min)/2
//! x₁ = x₀ + r₀/θ
//! ρ₀ = 1/θ... with  σ = θ/δ:
//! ρ₁ = σ/(σ² − 1/2... (classical recursion below)
//! ```
//!
//! Implemented with the numerically standard recursion:
//! `α₀ = 1/θ`, `ρ₀ = 1/σ` where `σ = θ/δ`, then
//! `ρₖ = 1/(2σ − ρₖ₋₁)`, `αₖ = ρₖ·(2/δ)` — see Golub & Van Loan §10.1.5.

use crate::instrument::OpCounts;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::eig;
use vr_linalg::kernels::dot;
use vr_linalg::LinearOperator;

/// Chebyshev iteration with spectral bounds supplied or Lanczos-estimated.
#[derive(Debug, Clone, Copy)]
pub struct ChebyshevIteration {
    /// Spectral interval, if known a priori (`None` = estimate by Lanczos).
    pub bounds: Option<(f64, f64)>,
    /// Check the true residual every `check_every` iterations (Chebyshev
    /// has no free residual estimate; this is its honest monitoring cost).
    pub check_every: usize,
}

impl ChebyshevIteration {
    /// Estimate the spectral interval with a short Lanczos run.
    #[must_use]
    pub fn auto() -> Self {
        ChebyshevIteration {
            bounds: None,
            check_every: 10,
        }
    }

    /// Use known spectral bounds.
    #[must_use]
    pub fn with_bounds(lambda_min: f64, lambda_max: f64) -> Self {
        ChebyshevIteration {
            bounds: Some((lambda_min, lambda_max)),
            check_every: 10,
        }
    }

    /// Set the residual-check period.
    #[must_use]
    pub fn check_every(mut self, every: usize) -> Self {
        self.check_every = every.max(1);
        self
    }
}

impl CgVariant for ChebyshevIteration {
    fn name(&self) -> String {
        match self.bounds {
            Some(_) => "chebyshev-iteration".into(),
            None => "chebyshev-iteration(auto)".into(),
        }
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let n = a.dim();
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        // spectral interval
        let (lo, hi) = match self.bounds {
            Some(be) => be,
            None => {
                let m = 30.min(n);
                let tri = eig::LanczosTridiagonal::run(a, m, 0xC4EB);
                counts.matvecs += tri.steps();
                counts.dots += 2 * tri.steps();
                let sb = tri.spectral_bounds();
                // widen: Ritz values approach from inside
                (sb.lambda_min * 0.9, sb.lambda_max * 1.05)
            }
        };
        assert!(
            lo > 0.0 && hi > lo,
            "Chebyshev needs a positive spectral interval, got [{lo}, {hi}]"
        );
        let theta = 0.5 * (hi + lo);
        let delta = 0.5 * (hi - lo);
        let sigma = theta / delta;

        let mut norms = Vec::new();
        let mut rr = dot(md, &r, &r);
        counts.dots += 1;
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        if rr <= thresh_sq {
            termination = Termination::Converged;
        } else {
            // d = current update direction (scaled), x ← x + d
            let mut d: Vec<f64> = r.iter().map(|ri| ri / theta).collect();
            counts.vector_ops += 1;
            let mut rho = 1.0 / sigma;
            let mut w = vec![0.0; n];

            for it in 0..opts.max_iters {
                opts.iter_mark();
                // rr is only refreshed every check_every iterations — the
                // streamed value is the latest *paid-for* residual, honest
                // to this method's reduction-avoidance contract
                if opts.service_poll(it, rr) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                opts.axpy(1.0, &d, &mut x, &mut counts);
                // r ← r − A·d
                opts.matvec(a, &d, &mut w, &mut counts);
                opts.axpy(-1.0, &w, &mut r, &mut counts);

                iterations = it + 1;

                // periodic (paid-for) residual check — the only reduction
                if iterations % self.check_every == 0 || iterations == opts.max_iters {
                    rr = dot(md, &r, &r);
                    counts.dots += 1;
                    if opts.record_residuals {
                        norms.push(rr.max(0.0).sqrt());
                    }
                    if rr <= thresh_sq {
                        termination = Termination::Converged;
                        break;
                    }
                    if guard::check_finite(rr).is_err() {
                        termination = Termination::Breakdown;
                        break;
                    }
                }

                // Chebyshev parameter recursion (no reductions)
                let rho_next = 1.0 / (2.0 * sigma - rho);
                let gamma = rho_next * rho; // = ρₖ·ρₖ₋₁
                counts.scalar_ops += 2;
                // d ← ρₖ₊₁·(2/δ)·r + γ·d
                for (di, ri) in d.iter_mut().zip(&r) {
                    *di = rho_next * (2.0 / delta) * ri + gamma * *di;
                }
                counts.vector_ops += 1;
                rho = rho_next;
            }
        }

        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        SolveResult::new(x, termination, iterations, norms, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    fn opts() -> SolveOptions {
        SolveOptions::default().with_tol(1e-8).with_max_iters(5000)
    }

    #[test]
    fn converges_with_exact_bounds_on_poisson1d() {
        let n = 40;
        let a = gen::poisson1d(n);
        // exact spectrum of tridiag(−1,2,−1)
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let lo = 2.0 - 2.0 * h.cos();
        let hi = 2.0 + 2.0 * ((n as f64) * h).cos().abs();
        let b = gen::rand_vector(n, 5);
        let res = ChebyshevIteration::with_bounds(lo, hi).solve(&a, &b, None, &opts());
        assert!(res.converged, "{:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn auto_bounds_converge_on_poisson2d() {
        let a = gen::poisson2d(12);
        let b = gen::poisson2d_rhs(12);
        let res = ChebyshevIteration::auto().solve(&a, &b, None, &opts());
        assert!(res.converged, "{:?}", res.termination);
        assert!(res.true_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn needs_more_iterations_than_cg_but_fewer_dots() {
        let a = gen::poisson2d(14);
        let b = gen::poisson2d_rhs(14);
        let cg = StandardCg::new().solve(&a, &b, None, &opts());
        let ch = ChebyshevIteration::auto()
            .check_every(20)
            .solve(&a, &b, None, &opts());
        assert!(cg.converged && ch.converged);
        // CG is optimal in iterations; Chebyshev trades iterations for
        // reduction-freedom
        assert!(
            ch.iterations >= cg.iterations,
            "chebyshev {} < cg {}",
            ch.iterations,
            cg.iterations
        );
        let cg_dots_per_iter = cg.counts.dots as f64 / cg.iterations as f64;
        let ch_dots_per_iter = (ch.counts.dots as f64 - 60.0) / ch.iterations as f64; // minus Lanczos probe
        assert!(
            ch_dots_per_iter < 0.3 * cg_dots_per_iter,
            "chebyshev dots/iter {ch_dots_per_iter} vs cg {cg_dots_per_iter}"
        );
    }

    #[test]
    fn loose_bounds_slow_it_down() {
        let a = gen::poisson1d(30);
        let b = gen::rand_vector(30, 8);
        let h = std::f64::consts::PI / 31.0;
        let lo = 2.0 - 2.0 * h.cos();
        let hi = 4.0;
        let tight = ChebyshevIteration::with_bounds(lo, hi).solve(&a, &b, None, &opts());
        let loose =
            ChebyshevIteration::with_bounds(lo * 0.1, hi * 2.0).solve(&a, &b, None, &opts());
        assert!(tight.converged && loose.converged);
        assert!(
            loose.iterations > tight.iterations,
            "loose {} !> tight {}",
            loose.iterations,
            tight.iterations
        );
    }

    #[test]
    #[should_panic(expected = "positive spectral interval")]
    fn rejects_bad_interval() {
        let a = gen::poisson1d(8);
        let _ = ChebyshevIteration::with_bounds(2.0, 1.0).solve(&a, &[1.0; 8], None, &opts());
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(5);
        let res = ChebyshevIteration::with_bounds(0.1, 4.0).solve(&a, &[0.0; 5], None, &opts());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
