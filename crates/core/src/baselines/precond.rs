//! Preconditioned CG.
//!
//! The paper (§1) notes CG "can be quite efficient when coupled with
//! various preconditioning techniques". `PrecondCg` wraps the standard
//! iteration with `z = M⁻¹·r`; the preconditioner choice also changes the
//! *parallel* profile (Jacobi is depth-1; SSOR/IC(0) serialize sweeps),
//! which E10 exploits.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::dot;
use vr_linalg::precond::Preconditioner;
use vr_linalg::LinearOperator;

/// Preconditioned CG with an owned preconditioner.
pub struct PrecondCg<P: Preconditioner> {
    precond: P,
    label: String,
}

impl<P: Preconditioner> PrecondCg<P> {
    /// Construct with a label for reports (e.g. "pcg-jacobi").
    pub fn new(precond: P, label: impl Into<String>) -> Self {
        PrecondCg {
            precond,
            label: label.into(),
        }
    }

    /// Borrow the preconditioner.
    pub fn preconditioner(&self) -> &P {
        &self.precond
    }
}

impl<P: Preconditioner> CgVariant for PrecondCg<P> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            // The preconditioner application is an opaque second operator
            // the sweep engine cannot stage — no single-pass schedule.
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let n = a.dim();
        assert_eq!(
            self.precond.dim(),
            n,
            "preconditioner dimension mismatches operator"
        );
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut z = self.precond.apply_alloc(&r);
        counts.precond_applies += 1;
        let mut p = z.clone();
        counts.vector_ops += 1;
        let mut w = vec![0.0; n];

        let mut rz = dot(md, &r, &z);
        let mut rr = dot(md, &r, &r);
        counts.dots += 2;

        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        // Checkpoint ring (policy-gated): at the loop top only [x, r, p] and
        // the scalars (rz, rr) are live — z is overwritten by the next
        // preconditioner apply before any read, and w by the matvec.
        let mut rstats = RecoveryStats::default();
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 3, n, 2));
        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        if rr <= thresh_sq {
            termination = Termination::Converged;
        } else {
            let mut it = 0usize;
            macro_rules! rollback_or {
                ($fallback:block) => {
                    if let Some(rg) = ring.as_mut() {
                        let mut scal = [0.0; 2];
                        if let Some(c) = rg.rollback(opts, &mut [&mut x, &mut r, &mut p], &mut scal)
                        {
                            rz = scal[0];
                            rr = scal[1];
                            rstats.rollbacks += 1;
                            if opts.record_residuals {
                                norms.truncate(c + 1);
                            }
                            iterations = c;
                            it = c;
                            continue;
                        }
                    }
                    $fallback
                };
            }
            while it < opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(it, rr) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                if let Some(rg) = ring.as_mut() {
                    rg.maybe_save(opts, it, &[&x, &r, &p], &[rz, rr]);
                }
                if guard::check_pivot(rz).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        iterations = it;
                        break;
                    });
                }
                // matvec carries (p, A·p) in its sweep
                let pap = opts.matvec_dot(a, &p, &mut w, &mut counts);
                if guard::check_pivot(pap).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        iterations = it;
                        break;
                    });
                }
                let lambda = rz / pap;
                opts.axpy(lambda, &p, &mut x, &mut counts);
                counts.scalar_ops += 1;
                // r ← r − λ·w carries (r,r) in its sweep
                rr = opts.axpy_norm2_sq(-lambda, &w, &mut r, &mut counts);

                self.precond.apply(&r, &mut z);
                counts.precond_applies += 1;
                let rz_next = dot(md, &r, &z);
                counts.dots += 1;

                if opts.record_residuals {
                    norms.push(rr.max(0.0).sqrt());
                }
                iterations = it + 1;
                if rr <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if guard::check_finite(rr).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        break;
                    });
                }
                let beta = rz_next / rz;
                counts.scalar_ops += 1;
                opts.xpay(&z, beta, &mut p, &mut counts);
                rz = rz_next;
                it += 1;
            }
        }
        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }

        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        res.recovery = rstats;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;
    use vr_linalg::precond::{Ic0, IdentityPrecond, Jacobi, Ssor};

    #[test]
    fn identity_precond_equals_standard_cg() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let pcg = PrecondCg::new(IdentityPrecond::new(a.nrows()), "pcg-identity")
            .solve(&a, &b, None, &opts);
        assert!(pcg.converged);
        assert_eq!(std.iterations, pcg.iterations);
        for (s, o) in std.residual_norms.iter().zip(&pcg.residual_norms) {
            assert!((s - o).abs() <= 1e-9 * (1.0 + s.abs()));
        }
    }

    #[test]
    fn stronger_preconditioners_need_fewer_iterations() {
        // Anisotropic problem: unpreconditioned CG struggles; IC(0) wins.
        let a = gen::anisotropic2d(16, 0.05);
        let b = gen::rand_vector(256, 3);
        let opts = SolveOptions::default().with_tol(1e-8);
        let plain = StandardCg::new().solve(&a, &b, None, &opts);
        let jac = PrecondCg::new(Jacobi::new(&a).unwrap(), "pcg-jacobi").solve(&a, &b, None, &opts);
        let ssor =
            PrecondCg::new(Ssor::new(&a, 1.2).unwrap(), "pcg-ssor").solve(&a, &b, None, &opts);
        let ic = PrecondCg::new(Ic0::new(&a).unwrap(), "pcg-ic0").solve(&a, &b, None, &opts);
        assert!(plain.converged && jac.converged && ssor.converged && ic.converged);
        assert!(
            ssor.iterations < plain.iterations,
            "ssor {} !< plain {}",
            ssor.iterations,
            plain.iterations
        );
        assert!(
            ic.iterations < plain.iterations,
            "ic0 {} !< plain {}",
            ic.iterations,
            plain.iterations
        );
        assert!(ic.true_residual(&a, &b) < 1e-5);
    }

    #[test]
    fn precond_applies_counted() {
        let a = gen::poisson2d(8);
        let b = gen::poisson2d_rhs(8);
        let res = PrecondCg::new(Jacobi::new(&a).unwrap(), "pcg-jacobi").solve(
            &a,
            &b,
            None,
            &SolveOptions::default(),
        );
        assert!(res.converged);
        assert_eq!(res.counts.precond_applies, res.iterations + 1);
    }

    #[test]
    #[should_panic(expected = "preconditioner dimension")]
    fn dimension_mismatch_panics() {
        let a = gen::poisson1d(8);
        let res = PrecondCg::new(IdentityPrecond::new(4), "bad");
        let _ = res.solve(&a, &[1.0; 8], None, &SolveOptions::default());
    }

    #[test]
    fn name_is_label() {
        let p = PrecondCg::new(IdentityPrecond::new(4), "pcg-custom");
        assert_eq!(p.name(), "pcg-custom");
        assert_eq!(p.preconditioner().dim(), 4);
    }
}
