//! Chronopoulos-Gear CG: both inner products launched together.
//!
//! Per iteration: one SpMV `w = A·r`, two inner products `ρ = (r,r)`,
//! `μ = (r,w)` that depend only on `r` (so they launch simultaneously —
//! one serialized reduction instead of standard CG's two), and the scalar
//! identity
//!
//! ```text
//! (p,Ap) = (r,Ar) − β·(r,r)/λ_prev
//! ```
//!
//! (valid under CG orthogonality), giving `λ = ρ / (μ − β·ρ/λ_prev)`.
//! `Ap` is maintained by the recurrence `Ap ← w + β·Ap` — no extra matvec.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::dot;
use vr_linalg::LinearOperator;

/// Chronopoulos-Gear CG solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChronopoulosGearCg;

impl ChronopoulosGearCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        ChronopoulosGearCg
    }
}

impl CgVariant for ChronopoulosGearCg {
    fn name(&self) -> String {
        "chronopoulos-gear-cg".into()
    }

    fn sweep_eligible(&self) -> bool {
        true
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            return crate::sweep::solve_chronopoulos_gear(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let n = a.dim();
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut w = opts.matvec_alloc(a, &r, &mut counts);
        let mut rho = dot(md, &r, &r);
        let mut mu = dot(md, &r, &w);
        counts.dots += 2;

        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rho.max(0.0).sqrt());
        }

        let mut p = vec![0.0; n];
        let mut s = vec![0.0; n]; // s = A·p maintained by recurrence
        let mut lambda_prev = 0.0;
        let mut rho_prev = 0.0;

        // Checkpoint ring (policy-gated): [x, r, p, s, w] + the four
        // carried scalars — s = A·p and w = A·r are snapshotted rather than
        // recomputed so a restore costs zero matvecs.
        let mut rstats = RecoveryStats::default();
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 5, n, 4));

        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        if rho <= thresh_sq {
            termination = Termination::Converged;
        } else {
            let mut it = 0usize;
            macro_rules! rollback_or {
                ($fallback:block) => {
                    if let Some(rg) = ring.as_mut() {
                        let mut scal = [0.0; 4];
                        if let Some(c) = rg.rollback(
                            opts,
                            &mut [&mut x, &mut r, &mut p, &mut s, &mut w],
                            &mut scal,
                        ) {
                            rho = scal[0];
                            mu = scal[1];
                            lambda_prev = scal[2];
                            rho_prev = scal[3];
                            rstats.rollbacks += 1;
                            if opts.record_residuals {
                                norms.truncate(c + 1);
                            }
                            iterations = c;
                            it = c;
                            continue;
                        }
                    }
                    $fallback
                };
            }
            while it < opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(it, rho) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                if let Some(rg) = ring.as_mut() {
                    rg.maybe_save(
                        opts,
                        it,
                        &[&x, &r, &p, &s, &w],
                        &[rho, mu, lambda_prev, rho_prev],
                    );
                }
                let (beta, denom) = if it == 0 {
                    (0.0, mu)
                } else {
                    let beta = rho / rho_prev;
                    (beta, mu - beta * rho / lambda_prev)
                };
                counts.scalar_ops += 3;
                if guard::check_pivot(denom).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        iterations = it;
                        break;
                    });
                }
                let lambda = rho / denom;

                // p ← r + β·p ; s ← w + β·s (= A·p)
                opts.xpay(&r, beta, &mut p, &mut counts);
                opts.xpay(&w, beta, &mut s, &mut counts);
                opts.axpy(lambda, &p, &mut x, &mut counts);

                rho_prev = rho;
                // r ← r − λ·s carries ρ = (r,r) in its sweep; the matvec
                // w = A·r carries μ = (r,w) in its sweep
                rho = opts.axpy_norm2_sq(-lambda, &s, &mut r, &mut counts);
                mu = opts.matvec_dot(a, &r, &mut w, &mut counts);
                lambda_prev = lambda;

                if opts.record_residuals {
                    norms.push(rho.max(0.0).sqrt());
                }
                iterations = it + 1;
                if rho <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if guard::check_finite(rho).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        break;
                    });
                }
                it += 1;
            }
        }
        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }

        if !opts.record_residuals {
            norms.push(rho.max(0.0).sqrt());
        }
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        res.recovery = rstats;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    #[test]
    fn converges_and_matches_standard_cg() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let cg2 = ChronopoulosGearCg::new().solve(&a, &b, None, &opts);
        assert!(cg2.converged, "{:?}", cg2.termination);
        let m = std.residual_norms.len().min(cg2.residual_norms.len());
        for i in 0..m.saturating_sub(2) {
            let (s, o) = (std.residual_norms[i], cg2.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-5 * (1.0 + s.abs()),
                "iter {i}: {s} vs {o}"
            );
        }
    }

    #[test]
    fn one_matvec_two_dots_per_iteration() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let res = ChronopoulosGearCg::new().solve(&a, &b, None, &SolveOptions::default());
        assert!(res.converged);
        let per = res.counts.per_iteration(res.iterations);
        assert!((per.matvecs - 1.0).abs() < 0.2, "matvecs {}", per.matvecs);
        assert!((per.dots - 2.0).abs() < 0.3, "dots {}", per.dots);
    }

    #[test]
    fn solves_random_spd_exactly() {
        let a = gen::rand_spd(30, 4, 2.0, 9);
        let b = gen::rand_vector(30, 2);
        let res =
            ChronopoulosGearCg::new().solve(&a, &b, None, &SolveOptions::default().with_tol(1e-11));
        assert!(res.converged);
        assert!(res.true_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(5);
        let res = ChronopoulosGearCg::new().solve(&a, &[0.0; 5], None, &SolveOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn breakdown_on_indefinite() {
        let a = gen::tridiag_toeplitz(10, 0.2, -1.0);
        let b = gen::rand_vector(10, 4);
        let res = ChronopoulosGearCg::new().solve(&a, &b, None, &SolveOptions::default());
        assert_eq!(res.termination, Termination::Breakdown);
    }
}
