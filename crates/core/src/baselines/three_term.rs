//! Three-term recurrence CG (Concus-Golub-O'Leary / Rutishauser form).
//!
//! Eliminates the direction vector `p` entirely:
//!
//! ```text
//! γ_n = (r_n, r_n) / (r_n, A·r_n)
//! ρ_0 = 1
//! ρ_n = 1 / (1 − (γ_n/γ_{n−1})·((r_n,r_n)/(r_{n−1},r_{n−1}))·(1/ρ_{n−1}))
//! u_{n+1} = ρ_n·(u_n + γ_n·r_n) + (1 − ρ_n)·u_{n−1}
//! r_{n+1} = ρ_n·(r_n − γ_n·A·r_n) + (1 − ρ_n)·r_{n−1}
//! ```
//!
//! Mathematically equivalent to CG; included because the paper's reference
//! [3] (Concus, Golub & O'Leary 1976) presents CG in this generalized form,
//! and because its dependency structure (two serialized reductions, like
//! standard CG) makes a useful control in the machine-model experiments.

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::dot;
use vr_linalg::LinearOperator;

/// Three-term recurrence CG solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeTermCg;

impl ThreeTermCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        ThreeTermCg
    }
}

impl CgVariant for ThreeTermCg {
    fn name(&self) -> String {
        "three-term-cg".into()
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            // The three-term recurrence reads both r and r_prev around its
            // mid-iteration reduction — no single-pass schedule exists.
            return crate::sweep::reject(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::reject(a, b, x0, opts);
        }
        let n = a.dim();
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut x_prev = x.clone();
        let mut r_prev = r.clone();
        counts.vector_ops += 2;
        let mut w = vec![0.0; n];
        // scratch for the next iterate/residual, rotated (never reallocated)
        let mut x_next = vec![0.0; n];
        let mut r_next = vec![0.0; n];

        let mut rr = dot(md, &r, &r);
        counts.dots += 1;
        let mut gamma_prev = 1.0;
        let mut rr_prev = 1.0;
        let mut rho_prev = 1.0;

        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }

        // Checkpoint ring (policy-gated): the three-term recurrence needs
        // BOTH levels of its history — [x, r, x_prev, r_prev] plus the four
        // carried scalars — to replay exactly.
        let mut rstats = RecoveryStats::default();
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 4, n, 4));
        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        if rr <= thresh_sq {
            termination = Termination::Converged;
        } else {
            let mut it = 0usize;
            macro_rules! rollback_or {
                ($fallback:block) => {
                    if let Some(rg) = ring.as_mut() {
                        let mut scal = [0.0; 4];
                        if let Some(c) = rg.rollback(
                            opts,
                            &mut [&mut x, &mut r, &mut x_prev, &mut r_prev],
                            &mut scal,
                        ) {
                            rr = scal[0];
                            rr_prev = scal[1];
                            gamma_prev = scal[2];
                            rho_prev = scal[3];
                            rstats.rollbacks += 1;
                            if opts.record_residuals {
                                norms.truncate(c + 1);
                            }
                            iterations = c;
                            it = c;
                            continue;
                        }
                    }
                    $fallback
                };
            }
            while it < opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(it, rr) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                if let Some(rg) = ring.as_mut() {
                    rg.maybe_save(
                        opts,
                        it,
                        &[&x, &r, &x_prev, &r_prev],
                        &[rr, rr_prev, gamma_prev, rho_prev],
                    );
                }
                // matvec carries (r, A·r) in its sweep
                let rar = opts.matvec_dot(a, &r, &mut w, &mut counts);
                if guard::check_pivot(rar).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        iterations = it;
                        break;
                    });
                }
                let gamma = rr / rar;
                let rho = if it == 0 {
                    1.0
                } else {
                    1.0 / (1.0 - (gamma / gamma_prev) * (rr / rr_prev) / rho_prev)
                };
                counts.scalar_ops += 4;
                if guard::check_finite(rho).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        iterations = it;
                        break;
                    });
                }

                // u_{n+1} = ρ(u + γ r) + (1−ρ) u_{n−1}
                for i in 0..n {
                    x_next[i] = rho * (x[i] + gamma * r[i]) + (1.0 - rho) * x_prev[i];
                }
                // r_{n+1} = ρ(r − γ A r) + (1−ρ) r_{n−1}
                for i in 0..n {
                    r_next[i] = rho * (r[i] - gamma * w[i]) + (1.0 - rho) * r_prev[i];
                }
                counts.vector_ops += 2;

                // rotate: x_prev ← x, x ← x_next, scratch ← old x_prev
                std::mem::swap(&mut x, &mut x_next);
                std::mem::swap(&mut x_prev, &mut x_next);
                std::mem::swap(&mut r, &mut r_next);
                std::mem::swap(&mut r_prev, &mut r_next);
                rr_prev = rr;
                gamma_prev = gamma;
                rho_prev = rho;
                rr = dot(md, &r, &r);
                counts.dots += 1;

                if opts.record_residuals {
                    norms.push(rr.max(0.0).sqrt());
                }
                iterations = it + 1;
                if rr <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if guard::check_finite(rr).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        break;
                    });
                }
                it += 1;
            }
        }
        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }

        if !opts.record_residuals {
            norms.push(rr.max(0.0).sqrt());
        }
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        res.recovery = rstats;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    #[test]
    fn matches_standard_cg_residual_history() {
        let a = gen::poisson2d(9);
        let b = gen::poisson2d_rhs(9);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let tt = ThreeTermCg::new().solve(&a, &b, None, &opts);
        assert!(tt.converged, "{:?}", tt.termination);
        let m = std.residual_norms.len().min(tt.residual_norms.len());
        for i in 0..m.saturating_sub(2) {
            let (s, o) = (std.residual_norms[i], tt.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-4 * (1.0 + s.abs()),
                "iter {i}: {s} vs {o}"
            );
        }
    }

    #[test]
    fn solves_random_spd() {
        let a = gen::rand_spd(30, 4, 2.0, 21);
        let b = gen::rand_vector(30, 22);
        let res = ThreeTermCg::new().solve(&a, &b, None, &SolveOptions::default().with_tol(1e-11));
        assert!(res.converged);
        assert!(res.true_residual(&a, &b) < 1e-8);
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(5);
        let res = ThreeTermCg::new().solve(&a, &[0.0; 5], None, &SolveOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn breakdown_on_indefinite() {
        let a = gen::tridiag_toeplitz(10, 0.2, -1.0);
        let b = gen::rand_vector(10, 4);
        let res = ThreeTermCg::new().solve(&a, &b, None, &SolveOptions::default());
        assert_eq!(res.termination, Termination::Breakdown);
    }
}
