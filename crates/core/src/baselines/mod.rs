//! Comparison algorithms.
//!
//! The 1983 paper is the seed of what became communication-avoiding /
//! pipelined Krylov methods. These baselines are the descendants and
//! contemporaries the experiments compare against:
//!
//! * [`chronopoulos_gear`] — Chronopoulos & Gear (1989): one matvec, the
//!   two inner products launched *together* (one serialized reduction).
//! * [`pipelined`] — Ghysels & Vanroose (2014): the single reduction is
//!   overlapped with the matvec.
//! * [`three_term`] — the Concus-Golub-O'Leary / Rutishauser three-term
//!   form of CG (the formulation the paper's reference [3] uses).
//! * [`precond`] — standard preconditioned CG (the paper's §1 nod to
//!   preconditioning).
//! * [`conjugate_residual`] — CR and overlap-CR: the paper's §4 "large
//!   class" claim demonstrated on a second Krylov method.
//! * [`chebyshev`] — Chebyshev iteration: the zero-reduction comparator
//!   (no inner products at all; needs spectral bounds instead).

pub mod chebyshev;
pub mod chronopoulos_gear;
pub mod conjugate_residual;
pub mod pipelined;
pub mod precond;
pub mod three_term;

pub use chebyshev::ChebyshevIteration;
pub use chronopoulos_gear::ChronopoulosGearCg;
pub use conjugate_residual::{ConjugateResidual, OverlapCr};
pub use pipelined::PipelinedCg;
pub use precond::PrecondCg;
pub use three_term::ThreeTermCg;
