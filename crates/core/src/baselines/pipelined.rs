//! Ghysels-Vanroose pipelined CG.
//!
//! The modern descendant of the 1983 idea: the single reduction of each
//! iteration (for `γ = (r,r)` and `δ = (w,r)`) is *overlapped with the
//! matvec* `q = A·w`. Auxiliary vectors `s = A·p`, `q`, `z = A·s` are
//! maintained by recurrences so no extra matvec is needed.
//!
//! Recurrences (unpreconditioned form of Ghysels & Vanroose 2014):
//!
//! ```text
//! γ = (r,r);  δ = (w,r);  q = A·w          (reduction ∥ matvec)
//! β = γ/γ_old (0 at start);  λ = γ / (δ − β·γ/λ_old)
//! p ← r + β·p;   s ← w + β·s;   z ← q + β·z
//! x ← x + λ·p;   r ← r − λ·s;   w ← w − λ·z
//! ```

use crate::instrument::{OpCounts, RecoveryStats};
use crate::resilience::checkpoint::CheckpointRing;
use crate::resilience::guard;
use crate::solver::{util, CgVariant, KernelPolicy, SolveOptions, SolveResult, Termination};
use vr_linalg::kernels::dot;
use vr_linalg::LinearOperator;

/// Pipelined CG solver (Ghysels-Vanroose).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelinedCg;

impl PipelinedCg {
    /// Construct.
    #[must_use]
    pub fn new() -> Self {
        PipelinedCg
    }
}

impl CgVariant for PipelinedCg {
    fn name(&self) -> String {
        "pipelined-cg".into()
    }

    fn mixed_eligible(&self) -> bool {
        true
    }

    fn sweep_eligible(&self) -> bool {
        true
    }

    fn solve(
        &self,
        a: &dyn LinearOperator,
        b: &[f64],
        x0: Option<&[f64]>,
        opts: &SolveOptions,
    ) -> SolveResult {
        if opts.sweep_policy == crate::solver::SweepPolicy::WholeIteration {
            return crate::sweep::solve_pipelined(a, b, x0, opts);
        }
        if opts.precision == crate::solver::Precision::Mixed {
            return crate::mixed::solve_pipelined(a, b, x0, opts);
        }
        solve_gv(a, b, x0, opts)
    }
}

/// The Ghysels-Vanroose iteration itself, shared between [`PipelinedCg`]
/// and the depth-1 configuration of
/// [`crate::pipelined_deep::DeepPipelinedCg`]: a depth-1 pipeline *is* the
/// GV recurrence, so both entry points must produce the same bits — the
/// differential suite in `tests/pipelined_differential.rs` pins that.
pub(crate) fn solve_gv(
    a: &dyn LinearOperator,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveResult {
    {
        let n = a.dim();
        let md = opts.dot_mode;
        let mut counts = OpCounts::default();
        let _simd = opts.simd_guard();
        let _trace = opts.trace_attach();
        let (mut x, mut r, bnorm) = util::init_residual(a, b, x0);
        if x0.is_some() {
            counts.matvecs += 1;
            counts.vector_ops += 1;
        }
        let thresh_sq = util::threshold_sq(opts, bnorm);

        let mut w = opts.matvec_alloc(a, &r, &mut counts);

        let mut p = vec![0.0; n];
        let mut s = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut q = vec![0.0; n];

        let mut gamma_old = 1.0;
        let mut lambda_old = 1.0;
        let mut gamma = dot(md, &r, &r);
        counts.dots += 1;

        let mut norms = Vec::new();
        if opts.record_residuals {
            norms.push(gamma.max(0.0).sqrt());
        }

        // Checkpoint ring (policy-gated): the pipelined recurrences maintain
        // five live vectors — q alone is recomputed each iteration — so a
        // snapshot is [x, r, p, s, z, w] plus the carried scalar chain.
        let mut rstats = RecoveryStats::default();
        let mut ring = opts
            .recovery
            .as_ref()
            .and_then(|policy| CheckpointRing::from_policy(policy, 6, n, 4));
        let mut termination = Termination::MaxIterations;
        let mut iterations = 0;
        // Under the fused policy the w-update sweep of iteration `it`
        // carries δ for iteration `it + 1` (bit-identical association),
        // so the loop top only pays a standalone reduction at startup.
        let fused = opts.kernel_policy == KernelPolicy::Fused;
        let mut delta_carried = 0.0;
        if gamma <= thresh_sq {
            termination = Termination::Converged;
        } else {
            let mut it = 0usize;
            macro_rules! rollback_or {
                ($fallback:block) => {
                    if let Some(rg) = ring.as_mut() {
                        let mut scal = [0.0; 4];
                        if let Some(c) = rg.rollback(
                            opts,
                            &mut [&mut x, &mut r, &mut p, &mut s, &mut z, &mut w],
                            &mut scal,
                        ) {
                            gamma = scal[0];
                            gamma_old = scal[1];
                            lambda_old = scal[2];
                            delta_carried = scal[3];
                            rstats.rollbacks += 1;
                            if opts.record_residuals {
                                norms.truncate(c + 1);
                            }
                            iterations = c;
                            it = c;
                            continue;
                        }
                    }
                    $fallback
                };
            }
            while it < opts.max_iters {
                opts.iter_mark();
                if opts.service_poll(it, gamma) {
                    termination = Termination::Cancelled;
                    iterations = it;
                    break;
                }
                if let Some(rg) = ring.as_mut() {
                    rg.maybe_save(
                        opts,
                        it,
                        &[&x, &r, &p, &s, &z, &w],
                        &[gamma, gamma_old, lambda_old, delta_carried],
                    );
                }
                let delta = if fused && it > 0 {
                    delta_carried
                } else {
                    counts.dots += 1;
                    opts.dot(&w, &r)
                };
                // q = A·w — on the paper's machine this overlaps the two
                // reductions above; numerically it is just computed here.
                opts.matvec(a, &w, &mut q, &mut counts);

                let (beta, denom) = if it == 0 {
                    (0.0, delta)
                } else {
                    let beta = gamma / gamma_old;
                    (beta, delta - beta * gamma / lambda_old)
                };
                counts.scalar_ops += 3;
                if guard::check_pivot(denom).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        iterations = it;
                        break;
                    });
                }
                let lambda = gamma / denom;

                opts.xpay(&r, beta, &mut p, &mut counts);
                opts.xpay(&w, beta, &mut s, &mut counts);
                opts.xpay(&q, beta, &mut z, &mut counts);
                opts.axpy(lambda, &p, &mut x, &mut counts);

                gamma_old = gamma;
                lambda_old = lambda;
                // r ← r − λ·s carries γ = (r,r) in its sweep
                gamma = opts.axpy_norm2_sq(-lambda, &s, &mut r, &mut counts);

                if opts.record_residuals {
                    norms.push(gamma.max(0.0).sqrt());
                }
                iterations = it + 1;
                if gamma <= thresh_sq {
                    termination = Termination::Converged;
                    break;
                }
                if guard::check_finite(gamma).is_err() {
                    rollback_or!({
                        termination = Termination::Breakdown;
                        break;
                    });
                }

                // w ← w − λ·z; fused, the same sweep yields next
                // iteration's δ = (w,r) (w is dead after a break, so
                // skipping the update on exit changes nothing)
                if fused {
                    delta_carried = opts.axpy_dot(-lambda, &z, &mut w, &r, &mut counts);
                } else {
                    opts.axpy(-lambda, &z, &mut w, &mut counts);
                }
                it += 1;
            }
        }
        if termination == Termination::Converged && rstats.rollbacks > 0 {
            termination = Termination::RecoveredConverged;
        }

        if !opts.record_residuals {
            norms.push(gamma.max(0.0).sqrt());
        }
        let mut res = SolveResult::new(x, termination, iterations, norms, counts);
        res.recovery = rstats;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardCg;
    use vr_linalg::gen;

    #[test]
    fn converges_and_matches_standard() {
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let opts = SolveOptions::default().with_tol(1e-9);
        let std = StandardCg::new().solve(&a, &b, None, &opts);
        let gv = PipelinedCg::new().solve(&a, &b, None, &opts);
        assert!(gv.converged, "{:?}", gv.termination);
        let m = std.residual_norms.len().min(gv.residual_norms.len());
        for i in 0..m.saturating_sub(2) {
            let (s, o) = (std.residual_norms[i], gv.residual_norms[i]);
            assert!(
                (s - o).abs() <= 1e-4 * (1.0 + s.abs()),
                "iter {i}: {s} vs {o}"
            );
        }
    }

    #[test]
    fn two_matvecs_per_iteration_counted() {
        // GV does one matvec per iteration *in its recurrence form*; our
        // unpreconditioned version computes q = A·w per iteration plus the
        // startup w = A·r — check 1 matvec/iter steady state.
        let a = gen::poisson2d(10);
        let b = gen::poisson2d_rhs(10);
        let res = PipelinedCg::new().solve(&a, &b, None, &SolveOptions::default());
        assert!(res.converged);
        let per = res.counts.per_iteration(res.iterations);
        assert!((per.matvecs - 1.0).abs() < 0.2, "matvecs {}", per.matvecs);
        assert!((per.dots - 2.0).abs() < 0.3, "dots {}", per.dots);
    }

    #[test]
    fn solves_anisotropic_problem() {
        let a = gen::anisotropic2d(10, 0.1);
        let b = gen::rand_vector(100, 5);
        let res = PipelinedCg::new().solve(&a, &b, None, &SolveOptions::default().with_tol(1e-9));
        assert!(res.converged);
        assert!(res.true_residual(&a, &b) < 1e-6);
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = gen::poisson1d(5);
        let res = PipelinedCg::new().solve(&a, &[0.0; 5], None, &SolveOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn breakdown_on_indefinite() {
        let a = gen::tridiag_toeplitz(10, 0.2, -1.0);
        let b = gen::rand_vector(10, 4);
        let res = PipelinedCg::new().solve(&a, &b, None, &SolveOptions::default());
        assert_eq!(res.termination, Termination::Breakdown);
    }
}
