//! The scalar recurrence machinery of the look-ahead algorithm.
//!
//! * [`identities`] — the §3 closed-form identities (including the
//!   correction of the OCR-damaged formula in the source scan).
//! * [`moments`] — the moment window `(μ, ν, σ)` and its exact one-step
//!   update rules, shared by [`crate::lookahead`].
//! * [`symbolic`] — machine derivation of the (*) relation's coefficient
//!   polynomials for arbitrary k, with the degree audit for claim C3.

pub mod identities;
pub mod moments;
pub mod symbolic;
