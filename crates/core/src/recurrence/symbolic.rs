//! Machine derivation of the (*) relation's coefficient polynomials.
//!
//! §4 of the paper asserts, without derivation ("will be given in detail in
//! a future paper" — which never appeared), that for any `k > 0`
//!
//! ```text
//! (r⁽ⁿ⁾,r⁽ⁿ⁾) = Σᵢ₌₀²ᵏ aᵢ·(r⁽ⁿ⁻ᵏ⁾,Aⁱr⁽ⁿ⁻ᵏ⁾)
//!            + Σᵢ₌₀²ᵏ bᵢ·(r⁽ⁿ⁻ᵏ⁾,Aⁱp⁽ⁿ⁻ᵏ⁾)          (*)
//!            + Σᵢ₌₀²ᵏ cᵢ·(p⁽ⁿ⁻ᵏ⁾,Aⁱp⁽ⁿ⁻ᵏ⁾)
//! ```
//!
//! with `aᵢ, bᵢ, cᵢ` polynomials in `{α, λ}` of the k intervening steps,
//! *at most quadratic in each parameter separately* (claim C3). This module
//! reconstructs them: it pushes `r` and `p` through k symbolic CG steps as
//! elements of `(ℤ[α,λ])[A]` acting on the base vectors, then reads the
//! bilinear forms off the products.
//!
//! Parameter naming: step `s ∈ 1..=k` applies
//! `r ← r − λₛ·A·p` then `p ← r + αₛ·p`; variable indices are
//! `λₛ ↦ s−1` and `αₛ ↦ k+s−1` (see [`Derivation::param_point`]).

use vr_poly::{MultiPoly, OpPoly};

/// The symbolic state after k CG steps from a base iteration:
/// `r = r_r(A)·r₀ + r_p(A)·p₀`, `p = p_r(A)·r₀ + p_p(A)·p₀`.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// Look-ahead depth.
    pub k: usize,
    /// Coefficient of `r₀` in `r⁽ⁿ⁾`.
    pub r_r: OpPoly,
    /// Coefficient of `p₀` in `r⁽ⁿ⁾`.
    pub r_p: OpPoly,
    /// Coefficient of `r₀` in `p⁽ⁿ⁾`.
    pub p_r: OpPoly,
    /// Coefficient of `p₀` in `p⁽ⁿ⁾`.
    pub p_p: OpPoly,
}

/// The (*) coefficients for `(r⁽ⁿ⁾,r⁽ⁿ⁾)` and `(p⁽ⁿ⁾,Ap⁽ⁿ⁾)`.
///
/// Index `i` multiplies the order-`i` moment of the respective family:
/// `a[i]·μᵢ + b[i]·νᵢ + c[i]·σᵢ`.
#[derive(Debug, Clone)]
pub struct StarCoefficients {
    /// Look-ahead depth.
    pub k: usize,
    /// μ-family coefficients (`(r₀,Aⁱr₀)`), length `2k+1`.
    pub a: Vec<MultiPoly>,
    /// ν-family coefficients (`(r₀,Aⁱp₀)`), length `2k+1`.
    pub b: Vec<MultiPoly>,
    /// σ-family coefficients (`(p₀,Aⁱp₀)`), length `2k+1`.
    pub c: Vec<MultiPoly>,
}

impl Derivation {
    /// Run `k ≥ 1` symbolic CG steps.
    #[must_use]
    pub fn run(k: usize) -> Derivation {
        assert!(k >= 1, "look-ahead must be at least 1");
        let nv = 2 * k;
        let mut r_r = OpPoly::one(nv);
        let mut r_p = OpPoly::zero(nv);
        let mut p_r = OpPoly::zero(nv);
        let mut p_p = OpPoly::one(nv);
        for s in 1..=k {
            let lam = MultiPoly::var(nv, s - 1);
            let alf = MultiPoly::var(nv, k + s - 1);
            // r ← r − λₛ·A·p
            let new_r_r = r_r.sub(&p_r.mul_a().scale(&lam));
            let new_r_p = r_p.sub(&p_p.mul_a().scale(&lam));
            // p ← r + αₛ·p
            let new_p_r = new_r_r.add(&p_r.scale(&alf));
            let new_p_p = new_r_p.add(&p_p.scale(&alf));
            r_r = new_r_r;
            r_p = new_r_p;
            p_r = new_p_r;
            p_p = new_p_p;
        }
        Derivation {
            k,
            r_r,
            r_p,
            p_r,
            p_p,
        }
    }

    /// Coefficients of the (*) relation for `(r⁽ⁿ⁾,r⁽ⁿ⁾)`.
    ///
    /// `(X·r + Y·p, X·r + Y·p) = Σ (X·X)ᵢ μᵢ + 2Σ (X·Y)ᵢ νᵢ + Σ (Y·Y)ᵢ σᵢ`
    /// (using symmetry of `A`).
    #[must_use]
    pub fn star_rr(&self) -> StarCoefficients {
        self.bilinear(&self.r_r, &self.r_p, &self.r_r, &self.r_p, 0)
    }

    /// Coefficients of the analogous relation for `(p⁽ⁿ⁾,Ap⁽ⁿ⁾)`.
    ///
    /// Moment indices are shifted by the extra factor of `A`, so the top
    /// moment order is `2k+1` — the returned vectors have length `2k+2`.
    #[must_use]
    pub fn star_pap(&self) -> StarCoefficients {
        self.bilinear(&self.p_r, &self.p_p, &self.p_r, &self.p_p, 1)
    }

    fn bilinear(
        &self,
        xr: &OpPoly,
        xp: &OpPoly,
        yr: &OpPoly,
        yp: &OpPoly,
        shift: usize,
    ) -> StarCoefficients {
        let nv = 2 * self.k;
        let len = 2 * self.k + 1 + shift;
        let pad = |mut v: Vec<MultiPoly>| {
            // prepend `shift` zeros (the extra A factor raises each moment
            // order), then pad to the uniform length
            for _ in 0..shift {
                v.insert(0, MultiPoly::zero(nv));
            }
            while v.len() < len {
                v.push(MultiPoly::zero(nv));
            }
            v
        };
        let a = pad(xr.bilinear_moments(yr));
        let b = pad(xr.bilinear_moments(yp).iter().map(|q| q.scale(2)).collect());
        let c = pad(xp.bilinear_moments(yp));
        StarCoefficients { k: self.k, a, b, c }
    }

    /// Build the parameter evaluation point from numeric per-step values:
    /// `lambdas[s]` and `alphas[s]` for steps `s = 0..k` (step s uses
    /// `λ_{base+s}` and `α_{base+s+1}` in the paper's global numbering).
    #[must_use]
    pub fn param_point(&self, lambdas: &[f64], alphas: &[f64]) -> Vec<f64> {
        assert_eq!(lambdas.len(), self.k, "need k lambdas");
        assert_eq!(alphas.len(), self.k, "need k alphas");
        let mut point = Vec::with_capacity(2 * self.k);
        point.extend_from_slice(lambdas);
        point.extend_from_slice(alphas);
        point
    }
}

impl StarCoefficients {
    /// Evaluate the relation numerically:
    /// `Σ aᵢ(θ)·μᵢ + Σ bᵢ(θ)·νᵢ + Σ cᵢ(θ)·σᵢ`.
    ///
    /// # Panics
    /// Panics if the moment slices are shorter than the coefficient lists.
    #[must_use]
    pub fn eval(&self, point: &[f64], mu: &[f64], nu: &[f64], sigma: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, ai) in self.a.iter().enumerate() {
            acc += ai.eval(point) * mu[i];
        }
        for (i, bi) in self.b.iter().enumerate() {
            acc += bi.eval(point) * nu[i];
        }
        for (i, ci) in self.c.iter().enumerate() {
            acc += ci.eval(point) * sigma[i];
        }
        acc
    }

    /// Maximum degree of any coefficient in any single parameter — the
    /// quantity claim C3 bounds by 2.
    #[must_use]
    pub fn max_degree_per_parameter(&self) -> u32 {
        let nv = 2 * self.k;
        let mut worst = 0;
        for poly in self.a.iter().chain(&self.b).chain(&self.c) {
            for v in 0..nv {
                worst = worst.max(poly.degree_in(v));
            }
        }
        worst
    }

    /// Total number of nonzero coefficient polynomials (reported by E3).
    #[must_use]
    pub fn nonzero_terms(&self) -> usize {
        self.a
            .iter()
            .chain(&self.b)
            .chain(&self.c)
            .filter(|p| !p.is_zero())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;
    use vr_linalg::kernels::{axpy, dot_serial, xpay};

    #[test]
    fn k1_matches_hand_algebra() {
        // k=1: r' = r − λ₁Ap. (r',r') = μ₀ − 2λ₁ν₁ + λ₁²σ₂.
        let d = Derivation::run(1);
        let star = d.star_rr();
        assert_eq!(star.a.len(), 3);
        let nv = 2;
        assert_eq!(star.a[0], MultiPoly::one(nv));
        assert!(star.a[1].is_zero());
        assert!(star.a[2].is_zero());
        assert!(star.b[0].is_zero());
        assert_eq!(star.b[1], MultiPoly::var(nv, 0).scale(-2)); // −2λ₁
        assert!(star.b[2].is_zero());
        assert!(star.c[0].is_zero());
        assert!(star.c[1].is_zero());
        let lam = MultiPoly::var(nv, 0);
        assert_eq!(star.c[2], &lam * &lam); // λ₁²
    }

    #[test]
    fn degree_claim_c3_holds_for_k_up_to_5() {
        for k in 1..=5 {
            let d = Derivation::run(k);
            let rr = d.star_rr();
            let pap = d.star_pap();
            assert!(
                rr.max_degree_per_parameter() <= 2,
                "k={k}: rr degree {}",
                rr.max_degree_per_parameter()
            );
            assert!(
                pap.max_degree_per_parameter() <= 2,
                "k={k}: pap degree {}",
                pap.max_degree_per_parameter()
            );
            // and the bound is TIGHT (quadratic terms do appear)
            assert_eq!(rr.max_degree_per_parameter(), 2, "k={k}");
        }
    }

    #[test]
    fn coefficient_vector_lengths_match_star_relation() {
        for k in 1..=4 {
            let d = Derivation::run(k);
            let rr = d.star_rr();
            assert_eq!(rr.a.len(), 2 * k + 1, "k={k}: paper's i = 0..2k");
            assert_eq!(rr.b.len(), 2 * k + 1);
            assert_eq!(rr.c.len(), 2 * k + 1);
            let pap = d.star_pap();
            assert_eq!(pap.a.len(), 2 * k + 2, "pap reaches order 2k+1");
        }
    }

    /// The centerpiece: run REAL CG for k steps, then check that the
    /// symbolically derived (*) relation reproduces the directly computed
    /// inner products from base-iteration moments.
    #[test]
    fn star_relation_validates_against_real_cg() {
        let a = gen::rand_spd(24, 3, 2.0, 17);
        let n = 24;
        let b = gen::rand_vector(n, 18);

        for k in 1..=4 {
            // run a few CG steps first so the base is a generic iterate
            let mut r = b.clone();
            let mut p = r.clone();
            let mut rr = dot_serial(&r, &r);
            let step = |r: &mut Vec<f64>, p: &mut Vec<f64>, rr: &mut f64| -> (f64, f64) {
                let w = a.spmv(p);
                let pap = dot_serial(p, &w);
                let lambda = *rr / pap;
                axpy(-lambda, &w, r);
                let rr_new = dot_serial(r, r);
                let alpha = rr_new / *rr;
                xpay(r, alpha, p);
                *rr = rr_new;
                (lambda, alpha)
            };
            for _ in 0..2 {
                step(&mut r, &mut p, &mut rr);
            }

            // base moments: μ,ν,σ up to order 2k+1
            let m = 2 * k + 1;
            let moments = |x: &Vec<f64>, y: &Vec<f64>| {
                let mut out = Vec::with_capacity(m + 1);
                let mut aiy = y.clone();
                for _ in 0..=m {
                    out.push(dot_serial(x, &aiy));
                    aiy = a.spmv(&aiy);
                }
                out
            };
            let mu = moments(&r, &r);
            let nu = moments(&r, &p);
            let sigma = moments(&p, &p);

            // advance k real steps, recording parameters
            let (mut lams, mut alfs) = (Vec::new(), Vec::new());
            for _ in 0..k {
                let (l, al) = step(&mut r, &mut p, &mut rr);
                lams.push(l);
                alfs.push(al);
            }
            let rr_direct = dot_serial(&r, &r);
            let w = a.spmv(&p);
            let pap_direct = dot_serial(&p, &w);

            let d = Derivation::run(k);
            let point = d.param_point(&lams, &alfs);
            let rr_star = d.star_rr().eval(&point, &mu, &nu, &sigma);
            let pap_star = d.star_pap().eval(&point, &mu, &nu, &sigma);

            assert!(
                (rr_star - rr_direct).abs() <= 1e-8 * (1.0 + rr_direct.abs()),
                "k={k}: (r,r) star {rr_star} vs direct {rr_direct}"
            );
            assert!(
                (pap_star - pap_direct).abs() <= 1e-8 * (1.0 + pap_direct.abs()),
                "k={k}: (p,Ap) star {pap_star} vs direct {pap_direct}"
            );
        }
    }

    #[test]
    fn param_point_layout() {
        let d = Derivation::run(2);
        let pt = d.param_point(&[0.5, 0.25], &[0.1, 0.2]);
        assert_eq!(pt, vec![0.5, 0.25, 0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k_zero_rejected() {
        let _ = Derivation::run(0);
    }

    #[test]
    fn nonzero_terms_grow_with_k() {
        let n1 = Derivation::run(1).star_rr().nonzero_terms();
        let n3 = Derivation::run(3).star_rr().nonzero_terms();
        assert!(n3 > n1, "{n3} !> {n1}");
    }
}
