//! The moment window `(μ, ν, σ)` and its exact one-step update.
//!
//! For current CG vectors `r`, `p` define
//!
//! ```text
//! μᵢ = (r, Aⁱr)   i = 0..=m
//! νᵢ = (r, Aⁱp)   i = 0..=m+1
//! σᵢ = (p, Aⁱp)   i = 0..=m+2
//! ```
//!
//! One CG step (`r' = r − λAp`, `p' = r' + αp`) maps the window to itself
//! with window order shrinking by top entries — those are replenished by
//! direct inner products from the `Aⁱr` / `Aⁱp` vector families. With
//! `m = 2k` a fresh top entry takes ~k iterations to reach the consumed
//! orders `μ₀, σ₁`: the paper's k-iteration look-ahead slack.
//!
//! All update rules are *exact algebraic identities* using only symmetry
//! of `A` — no CG orthogonality is assumed, so round-off does not break
//! them structurally (it only accumulates).

use vr_linalg::kernels::{dot, DotMode};

/// Scalar moment window of order `m` (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct MomentWindow {
    /// `μᵢ = (r, Aⁱr)`, `i = 0..=m`.
    pub mu: Vec<f64>,
    /// `νᵢ = (r, Aⁱp)`, `i = 0..=m+1`.
    pub nu: Vec<f64>,
    /// `σᵢ = (p, Aⁱp)`, `i = 0..=m+2`.
    pub sigma: Vec<f64>,
}

impl MomentWindow {
    /// Window order `m`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.mu.len() - 1
    }

    /// `(r,r)` — the squared residual norm.
    #[must_use]
    pub fn rr(&self) -> f64 {
        self.mu[0]
    }

    /// `(p,Ap)` — the CG step denominator.
    #[must_use]
    pub fn pap(&self) -> f64 {
        self.sigma[1]
    }

    /// Compute the whole window of order `m` directly from the vector
    /// families `z[i] = Aⁱr` (i ≤ k) and `w[i] = Aⁱp` (i ≤ k+1), using
    /// symmetry `(Aᵃx, Aᵇy) = (x, Aᵃ⁺ᵇy)`. Returns the window and the
    /// number of inner products spent.
    ///
    /// # Panics
    /// Panics if the families are too short for order `m`
    /// (needs `z.len() ≥ ⌈m/2⌉+1` and `w.len() ≥ ⌈(m+2)/2⌉+1`).
    #[must_use]
    pub fn direct(z: &[Vec<f64>], w: &[Vec<f64>], m: usize, md: DotMode) -> (MomentWindow, usize) {
        let mut win = MomentWindow {
            mu: Vec::new(),
            nu: Vec::new(),
            sigma: Vec::new(),
        };
        let spent = win.direct_in(z, w, m, md);
        (win, spent)
    }

    /// [`MomentWindow::direct`] into `self`, reusing its storage
    /// (allocation-free once warm at a fixed order). Returns the number
    /// of inner products spent.
    ///
    /// # Panics
    /// Panics if the families are too short for order `m` (see
    /// [`MomentWindow::direct`]).
    pub fn direct_in(&mut self, z: &[Vec<f64>], w: &[Vec<f64>], m: usize, md: DotMode) -> usize {
        let zmax = z.len() - 1;
        let wmax = w.len() - 1;
        assert!(2 * zmax >= m, "z family too short for order {m}");
        assert!(2 * wmax >= m + 2, "w family too short for order {m}");
        self.mu.clear();
        self.mu.extend((0..=m).map(|i| {
            let a = (i / 2).min(zmax);
            dot(md, &z[a], &z[i - a])
        }));
        self.nu.clear();
        self.nu.extend((0..=m + 1).map(|i| {
            let a = (i / 2).min(zmax);
            dot(md, &z[a], &w[i - a])
        }));
        self.sigma.clear();
        self.sigma.extend((0..=m + 2).map(|i| {
            let a = (i / 2).min(wmax);
            dot(md, &w[a], &w[i - a])
        }));
        (m + 1) + (m + 2) + (m + 3)
    }

    /// First half of a window step: the new μ family after `r' = r − λAp`:
    /// `μᵢ' = μᵢ − 2λ·νᵢ₊₁ + λ²·σᵢ₊₂`.
    ///
    /// Split from [`MomentWindow::finish_step`] because the caller derives
    /// `α = μ₀'/μ₀` between the two halves.
    #[must_use]
    pub fn mu_step(&self, lambda: f64) -> Vec<f64> {
        let mut mu_new = Vec::with_capacity(self.order() + 1);
        self.mu_step_into(lambda, &mut mu_new);
        mu_new
    }

    /// [`MomentWindow::mu_step`] into a caller-owned buffer — the
    /// allocation-free form the solver hot loop uses (bit-identical
    /// values).
    pub fn mu_step_into(&self, lambda: f64, mu_new: &mut Vec<f64>) {
        let m = self.order();
        mu_new.clear();
        mu_new.extend((0..=m).map(|i| {
            self.mu[i] - 2.0 * lambda * self.nu[i + 1] + lambda * lambda * self.sigma[i + 2]
        }));
    }

    /// Second half of a window step, given the new μ family and both
    /// parameters (`p' = r' + αp`):
    ///
    /// ```text
    /// tᵢ  = νᵢ − λ·σᵢ₊₁
    /// νᵢ' = μᵢ' + α·tᵢ
    /// σᵢ' = μᵢ' + 2α·tᵢ + α²·σᵢ
    /// ```
    ///
    /// Leaves the *top* entries `ν'ₘ₊₁, σ'ₘ₊₁, σ'ₘ₊₂` set to `NAN` — the
    /// caller must overwrite them (direct dots or [`MomentWindow::direct`]).
    pub fn finish_step(&mut self, mut mu_new: Vec<f64>, lambda: f64, alpha: f64) {
        self.finish_step_in_place(&mut mu_new, lambda, alpha);
    }

    /// [`MomentWindow::finish_step`] updating `ν`/`σ` in place and
    /// swapping `μ` with the caller's buffer (which receives the old `μ`
    /// as scratch for the next iteration) — allocation-free,
    /// bit-identical values.
    ///
    /// The ascending in-place sweep is exact: position `i` reads only
    /// `ν_i`, `σ_i` (not yet overwritten at step `i`) and `σ_{i+1}` (not
    /// overwritten until step `i+1`).
    pub fn finish_step_in_place(&mut self, mu_new: &mut Vec<f64>, lambda: f64, alpha: f64) {
        let m = self.order();
        assert_eq!(mu_new.len(), m + 1, "mu_new has wrong order");
        for (i, &mu) in mu_new.iter().enumerate() {
            let t = self.nu[i] - lambda * self.sigma[i + 1];
            self.nu[i] = mu + alpha * t;
            self.sigma[i] = mu + 2.0 * alpha * t + alpha * alpha * self.sigma[i];
        }
        // un-replenished top entries: NaN by contract until the caller
        // overwrites them with direct dots
        self.nu[m + 1] = f64::NAN;
        self.sigma[m + 1] = f64::NAN;
        self.sigma[m + 2] = f64::NAN;
        std::mem::swap(&mut self.mu, mu_new);
    }

    /// Scalar operations performed by one full window step (for op
    /// accounting): 5 per μ entry + 7 per ν/σ entry pair.
    #[must_use]
    pub fn step_scalar_ops(&self) -> usize {
        12 * (self.order() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;
    use vr_linalg::kernels::{axpy, xpay};
    use vr_linalg::CsrMatrix;

    fn families(a: &CsrMatrix, r: &[f64], p: &[f64], k: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut z = vec![r.to_vec()];
        for i in 1..=k {
            let next = a.spmv(&z[i - 1]);
            z.push(next);
        }
        let mut w = vec![p.to_vec()];
        for i in 1..=k + 1 {
            let next = a.spmv(&w[i - 1]);
            w.push(next);
        }
        (z, w)
    }

    #[test]
    fn direct_window_matches_definition() {
        let a = gen::rand_spd(18, 3, 2.0, 31);
        let r = gen::rand_vector(18, 32);
        let p = gen::rand_vector(18, 33);
        let k = 2;
        let (z, w) = families(&a, &r, &p, k);
        let (win, spent) = MomentWindow::direct(&z, &w, 2 * k, DotMode::Serial);
        assert_eq!(spent, (2 * k + 1) + (2 * k + 2) + (2 * k + 3));
        // brute-force check: μ_i = (r, A^i r) etc.
        let mut air = r.clone();
        for i in 0..=2 * k {
            let expect = vr_linalg::kernels::dot_serial(&r, &air);
            assert!(
                (win.mu[i] - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                "mu[{i}]: {} vs {expect}",
                win.mu[i]
            );
            air = a.spmv(&air);
        }
        let mut aip = p.clone();
        for i in 0..=2 * k + 2 {
            let expect_sigma = vr_linalg::kernels::dot_serial(&p, &aip);
            assert!(
                (win.sigma[i] - expect_sigma).abs() <= 1e-9 * (1.0 + expect_sigma.abs()),
                "sigma[{i}]"
            );
            if i <= 2 * k + 1 {
                let expect_nu = vr_linalg::kernels::dot_serial(&r, &aip);
                assert!(
                    (win.nu[i] - expect_nu).abs() <= 1e-9 * (1.0 + expect_nu.abs()),
                    "nu[{i}]"
                );
            }
            aip = a.spmv(&aip);
        }
    }

    #[test]
    fn window_step_matches_recomputation() {
        // Advance the window by the recurrences; rebuild it directly from
        // the stepped vectors; the overlapping orders must agree.
        let a = gen::rand_spd(20, 3, 2.0, 41);
        let mut r = gen::rand_vector(20, 42);
        let mut p = r.clone();
        let k = 2;
        let m = 2 * k;
        for step in 0..5 {
            let (z, w) = families(&a, &r, &p, k);
            let (mut win, _) = MomentWindow::direct(&z, &w, m, DotMode::Serial);
            let lambda = win.rr() / win.pap();
            let mu_new = win.mu_step(lambda);
            let alpha = mu_new[0] / win.rr();
            win.finish_step(mu_new, lambda, alpha);

            // actually step the vectors
            let w1 = a.spmv(&p);
            axpy(-lambda, &w1, &mut r);
            xpay(&r, alpha, &mut p);

            let (z2, w2) = families(&a, &r, &p, k);
            let (win2, _) = MomentWindow::direct(&z2, &w2, m, DotMode::Serial);
            for i in 0..=m {
                assert!(
                    (win.mu[i] - win2.mu[i]).abs() <= 1e-7 * (1.0 + win2.mu[i].abs()),
                    "step {step} mu[{i}]: {} vs {}",
                    win.mu[i],
                    win2.mu[i]
                );
                assert!(
                    (win.nu[i] - win2.nu[i]).abs() <= 1e-7 * (1.0 + win2.nu[i].abs()),
                    "step {step} nu[{i}]"
                );
                assert!(
                    (win.sigma[i] - win2.sigma[i]).abs() <= 1e-7 * (1.0 + win2.sigma[i].abs()),
                    "step {step} sigma[{i}]"
                );
            }
            // the un-replenished top entries are NaN by contract
            assert!(win.nu[m + 1].is_nan());
            assert!(win.sigma[m + 1].is_nan());
            assert!(win.sigma[m + 2].is_nan());
        }
    }

    #[test]
    fn accessors() {
        let win = MomentWindow {
            mu: vec![4.0, 1.0, 1.0],
            nu: vec![0.0; 4],
            sigma: vec![0.0, 2.0, 0.0, 0.0, 0.0],
        };
        assert_eq!(win.order(), 2);
        assert_eq!(win.rr(), 4.0);
        assert_eq!(win.pap(), 2.0);
        assert_eq!(win.step_scalar_ops(), 36);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn direct_rejects_short_families() {
        let z = vec![vec![1.0, 2.0]];
        let w = vec![vec![1.0, 2.0], vec![0.5, 0.5]];
        let _ = MomentWindow::direct(&z, &w, 4, DotMode::Serial);
    }
}
