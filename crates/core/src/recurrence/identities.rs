//! The §3 closed-form recurrence identities, including the OCR correction.
//!
//! With `r⁺ = r − λ·w`, `w = A·p`:
//!
//! * **General identity** (pure algebra, no CG assumptions):
//!   `(r⁺,r⁺) = (r,r) − 2λ(r,w) + λ²(w,w)` — [`rr_general`].
//! * **CG-orthogonality form**: inside a CG iteration
//!   `(r,Ap) = (p,Ap)` and `λ = (r,r)/(p,Ap)`, so the identity collapses to
//!   `(r⁺,r⁺) = λ²(w,w) − (r,r)` — [`rr_cg_form`].
//!
//! The NASA scan of the paper prints the collapsed form as
//! `(r⁺,r⁺) = (r,r) + λ²(Ap,Ap)`, with the sign of the first term lost to
//! OCR. The tests in this module demonstrate numerically that the corrected
//! sign is the right one (and that the printed form is not an identity).

/// General residual-norm recurrence: `(r,r) − 2λ(r,w) + λ²(w,w)`.
#[must_use]
pub fn rr_general(rr: f64, rw: f64, ww: f64, lambda: f64) -> f64 {
    rr - 2.0 * lambda * rw + lambda * lambda * ww
}

/// CG-collapsed residual-norm recurrence: `λ²(w,w) − (r,r)`.
///
/// Valid only when `λ` is the exact CG step and `(r,Ap) = (p,Ap)` holds
/// (i.e. within an exact CG iteration).
#[must_use]
pub fn rr_cg_form(rr: f64, ww: f64, lambda: f64) -> f64 {
    lambda * lambda * ww - rr
}

/// The formula as printed in the OCR'd scan: `(r,r) + λ²(Ap,Ap)`.
/// Kept only so the tests can demonstrate it is NOT an identity.
#[must_use]
pub fn rr_ocr_printed(rr: f64, ww: f64, lambda: f64) -> f64 {
    rr + lambda * lambda * ww
}

/// Direction-norm recurrence: with `p⁺ = r⁺ + α·p`,
/// `(p⁺,Ap⁺) = (r⁺,Ar⁺) + 2α·(r⁺,Ap) + α²·(p,Ap)` where
/// `(r⁺,Ap) = (r,Ap) − λ(Ap,Ap)`.
#[must_use]
pub fn pap_general(rar_next: f64, rw: f64, ww: f64, pap: f64, lambda: f64, alpha: f64) -> f64 {
    let rnext_w = rw - lambda * ww;
    rar_next + 2.0 * alpha * rnext_w + alpha * alpha * pap
}

/// `(r⁺, A·r⁺)` recurrence: `(r,Ar) − 2λ(r,A²p) + λ²(Ap,A²p)`.
#[must_use]
pub fn rar_general(rar: f64, rv: f64, wv: f64, lambda: f64) -> f64 {
    rar - 2.0 * lambda * rv + lambda * lambda * wv
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_linalg::gen;
    use vr_linalg::kernels::{axpy, dot_serial, xpay};

    /// Drive real CG steps and check every identity at every iteration.
    #[test]
    fn k1_residual_norm_identity() {
        let a = gen::poisson2d(8);
        let n = a.nrows();
        let b = gen::rand_vector(n, 13);
        let mut r = b.clone();
        let mut p = r.clone();
        for it in 0..15 {
            let w = a.spmv(&p);
            let v = a.spmv(&w);
            let rr = dot_serial(&r, &r);
            let rw = dot_serial(&r, &w);
            let ww = dot_serial(&w, &w);
            let rv = dot_serial(&r, &v);
            let wv = dot_serial(&w, &v);
            let rar = dot_serial(&r, &a.spmv(&r));
            let pap = dot_serial(&p, &w);
            let lambda = rr / pap;

            // take the step
            axpy(-lambda, &w, &mut r);
            let rr_direct = dot_serial(&r, &r);

            // general identity: exact to round-off, no CG assumptions
            let rr_rec = rr_general(rr, rw, ww, lambda);
            assert!(
                (rr_rec - rr_direct).abs() <= 1e-10 * (1.0 + rr_direct),
                "iter {it}: general {rr_rec} vs direct {rr_direct}"
            );

            // CG-collapsed form: also an identity along the CG trajectory
            let rr_cg = rr_cg_form(rr, ww, lambda);
            assert!(
                (rr_cg - rr_direct).abs() <= 1e-8 * (1.0 + rr_direct),
                "iter {it}: cg-form {rr_cg} vs direct {rr_direct}"
            );

            // the OCR-printed form is NOT an identity (always too large by
            // 2·(r,r))
            let rr_bad = rr_ocr_printed(rr, ww, lambda);
            assert!(
                (rr_bad - rr_direct).abs() > 0.5 * rr,
                "iter {it}: OCR form unexpectedly matched"
            );

            // rar + pap identities
            let rar_rec = rar_general(rar, rv, wv, lambda);
            let rar_direct = dot_serial(&r, &a.spmv(&r));
            assert!(
                (rar_rec - rar_direct).abs() <= 1e-9 * (1.0 + rar_direct.abs()),
                "iter {it}: rar {rar_rec} vs {rar_direct}"
            );

            let alpha = rr_direct / rr;
            let pap_rec = pap_general(rar_rec, rw, ww, pap, lambda, alpha);
            xpay(&r, alpha, &mut p);
            let pap_direct = dot_serial(&p, &a.spmv(&p));
            assert!(
                (pap_rec - pap_direct).abs() <= 1e-9 * (1.0 + pap_direct.abs()),
                "iter {it}: pap {pap_rec} vs {pap_direct}"
            );
        }
    }

    #[test]
    fn general_identity_holds_off_trajectory() {
        // rr_general is pure algebra: it must hold for ARBITRARY lambda,
        // not just the CG step (unlike the collapsed form).
        let a = gen::rand_spd(20, 3, 1.5, 3);
        let r = gen::rand_vector(20, 4);
        let p = gen::rand_vector(20, 5);
        let w = a.spmv(&p);
        for &lambda in &[0.1, -0.7, 2.5] {
            let mut r2 = r.clone();
            axpy(-lambda, &w, &mut r2);
            let direct = dot_serial(&r2, &r2);
            let rec = rr_general(
                dot_serial(&r, &r),
                dot_serial(&r, &w),
                dot_serial(&w, &w),
                lambda,
            );
            assert!((rec - direct).abs() <= 1e-10 * (1.0 + direct));
            // collapsed form does NOT hold off-trajectory
            let collapsed = rr_cg_form(dot_serial(&r, &r), dot_serial(&w, &w), lambda);
            assert!((collapsed - direct).abs() > 1e-6);
        }
    }
}
