//! JSON value tree, serializer, and parser.
//!
//! This module is the one JSON implementation in the workspace (the build
//! must work fully offline, so no external serialization framework). It
//! started life in `vr_bench::json` as a write-only pretty printer for
//! experiment results; the solve service promoted it here — the lowest
//! leaf crate — because the wire protocol and the routing table need to
//! *read* JSON too, and both `vr-svc` and `vr-bench` must share one value
//! type without a dependency cycle. `vr_bench::json` re-exports everything
//! here, so experiment binaries are unchanged.
//!
//! The parser is a recursive-descent reader of the full JSON grammar
//! (objects, arrays, strings with escapes incl. surrogate pairs, numbers,
//! literals) with a depth limit. Numbers without a fraction or exponent
//! that fit `i64` parse as [`Json::Int`]; everything else as
//! [`Json::Num`] via `f64::from_str`, which is correctly rounded — a
//! float serialized by [`Json::pretty`] (shortest round-trip `{:?}`
//! formatting) parses back to the *same bits*, the property the streamed
//! convergence events rely on.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (kept exact, no float round-trip).
    Int(i64),
    /// Floating point number. Non-finite values render as `null`, matching
    /// the common JSON-encoder convention.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render with two-space indentation and a trailing newline-free body.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Render on one line with no indentation — the wire format for
    /// newline-delimited JSON (one message per line, so the body must not
    /// contain raw newlines).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        let (pad, pad_in, nl, sp): (String, String, &str, &str) = if pretty {
            ("  ".repeat(indent), "  ".repeat(indent + 1), "\n", " ")
        } else {
            (String::new(), String::new(), "", "")
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                out.push_str(nl);
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1, pretty);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push_str(nl);
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                out.push_str(nl);
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    out.push_str(sp);
                    v.write(out, indent + 1, pretty);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push_str(nl);
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    // ------------------------------------------------ reader conveniences

    /// Object field lookup (first match; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only — floats do not coerce).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64` ([`Json::Int`] widens losslessly up to 2⁵³;
    /// JSON writers for measured quantities emit `Num` anyway).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            #[allow(clippy::cast_precision_loss)]
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

/// Where and why a parse failed (byte offset into the input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth cap: deeper documents are rejected instead of risking a
/// stack overflow on hostile input (the wire format accepts bytes from
/// arbitrary clients).
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (exactly one value plus whitespace).
///
/// # Errors
/// Returns a [`ParseError`] with a byte offset on malformed input,
/// trailing garbage, or nesting deeper than 128 levels.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: the low half must follow
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one short of the convention
                            // below: it consumed its digits itself
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8 sequences pass through unescaped;
                    // re-decode from the source slice
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    if c == '\u{0}' {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

// ------------------------------------------------------------------ ToJson

/// Conversion into a [`Json`] value (the role a `Serialize` derive would
/// play; records implement it via [`crate::jsonable!`]).
pub trait ToJson {
    /// Convert to a JSON value tree.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

/// Build a [`Json`] object literal: `json!({ "rows": rows, "slope": s })`.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::json::Json::Obj(vec![
            $( (($key).to_string(), $crate::json::ToJson::to_json(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::json::Json::Arr(vec![
            $( $crate::json::ToJson::to_json(&$val) ),*
        ])
    };
    ($val:expr) => {
        $crate::json::ToJson::to_json(&$val)
    };
}

/// Define a struct together with a field-by-field [`ToJson`] impl (the
/// stand-in for `#[derive(Serialize)]` on experiment row records).
#[macro_export]
macro_rules! jsonable {
    ( $(#[$meta:meta])* $vis:vis struct $name:ident {
        $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ty:ty ),* $(,)?
    } ) => {
        $(#[$meta])*
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ty ),*
        }
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field)) ),*
                ])
            }
        }
    };
}

// -------------------------------------------------- phase-report events

/// Render a critical-path [`crate::Report`] as a JSON object — the event
/// payload the solve service streams to clients and the section the
/// experiment binaries embed in their envelopes.
///
/// Layout: `iterations` (count), `dropped_spans`, `total_bytes` (logical
/// traffic summed over every span that accounted it), `totals` (phase ns
/// and shares over all iterations), `per_iter` (one phases object per
/// iteration window), and `span_kinds` (count / mean / p50 / p99 / max /
/// bytes per recorded span kind, all shards — kinds never recorded are
/// omitted).
#[must_use]
pub fn report_json(report: &crate::Report) -> Json {
    let per_iter: Vec<Json> = report
        .iters
        .iter()
        .map(|it| {
            let mut obj = vec![("iter".to_string(), Json::Int(it.iter as i64))];
            if let Json::Obj(pairs) = phases_json(&it.phases) {
                obj.extend(pairs);
            }
            Json::Obj(obj)
        })
        .collect();

    let kinds: Vec<Json> = crate::span::ALL_KINDS
        .iter()
        .filter(|k| report.hist(**k).total() > 0)
        .map(|k| {
            let h = report.hist(*k);
            crate::json!({
                "kind": k.name(),
                "count": h.total(),
                "mean_ns": h.mean_ns(),
                "p50_upper_ns": h.quantile_upper_ns(0.5),
                "p99_upper_ns": h.quantile_upper_ns(0.99),
                "max_ns": h.max_ns(),
                "bytes": Json::Int(report.bytes(*k) as i64),
            })
        })
        .collect();

    crate::json!({
        "iterations": report.iters.len(),
        "dropped_spans": report.dropped,
        "total_bytes": Json::Int(report.total_bytes() as i64),
        "totals": phases_json(&report.totals),
        "per_iter": Json::Arr(per_iter),
        "span_kinds": Json::Arr(kinds),
    })
}

fn phases_json(p: &crate::Phases) -> Json {
    use crate::PhaseClass;
    crate::json!({
        "reduction_wait_ns": p.reduction_wait_ns,
        "matvec_ns": p.matvec_ns,
        "vector_ns": p.vector_ns,
        "overhead_ns": p.overhead_ns,
        "total_ns": p.total_ns,
        "reduction_wait_share": p.share(PhaseClass::ReductionWait),
        "matvec_share": p.share(PhaseClass::Matvec),
        "vector_share": p.share(PhaseClass::Vector),
        "overhead_share": p.share(PhaseClass::Overhead),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
        assert_eq!(Json::Str("a\"b".into()).pretty(), "\"a\\\"b\"");
    }

    #[test]
    fn object_and_array_layout() {
        let v = crate::json!({ "xs": vec![1u32, 2], "name": "t" });
        let s = v.pretty();
        assert!(s.starts_with("{\n"), "{s}");
        assert!(s.contains("\"xs\": [\n"), "{s}");
        assert!(s.contains("\"name\": \"t\""), "{s}");
        assert!(s.ends_with('}'), "{s}");
    }

    #[test]
    fn compact_is_single_line_and_parses_back() {
        let v = crate::json!({ "xs": vec![1u32, 2], "s": "a\nb", "f": 0.25 });
        let line = v.compact();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn jsonable_struct_round_trips_fields() {
        crate::jsonable! {
            struct Row {
                n: usize,
                err: f64,
                tag: String,
            }
        }
        let r = Row {
            n: 4,
            err: 0.25,
            tag: "x".into(),
        };
        let s = r.to_json().pretty();
        assert!(s.contains("\"n\": 4"), "{s}");
        assert!(s.contains("\"err\": 0.25"), "{s}");
        assert!(s.contains("\"tag\": \"x\""), "{s}");
    }

    #[test]
    fn float_formatting_round_trips() {
        // {:?} keeps the shortest representation that parses back exactly
        let s = Json::Num(1e-10).pretty();
        assert_eq!(s.parse::<f64>().unwrap(), 1e-10, "{s}");
        assert_eq!(Json::Num(2.0).pretty(), "2.0");
    }

    #[test]
    fn control_chars_escaped() {
        let s = Json::Str("a\nb\u{1}".into()).pretty();
        assert_eq!(s, "\"a\\nb\\u0001\"");
    }

    // ------------------------------------------------------- parser tests

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("-2.5e-2").unwrap(), Json::Num(-0.025));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_containers_and_nesting() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}, "d": []}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("d").unwrap(), &Json::Arr(vec![]));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\A""#).unwrap(),
            Json::Str("a\n\t\"\\A".into())
        );
        // surrogate pair: U+1F600
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
        // raw multi-byte UTF-8 passes through
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.",
            "1e",
            "\"unterminated",
            "[1] garbage",
            "01x",
            r#""\ud83d""#,
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_hostile_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"), "{err}");
    }

    #[test]
    fn pretty_output_round_trips_bit_exact() {
        let v = crate::json!({
            "f": 8.825881496423853e-9,
            "g": 1.0065275824648756,
            "i": -3_i64,
            "nested": crate::json!([0.1, 0.2, 1e300]),
        });
        let back = parse(&v.pretty()).unwrap();
        assert_eq!(back, v);
        // the bit-exactness the streamed events rely on
        let f = back.get("f").unwrap().as_f64().unwrap();
        assert_eq!(f.to_bits(), 8.825881496423853e-9_f64.to_bits());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = parse(r#"{"s": "x", "n": 1.5, "i": 2, "b": true}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("n").unwrap().as_i64(), None);
        assert_eq!(v.get("i").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.as_str(), None, "object is not a string");
    }

    #[test]
    fn report_round_trips_to_json() {
        use crate::{SpanKind, Tracer};
        let t = Tracer::new(1, 256);
        for _ in 0..2 {
            t.mark(0, SpanKind::IterMark);
            let s = t.now_ns();
            std::hint::black_box((0..500).sum::<u64>());
            t.record_since(0, SpanKind::Matvec, s);
            let s = t.now_ns();
            t.record_since(0, SpanKind::DotWait, s);
        }
        let rep = crate::critpath::attribute(&t.drain());
        let j = report_json(&rep).pretty();
        assert!(j.contains("\"iterations\": 2"), "{j}");
        assert!(j.contains("\"reduction_wait_share\""), "{j}");
        // serialized report is itself valid JSON
        assert!(parse(&j).is_ok());
    }
}
