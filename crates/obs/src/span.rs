//! The solver event taxonomy: span kinds, phase classes, span records.

/// What a span measures. The taxonomy is solver-specific by design — the
/// aggregator and the e19 bench reason about CG phases, not generic labels.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A matrix–vector product sweep (`apply` / `apply_team`).
    Matvec = 0,
    /// A blocked matrix-powers basis build (the whole `matrix_powers` call,
    /// caller side).
    MpkBuild = 1,
    /// A vector operation: axpy / xpay / a fused update sweep (including
    /// any dot partials it folds — the sweep is useful work either way).
    VectorOp = 2,
    /// The leaf sweep of a *deferred* reduction (`par_dot_partials_in` /
    /// `par_dot2_partials_in`): overlappable products, not a wait.
    DotLaunch = 3,
    /// An *eager* standalone inner product — leaf sweep plus tree fan-in.
    /// The caller consumes the scalar immediately, so the entire call is
    /// dependency-gated.
    DotWait = 4,
    /// A tree fan-in consuming partials that a fused sweep already folded.
    /// Only the combine gates; the producing sweep was vector work.
    DotFanIn = 5,
    /// `PendingScalar::wait` at the consume point of a deferred reduction.
    DeferredWait = 6,
    /// The scalar recurrence block of an iteration (the (*) coefficients).
    ScalarOp = 7,
    /// A residual-guard inspection / true-residual recomputation.
    Guard = 8,
    /// A breakdown-recovery action (restart, k-backoff step).
    Recovery = 9,
    /// One team barrier epoch (`Team::try_run`): recorded on the caller's
    /// shard via TLS, and — when a tracer is attached to the team — on
    /// every worker's own shard slot, so per-shard busy/idle windows are
    /// measurable. Nested inside solver-level spans; auxiliary detail, not
    /// attributed.
    TeamEpoch = 10,
    /// One MPK tile sweep on one shard (worker-side detail of `MpkBuild`).
    MpkTile = 11,
    /// Instant marker on shard 0 delimiting solver iterations.
    IterMark = 12,
    /// A `CheckpointRing` snapshot: copying minimal solver state into
    /// preallocated scratch every C iterations.
    Checkpoint = 13,
    /// The caller running a shard failed over from a dead worker
    /// (deterministic re-shard onto survivors).
    Reshard = 14,
    /// An epoch-timeout health check: the caller inspecting per-worker
    /// heartbeat counters for stragglers or dead workers.
    HealthCheck = 15,
    /// One whole-iteration fused sweep epoch (`SweepPolicy::WholeIteration`)
    /// on one shard: matvec staging, dot partials, and vector updates in a
    /// single cache-resident pass over the shard's chunks.
    IterSweep = 16,
}

/// Every kind, in discriminant order (index with `kind as usize`).
pub const ALL_KINDS: [SpanKind; 17] = [
    SpanKind::Matvec,
    SpanKind::MpkBuild,
    SpanKind::VectorOp,
    SpanKind::DotLaunch,
    SpanKind::DotWait,
    SpanKind::DotFanIn,
    SpanKind::DeferredWait,
    SpanKind::ScalarOp,
    SpanKind::Guard,
    SpanKind::Recovery,
    SpanKind::TeamEpoch,
    SpanKind::MpkTile,
    SpanKind::IterMark,
    SpanKind::Checkpoint,
    SpanKind::Reshard,
    SpanKind::HealthCheck,
    SpanKind::IterSweep,
];

/// The four buckets of the per-iteration critical-path attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseClass {
    /// Time the iteration is dependency-gated on a reduction result.
    ReductionWait,
    /// Matrix–vector product / basis-build time.
    Matvec,
    /// Overlappable vector work (axpy/xpay/fused sweeps, dot leaf sweeps).
    Vector,
    /// Everything else: scalar recurrences, guards, recovery, loop glue.
    Overhead,
}

impl SpanKind {
    /// Stable lowercase name (used by both exporters).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Matvec => "matvec",
            SpanKind::MpkBuild => "mpk_build",
            SpanKind::VectorOp => "vector_op",
            SpanKind::DotLaunch => "dot_launch",
            SpanKind::DotWait => "dot_wait",
            SpanKind::DotFanIn => "dot_fanin",
            SpanKind::DeferredWait => "deferred_wait",
            SpanKind::ScalarOp => "scalar_op",
            SpanKind::Guard => "guard",
            SpanKind::Recovery => "recovery",
            SpanKind::TeamEpoch => "team_epoch",
            SpanKind::MpkTile => "mpk_tile",
            SpanKind::IterMark => "iter",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Reshard => "reshard",
            SpanKind::HealthCheck => "health_check",
            SpanKind::IterSweep => "iter_sweep",
        }
    }

    /// Critical-path class, or `None` for auxiliary detail spans
    /// (`TeamEpoch`, `MpkTile`) that nest inside attributed spans and for
    /// the `IterMark` boundary markers.
    #[must_use]
    pub fn phase(self) -> Option<PhaseClass> {
        match self {
            SpanKind::Matvec | SpanKind::MpkBuild => Some(PhaseClass::Matvec),
            SpanKind::VectorOp | SpanKind::DotLaunch | SpanKind::IterSweep => {
                Some(PhaseClass::Vector)
            }
            SpanKind::DotWait | SpanKind::DotFanIn | SpanKind::DeferredWait => {
                Some(PhaseClass::ReductionWait)
            }
            SpanKind::ScalarOp
            | SpanKind::Guard
            | SpanKind::Recovery
            | SpanKind::Checkpoint
            | SpanKind::Reshard
            | SpanKind::HealthCheck => Some(PhaseClass::Overhead),
            SpanKind::TeamEpoch | SpanKind::MpkTile | SpanKind::IterMark => None,
        }
    }
}

/// One recorded span: fixed-size, `Copy`, 32 bytes — ring buffers of these
/// are preallocated so recording never touches the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start, nanoseconds since the tracer's clock origin.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer's clock origin. Equal to
    /// `start_ns` for instant events (`IterMark`).
    pub end_ns: u64,
    /// Logical bytes the measured operation moved through memory: elements
    /// accessed × element width, counting a read-modify-write stream twice.
    /// 0 when the recording site does not account traffic. This is the
    /// *algorithmic* traffic (what a perfect cache would move), so mixed
    /// f32 sweeps report half the bytes of their f64 twins — the quantity
    /// the E22 bandwidth accounting compares against measured time.
    pub bytes: u64,
    /// What this span measures.
    pub kind: SpanKind,
}

impl Span {
    /// Duration in nanoseconds (0 for instant events).
    #[must_use]
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_index_all_kinds() {
        for (i, k) in ALL_KINDS.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
    }

    #[test]
    fn every_kind_classifies_or_is_auxiliary() {
        for k in ALL_KINDS {
            match k {
                SpanKind::TeamEpoch | SpanKind::MpkTile | SpanKind::IterMark => {
                    assert!(k.phase().is_none());
                }
                _ => assert!(k.phase().is_some()),
            }
        }
    }

    #[test]
    fn reduction_wait_is_exactly_the_gated_kinds() {
        let gated: Vec<SpanKind> = ALL_KINDS
            .into_iter()
            .filter(|k| k.phase() == Some(PhaseClass::ReductionWait))
            .collect();
        assert_eq!(
            gated,
            vec![
                SpanKind::DotWait,
                SpanKind::DotFanIn,
                SpanKind::DeferredWait
            ]
        );
    }
}
