//! Thread-local tracer attachment.
//!
//! Deep callees — a team barrier epoch in `vr_par::team::Team::try_run`, a
//! `PendingScalar::wait` fan-in — sit below every kernel signature in the
//! workspace; threading a tracer handle through them would churn every
//! caller. Instead the solver thread *attaches* `(tracer, shard)` to a
//! thread-local for the duration of a solve, and leaf sites call
//! [`with_span`], which costs one thread-local read and a branch when
//! nothing is attached.

use crate::span::SpanKind;
use crate::tracer::Tracer;
use std::cell::Cell;
use std::ptr::NonNull;

thread_local! {
    static CURRENT: Cell<Option<(NonNull<Tracer>, usize)>> = const { Cell::new(None) };
}

/// Restores the previous attachment (usually `None`) on drop.
///
/// Not `Send`: the attachment is a property of the attaching thread.
#[derive(Debug)]
pub struct AttachGuard {
    prev: Option<(NonNull<Tracer>, usize)>,
    // !Send + !Sync: must drop on the attaching thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Attach `tracer` to the current thread as `shard` until the returned
/// guard drops. Nested attachments stack (the guard restores the previous
/// one).
///
/// # Safety
///
/// The caller must keep `tracer` alive — and keep the returned guard —
/// until the guard is dropped, and must not leak the guard (e.g. via
/// `mem::forget`): the thread-local holds a raw pointer that [`with_span`]
/// dereferences. Holding the tracer in an `Arc` owned by the solve options
/// for the full solve, with the guard a stack local of the solve, upholds
/// this.
#[must_use]
pub unsafe fn attach(tracer: &Tracer, shard: usize) -> AttachGuard {
    let prev = CURRENT.with(|c| c.replace(Some((NonNull::from(tracer), shard))));
    AttachGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// True if a tracer is attached to the current thread.
#[must_use]
pub fn is_attached() -> bool {
    CURRENT.with(|c| c.get().is_some())
}

/// Run `f`, recording it as a `kind` span on the attached tracer (if any).
///
/// Detached: one thread-local read, one branch, then `f` — no timestamps.
#[inline]
pub fn with_span<R>(kind: SpanKind, f: impl FnOnce() -> R) -> R {
    with_span_bytes(kind, 0, f)
}

/// [`with_span`] carrying a logical-traffic byte count (see
/// [`crate::span::Span::bytes`]). Detached, `bytes` is simply dropped.
#[inline]
pub fn with_span_bytes<R>(kind: SpanKind, bytes: u64, f: impl FnOnce() -> R) -> R {
    match CURRENT.with(|c| c.get()) {
        None => f(),
        Some((tracer, shard)) => {
            // SAFETY: `attach` contract — the pointer outlives the
            // attachment window we are inside.
            let tracer = unsafe { tracer.as_ref() };
            let start = tracer.now_ns();
            let r = f();
            tracer.record_since_bytes(shard, kind, start, bytes);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_runs_plain() {
        assert!(!is_attached());
        assert_eq!(with_span(SpanKind::TeamEpoch, || 7), 7);
    }

    #[test]
    fn attach_records_and_restores() {
        let t = Tracer::new(1, 16);
        {
            let _g = unsafe { attach(&t, 0) };
            assert!(is_attached());
            assert_eq!(with_span(SpanKind::DeferredWait, || 3), 3);
            {
                // nested attachment shadows, then restores
                let t2 = Tracer::new(1, 16);
                let _g2 = unsafe { attach(&t2, 0) };
                with_span(SpanKind::TeamEpoch, || ());
                assert_eq!(t2.drain().spans.len(), 1);
            }
            assert!(is_attached());
        }
        assert!(!is_attached());
        let log = t.drain();
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.spans[0].1.kind, SpanKind::DeferredWait);
    }

    #[test]
    fn attachment_is_per_thread() {
        let t = Tracer::new(1, 16);
        let _g = unsafe { attach(&t, 0) };
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!is_attached());
            });
        });
        assert!(is_attached());
    }
}
