//! The per-shard ring-buffer span recorder.
//!
//! ## Soundness of `&self` recording
//!
//! A [`Tracer`] owns one slot per shard, each an `UnsafeCell<ShardLog>`.
//! The recording API takes `&self` so a single `Arc<Tracer>` can be shared
//! by the solver thread and the team's workers, but mutation is safe only
//! under the *shard-exclusivity* discipline the SPMD runtime already
//! guarantees:
//!
//! * shard `w` records **only** into slot `w` (the solver thread is shard
//!   0; `vr_par::team` workers are shards `1..width`);
//! * team epochs are serialized by the team's run lock, so a slot is never
//!   written from two threads at once;
//! * [`Tracer::drain`] is called only after the traced solve has returned
//!   (all epochs quiesced — the barrier in `Team::try_run` is a
//!   happens-before edge between worker writes and the caller).
//!
//! All integration sites in this workspace uphold the discipline by
//! construction. Violating it from outside (e.g. two threads recording to
//! the same shard) is a logic error that can corrupt *span data* (torn
//! records), never memory safety of anything but the preallocated `Span`
//! buffers — `Span` is `Copy` with no invariants.

use crate::clock::Clock;
use crate::span::{Span, SpanKind};
use std::cell::UnsafeCell;

/// Default ring capacity per shard (spans). 32 bytes/span → ~2 MiB per
/// shard; ~20 spans/iteration means room for ~3000 iterations before the
/// ring wraps.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

struct ShardLog {
    buf: Box<[Span]>,
    /// Total spans pushed (monotone; `pushed - cap` of them were dropped
    /// once the ring wraps).
    pushed: u64,
}

/// One slot per shard; see the module docs for the exclusivity contract.
struct ShardSlot(UnsafeCell<ShardLog>);

// SAFETY: slots are accessed under the shard-exclusivity discipline
// documented above; the contained data is plain `Copy` records.
unsafe impl Sync for ShardSlot {}

/// A lock-free multi-shard span recorder.
///
/// Construction preallocates every ring; recording never allocates and
/// performs no atomic operations.
pub struct Tracer {
    clock: Clock,
    slots: Box<[ShardSlot]>,
}

/// A drained trace: spans tagged with their shard, sorted by start time.
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// `(shard, span)` pairs sorted by `span.start_ns`.
    pub spans: Vec<(usize, Span)>,
    /// Spans lost to ring wrap-around, summed over shards.
    pub dropped: u64,
}

impl Tracer {
    /// A tracer with `shards` slots of `capacity` spans each.
    ///
    /// `shards` and `capacity` are clamped to at least 1. Records to shard
    /// indices `>= shards` are silently ignored (a team wider than the
    /// tracer loses worker detail, never correctness).
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        let slots = (0..shards)
            .map(|_| {
                ShardSlot(UnsafeCell::new(ShardLog {
                    buf: vec![
                        Span {
                            start_ns: 0,
                            end_ns: 0,
                            bytes: 0,
                            kind: SpanKind::IterMark,
                        };
                        capacity
                    ]
                    .into_boxed_slice(),
                    pushed: 0,
                }))
            })
            .collect();
        Tracer {
            clock: Clock::new(),
            slots,
        }
    }

    /// A tracer sized for a `width`-wide team with the default capacity.
    #[must_use]
    pub fn for_width(width: usize) -> Self {
        Tracer::new(width, DEFAULT_CAPACITY)
    }

    /// The tracer's clock (share it: timestamps must have one origin).
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Nanoseconds since the tracer's origin.
    #[inline]
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Number of shard slots.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Record a span with explicit endpoints into `shard`'s ring.
    ///
    /// Hot path: one bounds check, a modulo, two stores. Out-of-range
    /// shards are ignored.
    #[inline]
    pub fn record_span(&self, shard: usize, kind: SpanKind, start_ns: u64, end_ns: u64) {
        self.record_span_bytes(shard, kind, start_ns, end_ns, 0);
    }

    /// [`Tracer::record_span`] carrying a logical-traffic byte count (see
    /// [`Span::bytes`]).
    #[inline]
    pub fn record_span_bytes(
        &self,
        shard: usize,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        bytes: u64,
    ) {
        let Some(slot) = self.slots.get(shard) else {
            return;
        };
        // SAFETY: shard exclusivity (module docs) — this thread is the only
        // writer of `slot` right now, and no drain is concurrent.
        unsafe {
            let log = &mut *slot.0.get();
            let cap = log.buf.len();
            let i = (log.pushed % cap as u64) as usize;
            log.buf[i] = Span {
                start_ns,
                end_ns,
                bytes,
                kind,
            };
            log.pushed += 1;
        }
    }

    /// Record a span that started at `start_ns` and ends now.
    #[inline]
    pub fn record_since(&self, shard: usize, kind: SpanKind, start_ns: u64) {
        let end = self.now_ns();
        self.record_span(shard, kind, start_ns, end);
    }

    /// [`Tracer::record_since`] carrying a logical-traffic byte count.
    #[inline]
    pub fn record_since_bytes(&self, shard: usize, kind: SpanKind, start_ns: u64, bytes: u64) {
        let end = self.now_ns();
        self.record_span_bytes(shard, kind, start_ns, end, bytes);
    }

    /// Record an instant event (zero duration) at the current time.
    #[inline]
    pub fn mark(&self, shard: usize, kind: SpanKind) {
        let t = self.now_ns();
        self.record_span(shard, kind, t, t);
    }

    /// Copy out every recorded span (sorted by start time) and reset the
    /// rings.
    ///
    /// Call only at quiescence — after the traced solve has returned and
    /// its team has completed its last epoch (see the module docs).
    #[must_use]
    pub fn drain(&self) -> TraceLog {
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        for (shard, slot) in self.slots.iter().enumerate() {
            // SAFETY: quiescence — no thread is recording (caller contract).
            unsafe {
                let log = &mut *slot.0.get();
                let cap = log.buf.len() as u64;
                let kept = log.pushed.min(cap);
                dropped += log.pushed - kept;
                // Oldest-first: the ring holds the last `kept` pushes.
                let first = log.pushed - kept;
                for p in first..log.pushed {
                    spans.push((shard, log.buf[(p % cap) as usize]));
                }
                log.pushed = 0;
            }
        }
        spans.sort_by_key(|(_, s)| s.start_ns);
        TraceLog { spans, dropped }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("shards", &self.slots.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_in_start_order() {
        let t = Tracer::new(2, 8);
        t.record_span(1, SpanKind::TeamEpoch, 10, 20);
        t.record_span(0, SpanKind::Matvec, 5, 30);
        t.record_span(0, SpanKind::DotWait, 35, 40);
        let log = t.drain();
        assert_eq!(log.dropped, 0);
        let kinds: Vec<_> = log.spans.iter().map(|(s, sp)| (*s, sp.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (0, SpanKind::Matvec),
                (1, SpanKind::TeamEpoch),
                (0, SpanKind::DotWait)
            ]
        );
        // drain resets
        assert!(t.drain().spans.is_empty());
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts() {
        let t = Tracer::new(1, 4);
        for i in 0..10u64 {
            t.record_span(0, SpanKind::VectorOp, i, i + 1);
        }
        let log = t.drain();
        assert_eq!(log.dropped, 6);
        let starts: Vec<u64> = log.spans.iter().map(|(_, s)| s.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn out_of_range_shard_is_ignored() {
        let t = Tracer::new(1, 4);
        t.record_span(7, SpanKind::Matvec, 0, 1);
        assert!(t.drain().spans.is_empty());
    }

    #[test]
    fn concurrent_shard_exclusive_recording() {
        let t = std::sync::Arc::new(Tracer::new(4, 64));
        std::thread::scope(|s| {
            for w in 0..4usize {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..32u64 {
                        t.record_span(w, SpanKind::MpkTile, i, i + 1);
                    }
                });
            }
        });
        let log = t.drain();
        assert_eq!(log.spans.len(), 128);
        assert_eq!(log.dropped, 0);
    }
}
