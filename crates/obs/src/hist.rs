//! Log₂-bucketed duration histograms.
//!
//! Bucket `i > 0` holds durations `d` with `2^(i-1) <= d < 2^i`
//! nanoseconds; bucket 0 holds `d == 0`. 64 fixed buckets cover the whole
//! `u64` range with no allocation, which is all a span profiler needs:
//! the interesting signal is the order of magnitude (a 200 ns fan-in vs a
//! 5 µs barrier epoch vs a 2 ms sweep), not the third digit.

/// Number of buckets (fixed).
pub const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of nanosecond durations.
#[derive(Debug, Clone)]
pub struct DurationHist {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for DurationHist {
    fn default() -> Self {
        DurationHist {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

/// Bucket index for a duration.
#[must_use]
pub fn bucket_of(dur_ns: u64) -> usize {
    (64 - dur_ns.leading_zeros()) as usize
}

/// Inclusive upper bound (ns) of a bucket (saturating for the last one).
#[must_use]
pub fn bucket_upper_ns(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl DurationHist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        DurationHist::default()
    }

    /// Record one duration.
    pub fn record(&mut self, dur_ns: u64) {
        self.counts[bucket_of(dur_ns).min(BUCKETS - 1)] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded durations (ns, saturating).
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded duration (ns).
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean duration (ns), 0 if empty.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`), 0 if empty. Resolution is one power of two.
    #[must_use]
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ns(i);
            }
        }
        bucket_upper_ns(BUCKETS - 1)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &DurationHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` pairs.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_ns(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_and_stats() {
        let mut h = DurationHist::new();
        for d in [100u64, 200, 300, 5000] {
            h.record(d);
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum_ns(), 5600);
        assert_eq!(h.max_ns(), 5000);
        assert!((h.mean_ns() - 1400.0).abs() < 1e-9);
        // p50 is the rank-2 sample (200), in the 128..255 bucket
        assert_eq!(h.quantile_upper_ns(0.5), 255);
        assert_eq!(h.quantile_upper_ns(1.0), 8191);
    }

    #[test]
    fn merge_adds() {
        let mut a = DurationHist::new();
        a.record(10);
        let mut b = DurationHist::new();
        b.record(1000);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.max_ns(), u64::MAX);
    }
}
