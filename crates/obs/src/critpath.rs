//! Per-iteration critical-path attribution.
//!
//! The solver thread (shard 0) drops an [`SpanKind::IterMark`] instant at
//! the top of every iteration; the time between consecutive marks is one
//! iteration of wall clock. Every *attributed* shard-0 span (one whose
//! [`SpanKind::phase`] is `Some`) lands in the window containing its start
//! and contributes its **self time** — its duration minus the durations of
//! classified spans nested inside it — to that window's phase bucket, so a
//! `DotFanIn` recorded deep inside a fused `VectorOp` sweep moves its
//! nanoseconds from the vector bucket to the reduction bucket instead of
//! counting twice. Unclassified detail spans (`TeamEpoch`, worker-side
//! `MpkTile`) appear only in the exporters and histograms. Whatever part
//! of a window no attributed span covers (loop glue, branch logic, the
//! clock reads themselves) is charged to overhead, so the four phases of
//! an iteration always sum to its measured wall time.

use crate::hist::DurationHist;
use crate::span::{PhaseClass, Span, SpanKind, ALL_KINDS};
use crate::tracer::TraceLog;

/// Nanoseconds attributed to each phase of one window of execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Phases {
    /// Dependency-gated reduction time (`DotWait` + `DotFanIn` + `DeferredWait`).
    pub reduction_wait_ns: u64,
    /// Matrix–vector / basis-build time (`Matvec` + `MpkBuild`).
    pub matvec_ns: u64,
    /// Overlappable vector work (`VectorOp` + `DotLaunch`).
    pub vector_ns: u64,
    /// Scalar recurrences, guards, recovery, and unattributed window time.
    pub overhead_ns: u64,
    /// Window wall time; the four phases sum to this.
    pub total_ns: u64,
}

impl Phases {
    fn add(&mut self, class: PhaseClass, dur_ns: u64) {
        match class {
            PhaseClass::ReductionWait => self.reduction_wait_ns += dur_ns,
            PhaseClass::Matvec => self.matvec_ns += dur_ns,
            PhaseClass::Vector => self.vector_ns += dur_ns,
            PhaseClass::Overhead => self.overhead_ns += dur_ns,
        }
    }

    fn classified_ns(&self) -> u64 {
        self.reduction_wait_ns + self.matvec_ns + self.vector_ns + self.overhead_ns
    }

    fn accumulate(&mut self, other: &Phases) {
        self.reduction_wait_ns += other.reduction_wait_ns;
        self.matvec_ns += other.matvec_ns;
        self.vector_ns += other.vector_ns;
        self.overhead_ns += other.overhead_ns;
        self.total_ns += other.total_ns;
    }

    /// Fraction of the window's wall time in a phase (0 if the window is
    /// empty).
    #[must_use]
    pub fn share(&self, class: PhaseClass) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        let ns = match class {
            PhaseClass::ReductionWait => self.reduction_wait_ns,
            PhaseClass::Matvec => self.matvec_ns,
            PhaseClass::Vector => self.vector_ns,
            PhaseClass::Overhead => self.overhead_ns,
        };
        ns as f64 / self.total_ns as f64
    }
}

/// One iteration's attribution.
#[derive(Debug, Clone, Copy)]
pub struct IterBreakdown {
    /// Zero-based iteration index (order of `IterMark`s).
    pub iter: usize,
    /// Where the iteration's wall time went.
    pub phases: Phases,
}

/// The aggregated critical-path report for one traced solve.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-iteration breakdowns, in iteration order.
    pub iters: Vec<IterBreakdown>,
    /// Sum over all iterations (excludes pre-first-mark setup).
    pub totals: Phases,
    /// Spans lost to ring wrap-around (nonzero means the breakdown is
    /// partial — size the tracer capacity up).
    pub dropped: u64,
    /// Per-kind duration histograms over **all** shards, indexed by
    /// `SpanKind as usize`.
    pub kind_hist: Vec<DurationHist>,
    /// Per-kind logical bytes moved ([`crate::span::Span::bytes`]) over
    /// **all** shards, indexed by `SpanKind as usize`. Sites that don't
    /// account traffic contribute 0, so this is a lower bound on true
    /// memory traffic but an exact tally of the accounted sweeps.
    pub kind_bytes: Vec<u64>,
}

impl Report {
    /// Fraction of total iteration time that was dependency-gated on
    /// reductions — the paper's headline quantity.
    #[must_use]
    pub fn reduction_wait_share(&self) -> f64 {
        self.totals.share(PhaseClass::ReductionWait)
    }

    /// Histogram for one span kind.
    #[must_use]
    pub fn hist(&self, kind: SpanKind) -> &DurationHist {
        &self.kind_hist[kind as usize]
    }

    /// Logical bytes moved by all spans of one kind.
    #[must_use]
    pub fn bytes(&self, kind: SpanKind) -> u64 {
        self.kind_bytes[kind as usize]
    }

    /// Logical bytes moved by all accounted spans, every kind.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.kind_bytes.iter().sum()
    }
}

/// Attribute a drained trace to per-iteration phases.
#[must_use]
pub fn attribute(log: &TraceLog) -> Report {
    let mut kind_hist: Vec<DurationHist> = ALL_KINDS.iter().map(|_| DurationHist::new()).collect();
    let mut kind_bytes = vec![0u64; ALL_KINDS.len()];
    for (_, span) in &log.spans {
        kind_hist[span.kind as usize].record(span.dur_ns());
        kind_bytes[span.kind as usize] += span.bytes;
    }

    // Iteration windows from shard-0 marks (log.spans is start-sorted).
    let shard0: Vec<Span> = log
        .spans
        .iter()
        .filter(|(shard, _)| *shard == 0)
        .map(|(_, s)| *s)
        .collect();
    let marks: Vec<u64> = shard0
        .iter()
        .filter(|s| s.kind == SpanKind::IterMark)
        .map(|s| s.start_ns)
        .collect();

    let mut iters: Vec<IterBreakdown> = Vec::new();
    if !marks.is_empty() {
        let last_end = shard0
            .iter()
            .filter(|s| s.kind.phase().is_some())
            .map(|s| s.end_ns)
            .max()
            .unwrap_or(*marks.last().expect("nonempty"))
            .max(*marks.last().expect("nonempty"));
        for (i, &start) in marks.iter().enumerate() {
            let end = marks.get(i + 1).copied().unwrap_or(last_end);
            iters.push(IterBreakdown {
                iter: i,
                phases: Phases {
                    total_ns: end.saturating_sub(start),
                    ..Phases::default()
                },
            });
        }
        // Classified shard-0 spans, start-sorted with ties broken so an
        // enclosing span precedes a nested one starting at the same time.
        let mut classified: Vec<(Span, PhaseClass)> = shard0
            .iter()
            .filter_map(|s| s.kind.phase().map(|c| (*s, c)))
            .collect();
        classified.sort_by_key(|(s, _)| (s.start_ns, std::cmp::Reverse(s.end_ns)));
        // Self time: subtract each span's duration from its innermost
        // enclosing classified span (grandchildren only debit their parent,
        // so nothing is subtracted twice).
        let mut self_ns: Vec<u64> = classified.iter().map(|(s, _)| s.dur_ns()).collect();
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..classified.len() {
            let start = classified[i].0.start_ns;
            while let Some(&top) = stack.last() {
                if classified[top].0.end_ns <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                self_ns[parent] = self_ns[parent].saturating_sub(classified[i].0.dur_ns());
            }
            stack.push(i);
        }
        for (i, (span, class)) in classified.iter().enumerate() {
            // Window containing the span's start: last mark <= start.
            let idx = match marks.binary_search(&span.start_ns) {
                Ok(i) => i,
                Err(0) => continue, // pre-first-mark setup
                Err(i) => i - 1,
            };
            iters[idx].phases.add(*class, self_ns[i]);
        }
        // Charge unattributed window time to overhead.
        for it in &mut iters {
            let gap = it.phases.total_ns.saturating_sub(it.phases.classified_ns());
            it.phases.overhead_ns += gap;
            // A span straddling a window end can make classified time exceed
            // the window; keep the invariant total == sum of phases.
            it.phases.total_ns = it.phases.classified_ns();
        }
    }

    let mut totals = Phases::default();
    for it in &iters {
        totals.accumulate(&it.phases);
    }
    Report {
        iters,
        totals,
        dropped: log.dropped,
        kind_hist,
        kind_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn span(kind: SpanKind, start: u64, end: u64) -> (usize, Span) {
        (
            0,
            Span {
                start_ns: start,
                end_ns: end,
                bytes: 0,
                kind,
            },
        )
    }

    #[test]
    fn bytes_aggregate_per_kind_across_shards() {
        let t = Tracer::new(2, 16);
        t.record_span_bytes(0, SpanKind::Matvec, 0, 10, 800);
        t.record_span_bytes(0, SpanKind::VectorOp, 10, 20, 300);
        t.record_span_bytes(1, SpanKind::Matvec, 0, 10, 800);
        t.record_span(0, SpanKind::DotWait, 20, 30); // unaccounted: 0 bytes
        let rep = attribute(&t.drain());
        assert_eq!(rep.bytes(SpanKind::Matvec), 1600);
        assert_eq!(rep.bytes(SpanKind::VectorOp), 300);
        assert_eq!(rep.bytes(SpanKind::DotWait), 0);
        assert_eq!(rep.total_bytes(), 1900);
    }

    #[test]
    fn attributes_two_iterations() {
        let log = TraceLog {
            spans: vec![
                span(SpanKind::IterMark, 100, 100),
                span(SpanKind::Matvec, 100, 160),
                span(SpanKind::DotWait, 160, 180),
                span(SpanKind::VectorOp, 180, 195),
                span(SpanKind::IterMark, 200, 200),
                span(SpanKind::Matvec, 200, 250),
                span(SpanKind::DeferredWait, 255, 260),
            ],
            dropped: 0,
        };
        let rep = attribute(&log);
        assert_eq!(rep.iters.len(), 2);
        let i0 = rep.iters[0].phases;
        assert_eq!(i0.matvec_ns, 60);
        assert_eq!(i0.reduction_wait_ns, 20);
        assert_eq!(i0.vector_ns, 15);
        assert_eq!(i0.overhead_ns, 5); // 100-wide window, 95 classified
        assert_eq!(i0.total_ns, 100);
        let i1 = rep.iters[1].phases;
        assert_eq!(i1.matvec_ns, 50);
        assert_eq!(i1.reduction_wait_ns, 5);
        assert_eq!(i1.total_ns, 60); // closed by the last span end
        assert!((rep.totals.share(PhaseClass::Matvec) - 110.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn setup_before_first_mark_is_excluded() {
        let log = TraceLog {
            spans: vec![
                span(SpanKind::Matvec, 0, 50),
                span(SpanKind::IterMark, 60, 60),
                span(SpanKind::VectorOp, 60, 70),
            ],
            dropped: 0,
        };
        let rep = attribute(&log);
        assert_eq!(rep.iters.len(), 1);
        assert_eq!(rep.totals.matvec_ns, 0);
        assert_eq!(rep.totals.vector_ns, 10);
        // histograms still see everything
        assert_eq!(rep.hist(SpanKind::Matvec).total(), 1);
    }

    #[test]
    fn aux_spans_do_not_double_count() {
        let log = TraceLog {
            spans: vec![
                span(SpanKind::IterMark, 0, 0),
                span(SpanKind::Matvec, 0, 100),
                span(SpanKind::TeamEpoch, 10, 90), // nested detail
            ],
            dropped: 0,
        };
        let rep = attribute(&log);
        assert_eq!(rep.totals.matvec_ns, 100);
        assert_eq!(rep.totals.total_ns, 100);
        assert_eq!(rep.totals.overhead_ns, 0);
    }

    #[test]
    fn nested_classified_spans_use_self_time() {
        let log = TraceLog {
            spans: vec![
                span(SpanKind::IterMark, 0, 0),
                span(SpanKind::VectorOp, 0, 100), // fused update sweep
                span(SpanKind::DotFanIn, 80, 95), // its embedded fan-in
            ],
            dropped: 0,
        };
        let rep = attribute(&log);
        assert_eq!(rep.totals.vector_ns, 85); // 100 − 15 nested
        assert_eq!(rep.totals.reduction_wait_ns, 15);
        assert_eq!(rep.totals.total_ns, 100);
        assert_eq!(rep.totals.overhead_ns, 0);
    }

    #[test]
    fn grandchildren_only_debit_their_parent() {
        let log = TraceLog {
            spans: vec![
                span(SpanKind::IterMark, 0, 0),
                span(SpanKind::DotWait, 0, 100), // eager dot: whole call gated
                span(SpanKind::VectorOp, 10, 50), // (synthetic) nested sweep
                span(SpanKind::DotFanIn, 20, 30), // combine inside the sweep
            ],
            dropped: 0,
        };
        let rep = attribute(&log);
        // DotWait self = 100−40, DotFanIn = 10 → reduction 70; Vector 40−10.
        assert_eq!(rep.totals.reduction_wait_ns, 70);
        assert_eq!(rep.totals.vector_ns, 30);
        assert_eq!(rep.totals.total_ns, 100);
    }

    #[test]
    fn end_to_end_with_a_real_tracer() {
        let t = Tracer::new(1, 64);
        for _ in 0..3 {
            t.mark(0, SpanKind::IterMark);
            let s = t.now_ns();
            std::hint::black_box((0..1000).sum::<u64>());
            t.record_since(0, SpanKind::Matvec, s);
        }
        let rep = attribute(&t.drain());
        assert_eq!(rep.iters.len(), 3);
        assert!(rep.totals.total_ns > 0);
        assert_eq!(rep.dropped, 0);
    }
}
