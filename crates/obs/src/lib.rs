//! # vr-obs
//!
//! Allocation-free span tracing and critical-path accounting for the
//! Van Rosendale CG reproduction.
//!
//! The paper's argument (C1–C3) is about the *critical path inside one CG
//! iteration*: how much of it is inner-product fan-in wait versus
//! overlappable vector work. `vr_bench::timing` can only wall-clock a solve
//! from the outside and `OpCounts` only tallies logical operations; this
//! crate records *when* each phase of an iteration ran, on every worker
//! thread, so the §3 overlap claim can be measured rather than inferred.
//!
//! ## Design
//!
//! * [`Clock`](clock::Clock) — one monotonic origin (`Instant`), all
//!   timestamps are `u64` nanoseconds since it. No atomics.
//! * [`Tracer`](tracer::Tracer) — one fixed-capacity ring buffer of
//!   [`Span`](span::Span) records *per shard* (per SPMD worker). Recording
//!   is a bounds check, two stores and a counter increment: no locks, no
//!   atomics, no allocation. Shard exclusivity (worker `w` writes only slot
//!   `w`, epochs are serialized by the team's run lock) makes the
//!   `&self`-recording sound; see the [`tracer`] module docs.
//! * [`tls`] — a thread-local attachment so deep callees
//!   (`vr_par::team` epochs, `PendingScalar::wait`) can record spans
//!   without threading a tracer through every kernel signature. Detached
//!   cost is one thread-local read and a branch.
//! * [`critpath`] — the per-iteration aggregator: shard-0 spans between
//!   `IterMark`s are attributed to {reduction-wait, matvec, vector,
//!   overhead}; unclassified window time counts as overhead so the four
//!   phases always sum to the measured iteration time.
//! * [`hist`] — log₂-bucketed duration histograms per span kind.
//! * [`chrome`] — Chrome trace-event JSON (open in Perfetto / `chrome://tracing`).
//!
//! The *disabled* path is the absence of a tracer: `SolveOptions` holds an
//! `Option<Arc<Tracer>>` that defaults to `None`, every record helper takes
//! one branch and does nothing, and solver arithmetic is untouched — solves
//! are bit-identical and allocation-free with or without tracing (asserted
//! in `tests/tracing.rs` and `tests/alloc_free.rs`).
//!
//! ## Reduction-wait accounting
//!
//! "Reduction wait" is *dependency-gated* time, the quantity the paper (and
//! the pipelined-CG literature after it) reasons about:
//!
//! * an **eager** inner product ([`SpanKind::DotWait`](span::SpanKind)) gates
//!   immediately — its result is consumed at the call site, so the whole
//!   call (leaf sweep + tree fan-in) is reduction wait;
//! * a fan-in consuming partials folded by a **fused** sweep
//!   ([`SpanKind::DotFanIn`](span::SpanKind)) gates only for the combine —
//!   the producing sweep was useful vector work;
//! * a **deferred** reduction pays only its consume-point
//!   [`SpanKind::DeferredWait`](span::SpanKind): the leaf sweep
//!   ([`SpanKind::DotLaunch`](span::SpanKind)) ran an iteration's worth of
//!   useful work before the value was needed, which is exactly the §3
//!   overlap.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod chrome;
pub mod clock;
pub mod critpath;
pub mod hist;
pub mod json;
pub mod span;
pub mod tls;
pub mod tracer;

pub use clock::Clock;
pub use critpath::{IterBreakdown, Phases, Report};
pub use json::{report_json, Json, ToJson};
pub use span::{PhaseClass, Span, SpanKind};
pub use tracer::{TraceLog, Tracer};
